//! # amcca — streaming dynamic graph processing on a message-driven system
//!
//! Umbrella crate for the Rust reproduction of
//!
//! > Chandio, Brodowicz, Sterling. *Structures and Techniques for Streaming
//! > Dynamic Graph Processing on Decentralized Message-Driven Systems.*
//! > ICPP 2024 (arXiv:2406.01201).
//!
//! Re-exports the full stack:
//!
//! * [`amcca_sim`] — cycle-level AM-CCA chip simulator (mesh, YX routing,
//!   IO channels, energy model).
//! * [`diffusive`] — the diffusive programming model (actions, future LCOs,
//!   continuations, termination detection, the `Device` façade).
//! * [`sdgp_core`] — the paper's contribution: RPVO vertex storage, streaming
//!   edge ingestion, dynamic BFS and the extension algorithms.
//! * [`gc_datasets`] — GraphChallenge-style SBM workloads with Edge and
//!   Snowball sampling schedules.
//! * [`refgraph`] — sequential reference algorithms used as oracles.
//! * [`amcca_obs`] — wall-clock observability: metrics registry, latency
//!   histograms, batch-lifecycle span tracing (see `docs/OBSERVABILITY.md`).
//!
//! ## Quickstart
//!
//! ```
//! use amcca::prelude::*;
//!
//! // A 32×32 chip, default RPVO shape, BFS rooted at vertex 0.
//! let mut g = StreamingGraph::builder(BfsAlgo::new(0))
//!     .vertices(100)
//!     .chip(ChipConfig::default())
//!     .rpvo(RpvoConfig::default())
//!     .build()
//!     .unwrap();
//!
//! // Stream a path 0→1→…→99 and run the diffusion to quiescence.
//! let edges: Vec<StreamEdge> = (0..99).map(|i| (i, i + 1, 1)).collect();
//! let report = g.stream_edges(&edges).unwrap();
//! assert_eq!(g.state_of(99), 99);
//! assert!(report.cycles > 0);
//!
//! // The stream is dynamic: add a shortcut, then retract it again. The
//! // deletion invalidates the levels derived through it and the repair
//! // diffusion re-relaxes them from the surviving path.
//! g.stream_increment(&[GraphMutation::AddEdge((0, 50, 1))]).unwrap();
//! assert_eq!(g.state_of(99), 50);
//! g.stream_increment(&[GraphMutation::DelEdge((0, 50, 1))]).unwrap();
//! assert_eq!(g.state_of(99), 99);
//! ```

pub use amcca_obs;
pub use amcca_sim;
pub use diffusive;
pub use gc_datasets;
pub use refgraph;
pub use sdgp_core;

/// The most common imports in one place.
pub mod prelude {
    pub use amcca_obs::{MetricsSnapshot, Obs};
    pub use amcca_sim::{
        ActivityRecording, Address, ChipConfig, Dims, EnergyModel, GhostPlacement, Operon,
        RhizomePlacement, RootPlacement, SimError,
    };
    pub use diffusive::{Device, FutureLco, RunReport, TerminationMode};
    pub use gc_datasets::{GcPreset, Sampling, SbmParams, SkewPreset, StreamingDataset};
    pub use sdgp_core::{
        apps::{BfsAlgo, CcAlgo, SsspAlgo, TriangleAlgo, MAX_LEVEL},
        graph::{
            symmetrize, symmetrize_mutations, GraphMutation, RepairMode, RepairStats, StreamEdge,
            StreamingGraph,
        },
        rpvo::RpvoConfig,
    };
}
