//! Incremental single-source shortest paths — one of the paper's proposed
//! future-work algorithms, running on the same diffusive machinery as BFS.
//!
//! Streams a weighted road-network-like grid, then drops in shortcut edges
//! ("new roads"), re-weights segments ("congestion"), and closes roads,
//! showing distances updating without recomputation — repairs are scoped to
//! the vertices an edit actually disturbs.
//!
//! ```sh
//! cargo run --release --example incremental_sssp
//! ```

use amcca::prelude::*;
use refgraph::{dijkstra, DiGraph};

const SIDE: u32 = 20; // 20×20 grid = 400 vertices

fn vid(x: u32, y: u32) -> u32 {
    y * SIDE + x
}

fn main() {
    let n = SIDE * SIDE;
    let mut g = StreamingGraph::builder(SsspAlgo::new(0)) // source = north-west corner
        .vertices(n)
        .chip(ChipConfig::default())
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();

    // Increment 1: the grid — east/south streets with weight 10.
    let mut streets: Vec<StreamEdge> = Vec::new();
    for y in 0..SIDE {
        for x in 0..SIDE {
            if x + 1 < SIDE {
                streets.push((vid(x, y), vid(x + 1, y), 10));
            }
            if y + 1 < SIDE {
                streets.push((vid(x, y), vid(x, y + 1), 10));
            }
        }
    }
    let r = g.stream_edges(&streets).unwrap();
    let corner = vid(SIDE - 1, SIDE - 1);
    println!("grid streamed: {} edges, {} cycles", streets.len(), r.cycles);
    println!("  distance to far corner: {}", g.state_of(corner)); // 38 * 10

    // Increment 2: a diagonal expressway with cheap segments.
    let highway: Vec<StreamEdge> =
        (0..SIDE - 1).map(|i| (vid(i, i), vid(i + 1, i + 1), 3)).collect();
    let r = g.stream_edges(&highway).unwrap();
    println!("highway streamed: {} edges, {} cycles", highway.len(), r.cycles);
    println!("  distance to far corner now: {}", g.state_of(corner)); // 19 * 3

    // Verify against Dijkstra on the accumulated network.
    let mut all = streets.clone();
    all.extend_from_slice(&highway);
    let reference = dijkstra(&DiGraph::from_edges(n, all.iter().copied()), 0);
    assert_eq!(g.states(), reference);
    println!("distances verified against Dijkstra ✓");

    // Increment 3: close one more gap — only affected vertices update.
    let r = g.stream_edges(&[(0, vid(SIDE - 1, 0), 5)]).unwrap();
    println!("shortcut streamed: 1 edge, {} cycles (incremental update only)", r.cycles);
    println!("  distance to north-east corner: {}", g.state_of(vid(SIDE - 1, 0)));

    // Increment 4: rush hour — an expressway segment near the far corner
    // triples in weight. A weight *increase* runs a scoped
    // invalidate+reseed: only the distances that relied on the cheap
    // segment repair, and the reseed wave triggers just the repair
    // frontier around the far corner, not all 400 vertices.
    let jam = GraphMutation::UpdateWeight { u: vid(15, 15), v: vid(16, 16), w: 9 };
    let r = g.stream_increment(&[jam]).unwrap();
    println!(
        "congestion on 1 segment: {} cycles, {} reseed triggers (of {} vertices)",
        r.cycles, r.reseed_triggers, n
    );
    assert!(r.reseed_triggers < n as u64);
    let mut current = all.clone();
    current.push((0, vid(SIDE - 1, 0), 5));
    for e in current.iter_mut() {
        if (e.0, e.1) == (vid(15, 15), vid(16, 16)) {
            e.2 = 9;
        }
    }
    let reference = dijkstra(&DiGraph::from_edges(n, current.iter().copied()), 0);
    assert_eq!(g.states(), reference);
    println!("congested distances verified against Dijkstra ✓");
    // The jam clears: a weight *decrease* is just a relax, no repair wave.
    let clear = GraphMutation::UpdateWeight { u: vid(15, 15), v: vid(16, 16), w: 3 };
    let r = g.stream_increment(&[clear]).unwrap();
    assert_eq!(r.reseed_triggers, 0, "decrease needs no repair wave");
    println!("jam cleared: {} cycles (plain relax)", r.cycles);

    // Increment 5: the expressway closes for maintenance — a *decremental*
    // update. Every distance derived through the deleted segments is
    // invalidated and re-relaxed from the surviving street grid.
    let closure: Vec<GraphMutation> =
        (0..SIDE - 1).map(|i| GraphMutation::DelEdge((vid(i, i), vid(i + 1, i + 1), 3))).collect();
    let r = g.stream_increment(&closure).unwrap();
    println!(
        "expressway closed: {} edges deleted, {} cycles (repair diffusion)",
        closure.len(),
        r.cycles
    );
    println!("  distance to far corner after closure: {}", g.state_of(corner));
    let mut survivors = streets.clone();
    survivors.push((0, vid(SIDE - 1, 0), 5));
    let reference = dijkstra(&DiGraph::from_edges(n, survivors.iter().copied()), 0);
    assert_eq!(g.states(), reference);
    println!("post-closure distances verified against Dijkstra ✓");
}
