//! Render the chip-activation animation the paper generates from simulation
//! traces (§5: "We also create visual animations of the system from the
//! trace of the simulation showing how streaming dynamic BFS transfers
//! parallel control over the cellular grid").
//!
//! Streams a small SBM graph with BFS enabled while recording per-cycle
//! activity bitmaps, then plays selected frames as ASCII heat maps and
//! prints the Figure 6/7-style activity sparkline.
//!
//! ```sh
//! cargo run --release --example activation_animation            # summary
//! cargo run --release --example activation_animation -- --play  # all frames
//! ```

use amcca::prelude::*;
use amcca_sim::trace::{activity_sparkline, frame_ascii};

fn main() {
    let play = std::env::args().any(|a| a == "--play");

    let chip = ChipConfig {
        record_activity: ActivityRecording::Frames { stride: 8 },
        ..ChipConfig::default()
    };
    let dims = chip.dims;
    let cells = chip.cell_count();
    let preset = GcPreset::v50k(Sampling::Edge).scaled_down(50);
    let dataset = preset.build();
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(dataset.n_vertices)
        .chip(chip)
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();

    // Stream the first increment only — enough to watch the wave spread.
    let report = g.stream_edges(dataset.increment(0)).unwrap();
    let activity = &report.activity;
    println!(
        "increment 1: {} edges, {} cycles, {} frames captured",
        dataset.increment(0).len(),
        report.cycles,
        activity.frames.len()
    );
    println!("\nactivity over time (percent of {} cells):", cells);
    println!("|{}|", activity_sparkline(activity, cells, 72));

    // Play frames: every frame with --play, else four snapshots.
    let picks: Vec<usize> = if play {
        (0..activity.frames.len()).collect()
    } else {
        let n = activity.frames.len();
        [n / 10, n / 4, n / 2, (3 * n) / 4].into_iter().filter(|&i| i < n).collect()
    };
    for i in picks {
        let cycle = i as u32 * activity.frame_stride;
        let active = activity.counts.get(cycle as usize).copied().unwrap_or(0);
        println!(
            "\ncycle {:>6}  ({} cells active, {:.0}%):",
            cycle,
            active,
            active as f64 * 100.0 / cells as f64
        );
        print!("{}", frame_ascii(&activity.frames[i], dims));
        if play {
            std::thread::sleep(std::time::Duration::from_millis(40));
        }
    }
    println!("\n(tip: --play animates every frame)");
}
