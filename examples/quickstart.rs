//! Quickstart: stream a small dynamic graph onto a simulated AM-CCA chip and
//! watch incremental BFS keep the levels current.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use amcca::prelude::*;

fn main() {
    // A 32×32 chip — the platform of the paper's experiments — with the
    // default RPVO shape (16 inline edges, 2 ghost slots per object).
    let chip = ChipConfig::default();
    let n_vertices = 1_000;
    let mut graph = StreamingGraph::builder(BfsAlgo::new(0)) // BFS root = vertex 0
        .vertices(n_vertices)
        .chip(chip)
        .rpvo(RpvoConfig::default())
        .build()
        .expect("graph construction");

    // Increment 1: a binary tree below the root.
    let tree: Vec<StreamEdge> = (1..n_vertices).map(|v| ((v - 1) / 2, v, 1)).collect();
    let r1 = graph.stream_edges(&tree).expect("increment 1");
    println!(
        "increment 1: {} edges in {} cycles ({:.1} µs @ 1 GHz, {:.1} µJ)",
        tree.len(),
        r1.cycles,
        r1.time_us,
        r1.energy_uj
    );
    println!("  level of vertex 999 (tree leaf): {}", graph.state_of(999));

    // Increment 2: a shortcut from the root straight into the deep subtree.
    // Dynamic BFS lowers every affected level without recomputing the rest.
    let shortcut: Vec<StreamEdge> = vec![(0, 998, 1)];
    let r2 = graph.stream_edges(&shortcut).expect("increment 2");
    println!(
        "increment 2: {} edge in {} cycles — levels updated incrementally",
        shortcut.len(),
        r2.cycles
    );
    println!("  level of vertex 998 after shortcut: {}", graph.state_of(998));
    println!("  level of vertex 999 (unaffected branch): {}", graph.state_of(999));

    // Increment 3: the stream is dynamic — retract the shortcut again. The
    // deletion invalidates the levels derived through it and a repair
    // diffusion re-relaxes them from the surviving tree.
    let r3 = graph.stream_increment(&[GraphMutation::DelEdge((0, 998, 1))]).expect("increment 3");
    println!("increment 3: shortcut deleted in {} cycles — levels repaired", r3.cycles);
    println!("  level of vertex 998 after repair: {}", graph.state_of(998));

    // Every live streamed edge is stored exactly once across the RPVO
    // hierarchy (the deleted copy is gone).
    println!(
        "stored edges: {} (streamed {}, deleted 1), ghost objects: {}",
        graph.total_edges_stored(),
        tree.len() + shortcut.len(),
        graph.ghost_distance_stats().0
    );
}
