//! The paper's headline experiment in miniature: stream a GraphChallenge-
//! style SBM graph in ten increments (Edge and Snowball sampling) and
//! measure cycles per increment for ingestion-only vs ingestion-with-BFS —
//! the data behind Figures 8 and 9 — then verify against the reference BFS.
//!
//! ```sh
//! cargo run --release --example streaming_bfs
//! ```

use amcca::prelude::*;
use refgraph::{bfs_levels, DiGraph};

fn run(sampling: Sampling) {
    let preset = GcPreset::v50k(sampling).scaled_down(50); // 1K vertices, 20K edges
    let dataset = preset.build();
    println!(
        "\n=== {} sampling: {} vertices, {} edges, {} increments ===",
        sampling,
        dataset.n_vertices,
        dataset.total_edges(),
        dataset.increments()
    );

    for with_bfs in [false, true] {
        let mut g = StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(dataset.n_vertices)
            .chip(ChipConfig::default())
            .rpvo(RpvoConfig::default())
            .build()
            .unwrap();
        g.set_algo_propagation(with_bfs);
        let mode = if with_bfs { "streaming edges with BFS" } else { "streaming edges" };
        print!("{mode:>26}: ");
        let mut total = 0u64;
        for i in 0..dataset.increments() {
            let r = g.stream_edges(dataset.increment(i)).unwrap();
            print!("{:6}", r.cycles);
            total += r.cycles;
        }
        println!("  | total {total} cycles");

        if with_bfs {
            // Verify the final levels against a sequential BFS (the paper
            // checks against NetworkX, §4).
            let reference = bfs_levels(
                &DiGraph::from_edges(dataset.n_vertices, dataset.all_edges().iter().copied()),
                0,
            );
            assert_eq!(g.states(), reference, "streamed BFS must match the oracle");
            println!("{:>26}  levels verified against reference BFS ✓", "");
        }
    }
}

fn main() {
    run(Sampling::Edge);
    run(Sampling::Snowball);
}
