//! Message-driven triangle counting over streamed increments — the first of
//! the paper's named future-work algorithms (§6).
//!
//! Streams an SBM graph increment by increment (symmetrized, as triangle
//! counting is an undirected query) and after each increment launches a
//! tri-gen diffusion wave that counts triangles exactly, verified against
//! the sequential node-iterator reference.
//!
//! ```sh
//! cargo run --release --example triangle_stream
//! ```

use amcca::prelude::*;
use refgraph::count_triangles;
use sdgp_core::apps::ACT_TRI_GEN;

fn main() {
    let chip = ChipConfig::default();
    let ncc = chip.cell_count();
    let preset = GcPreset::v50k(Sampling::Edge).scaled_down(100); // 500 v, 10K e
    let dataset = preset.build();
    let n = dataset.n_vertices;
    let mut g = StreamingGraph::builder(TriangleAlgo::new(ncc))
        .vertices(n)
        .chip(chip)
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();

    println!(
        "streaming {} edges over {} increments, recounting triangles each time:\n",
        dataset.total_edges(),
        dataset.increments()
    );
    println!(
        "{:>9}  {:>10}  {:>10}  {:>12}  {:>9}",
        "increment", "edges", "triangles", "query cycles", "verified"
    );

    let mut accumulated: Vec<(u32, u32)> = Vec::new();
    for i in 0..dataset.increments() {
        let inc = dataset.increment(i);
        // Undirected storage: stream both directions of every edge.
        let sym = symmetrize(inc);
        g.stream_edges(&sym).unwrap();
        accumulated.extend(inc.iter().map(|&(u, v, _)| (u, v)));

        // Snapshot query: a tri-gen wave over all vertices.
        g.device_mut().app_mut().algo.reset();
        let wave: Vec<Operon> =
            (0..n).map(|v| Operon::new(g.addr_of(v), ACT_TRI_GEN, [0, 0])).collect();
        let q = g.run_query(wave).unwrap();
        let got = g.device().app().algo.total();
        let expect = count_triangles(n, accumulated.iter().copied());
        assert_eq!(got, expect, "triangle count mismatch at increment {i}");
        println!(
            "{:>9}  {:>10}  {:>10}  {:>12}  {:>9}",
            i + 1,
            accumulated.len(),
            got,
            q.cycles,
            "✓"
        );
    }
    println!("\nall increments verified against the sequential reference.");
}
