//! Property tests of the streaming mutation pipeline, pinned to the shared
//! differential harness (`tests/common/oracle.rs`): after ANY sequence of
//! edge insertions and deletions — any interleaving, any batch split, any
//! RPVO shape, rhizomes on or off — the chip's converged vertex states are
//! **identical to rebuilding the graph from scratch over the surviving edge
//! set**, every live copy is stored exactly once, mirrors agree at
//! quiescence, and cold rhizomes never survive a demotion sweep (all checked
//! inside the harness). This file adds what the harness does not own:
//! the mutation-script generators, determinism / shard-independence of the
//! whole pipeline including cycle counts, and the directed-delete semantics
//! regression. Weight-update interleavings live in `tests/update_weight.rs`.

mod common;

use amcca::prelude::*;
use common::oracle::{Rebuild, ALL_ALGOS, N};
use proptest::prelude::*;

/// A mutation script: raw tuples materialized into an add/delete sequence.
/// `del` picks a live edge (by rotating index) when any exists, so every
/// delete is valid by construction and deletes can hit edges inserted in
/// the same batch (exercising host-side annihilation) or earlier batches
/// (exercising on-fabric retraction).
fn arb_script() -> impl Strategy<Value = Vec<(u32, u32, u32, bool, u8)>> {
    prop::collection::vec((0..N, 0..N, 1u32..10, any::<bool>(), any::<u8>()), 1..160)
}

/// A hub-heavy script: a third of the steps touch vertex 0, so promotion
/// (and, once deletes drain the hub, demotion) reliably triggers.
fn arb_skewed_script() -> impl Strategy<Value = Vec<(u32, u32, u32, bool, u8)>> {
    arb_script().prop_map(|mut s| {
        let n = s.len();
        for (i, step) in s.iter_mut().enumerate() {
            if i % 3 == 0 {
                step.0 = 0;
            }
            // Bias the tail toward deletes so hot hubs cool again.
            if i > 2 * n / 3 {
                step.3 = true;
            }
        }
        s
    })
}

/// Materialize a script into mutations, tracking the live multiset so every
/// `DelEdge` names a live edge.
fn materialize(script: &[(u32, u32, u32, bool, u8)]) -> Vec<GraphMutation> {
    let mut muts = Vec::with_capacity(script.len());
    let mut live: Vec<StreamEdge> = Vec::new();
    for &(u, v, w, del, pick) in script {
        if del && !live.is_empty() {
            let e = live.remove(pick as usize % live.len());
            muts.push(GraphMutation::DelEdge(e));
        } else if u != v {
            live.push((u, v, w));
            muts.push(GraphMutation::AddEdge((u, v, w)));
        }
    }
    muts
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Post-churn BFS, SSSP, and CC equal a from-scratch rebuild over the
    /// survivors (plus conservation, mirrors, and the demotion invariant —
    /// the harness checks them on every call), for single-root and rhizome
    /// (K ∈ {2, 4}) configurations and any batch split alike.
    #[test]
    fn churned_fixpoints_match_rebuild_oracle(
        script in arb_script(),
        chunks in 1usize..5,
        ki in 0usize..3,
    ) {
        let k = [1usize, 2, 4][ki];
        let muts = materialize(&script);
        let harness = Rebuild::new(k, 1).chunks(chunks);
        for algo in ALL_ALGOS {
            harness.check(algo, &muts);
        }
    }

    /// Hub-heavy churn with promotion *and* demotion in play keeps every
    /// invariant of the harness (rebuild equality, conservation through
    /// rhizome slices, mirror convergence, cold vertices single-rooted).
    #[test]
    fn skewed_churn_keeps_all_invariants(
        script in arb_skewed_script(),
        chunks in 1usize..5,
    ) {
        Rebuild::new(3, 1).chunks(chunks).check_bfs(&materialize(&script));
    }

    /// The whole mutation pipeline — deletions, repair, demotion — is
    /// reproducible and shard-count-independent, including cycle counts.
    #[test]
    fn churn_is_deterministic_and_shard_independent(
        script in arb_skewed_script(),
        chunks in 1usize..4,
    ) {
        let muts = materialize(&script);
        let run = |shards: usize| {
            let mut g = StreamingGraph::builder(BfsAlgo::new(0)).vertices(N).chip(ChipConfig::small_test().with_shards(shards)).rpvo(RpvoConfig::basic(3, 2).with_rhizomes(6, 3)).build().unwrap();
            let mut cycles = 0u64;
            let mut triggers = 0u64;
            for c in muts.chunks(muts.len().div_ceil(chunks).max(1)) {
                let r = g.stream_increment(c).unwrap();
                cycles += r.cycles;
                triggers += r.reseed_triggers;
            }
            (g.states(), cycles, triggers, *g.device().chip().counters(),
             g.rhizome_stats(), g.demotion_count())
        };
        let reference = run(1);
        prop_assert_eq!(&reference, &run(1), "reproducible");
        prop_assert_eq!(&reference, &run(3), "shard-count independent");
    }
}

/// Directed-delete regression for symmetrized workloads: a directed delete
/// retracts exactly its own direction — the reverse edge stays stored (and
/// keeps working: a later re-add reconnects through it) — while deleting
/// via `symmetrize_mutations` retracts both directions, leaving no stale
/// reverse edge behind. This pins the semantics that make CC-over-churn
/// sound: label propagation is directed, so v2 falls back to its own label
/// either way, but only the symmetrized delete cleans up storage.
#[test]
fn directed_delete_keeps_reverse_edge_symmetrized_delete_removes_it() {
    let build = || {
        let mut g = StreamingGraph::builder(CcAlgo)
            .vertices(6)
            .chip(ChipConfig::small_test())
            .rpvo(RpvoConfig::basic(4, 2))
            .build()
            .unwrap();
        g.stream_increment(&symmetrize_mutations(&GraphMutation::adds(&[(0, 1, 1), (1, 2, 1)])))
            .unwrap();
        g
    };
    // One direction retracted: 1→2 gone, but the reverse edge 2→1 survives
    // in storage. The inbound channel to 2 is cut, so its label reverts.
    let mut g = build();
    g.stream_increment(&[GraphMutation::DelEdge((1, 2, 1))]).unwrap();
    assert_eq!(g.logical_edges(1), vec![(0, 1)], "1→2 retracted, 1→0 kept");
    assert_eq!(g.logical_edges(2), vec![(1, 1)], "reverse edge 2→1 survives a directed delete");
    assert_eq!(g.states()[..3], [0, 0, 2], "no inbound edge: v2 reverts to its own label");
    // The surviving reverse edge is live, not stale: re-adding the forward
    // direction reconnects and v2 rejoins component 0.
    g.stream_increment(&[GraphMutation::AddEdge((1, 2, 1))]).unwrap();
    assert_eq!(g.states()[..3], [0, 0, 0], "re-added forward edge reconnects");
    // Both directions retracted: storage is clean, nothing stale remains.
    let mut g = build();
    g.stream_increment(&symmetrize_mutations(&[GraphMutation::DelEdge((1, 2, 1))])).unwrap();
    assert!(g.logical_edges(2).is_empty(), "no stale reverse edge after the pair delete");
    assert_eq!(g.logical_edges(1), vec![(0, 1)]);
    assert_eq!(g.states()[..3], [0, 0, 2], "component split once both directions are gone");
    g.check_mirror_consistency().unwrap();
}

/// Batch-split independence with mutations: applying the same mutation
/// sequence in one batch or many yields the same fixpoint and survivors
/// (the harness re-verifies the full invariant set at each split).
#[test]
fn batch_split_is_immaterial_for_mutations() {
    let und: Vec<StreamEdge> = (0..12).map(|i| (i % 6, (i + 1) % 6, 1 + i % 3)).collect();
    let mut muts = GraphMutation::adds(&und);
    muts.push(GraphMutation::DelEdge(und[3]));
    muts.push(GraphMutation::DelEdge(und[7]));
    muts.push(GraphMutation::AddEdge((2, 4, 1)));
    muts.push(GraphMutation::DelEdge((2, 4, 1)));
    assert_eq!(common::oracle::surviving_edges(&muts).len(), 10, "12 adds, 2 dels, 1 annihilated");
    let harness = Rebuild::new(1, 1).rcfg(RpvoConfig::basic(2, 2));
    let whole = harness.chunks(1).check_bfs(&muts).states();
    assert_eq!(whole, harness.chunks(3).check_bfs(&muts).states());
    assert_eq!(whole, harness.chunks(5).check_bfs(&muts).states());
}
