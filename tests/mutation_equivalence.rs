//! Property tests of the streaming mutation pipeline: after ANY sequence of
//! edge insertions and deletions — any interleaving, any batch split, any
//! RPVO shape, rhizomes on or off — the chip's converged vertex states are
//! **identical to rebuilding the graph from scratch over the surviving edge
//! set**. That is the acceptance bar for decremental correctness:
//!
//! 1. **Rebuild equivalence** — BFS, SSSP, and CC fixpoints equal the
//!    sequential oracle on exactly the live edges (delete → invalidate →
//!    re-relax leaves no stale state and loses no reachable state).
//! 2. **Edge conservation** — every live copy is stored exactly once across
//!    all root slices and ghost subtrees; deleted copies are gone.
//! 3. **Mirror convergence** — at quiescence every object of a logical
//!    vertex agrees with its primary root, through churn and demotion.
//! 4. **Demotion** — a promoted vertex whose live degree fell below the
//!    threshold is collapsed back to exactly one root by the end of the
//!    increment that cooled it.
//! 5. **Determinism** — the whole mutation pipeline is reproducible and
//!    shard-count-independent.

use amcca::prelude::*;
use proptest::prelude::*;
use refgraph::{bfs_levels, dijkstra, min_labels, DiGraph};

const N: u32 = 24;

/// A mutation script: raw tuples materialized into an add/delete sequence.
/// `del` picks a live edge (by rotating index) when any exists, so every
/// delete is valid by construction and deletes can hit edges inserted in
/// the same batch (exercising host-side annihilation) or earlier batches
/// (exercising on-fabric retraction).
fn arb_script() -> impl Strategy<Value = Vec<(u32, u32, u32, bool, u8)>> {
    prop::collection::vec((0..N, 0..N, 1u32..10, any::<bool>(), any::<u8>()), 1..160)
}

/// A hub-heavy script: a third of the steps touch vertex 0, so promotion
/// (and, once deletes drain the hub, demotion) reliably triggers.
fn arb_skewed_script() -> impl Strategy<Value = Vec<(u32, u32, u32, bool, u8)>> {
    arb_script().prop_map(|mut s| {
        let n = s.len();
        for (i, step) in s.iter_mut().enumerate() {
            if i % 3 == 0 {
                step.0 = 0;
            }
            // Bias the tail toward deletes so hot hubs cool again.
            if i > 2 * n / 3 {
                step.3 = true;
            }
        }
        s
    })
}

/// Materialize a script into mutations, tracking the live multiset so every
/// `DelEdge` names a live edge. Returns `(mutations, survivors)`.
fn materialize(script: &[(u32, u32, u32, bool, u8)]) -> (Vec<GraphMutation>, Vec<StreamEdge>) {
    let mut muts = Vec::with_capacity(script.len());
    let mut live: Vec<StreamEdge> = Vec::new();
    for &(u, v, w, del, pick) in script {
        if del && !live.is_empty() {
            let e = live.remove(pick as usize % live.len());
            muts.push(GraphMutation::DelEdge(e));
        } else if u != v {
            live.push((u, v, w));
            muts.push(GraphMutation::AddEdge((u, v, w)));
        }
    }
    (muts, live)
}

/// Split mutations into `chunks` batches (boundaries are arbitrary: batch
/// splits must not change the fixpoint).
fn stream_in_batches<G: sdgp_core::apps::VertexAlgo>(
    g: &mut StreamingGraph<G>,
    muts: &[GraphMutation],
    chunks: usize,
) {
    for c in muts.chunks(muts.len().div_ceil(chunks.max(1)).max(1)) {
        g.stream_increment(c).unwrap();
    }
}

fn rhizome_cfg(k: usize) -> RpvoConfig {
    RpvoConfig::basic(3, 2).with_rhizomes(6, k)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Post-churn BFS equals a from-scratch rebuild over the survivors, for
    /// single-root and rhizome (K ∈ {2, 4}) configurations alike.
    #[test]
    fn churned_bfs_matches_rebuild_oracle(
        script in arb_script(),
        chunks in 1usize..5,
        ki in 0usize..3,
    ) {
        let k = [1usize, 2, 4][ki];
        let (muts, live) = materialize(&script);
        let rcfg = if k == 1 { RpvoConfig::basic(3, 2) } else { rhizome_cfg(k) };
        let mut g = StreamingGraph::new(
            ChipConfig::small_test(), rcfg, BfsAlgo::new(0), N).unwrap();
        stream_in_batches(&mut g, &muts, chunks);
        let oracle = bfs_levels(&DiGraph::from_edges(N, live.iter().copied()), 0);
        prop_assert_eq!(g.states(), oracle, "BFS vs rebuild over survivors");
        g.check_mirror_consistency().unwrap();
    }

    /// Post-churn SSSP equals Dijkstra over the survivors.
    #[test]
    fn churned_sssp_matches_rebuild_oracle(
        script in arb_script(),
        chunks in 1usize..5,
        ki in 0usize..3,
    ) {
        let k = [1usize, 2, 4][ki];
        let (muts, live) = materialize(&script);
        let rcfg = if k == 1 { RpvoConfig::basic(3, 2) } else { rhizome_cfg(k) };
        let mut g = StreamingGraph::new(
            ChipConfig::small_test(), rcfg, SsspAlgo::new(0), N).unwrap();
        stream_in_batches(&mut g, &muts, chunks);
        let oracle = dijkstra(&DiGraph::from_edges(N, live.iter().copied()), 0);
        prop_assert_eq!(g.states(), oracle, "SSSP vs rebuild over survivors");
        g.check_mirror_consistency().unwrap();
    }

    /// Post-churn CC over a *symmetrized* mutation stream equals min-labels
    /// over the surviving symmetric edges — deleting an undirected edge
    /// retracts both directions, so no stale reverse edge can hold a
    /// component together (the `symmetrize_mutations` regression property).
    #[test]
    fn churned_cc_matches_rebuild_oracle(
        script in arb_script(),
        chunks in 1usize..5,
        ki in 0usize..2,
    ) {
        let k = [1usize, 4][ki];
        let (muts, live) = materialize(&script);
        let sym_muts = symmetrize_mutations(&muts);
        let sym_live = symmetrize(&live);
        let rcfg = if k == 1 { RpvoConfig::basic(3, 2) } else { rhizome_cfg(k) };
        let mut g = StreamingGraph::new(
            ChipConfig::small_test(), rcfg, CcAlgo, N).unwrap();
        stream_in_batches(&mut g, &sym_muts, chunks);
        let oracle = min_labels(&DiGraph::from_edges(N, sym_live.iter().copied()));
        prop_assert_eq!(g.states(), oracle, "CC vs rebuild over symmetric survivors");
    }

    /// Conservation and capacity through churn: exactly the surviving copies
    /// are stored — per-vertex multisets match, nothing exceeds the edge
    /// cap, and the host ledger agrees with the fabric.
    #[test]
    fn churn_conserves_surviving_edges(
        script in arb_skewed_script(),
        chunks in 1usize..5,
    ) {
        let (muts, live) = materialize(&script);
        let mut g = StreamingGraph::new(
            ChipConfig::small_test(), rhizome_cfg(3), BfsAlgo::new(0), N).unwrap();
        stream_in_batches(&mut g, &muts, chunks);
        prop_assert_eq!(g.total_edges_stored(), live.len() as u64);
        prop_assert_eq!(g.live_edge_count(), live.len() as u64, "ledger agrees with fabric");
        for u in 0..N {
            let mut got = g.logical_edges(u);
            got.sort_unstable();
            let mut want: Vec<(u32, u32)> = live.iter()
                .filter(|&&(s, _, _)| s == u)
                .map(|&(_, d, w)| (d, w))
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "vertex {} surviving edge multiset", u);
            for a in g.rhizome_objects(u) {
                let obj = g.device().object(a).unwrap();
                prop_assert!(obj.edges.len() <= 3, "capacity respected after churn");
                prop_assert_eq!(obj.vid, u);
            }
        }
        g.check_mirror_consistency().unwrap();
    }

    /// Demotion invariant: at the end of every increment, any vertex whose
    /// live streamed degree sits below the threshold has exactly one root —
    /// cold rhizomes never survive a sweep. (The converse direction,
    /// promotion, is pinned by the skewed stream reliably heating vertex 0.)
    #[test]
    fn cold_vertices_end_single_rooted(
        script in arb_skewed_script(),
        chunks in 1usize..5,
    ) {
        let threshold = 6u32;
        let (muts, live) = materialize(&script);
        let mut g = StreamingGraph::new(
            ChipConfig::small_test(), rhizome_cfg(4), BfsAlgo::new(0), N).unwrap();
        stream_in_batches(&mut g, &muts, chunks);
        for v in 0..N {
            if g.roots_of(v).len() > 1 {
                prop_assert!(g.live_degree(v) >= threshold,
                    "vertex {} keeps {} roots at live degree {}",
                    v, g.roots_of(v).len(), g.live_degree(v));
            }
        }
        // And the graph is still exact after any demotions that fired.
        let oracle = bfs_levels(&DiGraph::from_edges(N, live.iter().copied()), 0);
        prop_assert_eq!(g.states(), oracle);
    }

    /// The whole mutation pipeline — deletions, repair, demotion — is
    /// reproducible and shard-count-independent, including cycle counts.
    #[test]
    fn churn_is_deterministic_and_shard_independent(
        script in arb_skewed_script(),
        chunks in 1usize..4,
    ) {
        let (muts, _) = materialize(&script);
        let run = |shards: usize| {
            let mut g = StreamingGraph::new(
                ChipConfig::small_test().with_shards(shards),
                rhizome_cfg(3), BfsAlgo::new(0), N).unwrap();
            let mut cycles = 0u64;
            for c in muts.chunks(muts.len().div_ceil(chunks).max(1)) {
                cycles += g.stream_increment(c).unwrap().cycles;
            }
            (g.states(), cycles, *g.device().chip().counters(),
             g.rhizome_stats(), g.demotion_count())
        };
        let reference = run(1);
        prop_assert_eq!(&reference, &run(1), "reproducible");
        prop_assert_eq!(&reference, &run(3), "shard-count independent");
    }
}

/// Directed-delete regression for symmetrized workloads: a directed delete
/// retracts exactly its own direction — the reverse edge stays stored (and
/// keeps working: a later re-add reconnects through it) — while deleting
/// via `symmetrize_mutations` retracts both directions, leaving no stale
/// reverse edge behind. This pins the semantics that make CC-over-churn
/// sound: label propagation is directed, so v2 falls back to its own label
/// either way, but only the symmetrized delete cleans up storage.
#[test]
fn directed_delete_keeps_reverse_edge_symmetrized_delete_removes_it() {
    let build = || {
        let mut g =
            StreamingGraph::new(ChipConfig::small_test(), RpvoConfig::basic(4, 2), CcAlgo, 6)
                .unwrap();
        g.stream_increment(&symmetrize_mutations(&GraphMutation::adds(&[(0, 1, 1), (1, 2, 1)])))
            .unwrap();
        g
    };
    // One direction retracted: 1→2 gone, but the reverse edge 2→1 survives
    // in storage. The inbound channel to 2 is cut, so its label reverts.
    let mut g = build();
    g.stream_increment(&[GraphMutation::DelEdge((1, 2, 1))]).unwrap();
    assert_eq!(g.logical_edges(1), vec![(0, 1)], "1→2 retracted, 1→0 kept");
    assert_eq!(g.logical_edges(2), vec![(1, 1)], "reverse edge 2→1 survives a directed delete");
    assert_eq!(g.states()[..3], [0, 0, 2], "no inbound edge: v2 reverts to its own label");
    // The surviving reverse edge is live, not stale: re-adding the forward
    // direction reconnects and v2 rejoins component 0.
    g.stream_increment(&[GraphMutation::AddEdge((1, 2, 1))]).unwrap();
    assert_eq!(g.states()[..3], [0, 0, 0], "re-added forward edge reconnects");
    // Both directions retracted: storage is clean, nothing stale remains.
    let mut g = build();
    g.stream_increment(&symmetrize_mutations(&[GraphMutation::DelEdge((1, 2, 1))])).unwrap();
    assert!(g.logical_edges(2).is_empty(), "no stale reverse edge after the pair delete");
    assert_eq!(g.logical_edges(1), vec![(0, 1)]);
    assert_eq!(g.states()[..3], [0, 0, 2], "component split once both directions are gone");
    g.check_mirror_consistency().unwrap();
}

/// Batch-split independence with mutations: applying the same mutation
/// sequence in one batch or many yields the same fixpoint and survivors.
#[test]
fn batch_split_is_immaterial_for_mutations() {
    let und: Vec<StreamEdge> = (0..12).map(|i| (i % 6, (i + 1) % 6, 1 + i % 3)).collect();
    let mut muts = GraphMutation::adds(&und);
    muts.push(GraphMutation::DelEdge(und[3]));
    muts.push(GraphMutation::DelEdge(und[7]));
    muts.push(GraphMutation::AddEdge((2, 4, 1)));
    muts.push(GraphMutation::DelEdge((2, 4, 1)));
    let run = |chunks: usize| {
        let mut g = StreamingGraph::new(
            ChipConfig::small_test(),
            RpvoConfig::basic(2, 2),
            BfsAlgo::new(0),
            6,
        )
        .unwrap();
        stream_in_batches(&mut g, &muts, chunks);
        (g.states(), g.total_edges_stored())
    };
    let whole = run(1);
    assert_eq!(whole, run(3));
    assert_eq!(whole, run(5));
    assert_eq!(whole.1, 10, "12 adds, 2 settled deletes, 1 annihilated pair");
}
