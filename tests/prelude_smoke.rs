//! Workspace smoke test: the umbrella crate's public API, end to end.
//!
//! Mirrors the quickstart of `src/lib.rs` — everything a new user touches
//! must be reachable through `amcca::prelude` alone: chip + RPVO config,
//! algorithm construction, streaming, and the run report.

use amcca::prelude::*;

#[test]
fn quickstart_path_through_prelude() {
    // A 32×32 chip, default RPVO shape, BFS rooted at vertex 0.
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(100)
        .chip(ChipConfig::default())
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();

    // Stream a path 0→1→…→99 and run the diffusion to quiescence.
    let edges: Vec<StreamEdge> = (0..99).map(|i| (i, i + 1, 1)).collect();
    let report = g.stream_edges(&edges).unwrap();
    assert_eq!(g.state_of(99), 99, "BFS level of the path's end");
    assert!(report.cycles > 0);
    assert!(report.energy_uj > 0.0, "energy model charged the run");

    // A second increment keeps the levels current (short-circuit the path).
    let report2 = g.stream_edges(&[(0, 99, 1)]).unwrap();
    assert_eq!(g.state_of(99), 1, "shortcut edge lowers the level");
    assert!(report2.cycles > 0);

    // The stream is dynamic: retract the shortcut and the repair diffusion
    // re-derives the level along the surviving path.
    let report3 = g.stream_increment(&[GraphMutation::DelEdge((0, 99, 1))]).unwrap();
    assert_eq!(g.state_of(99), 99, "deletion repaired back to the path level");
    assert!(report3.cycles > 0);
    assert_eq!(g.live_edge_count(), 99);

    // Mutation-aware symmetrize is reachable through the prelude too.
    let sym = symmetrize_mutations(&[GraphMutation::AddEdge((1, 2, 1))]);
    assert_eq!(sym.len(), 2);
}

#[test]
fn prelude_reaches_every_layer() {
    // gc_datasets: synthesize a small SBM workload and a streaming schedule.
    let d: StreamingDataset = GcPreset::v50k(Sampling::Edge).scaled_down(500).build();
    assert!(d.increments() > 0);
    assert!(d.total_edges() > 0);

    // amcca-sim + sdgp_core: run the first increment on a small chip.
    let cfg = ChipConfig::small_test();
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(d.n_vertices)
        .chip(cfg)
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    let report = g.stream_edges(d.increment(0)).unwrap();
    assert!(report.cycles > 0);

    // refgraph (re-exported at the crate root): oracle agrees on level 0.
    let oracle = amcca::refgraph::bfs_levels(
        &amcca::refgraph::DiGraph::from_edges(d.n_vertices, d.increment(0).iter().copied()),
        0,
    );
    assert_eq!(g.state_of(0), oracle[0], "root level matches the oracle");
}
