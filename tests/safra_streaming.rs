//! End-to-end streaming under the distributed terminator: the full paper
//! workflow (increments of an SBM stream driving dynamic BFS) must produce
//! identical results whether termination is detected by global quiescence
//! (the paper's simulator-level check) or by Safra's token ring — the token
//! merely costs extra cycles.

use amcca::prelude::*;
use gc_datasets::{edge_sampling, generate_sbm, SbmParams};
use refgraph::{bfs_levels, DiGraph};

fn stream_all(mode: TerminationMode) -> (Vec<u64>, u64) {
    let n = 300u32;
    let edges = generate_sbm(&SbmParams::scaled(n, 3000, 64));
    let d = edge_sampling(n, edges, 5, 2);
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(n)
        .chip(ChipConfig::default())
        .rpvo(RpvoConfig::basic(8, 2))
        .build()
        .unwrap();
    g.set_termination_mode(mode);
    let mut cycles = 0;
    for i in 0..d.increments() {
        cycles += g.stream_edges(d.increment(i)).unwrap().cycles;
    }
    (g.states(), cycles)
}

#[test]
fn safra_streaming_matches_quiescence_and_reference() {
    let (sq, cq) = stream_all(TerminationMode::Quiescence);
    let (ss, cs) = stream_all(TerminationMode::SafraToken);
    assert_eq!(sq, ss, "identical BFS levels under both terminators");
    assert!(cs > cq, "token detection lags quiescence: {cs} <= {cq}");
    // And both match the oracle.
    let edges = generate_sbm(&SbmParams::scaled(300, 3000, 64));
    let reference = bfs_levels(&DiGraph::from_edges(300, edges.iter().copied()), 0);
    assert_eq!(sq, reference);
}

#[test]
fn safra_detection_overhead_is_bounded() {
    // The token needs O(ring length) cycles per probe round; with 1024
    // cells and 5 increments the total overhead must stay within a small
    // multiple of 5 × 2 rounds × ~3 cycles/position.
    let (_, cq) = stream_all(TerminationMode::Quiescence);
    let (_, cs) = stream_all(TerminationMode::SafraToken);
    let overhead = cs - cq;
    let bound = 5 * 4 * 3 * 1024 + 5 * 4096; // generous: ≤4 rounds/increment
    assert!(
        overhead < bound as u64,
        "token overhead {overhead} cycles exceeds plausible bound {bound}"
    );
}
