//! Property-based tests of the core invariants:
//!
//! 1. **Order independence** — streamed dynamic BFS converges to the exact
//!    static BFS levels for ANY edge set, ANY stream order, ANY increment
//!    split (monotone relaxation fixpoint).
//! 2. **Conservation** — every streamed edge is stored exactly once, no
//!    matter how the RPVO spills.
//! 3. **Mirror convergence** — at quiescence every ghost's state equals its
//!    root's state.
//! 4. **Capacity** — no object ever exceeds the configured edge capacity.

use amcca::prelude::*;
use proptest::prelude::*;
use refgraph::{bfs_levels, dijkstra, DiGraph};
use sdgp_core::rpvo::walk;

const N: u32 = 24;

fn arb_edges() -> impl Strategy<Value = Vec<StreamEdge>> {
    prop::collection::vec((0..N, 0..N, 1u32..10), 1..120)
        .prop_map(|es| es.into_iter().filter(|&(u, v, _)| u != v).collect())
}

fn arb_rpvo() -> impl Strategy<Value = RpvoConfig> {
    (1usize..6, 1usize..4)
        .prop_map(|(edge_cap, ghost_fanout)| RpvoConfig::basic(edge_cap, ghost_fanout))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn bfs_matches_reference_for_any_stream(
        edges in arb_edges(),
        rcfg in arb_rpvo(),
        seed in 0u64..1000,
    ) {
        let cfg = ChipConfig { seed, ..ChipConfig::small_test() };
        let mut g = StreamingGraph::builder(BfsAlgo::new(0)).vertices(N).chip(cfg).rpvo(rcfg).build().unwrap();
        g.stream_edges(&edges).unwrap();
        let reference = bfs_levels(&DiGraph::from_edges(N, edges.iter().copied()), 0);
        prop_assert_eq!(g.states(), reference);
    }

    #[test]
    fn increment_split_is_immaterial(
        edges in arb_edges(),
        split in 0usize..120,
    ) {
        let cut = split.min(edges.len());
        let mut g1 = StreamingGraph::builder(BfsAlgo::new(0)).vertices(N).chip(ChipConfig::small_test()).rpvo(RpvoConfig::default()).build().unwrap();
        g1.stream_edges(&edges).unwrap();
        let mut g2 = StreamingGraph::builder(BfsAlgo::new(0)).vertices(N).chip(ChipConfig::small_test()).rpvo(RpvoConfig::default()).build().unwrap();
        g2.stream_edges(&edges[..cut]).unwrap();
        g2.stream_edges(&edges[cut..]).unwrap();
        prop_assert_eq!(g1.states(), g2.states());
    }

    #[test]
    fn every_edge_stored_exactly_once(
        edges in arb_edges(),
        rcfg in arb_rpvo(),
    ) {
        let mut g = StreamingGraph::builder(BfsAlgo::new(0)).vertices(N).chip(ChipConfig::small_test()).rpvo(rcfg).build().unwrap();
        g.stream_edges(&edges).unwrap();
        prop_assert_eq!(g.total_edges_stored(), edges.len() as u64);
        // Per-vertex multiset check.
        for u in 0..N {
            let mut got = g.logical_edges(u);
            got.sort_unstable();
            let mut want: Vec<(u32, u32)> = edges.iter()
                .filter(|&&(s, _, _)| s == u)
                .map(|&(_, d, w)| (d, w))
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "vertex {} edge multiset", u);
        }
    }

    #[test]
    fn mirrors_converge_and_capacity_holds(
        edges in arb_edges(),
        rcfg in arb_rpvo(),
    ) {
        let mut g = StreamingGraph::builder(BfsAlgo::new(0)).vertices(N).chip(ChipConfig::small_test()).rpvo(rcfg).build().unwrap();
        g.stream_edges(&edges).unwrap();
        prop_assert!(g.check_mirror_consistency().is_ok());
        for v in 0..N {
            for (i, a) in g.rpvo_objects(v).into_iter().enumerate() {
                let obj = g.device().object(a).unwrap();
                prop_assert!(obj.edges.len() <= rcfg.edge_cap,
                    "object {} holds {} edges, cap {}", a, obj.edges.len(), rcfg.edge_cap);
                prop_assert_eq!(obj.vid, v, "ghost belongs to its logical vertex");
                prop_assert_eq!(obj.is_root(), i == 0, "exactly the first walked object is the root");
                prop_assert_eq!(obj.ghosts.len(), rcfg.ghost_fanout, "fanout uniform across hierarchy");
            }
        }
    }

    #[test]
    fn sssp_matches_dijkstra_for_any_stream(
        edges in arb_edges(),
        rcfg in arb_rpvo(),
    ) {
        let mut g = StreamingGraph::builder(SsspAlgo::new(0)).vertices(N).chip(ChipConfig::small_test()).rpvo(rcfg).build().unwrap();
        g.stream_edges(&edges).unwrap();
        let reference = dijkstra(&DiGraph::from_edges(N, edges.iter().copied()), 0);
        prop_assert_eq!(g.states(), reference);
    }

    #[test]
    fn future_lco_never_loses_waiters(
        edges in arb_edges(),
    ) {
        // Tight capacity maximizes pending-future churn; conservation of
        // edges (checked here end-to-end) implies no waiter was dropped.
        let rcfg = RpvoConfig::basic(1, 1);
        let mut g = StreamingGraph::builder(BfsAlgo::new(0)).vertices(N).chip(ChipConfig::small_test()).rpvo(rcfg).build().unwrap();
        g.stream_edges(&edges).unwrap();
        prop_assert_eq!(g.total_edges_stored(), edges.len() as u64);
        // With fanout 1 and cap 1 the RPVO degenerates to a chain whose
        // length equals the vertex's degree: the worst case for futures.
        for u in 0..N {
            let deg = edges.iter().filter(|&&(s, _, _)| s == u).count();
            let objs = g.rpvo_objects(u);
            prop_assert!(objs.len() >= deg, "chain of {} for degree {}", objs.len(), deg);
        }
    }
}

/// Host-side invariant: the RPVO walk sees exactly the objects the chip has.
#[test]
fn walk_covers_all_allocated_objects() {
    let edges: Vec<StreamEdge> = (1..20).map(|v| (0, v, 1)).collect();
    let rcfg = RpvoConfig::basic(2, 2);
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(20)
        .chip(ChipConfig::small_test())
        .rpvo(rcfg)
        .build()
        .unwrap();
    g.stream_edges(&edges).unwrap();
    let mut walked = 0usize;
    for v in 0..20 {
        walked += walk::collect_objects(g.addr_of(v), |a| g.device().object(a)).len();
    }
    let mut on_chip = 0usize;
    g.device().chip().for_each_object(|_, _| on_chip += 1);
    assert_eq!(walked, on_chip, "no orphaned objects");
}
