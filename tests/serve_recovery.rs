//! Crash/recovery property test for the serving pipeline, pinned to the
//! shared differential harness (`tests/common/oracle.rs`): for ANY mutation
//! script, ANY batch split, a checkpoint at ANY batch index and a crash at
//! ANY later one, restoring the store and replaying the surviving batches
//! must land on states **bit-identical** to an uninterrupted run — and to a
//! from-scratch rebuild over the surviving edge set. The WAL tail replayed
//! at boot must be exactly the batches persisted after the checkpoint,
//! never the whole history.

mod common;

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use amcca::prelude::*;
use amcca_serve::server::IngestCore;
use common::oracle::{surviving_edges, N};
use proptest::prelude::*;

fn tmp_dir() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "amcca-serve-prop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn builder(k: usize) -> sdgp_core::GraphBuilder<BfsAlgo> {
    let base = RpvoConfig::basic(3, 2);
    StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(N)
        .chip(ChipConfig::small_test())
        .rpvo(if k <= 1 { base } else { base.with_rhizomes(6, k) })
        // Tracing stays on through every crash/recovery script: the
        // observability layer is pure observation and must not perturb
        // the bit-identical-fixpoint guarantees this test pins.
        .obs(Obs::enabled())
}

/// Raw steps: `(u, v, w, op, pick)` with `op % 3` selecting add / delete /
/// re-weight; deletes and updates pick a live target by rotating `pick`, so
/// every script is valid by construction.
fn arb_script() -> impl Strategy<Value = Vec<(u32, u32, u32, u8, u8)>> {
    prop::collection::vec((0..N, 0..N, 1u32..10, any::<u8>(), any::<u8>()), 1..120)
}

fn materialize(script: &[(u32, u32, u32, u8, u8)]) -> Vec<GraphMutation> {
    let mut muts = Vec::with_capacity(script.len());
    let mut live: Vec<StreamEdge> = Vec::new();
    for &(u, v, w, op, pick) in script {
        match op % 3 {
            1 if !live.is_empty() => {
                let e = live.remove(pick as usize % live.len());
                muts.push(GraphMutation::DelEdge(e));
            }
            2 if !live.is_empty() => {
                let i = pick as usize % live.len();
                let (lu, lv, _) = live[i];
                live[i].2 = w;
                muts.push(GraphMutation::UpdateWeight { u: lu, v: lv, w });
            }
            _ if u != v => {
                live.push((u, v, w));
                muts.push(GraphMutation::AddEdge((u, v, w)));
            }
            _ => {}
        }
    }
    muts
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn crash_recovery_is_bit_identical_to_an_uninterrupted_run(
        script in arb_script(),
        chunks in 1usize..6,
        ck_pick in any::<u8>(),
        crash_pick in any::<u8>(),
        k in 1usize..3,
    ) {
        let muts = materialize(&script);
        prop_assume!(!muts.is_empty());
        let batches: Vec<&[GraphMutation]> =
            muts.chunks(muts.len().div_ceil(chunks).max(1)).collect();
        // Checkpoint after batch `ck`, crash after batch `crash` >= ck.
        let ck = ck_pick as usize % batches.len();
        let crash = ck + crash_pick as usize % (batches.len() - ck);

        let dir = tmp_dir();

        // Phase 1: serve until the crash point. Every applied batch is in
        // the WAL before its increment runs, so dropping the core cold
        // loses nothing that was acknowledged.
        let mut persisted_after_ck = 0usize;
        {
            let (mut core, boot) = IngestCore::boot(builder(k), &dir, 0).unwrap();
            prop_assert!(!boot.recovered);
            for (i, batch) in batches.iter().take(crash + 1).enumerate() {
                core.submit(batch).unwrap();
                if core.flush().unwrap() && i > ck {
                    persisted_after_ck += 1;
                }
                if i == ck {
                    core.checkpoint().unwrap();
                    persisted_after_ck = 0;
                }
            }
            // Crash: the core is dropped with no shutdown flush.
        }

        // Phase 2: recover — tail-only replay — and finish the stream.
        let (mut core, boot) = IngestCore::boot(builder(k), &dir, 0).unwrap();
        prop_assert!(boot.recovered);
        prop_assert_eq!(
            boot.tail_batches, persisted_after_ck,
            "boot must replay exactly the post-checkpoint tail"
        );
        for batch in batches.iter().skip(crash + 1) {
            core.submit(batch).unwrap();
            core.flush().unwrap();
        }

        // Uninterrupted run over the same batches, same shape.
        let mut un = builder(k).build().unwrap();
        for batch in &batches {
            un.stream_increment(batch).unwrap();
        }
        prop_assert_eq!(core.sync_values(), un.sync_values(), "recovered vs uninterrupted");

        // And both equal a from-scratch rebuild over the survivors.
        let mut rebuilt = builder(k).build().unwrap();
        rebuilt.stream_edges(&surviving_edges(&muts)).unwrap();
        prop_assert_eq!(core.sync_values(), rebuilt.sync_values(), "recovered vs rebuild");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
