//! Observability-equivalence property test: instrumentation must not
//! perturb results. For ANY mutation script and ANY batch split, a run
//! with tracing fully on (registry + JSONL span sink) and a run with the
//! disabled handle must land on **bit-identical** fixpoints, with equal
//! simulated cycle counts per batch — the observability layer only reads
//! clocks and bumps counters, it never touches the simulated machine.
//!
//! The enabled run's side of the bargain is checked too: the registry must
//! actually have seen every increment, and every trace line must carry the
//! span schema (`ts_us`, `span`, `batch`, `muts`, `dur_us`) that
//! `obs_check` and `docs/OBSERVABILITY.md` promise.

use std::sync::{Arc, Mutex};

use amcca::prelude::*;
use amcca_obs::json;
use proptest::prelude::*;

const N: u32 = 24;

/// A `Write` sink that appends into a shared buffer the test can read back.
#[derive(Clone, Default)]
struct BufSink(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for BufSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn builder(obs: Obs) -> sdgp_core::GraphBuilder<BfsAlgo> {
    StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(N)
        .chip(ChipConfig::small_test())
        .rpvo(RpvoConfig::basic(3, 2).with_rhizomes(6, 2))
        .obs(obs)
}

/// Raw steps: `(u, v, w, op, pick)` with `op % 3` selecting add / delete /
/// re-weight; deletes and updates pick a live target by rotating `pick`,
/// so every script is valid by construction.
fn arb_script() -> impl Strategy<Value = Vec<(u32, u32, u32, u8, u8)>> {
    prop::collection::vec((0..N, 0..N, 1u32..10, any::<u8>(), any::<u8>()), 1..100)
}

fn materialize(script: &[(u32, u32, u32, u8, u8)]) -> Vec<GraphMutation> {
    let mut muts = Vec::with_capacity(script.len());
    let mut live: Vec<StreamEdge> = Vec::new();
    for &(u, v, w, op, pick) in script {
        match op % 3 {
            1 if !live.is_empty() => {
                let e = live.remove(pick as usize % live.len());
                muts.push(GraphMutation::DelEdge(e));
            }
            2 if !live.is_empty() => {
                let i = pick as usize % live.len();
                let (lu, lv, _) = live[i];
                live[i].2 = w;
                muts.push(GraphMutation::UpdateWeight { u: lu, v: lv, w });
            }
            _ if u != v => {
                live.push((u, v, w));
                muts.push(GraphMutation::AddEdge((u, v, w)));
            }
            _ => {}
        }
    }
    muts
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn tracing_on_and_off_reach_bit_identical_fixpoints(
        script in arb_script(),
        chunks in 1usize..6,
    ) {
        let muts = materialize(&script);
        prop_assume!(!muts.is_empty());
        let batches: Vec<&[GraphMutation]> =
            muts.chunks(muts.len().div_ceil(chunks).max(1)).collect();

        let sink = BufSink::default();
        let obs = Obs::with_sink(Box::new(sink.clone()));
        let mut traced = builder(obs.clone()).build().unwrap();
        let mut plain = builder(Obs::disabled()).build().unwrap();

        for (i, batch) in batches.iter().enumerate() {
            let rt = traced.stream_increment(batch).unwrap();
            let rp = plain.stream_increment(batch).unwrap();
            prop_assert_eq!(
                rt.cycles, rp.cycles,
                "batch {}: simulated cycles must not depend on tracing", i
            );
            prop_assert_eq!(
                traced.sync_values(), plain.sync_values(),
                "batch {}: fixpoints diverged under tracing", i
            );
        }

        // The instrumented run really was instrumented...
        let snap = obs.snapshot();
        prop_assert_eq!(snap.counter("graph.increments"), batches.len() as u64);
        prop_assert_eq!(snap.counter("graph.mutations"), muts.len() as u64);
        let structural = snap.hist("span.structural_ns").expect("structural histogram");
        prop_assert!(structural.count >= batches.len() as u64);

        // ...and every trace line it emitted carries the span schema.
        obs.flush().unwrap();
        let raw = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(raw).expect("trace is UTF-8");
        let mut lines = 0u64;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let v = json::parse(line).expect("trace line parses");
            for field in ["ts_us", "batch", "muts", "dur_us"] {
                prop_assert!(
                    v.get(field).and_then(json::Json::as_num).is_some(),
                    "span line missing {}: {}", field, line
                );
            }
            prop_assert!(
                v.get("span").and_then(json::Json::as_str).is_some_and(|s| !s.is_empty()),
                "span line missing name: {}", line
            );
            lines += 1;
        }
        prop_assert!(lines >= batches.len() as u64, "at least one span per batch");
    }
}
