//! Vicinity vs Random ghost allocation (paper Fig. 5): both must be
//! *correct*; they differ in where ghosts land and what that costs.

use amcca::prelude::*;
use gc_datasets::{generate_sbm, SbmParams};
use refgraph::{bfs_levels, DiGraph};

fn run_with(placement: GhostPlacement) -> (Vec<u64>, f64, u64, f64) {
    let cfg = ChipConfig { ghost_placement: placement, ..ChipConfig::default() };
    let n = 400u32;
    let edges = generate_sbm(&SbmParams::scaled(n, 6000, 13));
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(n)
        .chip(cfg)
        .rpvo(RpvoConfig::basic(4, 2)) // plenty of ghosts
        .build()
        .unwrap();
    let report = g.stream_edges(&edges).unwrap();
    let (count, avg) = g.ghost_distance_stats();
    assert!(count > 100, "this workload must create many ghosts, got {count}");
    (g.states(), avg, report.cycles, report.energy_uj)
}

#[test]
fn both_policies_compute_identical_bfs() {
    let (lv, _, _, _) = run_with(GhostPlacement::Vicinity { max_hops: 2 });
    let (lr, _, _, _) = run_with(GhostPlacement::Random);
    assert_eq!(lv, lr, "placement must not affect results");
    let edges = generate_sbm(&SbmParams::scaled(400, 6000, 13));
    let reference = bfs_levels(&DiGraph::from_edges(400, edges.iter().copied()), 0);
    assert_eq!(lv, reference);
}

#[test]
fn vicinity_keeps_ghosts_close_random_does_not() {
    let (_, avg_vicinity, _, _) = run_with(GhostPlacement::Vicinity { max_hops: 2 });
    let (_, avg_random, _, _) = run_with(GhostPlacement::Random);
    assert!(avg_vicinity <= 2.0, "vicinity allocator bound: {avg_vicinity}");
    // Mean link distance on a 32×32 mesh under uniform placement is ~21.
    assert!(avg_random > 8.0, "random allocator should scatter: {avg_random}");
    assert!(avg_random > 3.0 * avg_vicinity);
}

#[test]
fn vicinity_spends_less_energy_on_intra_vertex_traffic() {
    let (_, _, _, e_vicinity) = run_with(GhostPlacement::Vicinity { max_hops: 2 });
    let (_, _, _, e_random) = run_with(GhostPlacement::Random);
    // Ghost-bound operons (spilled inserts, mirror syncs, ghost forwards)
    // travel further under random placement; vicinity must not lose.
    assert!(
        e_vicinity <= e_random,
        "vicinity {e_vicinity:.1}µJ should not exceed random {e_random:.1}µJ"
    );
}

#[test]
fn wider_vicinity_still_bounded() {
    let (_, avg, _, _) = run_with(GhostPlacement::Vicinity { max_hops: 4 });
    assert!(avg <= 4.0, "max_hops=4 bound: {avg}");
}
