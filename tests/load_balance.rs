//! Load-balancing invariants: deterministic work stealing and hot-object
//! migration must be invisible to every simulation result.
//!
//! The sharded engine's strict bit-identity contract extends to both
//! balancing mechanisms: stealing only changes which worker executes a row,
//! and migration is untimed host-side placement, so for ANY mutation
//! sequence the converged states, cycle counts, and conservation invariants
//! must be identical across shard counts (K ∈ {1, 2, 4}), with stealing on
//! or off, and with migration on or off — pinned here through the shared
//! differential harness (`tests/common/oracle.rs`) plus direct cycle-count
//! comparisons. What balancing IS allowed to change (which column a hot
//! root lives in, wall-clock spread) is asserted positively: the skewed
//! schedules below actually trigger moves.

mod common;

use amcca::prelude::*;
use common::oracle::{Rebuild, ALL_ALGOS, N};
use proptest::prelude::*;

/// Chip for direct runs: every cycle on the sharded engine (adaptive off)
/// with a break-even low enough that the steal scheduler can clear it.
fn chip(shards: usize, steal: bool) -> ChipConfig {
    ChipConfig { adaptive_shards: false, shard_break_even: 4, ..ChipConfig::small_test() }
        .with_shards(shards)
        .with_work_stealing(steal)
}

/// Column-skewed churn: hubs 0, 8, and 16 all share mesh column 0 under
/// round-robin placement on the 8 × 8 test chip, each staying below the
/// harness promotion threshold, with a delete tail that shifts the load.
fn skewed_batches() -> Vec<Vec<GraphMutation>> {
    use GraphMutation::{AddEdge, DelEdge};
    let fan = |hub: u32, vs: std::ops::Range<u32>| -> Vec<GraphMutation> {
        vs.map(|v| AddEdge((hub, v, 1))).collect()
    };
    let mut b2 = fan(8, 9..14);
    b2.push(DelEdge((0, 1, 1)));
    let mut b3 = fan(16, 17..22);
    b3.extend([DelEdge((8, 9, 1)), AddEdge((0, 1, 2)), AddEdge((1, 8, 1))]);
    vec![fan(0, 1..6), b2, b3]
}

/// Stream the skewed batches and return (final states, per-batch cycles,
/// total migrations).
fn run(shards: usize, steal: bool, migrate: bool) -> (Vec<u64>, Vec<u64>, u64) {
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(N)
        .chip(chip(shards, steal))
        .rpvo(RpvoConfig::basic(3, 2))
        .migrate_hot(migrate)
        .build()
        .unwrap();
    let mut cycles = Vec::new();
    let mut moves = 0;
    for b in skewed_batches() {
        let r = g.stream_increment(&b).unwrap();
        cycles.push(r.cycles);
        moves += r.migrations;
    }
    (g.states(), cycles, moves)
}

/// Migration decisions are a pure function of the host directory, so runs
/// at any shard count — and with stealing on or off — produce identical
/// states, identical per-batch cycle counts, and identical move counts.
/// The schedule is skewed enough that moves actually happen.
#[test]
fn balancing_is_shard_count_independent() {
    let reference = run(1, false, true);
    assert!(reference.2 > 0, "the skewed schedule must trigger migrations");
    for shards in [2usize, 4] {
        for steal in [false, true] {
            let got = run(shards, steal, true);
            assert_eq!(reference, got, "shards={shards} steal={steal} diverged");
        }
    }
}

/// Migration never changes the fixpoint — only where roots live and how
/// later increments' cycles are spent. States must match the migration-off
/// run; cycle counts may legitimately differ (placement is timed work).
#[test]
fn migration_preserves_fixpoints() {
    let with = run(4, true, true);
    let without = run(4, true, false);
    assert_eq!(with.0, without.0, "fixpoint must not depend on migration");
    assert_eq!(without.2, 0, "knob off: no moves");
}

/// A mutation script over hub-skewed endpoints, with every delete valid by
/// construction (same shape as `tests/mutation_equivalence.rs`).
fn materialize(script: &[(u32, u32, u32, bool, u8)]) -> Vec<GraphMutation> {
    let mut muts = Vec::with_capacity(script.len());
    let mut live: Vec<StreamEdge> = Vec::new();
    for &(u, v, w, del, pick) in script {
        if del && !live.is_empty() {
            let e = live.remove(pick as usize % live.len());
            muts.push(GraphMutation::DelEdge(e));
        } else if u != v {
            live.push((u, v, w));
            muts.push(GraphMutation::AddEdge((u, v, w)));
        }
    }
    muts
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The full differential harness holds with migration enabled: for any
    /// hub-skewed mutation sequence, any shard count, single-root or
    /// rhizome RPVOs, the migrated run's fixpoints equal a from-scratch
    /// rebuild over the survivors, conservation and mirror invariants hold,
    /// and cold rhizomes are demoted.
    #[test]
    fn migrated_fixpoints_match_rebuild_oracle(
        script in prop::collection::vec((0..N, 0..N, 1u32..10, any::<bool>(), any::<u8>()), 1..80),
        si in 0usize..3,
        k in 1usize..3,
    ) {
        let shards = [1usize, 2, 4][si];
        let mut script = script;
        for (i, step) in script.iter_mut().enumerate() {
            if i % 3 == 0 {
                step.0 %= 3; // bias sources onto a few shared columns
            }
        }
        let muts = materialize(&script);
        let r = Rebuild::new(k, shards).chunks(3).migrate(true);
        for algo in ALL_ALGOS {
            r.check(algo, &muts);
        }
    }
}
