//! End-to-end verification of streaming dynamic BFS against the reference
//! oracle, mirroring the paper's methodology: "We verify the results for
//! correctness against known results found using NetworkX" (§4).
//!
//! After *every* streaming increment the chip quiesces and the BFS level of
//! every vertex must equal a fresh sequential BFS over the accumulated edge
//! set — the defining property of incremental recomputation.

use amcca::prelude::*;
use gc_datasets::{edge_sampling, generate_sbm, snowball_sampling};
use refgraph::{bfs_levels, DiGraph};

fn verify_schedule(dataset: &StreamingDataset, cfg: ChipConfig) {
    let n = dataset.n_vertices;
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(n)
        .chip(cfg)
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    let mut accumulated: Vec<StreamEdge> = Vec::new();
    for i in 0..dataset.increments() {
        let inc = dataset.increment(i);
        let report = g.stream_edges(inc).unwrap();
        assert!(report.cycles > 0, "increment {i} must consume cycles");
        accumulated.extend_from_slice(inc);
        let reference = bfs_levels(&DiGraph::from_edges(n, accumulated.iter().copied()), 0);
        let got = g.states();
        for v in 0..n as usize {
            assert_eq!(
                got[v], reference[v],
                "vertex {v} level mismatch after increment {i}: chip={} ref={}",
                got[v], reference[v]
            );
        }
    }
    assert_eq!(g.total_edges_stored(), accumulated.len() as u64, "every edge stored once");
    g.check_mirror_consistency().unwrap();
}

#[test]
fn edge_sampled_sbm_matches_reference_every_increment() {
    let edges = generate_sbm(&SbmParams::scaled(800, 8000, 21));
    let d = edge_sampling(800, edges, 10, 3);
    verify_schedule(&d, ChipConfig::default());
}

#[test]
fn snowball_sampled_sbm_matches_reference_every_increment() {
    let edges = generate_sbm(&SbmParams::scaled(800, 8000, 22));
    let d = snowball_sampling(800, edges, 10, 0);
    verify_schedule(&d, ChipConfig::default());
}

#[test]
fn heavy_hub_spills_deep_and_stays_correct() {
    // A hub with degree ≫ edge_cap exercises recursive ghost spills under
    // BFS traffic; tight capacity stresses the future queues.
    let n = 200u32;
    let cfg = ChipConfig::small_test();
    let rcfg = RpvoConfig::basic(2, 2);
    let mut g =
        StreamingGraph::builder(BfsAlgo::new(0)).vertices(n).chip(cfg).rpvo(rcfg).build().unwrap();
    let mut edges: Vec<StreamEdge> = (1..n).map(|v| (0, v, 1)).collect();
    // And a back-path so relaxes flow through the spilled structure.
    edges.extend((1..n - 1).map(|v| (v, v + 1, 1)));
    g.stream_edges(&edges).unwrap();
    let reference = bfs_levels(&DiGraph::from_edges(n, edges.iter().copied()), 0);
    assert_eq!(g.states(), reference);
    assert!(g.rpvo_objects(0).len() >= (n as usize - 1) / 2, "hub must have spilled");
    g.check_mirror_consistency().unwrap();
}

#[test]
fn edges_into_the_root_update_it_live() {
    // Edges pointing AT the BFS root must never change its level; edges out
    // of unreached vertices stay silent until the vertex is reached.
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(8)
        .chip(ChipConfig::small_test())
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    g.stream_edges(&[(3, 0, 1), (3, 4, 1)]).unwrap();
    assert_eq!(g.state_of(0), 0);
    assert_eq!(g.state_of(3), MAX_LEVEL);
    assert_eq!(g.state_of(4), MAX_LEVEL);
    // Now reach 3: its previously inserted out-edges must fire.
    g.stream_edges(&[(0, 3, 1)]).unwrap();
    assert_eq!(g.state_of(3), 1);
    assert_eq!(g.state_of(4), 2);
}

#[test]
fn duplicate_and_cyclic_edges_converge() {
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(6)
        .chip(ChipConfig::small_test())
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    // Parallel edges, a 2-cycle, and a self-reinforcing triangle.
    let edges = vec![
        (0, 1, 1),
        (0, 1, 1),
        (1, 0, 1),
        (1, 2, 1),
        (2, 1, 1),
        (2, 3, 1),
        (3, 2, 1),
        (3, 0, 1),
    ];
    g.stream_edges(&edges).unwrap();
    let reference = bfs_levels(&DiGraph::from_edges(6, edges.iter().copied()), 0);
    assert_eq!(g.states(), reference);
}

#[test]
fn ingestion_only_mode_inserts_without_bfs() {
    let edges = generate_sbm(&SbmParams::scaled(400, 4000, 9));
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(400)
        .chip(ChipConfig::default())
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    g.set_algo_propagation(false);
    let report = g.stream_edges(&edges).unwrap();
    assert_eq!(g.total_edges_stored(), 4000);
    // No BFS action ever ran: every non-root level is still MAX.
    for v in 1..400 {
        assert_eq!(g.state_of(v), MAX_LEVEL);
    }
    // Re-enable propagation. A vertex's stored edges re-fire whenever its
    // level *improves* — but the root's level (0) never improves, so its
    // silently-ingested out-edges must be re-announced to start the wave.
    // Everything downstream then catches up through relax diffusion alone.
    g.set_algo_propagation(true);
    let root_edges: Vec<StreamEdge> = edges.iter().copied().filter(|&(u, _, _)| u == 0).collect();
    assert!(!root_edges.is_empty(), "SBM graph should give the root out-edges");
    g.stream_edges(&root_edges).unwrap();
    let mut all: Vec<StreamEdge> = edges.clone();
    all.extend_from_slice(&root_edges); // duplicates do not change BFS levels
    let reference = bfs_levels(&DiGraph::from_edges(400, all.iter().copied()), 0);
    assert_eq!(g.states(), reference, "late BFS catches up over ingested graph");
    let _ = report;
}
