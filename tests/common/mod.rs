//! Shared helpers for the integration-test crates (not itself a test
//! binary; each test file pulls this in with `mod common;`).

// Each test crate compiles this module independently and uses a different
// slice of the harness; the unused remainder is not dead code.
#[allow(dead_code)]
pub mod oracle;
