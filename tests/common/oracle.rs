//! The shared differential-testing harness: rebuild-from-scratch oracles
//! for the streaming mutation pipeline.
//!
//! Every decremental / re-weighting repair path in the system is pinned by
//! one property: after ANY mutation sequence — any interleaving of
//! `AddEdge` / `DelEdge` / `UpdateWeight`, any batch split, any RPVO shape,
//! rhizomes on or off, any shard count, either repair mode — the converged
//! vertex states are **identical to rebuilding from scratch over the
//! surviving edge set**, every surviving copy is stored exactly once at its
//! current weight, all mirrors agree, and cold rhizomes are demoted.
//! [`assert_matches_rebuild`] checks all of that in one call; [`Rebuild`] is
//! the builder behind it for tests that need a non-default shape (chip seed,
//! batch split, explicit `RpvoConfig`, full-wave repair) or the streamed
//! graph back for extra assertions.

use amcca::prelude::*;
use refgraph::{bfs_levels, dijkstra, min_labels, DiGraph};
use sdgp_core::apps::VertexAlgo;

/// Default vertex count of harness graphs (kept small: diffusion tests are
/// cycle-accurate simulations).
pub const N: u32 = 24;

/// Which algorithm(s) a differential check runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Streaming BFS vs `refgraph::bfs_levels` from vertex 0.
    Bfs,
    /// Streaming SSSP vs `refgraph::dijkstra` from vertex 0.
    Sssp,
    /// Streaming CC (over the symmetrized stream) vs `refgraph::min_labels`.
    Cc,
}

/// All three differential algorithms.
pub const ALL_ALGOS: [Algo; 3] = [Algo::Bfs, Algo::Sssp, Algo::Cc];

/// Replay a mutation sequence under the host ledger's semantics and return
/// the surviving edge multiset at current weights, in insertion order: a
/// delete removes the *oldest* live copy of its `(u, v, w)` identity, an
/// update re-weights the *oldest* live copy of its pair.
pub fn surviving_edges(muts: &[GraphMutation]) -> Vec<StreamEdge> {
    surviving_labeled_edges(muts).into_iter().map(|(e, _)| e).collect()
}

/// [`surviving_edges`] with per-copy labels: labeled inserts keep their
/// label through re-weights, and deletes stay label-agnostic (they name a
/// copy by `(u, v, w)` alone) — the same semantics the host ledger applies.
/// The ground truth a standing-query oracle runs over.
pub fn surviving_labeled_edges(muts: &[GraphMutation]) -> Vec<(StreamEdge, u8)> {
    let mut live: Vec<(StreamEdge, u8)> = Vec::new();
    for m in muts {
        match *m {
            GraphMutation::AddEdge(e) => live.push((e, 0)),
            GraphMutation::AddLabeledEdge(e, l) => live.push((e, l)),
            GraphMutation::DelEdge((u, v, w)) => {
                let i = live
                    .iter()
                    .position(|&(e, _)| e == (u, v, w))
                    .expect("script deletes only live edges");
                live.remove(i);
            }
            GraphMutation::UpdateWeight { u, v, w } => {
                let i = live
                    .iter()
                    .position(|&((a, b, _), _)| (a, b) == (u, v))
                    .expect("script updates only live pairs");
                live[i].0 .2 = w;
            }
        }
    }
    live
}

/// One differential check's shape. Build with [`Rebuild::new`], refine with
/// the builder methods, run with [`Rebuild::check`] (or the per-algorithm
/// variants when the streamed graph is needed for extra assertions).
#[derive(Debug, Clone, Copy)]
pub struct Rebuild {
    /// Vertex count.
    pub n: u32,
    /// Number of batches the mutation sequence is split into (boundaries
    /// are arbitrary — splits must not change the fixpoint).
    pub chunks: usize,
    /// Chip shard count (results must be shard-count-independent).
    pub shards: usize,
    /// Chip placement seed.
    pub seed: u64,
    /// RPVO shape (edge cap, ghost fanout, rhizome threshold and K).
    pub rcfg: RpvoConfig,
    /// Reseed scoping of delete-bearing batches.
    pub repair: RepairMode,
    /// Post-increment hot-object migration (results must be identical with
    /// it on or off, and independent of the shard count either way).
    pub migrate: bool,
}

impl Rebuild {
    /// The harness default: 24 vertices, one batch, cap-3 RPVOs, targeted
    /// repair; `k <= 1` is the single-root reference, `k >= 2` promotes at
    /// live degree 6 into `k` co-equal roots.
    pub fn new(k: usize, shards: usize) -> Rebuild {
        let base = RpvoConfig::basic(3, 2);
        Rebuild {
            n: N,
            chunks: 1,
            shards,
            seed: ChipConfig::small_test().seed,
            rcfg: if k <= 1 { base } else { base.with_rhizomes(6, k) },
            repair: RepairMode::Targeted,
            migrate: false,
        }
    }

    /// Split the mutation sequence into `chunks` batches.
    pub fn chunks(mut self, chunks: usize) -> Rebuild {
        self.chunks = chunks.max(1);
        self
    }

    /// Override the vertex count.
    pub fn n(mut self, n: u32) -> Rebuild {
        self.n = n;
        self
    }

    /// Override the chip placement seed.
    pub fn seed(mut self, seed: u64) -> Rebuild {
        self.seed = seed;
        self
    }

    /// Override the RPVO shape entirely.
    pub fn rcfg(mut self, rcfg: RpvoConfig) -> Rebuild {
        self.rcfg = rcfg;
        self
    }

    /// Override the repair mode.
    pub fn repair(mut self, repair: RepairMode) -> Rebuild {
        self.repair = repair;
        self
    }

    /// Enable post-increment hot-object migration.
    pub fn migrate(mut self, on: bool) -> Rebuild {
        self.migrate = on;
        self
    }

    fn chip(&self) -> ChipConfig {
        ChipConfig { seed: self.seed, ..ChipConfig::small_test() }.with_shards(self.shards)
    }

    /// Run one algorithm's differential check (CC symmetrizes internally).
    pub fn check(&self, algo: Algo, muts: &[GraphMutation]) {
        match algo {
            Algo::Bfs => {
                self.check_bfs(muts);
            }
            Algo::Sssp => {
                self.check_sssp(muts);
            }
            Algo::Cc => {
                self.check_cc(muts);
            }
        }
    }

    /// BFS vs rebuild over the survivors; returns the streamed graph.
    pub fn check_bfs(&self, muts: &[GraphMutation]) -> StreamingGraph<BfsAlgo> {
        let live = surviving_edges(muts);
        let oracle = bfs_levels(&DiGraph::from_edges(self.n, live.iter().copied()), 0);
        self.run_and_verify(BfsAlgo::new(0), muts, &live, &oracle, "BFS")
    }

    /// SSSP vs Dijkstra over the survivors; returns the streamed graph.
    pub fn check_sssp(&self, muts: &[GraphMutation]) -> StreamingGraph<SsspAlgo> {
        let live = surviving_edges(muts);
        let oracle = dijkstra(&DiGraph::from_edges(self.n, live.iter().copied()), 0);
        self.run_and_verify(SsspAlgo::new(0), muts, &live, &oracle, "SSSP")
    }

    /// CC over the *symmetrized* stream vs min-labels over the symmetric
    /// survivors; returns the streamed graph.
    pub fn check_cc(&self, muts: &[GraphMutation]) -> StreamingGraph<CcAlgo> {
        let sym = symmetrize_mutations(muts);
        let live = surviving_edges(&sym);
        let oracle = min_labels(&DiGraph::from_edges(self.n, live.iter().copied()));
        self.run_and_verify(CcAlgo, &sym, &live, &oracle, "CC")
    }

    /// Stream `muts` in batches, then assert the full invariant set:
    /// fixpoint == rebuild oracle, edge conservation at current weights,
    /// mirror consistency, and the rhizome demotion invariant.
    fn run_and_verify<G: VertexAlgo>(
        &self,
        algo: G,
        muts: &[GraphMutation],
        live: &[StreamEdge],
        oracle: &[G::State],
        what: &str,
    ) -> StreamingGraph<G> {
        let mut g = StreamingGraph::builder(algo)
            .vertices(self.n)
            .chip(self.chip())
            .rpvo(self.rcfg)
            .migrate_hot(self.migrate)
            .build()
            .expect("graph construction");
        g.set_repair_mode(self.repair);
        for c in muts.chunks(muts.len().div_ceil(self.chunks).max(1)) {
            g.stream_increment(c).expect("increment runs to quiescence");
        }
        assert_eq!(g.states(), oracle, "{what} fixpoint vs rebuild over survivors");
        self.verify_conservation(&g, live);
        g.check_mirror_consistency().expect("mirrors agree at quiescence");
        self.verify_demotion(&g);
        g
    }

    /// Conservation: exactly the surviving copies are stored, at their
    /// current weights, nothing over capacity, host ledger == fabric.
    fn verify_conservation<G: VertexAlgo>(&self, g: &StreamingGraph<G>, live: &[StreamEdge]) {
        assert_eq!(g.total_edges_stored(), live.len() as u64, "stored == surviving");
        assert_eq!(g.live_edge_count(), live.len() as u64, "ledger agrees with fabric");
        for u in 0..self.n {
            let mut got = g.logical_edges(u);
            got.sort_unstable();
            let mut want: Vec<(u32, u32)> =
                live.iter().filter(|&&(s, _, _)| s == u).map(|&(_, d, w)| (d, w)).collect();
            want.sort_unstable();
            assert_eq!(got, want, "vertex {u} surviving edge multiset (current weights)");
            for a in g.rhizome_objects(u) {
                let obj = g.device().object(a).expect("object live");
                assert!(obj.edges.len() <= self.rcfg.edge_cap, "capacity respected");
                assert_eq!(obj.vid, u);
            }
        }
    }

    /// Demotion invariant: no vertex keeps multiple roots below the
    /// promotion threshold once an increment's sweep has run.
    fn verify_demotion<G: VertexAlgo>(&self, g: &StreamingGraph<G>) {
        let threshold = self.rcfg.rhizome_threshold as u32;
        for v in 0..self.n {
            if g.roots_of(v).len() > 1 {
                assert!(
                    g.live_degree(v) >= threshold,
                    "vertex {v} keeps {} roots at live degree {}",
                    g.roots_of(v).len(),
                    g.live_degree(v)
                );
            }
        }
    }
}

/// The one-call differential harness: for each algorithm, rebuild from
/// scratch over the survivors of `muts` and assert fixpoints, conservation,
/// mirrors, and rhizome invariants all match the streamed run (rhizome root
/// count `k`, chip shard count `shards`, harness-default shape otherwise).
pub fn assert_matches_rebuild(muts: &[GraphMutation], algos: &[Algo], k: usize, shards: usize) {
    let r = Rebuild::new(k, shards);
    for &a in algos {
        r.check(a, muts);
    }
}
