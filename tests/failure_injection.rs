//! Failure injection and stress: exhausted memory, minimal buffers, heavy
//! contention. The simulator must either complete correctly (backpressure is
//! allowed to slow it down, never to corrupt it) or surface a structured
//! error.

use amcca::prelude::*;
use refgraph::{bfs_levels, DiGraph};

#[test]
fn out_of_memory_is_reported_not_hung() {
    // Arena of 1 object per cell: the 64 roots fill the whole 8×8 chip, so
    // the first RPVO spill can never allocate a ghost anywhere.
    let cfg = ChipConfig { arena_capacity: 1, max_alloc_retries: 16, ..ChipConfig::small_test() };
    let n = 64u32;
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(n)
        .chip(cfg)
        .rpvo(RpvoConfig::basic(1, 1))
        .build()
        .unwrap();
    let edges: Vec<StreamEdge> = (1..5).map(|v| (0, v, 1)).collect();
    let err = g.stream_edges(&edges).unwrap_err();
    assert!(matches!(err, SimError::OutOfMemory { .. }), "got {err:?}");
}

#[test]
fn construction_fails_cleanly_when_roots_do_not_fit() {
    let cfg = ChipConfig { arena_capacity: 1, ..ChipConfig::small_test() };
    // 65 roots on a 64-cell chip with capacity 1: the 65th cannot fit.
    let res = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(65)
        .chip(cfg)
        .rpvo(RpvoConfig::default())
        .build();
    assert!(matches!(res.err(), Some(SimError::OutOfMemory { .. })));
}

#[test]
fn single_slot_link_buffers_still_converge() {
    // Worst-case flow control: every FIFO holds one flit.
    let cfg = ChipConfig { link_buffer: 1, ..ChipConfig::small_test() };
    let n = 100u32;
    let edges: Vec<StreamEdge> =
        (0..n - 1).map(|i| (i, i + 1, 1)).chain((1..n - 1).map(|i| (0, i, 1))).collect();
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(n)
        .chip(cfg)
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    let report = g.stream_edges(&edges).unwrap();
    let reference = bfs_levels(&DiGraph::from_edges(n, edges.iter().copied()), 0);
    assert_eq!(g.states(), reference);
    assert!(report.counters.net_stalls > 0, "tiny buffers must cause backpressure");
}

#[test]
fn tiny_task_queues_backpressure_without_loss() {
    let cfg = ChipConfig { task_queue_cap: 2, ..ChipConfig::small_test() };
    let n = 50u32;
    // Hammer one vertex with inserts from everywhere.
    let edges: Vec<StreamEdge> = (1..n).map(|v| (0, v, 1)).collect();
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(n)
        .chip(cfg)
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    let report = g.stream_edges(&edges).unwrap();
    assert_eq!(g.total_edges_stored(), (n - 1) as u64);
    assert!(report.counters.deliver_stalls > 0, "ejection must have stalled");
}

#[test]
fn cycle_limit_guards_against_runaway() {
    let cfg = ChipConfig { max_cycles: 50, ..ChipConfig::small_test() };
    let n = 200u32;
    let edges: Vec<StreamEdge> = (0..n - 1).map(|i| (i, i + 1, 1)).collect();
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(n)
        .chip(cfg)
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    let err = g.stream_edges(&edges).unwrap_err();
    assert!(matches!(err, SimError::CycleLimitExceeded { limit: 50 }));
}

#[test]
fn allocation_retries_relocate_ghosts_under_pressure() {
    // Capacity 2: roots plus a little room. Spills must hunt for space but
    // eventually succeed, with retries recorded.
    let cfg = ChipConfig { arena_capacity: 2, max_alloc_retries: 256, ..ChipConfig::small_test() };
    let n = 64u32;
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(n)
        .chip(cfg)
        .rpvo(RpvoConfig::basic(2, 1))
        .build()
        .unwrap();
    // ~3 extra objects per vertex needed; chip has 64 spare slots total, so
    // keep the load just within capacity: 16 hub edges → 7 ghosts.
    let edges: Vec<StreamEdge> = (1..17).map(|v| (0, v, 1)).collect();
    let report = g.stream_edges(&edges).unwrap();
    assert_eq!(g.total_edges_stored(), 16);
    let reference = bfs_levels(&DiGraph::from_edges(n, edges.iter().copied()), 0);
    assert_eq!(g.states(), reference);
    let _ = report;
}

#[test]
fn determinism_across_identical_runs() {
    let run = || {
        let edges: Vec<StreamEdge> = (1..40).map(|v| (0, v, 1)).collect();
        let mut g = StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(40)
            .chip(ChipConfig::small_test())
            .rpvo(RpvoConfig::basic(4, 2))
            .build()
            .unwrap();
        let r = g.stream_edges(&edges).unwrap();
        (r.cycles, r.counters, g.states())
    };
    let (c1, ct1, s1) = run();
    let (c2, ct2, s2) = run();
    assert_eq!(c1, c2, "cycle-exact determinism");
    assert_eq!(ct1, ct2);
    assert_eq!(s1, s2);
}

#[test]
fn different_seed_changes_schedule_not_results() {
    let run = |seed: u64| {
        let edges: Vec<StreamEdge> = (1..40).map(|v| (0, v, 1)).collect();
        let cfg = ChipConfig { seed, ..ChipConfig::small_test() };
        let mut g = StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(40)
            .chip(cfg)
            .rpvo(RpvoConfig::basic(2, 2))
            .build()
            .unwrap();
        let r = g.stream_edges(&edges).unwrap();
        (r.cycles, g.states())
    };
    let (c1, s1) = run(1);
    let (c2, s2) = run(2);
    assert_eq!(s1, s2, "results are seed-independent");
    // Ghost placement is randomized, so timing may differ (not asserted
    // strictly — placements can coincide on a small chip).
    let _ = (c1, c2);
}
