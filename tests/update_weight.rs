//! Property tests of the `UpdateWeight` mutation, pinned to the shared
//! differential harness (`tests/common/oracle.rs`): after ANY interleaving
//! of `AddEdge` / `DelEdge` / `UpdateWeight` — weight increases and
//! decreases alike, single-root or rhizome (K ∈ {1, 2, 4}), any batch split
//! — BFS, SSSP, and CC fixpoints equal a from-scratch rebuild over the
//! surviving edge set *at current weights*, conservation holds copy-exact,
//! and mirrors agree. A weight decrease must behave as a plain relax; an
//! increase must invalidate and repair exactly the paths that relied on the
//! cheaper edge — the directed regression at the bottom pins that on the
//! current SSSP shortest-path edge.

mod common;

use amcca::prelude::*;
use common::oracle::{Algo, Rebuild, ALL_ALGOS, N};
use proptest::prelude::*;

/// A mutation script over adds, deletes, and weight updates. `op % 4`
/// selects the kind (adds twice as likely); deletes pick a live edge and
/// updates a live pair by rotating index, so every mutation is valid by
/// construction.
fn arb_update_script() -> impl Strategy<Value = Vec<(u32, u32, u32, u8, u8)>> {
    prop::collection::vec((0..N, 0..N, 1u32..10, any::<u8>(), any::<u8>()), 1..160)
}

/// Bias the script toward vertex 0 so rhizome promotion (and demotion, as
/// the delete-heavy tail cools it) interleaves with weight updates.
fn arb_skewed_update_script() -> impl Strategy<Value = Vec<(u32, u32, u32, u8, u8)>> {
    arb_update_script().prop_map(|mut s| {
        let n = s.len();
        for (i, step) in s.iter_mut().enumerate() {
            if i % 3 == 0 {
                step.0 = 0;
            }
            if i > 2 * n / 3 && step.3 % 4 == 0 {
                step.3 = 2; // turn half the tail's adds into deletes
            }
        }
        s
    })
}

/// Materialize a script, tracking the live multiset under ledger semantics
/// so every delete names a live `(u, v, w)` and every update a live pair
/// (updates re-weight the *oldest* live copy of the pair, like the ledger).
fn materialize(script: &[(u32, u32, u32, u8, u8)]) -> Vec<GraphMutation> {
    let mut muts = Vec::with_capacity(script.len());
    let mut live: Vec<StreamEdge> = Vec::new();
    for &(u, v, w, op, pick) in script {
        match op % 4 {
            2 if !live.is_empty() => {
                // Name the picked copy's triple; the ledger (and this
                // tracking) will retract the OLDEST live copy of it.
                let e = live[pick as usize % live.len()];
                let i = live.iter().position(|&x| x == e).expect("picked copy is live");
                live.remove(i);
                muts.push(GraphMutation::DelEdge(e));
            }
            3 if !live.is_empty() => {
                let (pu, pv, _) = live[pick as usize % live.len()];
                let oldest =
                    live.iter_mut().find(|&&mut (a, b, _)| (a, b) == (pu, pv)).expect("pair live");
                oldest.2 = w;
                muts.push(GraphMutation::UpdateWeight { u: pu, v: pv, w });
            }
            _ if u != v => {
                live.push((u, v, w));
                muts.push(GraphMutation::AddEdge((u, v, w)));
            }
            _ => {}
        }
    }
    muts
}

/// True if the script materialized at least one settled weight increase and
/// one decrease (used to keep the proptests honest about coverage).
fn update_mix(muts: &[GraphMutation]) -> (usize, usize) {
    let mut live: Vec<StreamEdge> = Vec::new();
    let (mut raises, mut drops) = (0, 0);
    for m in muts {
        match *m {
            GraphMutation::AddEdge(e) | GraphMutation::AddLabeledEdge(e, _) => live.push(e),
            GraphMutation::DelEdge(e) => {
                let i = live.iter().position(|&x| x == e).unwrap();
                live.remove(i);
            }
            GraphMutation::UpdateWeight { u, v, w } => {
                let e = live.iter_mut().find(|&&mut (a, b, _)| (a, b) == (u, v)).unwrap();
                match w.cmp(&e.2) {
                    std::cmp::Ordering::Greater => raises += 1,
                    std::cmp::Ordering::Less => drops += 1,
                    std::cmp::Ordering::Equal => {}
                }
                e.2 = w;
            }
        }
    }
    (raises, drops)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random add/delete/update interleavings match the rebuild oracle for
    /// all three algorithms, across rhizome root counts and batch splits.
    /// BFS and SSSP stream the raw directed script; CC gets a canonicalized
    /// one (every pair ordered `u < v`) — symmetrizing is only
    /// history-consistent when all of a pair's mutations share one
    /// direction, because `UpdateWeight` addresses the pair's *oldest* copy
    /// and the two directions' copy orders must stay isomorphic.
    #[test]
    fn updated_fixpoints_match_rebuild_oracle(
        script in arb_update_script(),
        chunks in 1usize..5,
        ki in 0usize..3,
    ) {
        let k = [1usize, 2, 4][ki];
        let harness = Rebuild::new(k, 1).chunks(chunks);
        let muts = materialize(&script);
        for algo in ALL_ALGOS {
            if algo == Algo::Cc {
                let canonical: Vec<(u32, u32, u32, u8, u8)> = script
                    .iter()
                    .map(|&(u, v, w, op, pick)| (u.min(v), u.max(v), w, op, pick))
                    .collect();
                harness.check(algo, &materialize(&canonical));
            } else {
                harness.check(algo, &muts);
            }
        }
    }

    /// Hub-heavy update churn (promotion, demotion, and re-weights of edges
    /// spread across rhizome slices and ghost spills) keeps every harness
    /// invariant — weight patches land on the right copy wherever it lives.
    #[test]
    fn skewed_update_churn_keeps_all_invariants(
        script in arb_skewed_update_script(),
        chunks in 1usize..5,
    ) {
        Rebuild::new(3, 1).chunks(chunks).check_sssp(&materialize(&script));
    }

    /// The pipeline with weight updates stays reproducible and
    /// shard-count-independent, including cycles and reseed triggers.
    #[test]
    fn update_churn_is_deterministic_and_shard_independent(
        script in arb_update_script(),
        chunks in 1usize..4,
    ) {
        let muts = materialize(&script);
        let run = |shards: usize| {
            let mut g = StreamingGraph::builder(SsspAlgo::new(0)).vertices(N).chip(ChipConfig::small_test().with_shards(shards)).rpvo(RpvoConfig::basic(3, 2).with_rhizomes(6, 3)).build().unwrap();
            let mut cycles = 0u64;
            let mut triggers = 0u64;
            for c in muts.chunks(muts.len().div_ceil(chunks).max(1)) {
                let r = g.stream_increment(c).unwrap();
                cycles += r.cycles;
                triggers += r.reseed_triggers;
            }
            (g.states(), cycles, triggers, *g.device().chip().counters())
        };
        let reference = run(1);
        prop_assert_eq!(&reference, &run(1), "reproducible");
        prop_assert_eq!(&reference, &run(3), "shard-count independent");
    }

    /// Coverage guard: the script generator genuinely produces settled
    /// increases AND decreases often enough to exercise both repair paths.
    #[test]
    fn scripts_exercise_both_directions(scripts in prop::collection::vec(arb_update_script(), 8)) {
        let (mut raises, mut drops) = (0, 0);
        for s in &scripts {
            let (r, d) = update_mix(&materialize(s));
            raises += r;
            drops += d;
        }
        prop_assert!(raises > 0, "no weight increase generated across 8 scripts");
        prop_assert!(drops > 0, "no weight decrease generated across 8 scripts");
    }
}

/// Regression: a same-batch upstream deletion plus a downstream weight
/// *decrease* must not under-invalidate. The decrease patches the edge
/// before the deletion's cascade scans it, so the cascade's recall values
/// are computed at the new weight and would no longer match state announced
/// under the old one — the structural phase therefore recalls the old
/// contribution at patch time even for decreases. Without that, d(2) below
/// survives at 20 through a deleted path.
#[test]
fn same_batch_delete_and_decrease_invalidate_downstream() {
    let mut g = StreamingGraph::builder(SsspAlgo::new(0))
        .vertices(4)
        .chip(ChipConfig::small_test())
        .rpvo(RpvoConfig::basic(4, 2))
        .build()
        .unwrap();
    g.stream_edges(&[(0, 1, 10), (1, 2, 10)]).unwrap();
    assert_eq!(g.state_of(2), 20);
    g.stream_increment(&[
        GraphMutation::DelEdge((0, 1, 10)),
        GraphMutation::UpdateWeight { u: 1, v: 2, w: 4 },
    ])
    .unwrap();
    assert_eq!(g.state_of(1), amcca::sdgp_core::apps::INF, "vertex 1 unreachable");
    assert_eq!(g.state_of(2), amcca::sdgp_core::apps::INF, "no stale distance through 1");
    g.check_mirror_consistency().unwrap();
    // And when vertex 1 stays supported, the decreased weight applies.
    let mut g = StreamingGraph::builder(SsspAlgo::new(0))
        .vertices(4)
        .chip(ChipConfig::small_test())
        .rpvo(RpvoConfig::basic(4, 2))
        .build()
        .unwrap();
    g.stream_edges(&[(0, 1, 10), (0, 1, 30), (1, 2, 10)]).unwrap();
    g.stream_increment(&[
        GraphMutation::DelEdge((0, 1, 10)),
        GraphMutation::UpdateWeight { u: 1, v: 2, w: 4 },
    ])
    .unwrap();
    assert_eq!(g.state_of(1), 30, "re-derived through the surviving parallel edge");
    assert_eq!(g.state_of(2), 34, "decreased weight applied during repair");
}

/// Directed regression: raising the weight of the edge on the CURRENT
/// shortest path must invalidate exactly the distances derived through it
/// and re-route them over the alternative, with a targeted (not O(n))
/// repair wave; lowering it back must restore the old routing with a plain
/// relax and no repair wave at all.
#[test]
fn sssp_weight_increase_on_the_shortest_path_edge_reroutes() {
    let n = 16u32;
    let mut g = StreamingGraph::builder(SsspAlgo::new(0))
        .vertices(n)
        .chip(ChipConfig::small_test())
        .rpvo(RpvoConfig::basic(4, 2))
        .build()
        .unwrap();
    // Two roads from 0 to 3: cheap 0→1→3 (cost 4) and dear 0→2→3 (cost 10),
    // plus a tail 3→4→...→15 whose distances all derive from d(3).
    g.stream_edges(&[(0, 1, 2), (1, 3, 2), (0, 2, 5), (2, 3, 5)]).unwrap();
    let tail: Vec<StreamEdge> = (3..n - 1).map(|v| (v, v + 1, 1)).collect();
    g.stream_edges(&tail).unwrap();
    assert_eq!(g.state_of(3), 4, "cheap road wins");
    assert_eq!(g.state_of(15), 4 + 12);
    // Raise the shortest-path edge 1→3 above the alternative: d(3) and the
    // whole tail re-derive through 0→2→3.
    let r = g.stream_increment(&[GraphMutation::UpdateWeight { u: 1, v: 3, w: 20 }]).unwrap();
    assert_eq!(g.state_of(3), 10, "re-routed over the dear road");
    assert_eq!(g.state_of(15), 10 + 12, "tail distances repaired transitively");
    assert_eq!(g.state_of(1), 2, "upstream of the raised edge untouched");
    assert!(r.reseed_triggers > 0, "increase runs a repair wave");
    assert!(r.reseed_triggers < n as u64, "repair wave is targeted, not O(n)");
    let stats = g.last_repair();
    assert!(stats.invalidated >= 13, "d(3) and the tail invalidated: {stats:?}");
    // Lower it again: plain relax, no repair wave, old routing restored.
    let r = g.stream_increment(&[GraphMutation::UpdateWeight { u: 1, v: 3, w: 2 }]).unwrap();
    assert_eq!(g.state_of(3), 4);
    assert_eq!(g.state_of(15), 16);
    assert_eq!(r.reseed_triggers, 0, "decrease needs no repair wave");
    assert_eq!(r.repair_cycles, 0);
    g.check_mirror_consistency().unwrap();
}
