//! Property tests of the rhizome subsystem, pinned to the shared
//! differential harness (`tests/common/oracle.rs`): splitting a hub vertex
//! into K co-equal roots is a pure performance transformation. Every harness
//! call checks algorithm equivalence against the sequential oracles (and so,
//! transitively, against the single-root reference), edge conservation
//! across the disjoint root slices, mirror convergence over all roots and
//! ghosts, and the demotion invariant. This file adds the skewed-stream
//! generators, the promotion assertions, determinism / shard-independence,
//! and the query-fanning (triangle / Jaccard) regressions the harness does
//! not own.

mod common;

use amcca::prelude::*;
use common::oracle::{Rebuild, N};
use proptest::prelude::*;

fn arb_edges() -> impl Strategy<Value = Vec<StreamEdge>> {
    prop::collection::vec((0..N, 0..N, 1u32..10), 1..120)
        .prop_map(|es| es.into_iter().filter(|&(u, v, _)| u != v).collect())
}

/// A hub-heavy stream: half the edges touch vertex 0, so low thresholds
/// reliably trigger promotion mid-stream.
fn arb_skewed_edges() -> impl Strategy<Value = Vec<StreamEdge>> {
    (arb_edges(), prop::collection::vec((1..N, 1u32..10), 8..60)).prop_map(|(mut es, hub)| {
        for (i, (v, w)) in hub.into_iter().enumerate() {
            if i % 2 == 0 {
                es.push((0, v, w));
            } else {
                es.push((v, 0, w));
            }
        }
        es
    })
}

fn arb_rhizome_cfg() -> impl Strategy<Value = RpvoConfig> {
    (1usize..6, 1usize..4, 2usize..12, 2usize..6).prop_map(|(cap, fanout, threshold, k)| {
        RpvoConfig::basic(cap, fanout).with_rhizomes(threshold, k)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Rhizome BFS reaches the exact rebuild-oracle fixpoint on any skewed
    /// stream, RPVO shape, and chip seed — with conservation and mirror
    /// convergence across the root slices checked by the harness — and
    /// promotion actually happens.
    #[test]
    fn rhizome_bfs_matches_oracle_and_promotes(
        edges in arb_skewed_edges(),
        rcfg in arb_rhizome_cfg(),
        seed in 0u64..1000,
    ) {
        let g = Rebuild::new(1, 1).rcfg(rcfg).seed(seed)
            .check_bfs(&GraphMutation::adds(&edges));
        // The skewed stream hammers vertex 0 hard enough to promote it.
        prop_assert!(g.rhizome_stats().0 >= 1, "hub must have been promoted");
        prop_assert_eq!(g.roots_of(0).len(), rcfg.rhizome_roots);
    }

    /// Rhizome SSSP equals Dijkstra on the same stream.
    #[test]
    fn rhizome_sssp_matches_dijkstra(
        edges in arb_skewed_edges(),
        rcfg in arb_rhizome_cfg(),
    ) {
        Rebuild::new(1, 1).rcfg(rcfg).check_sssp(&GraphMutation::adds(&edges));
    }

    /// Rhizome connected components equal the min-label oracle over the
    /// symmetrized stream (the harness symmetrizes).
    #[test]
    fn rhizome_cc_matches_min_labels(
        edges in arb_skewed_edges(),
        rcfg in arb_rhizome_cfg(),
    ) {
        Rebuild::new(1, 1).rcfg(rcfg).check_cc(&GraphMutation::adds(&edges));
    }

    /// Promotion and routing are deterministic, and the whole rhizome
    /// workflow is shard-count-independent (the adaptive engine included).
    #[test]
    fn rhizome_streaming_is_deterministic_and_shard_independent(
        edges in arb_skewed_edges(),
        split in 0usize..120,
    ) {
        let rcfg = RpvoConfig::basic(3, 2).with_rhizomes(5, 3);
        let cut = split.min(edges.len());
        let run = |shards: usize| {
            let mut g = StreamingGraph::builder(BfsAlgo::new(0)).vertices(N).chip(ChipConfig::small_test().with_shards(shards)).rpvo(rcfg).build().unwrap();
            let mut cycles = 0u64;
            for inc in [&edges[..cut], &edges[cut..]] {
                cycles += g.stream_edges(inc).unwrap().cycles;
            }
            (g.states(), cycles, *g.device().chip().counters(), g.rhizome_stats())
        };
        let reference = run(1);
        prop_assert_eq!(&reference, &run(1), "reproducible");
        prop_assert_eq!(&reference, &run(3), "shard-count independent");
    }
}

/// Triangle counting fans across the co-equal roots of a promoted hub
/// (QUERY_FANNED_BIT protocol): the count on a simple wheel graph matches
/// both the single-root run and the sequential reference.
#[test]
fn rhizome_triangle_count_matches_single_root_and_reference() {
    use refgraph::count_triangles;
    use sdgp_core::apps::{TriangleAlgo, ACT_TRI_GEN};

    // Wheel: hub 0 joined to a rim cycle 1..=14 — every triangle passes
    // through the hub, the worst case for a split adjacency.
    let n = 15u32;
    let mut und: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
    und.extend((1..n - 1).map(|v| (v, v + 1)));
    und.push((n - 1, 1));

    let run = |rcfg: RpvoConfig| -> (u64, u64) {
        let cfg = ChipConfig::small_test();
        let ncc = cfg.cell_count();
        let mut g = StreamingGraph::builder(TriangleAlgo::new(ncc))
            .vertices(n)
            .chip(cfg)
            .rpvo(rcfg)
            .build()
            .unwrap();
        let stream: Vec<StreamEdge> = und.iter().map(|&(u, v)| (u, v, 1)).collect();
        g.stream_edges(&symmetrize(&stream)).unwrap();
        let gens: Vec<Operon> =
            (0..n).map(|v| Operon::new(g.addr_of(v), ACT_TRI_GEN, [0, 0])).collect();
        g.run_query(gens).unwrap();
        (g.device().app().algo.total(), g.rhizome_stats().0)
    };
    let expect = count_triangles(n, und.iter().copied());
    assert_eq!(expect, 14, "wheel on 14 rim vertices has 14 triangles");
    let (single, promoted_single) = run(RpvoConfig::basic(2, 2));
    let (rhizome, promoted_rz) = run(RpvoConfig::basic(2, 2).with_rhizomes(8, 3));
    assert_eq!(promoted_single, 0);
    assert!(promoted_rz >= 1, "the hub must have been promoted");
    assert_eq!(single, expect);
    assert_eq!(rhizome, expect, "triangle count invariant under rhizome promotion");
}

/// Jaccard intersection hits are likewise invariant under promotion.
#[test]
fn rhizome_jaccard_matches_single_root() {
    use sdgp_core::apps::{JaccardAlgo, ACT_JC_GEN};

    let n = 12u32;
    let mut und: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
    und.extend((1..n - 1).map(|v| (v, v + 1)));

    let run = |rcfg: RpvoConfig| -> (Vec<u64>, u64) {
        let mut g = StreamingGraph::builder(JaccardAlgo::new())
            .vertices(n)
            .chip(ChipConfig::small_test())
            .rpvo(rcfg)
            .build()
            .unwrap();
        let stream: Vec<StreamEdge> = und.iter().map(|&(u, v)| (u, v, 1)).collect();
        g.stream_edges(&symmetrize(&stream)).unwrap();
        let wave: Vec<Operon> =
            (0..n).map(|v| Operon::new(g.addr_of(v), ACT_JC_GEN, [0, 0])).collect();
        g.run_query(wave).unwrap();
        let hits: Vec<u64> = und
            .iter()
            .map(|&(a, b)| g.device().app().algo.intersection(a.min(b), a.max(b)))
            .collect();
        (hits, g.rhizome_stats().0)
    };
    let (single, _) = run(RpvoConfig::basic(2, 2));
    let (rhizome, promoted) = run(RpvoConfig::basic(2, 2).with_rhizomes(8, 4));
    assert!(promoted >= 1, "the hub must have been promoted");
    assert_eq!(single, rhizome, "pairwise intersections invariant under rhizome promotion");
    assert!(single.iter().any(|&h| h > 0), "wheel spokes share common neighbours");
}

/// Splitting the stream into increments does not change what gets promoted
/// or the final fixpoint (promotion counters persist across increments; the
/// harness re-verifies the full invariant set at every split).
#[test]
fn increment_split_does_not_change_promotion() {
    let rcfg = RpvoConfig::basic(4, 2).with_rhizomes(6, 4);
    let edges: Vec<StreamEdge> =
        (1..20).map(|v| (0, v, 1)).chain((1..19).map(|v| (v, v + 1, 1))).collect();
    let muts = GraphMutation::adds(&edges);
    let harness = Rebuild::new(1, 1).rcfg(rcfg).n(20);
    let whole = harness.chunks(1).check_bfs(&muts);
    let split = harness.chunks(4).check_bfs(&muts);
    assert_eq!(whole.states(), split.states());
    assert_eq!(whole.rhizome_stats(), split.rhizome_stats());
    assert_eq!(whole.rhizome_stats().0, 1, "exactly the hub promoted");
}
