//! Property tests of the rhizome subsystem: splitting a hub vertex into K
//! co-equal roots is a pure performance transformation —
//!
//! 1. **Algorithm equivalence** — BFS, SSSP, and connected components reach
//!    the same fixpoint on the same edge stream whether hubs are promoted or
//!    not, and both match the sequential reference oracles.
//! 2. **Conservation** — every streamed edge is stored exactly once across
//!    the union of all root slices and their ghost subtrees.
//! 3. **Mirror convergence** — at quiescence every object of a logical
//!    vertex (co-equal roots and ghosts alike) holds the same state.
//! 4. **Determinism** — promotion, routing, and results are reproducible,
//!    and independent of the chip's shard count.

use amcca::prelude::*;
use proptest::prelude::*;
use refgraph::{bfs_levels, dijkstra, min_labels, DiGraph};

const N: u32 = 24;

fn arb_edges() -> impl Strategy<Value = Vec<StreamEdge>> {
    prop::collection::vec((0..N, 0..N, 1u32..10), 1..120)
        .prop_map(|es| es.into_iter().filter(|&(u, v, _)| u != v).collect())
}

/// A hub-heavy stream: half the edges touch vertex 0, so low thresholds
/// reliably trigger promotion mid-stream.
fn arb_skewed_edges() -> impl Strategy<Value = Vec<StreamEdge>> {
    (arb_edges(), prop::collection::vec((1..N, 1u32..10), 8..60)).prop_map(|(mut es, hub)| {
        for (i, (v, w)) in hub.into_iter().enumerate() {
            if i % 2 == 0 {
                es.push((0, v, w));
            } else {
                es.push((v, 0, w));
            }
        }
        es
    })
}

fn arb_rhizome_cfg() -> impl Strategy<Value = RpvoConfig> {
    (1usize..6, 1usize..4, 2usize..12, 2usize..6).prop_map(|(cap, fanout, threshold, k)| {
        RpvoConfig::basic(cap, fanout).with_rhizomes(threshold, k)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Rhizome BFS reaches the exact single-root / oracle fixpoint on any
    /// stream, and promotion actually happens on the skewed streams.
    #[test]
    fn rhizome_bfs_matches_single_root_and_oracle(
        edges in arb_skewed_edges(),
        rcfg in arb_rhizome_cfg(),
        seed in 0u64..1000,
    ) {
        let chip = || ChipConfig { seed, ..ChipConfig::small_test() };
        let mut rz = StreamingGraph::new(chip(), rcfg, BfsAlgo::new(0), N).unwrap();
        rz.stream_edges(&edges).unwrap();
        let single_cfg = RpvoConfig::basic(rcfg.edge_cap, rcfg.ghost_fanout);
        let mut single = StreamingGraph::new(chip(), single_cfg, BfsAlgo::new(0), N).unwrap();
        single.stream_edges(&edges).unwrap();
        let oracle = bfs_levels(&DiGraph::from_edges(N, edges.iter().copied()), 0);
        prop_assert_eq!(rz.states(), single.states());
        prop_assert_eq!(rz.states(), oracle);
        // The skewed stream hammers vertex 0 hard enough to promote it.
        prop_assert!(rz.rhizome_stats().0 >= 1, "hub must have been promoted");
        prop_assert_eq!(rz.roots_of(0).len(), rcfg.rhizome_roots);
    }

    /// Rhizome SSSP equals Dijkstra on the same stream.
    #[test]
    fn rhizome_sssp_matches_dijkstra(
        edges in arb_skewed_edges(),
        rcfg in arb_rhizome_cfg(),
    ) {
        let mut g = StreamingGraph::new(
            ChipConfig::small_test(), rcfg, SsspAlgo::new(0), N).unwrap();
        g.stream_edges(&edges).unwrap();
        let oracle = dijkstra(&DiGraph::from_edges(N, edges.iter().copied()), 0);
        prop_assert_eq!(g.states(), oracle);
        g.check_mirror_consistency().unwrap();
    }

    /// Rhizome connected components equal the min-label oracle over the
    /// symmetrized stream.
    #[test]
    fn rhizome_cc_matches_min_labels(
        edges in arb_skewed_edges(),
        rcfg in arb_rhizome_cfg(),
    ) {
        let sym = symmetrize(&edges);
        let mut g = StreamingGraph::new(
            ChipConfig::small_test(), rcfg, CcAlgo, N).unwrap();
        g.stream_edges(&sym).unwrap();
        let oracle = min_labels(&DiGraph::from_edges(N, sym.iter().copied()));
        prop_assert_eq!(g.states(), oracle);
    }

    /// Conservation and mirror convergence hold across the rhizome's
    /// disjoint slices: every edge stored exactly once, every object of a
    /// logical vertex (all roots + ghosts) agreeing at quiescence.
    #[test]
    fn rhizome_conserves_edges_and_converges_mirrors(
        edges in arb_skewed_edges(),
        rcfg in arb_rhizome_cfg(),
    ) {
        let mut g = StreamingGraph::new(
            ChipConfig::small_test(), rcfg, BfsAlgo::new(0), N).unwrap();
        g.stream_edges(&edges).unwrap();
        prop_assert_eq!(g.total_edges_stored(), edges.len() as u64);
        for u in 0..N {
            let mut got = g.logical_edges(u);
            got.sort_unstable();
            let mut want: Vec<(u32, u32)> = edges.iter()
                .filter(|&&(s, _, _)| s == u)
                .map(|&(_, d, w)| (d, w))
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "vertex {} edge multiset across root slices", u);
            // Capacity respected in every object of every slice.
            for a in g.rhizome_objects(u) {
                let obj = g.device().object(a).unwrap();
                prop_assert!(obj.edges.len() <= rcfg.edge_cap);
                prop_assert_eq!(obj.vid, u);
            }
        }
        g.check_mirror_consistency().unwrap();
    }

    /// Promotion and routing are deterministic, and the whole rhizome
    /// workflow is shard-count-independent (the adaptive engine included).
    #[test]
    fn rhizome_streaming_is_deterministic_and_shard_independent(
        edges in arb_skewed_edges(),
        split in 0usize..120,
    ) {
        let rcfg = RpvoConfig::basic(3, 2).with_rhizomes(5, 3);
        let cut = split.min(edges.len());
        let run = |shards: usize| {
            let mut g = StreamingGraph::new(
                ChipConfig::small_test().with_shards(shards), rcfg, BfsAlgo::new(0), N).unwrap();
            let mut cycles = 0u64;
            for inc in [&edges[..cut], &edges[cut..]] {
                cycles += g.stream_edges(inc).unwrap().cycles;
            }
            (g.states(), cycles, *g.device().chip().counters(), g.rhizome_stats())
        };
        let reference = run(1);
        prop_assert_eq!(&reference, &run(1), "reproducible");
        prop_assert_eq!(&reference, &run(3), "shard-count independent");
    }
}

/// Triangle counting fans across the co-equal roots of a promoted hub
/// (QUERY_FANNED_BIT protocol): the count on a simple wheel graph matches
/// both the single-root run and the sequential reference.
#[test]
fn rhizome_triangle_count_matches_single_root_and_reference() {
    use refgraph::count_triangles;
    use sdgp_core::apps::{TriangleAlgo, ACT_TRI_GEN};

    // Wheel: hub 0 joined to a rim cycle 1..=14 — every triangle passes
    // through the hub, the worst case for a split adjacency.
    let n = 15u32;
    let mut und: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
    und.extend((1..n - 1).map(|v| (v, v + 1)));
    und.push((n - 1, 1));

    let run = |rcfg: RpvoConfig| -> (u64, u64) {
        let cfg = ChipConfig::small_test();
        let ncc = cfg.cell_count();
        let mut g = StreamingGraph::new(cfg, rcfg, TriangleAlgo::new(ncc), n).unwrap();
        let stream: Vec<StreamEdge> = und.iter().map(|&(u, v)| (u, v, 1)).collect();
        g.stream_edges(&symmetrize(&stream)).unwrap();
        let gens: Vec<Operon> =
            (0..n).map(|v| Operon::new(g.addr_of(v), ACT_TRI_GEN, [0, 0])).collect();
        g.run_query(gens).unwrap();
        (g.device().app().algo.total(), g.rhizome_stats().0)
    };
    let expect = count_triangles(n, und.iter().copied());
    assert_eq!(expect, 14, "wheel on 14 rim vertices has 14 triangles");
    let (single, promoted_single) = run(RpvoConfig::basic(2, 2));
    let (rhizome, promoted_rz) = run(RpvoConfig::basic(2, 2).with_rhizomes(8, 3));
    assert_eq!(promoted_single, 0);
    assert!(promoted_rz >= 1, "the hub must have been promoted");
    assert_eq!(single, expect);
    assert_eq!(rhizome, expect, "triangle count invariant under rhizome promotion");
}

/// Jaccard intersection hits are likewise invariant under promotion.
#[test]
fn rhizome_jaccard_matches_single_root() {
    use sdgp_core::apps::{JaccardAlgo, ACT_JC_GEN};

    let n = 12u32;
    let mut und: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
    und.extend((1..n - 1).map(|v| (v, v + 1)));

    let run = |rcfg: RpvoConfig| -> (Vec<u64>, u64) {
        let mut g =
            StreamingGraph::new(ChipConfig::small_test(), rcfg, JaccardAlgo::new(), n).unwrap();
        let stream: Vec<StreamEdge> = und.iter().map(|&(u, v)| (u, v, 1)).collect();
        g.stream_edges(&symmetrize(&stream)).unwrap();
        let wave: Vec<Operon> =
            (0..n).map(|v| Operon::new(g.addr_of(v), ACT_JC_GEN, [0, 0])).collect();
        g.run_query(wave).unwrap();
        let hits: Vec<u64> = und
            .iter()
            .map(|&(a, b)| g.device().app().algo.intersection(a.min(b), a.max(b)))
            .collect();
        (hits, g.rhizome_stats().0)
    };
    let (single, _) = run(RpvoConfig::basic(2, 2));
    let (rhizome, promoted) = run(RpvoConfig::basic(2, 2).with_rhizomes(8, 4));
    assert!(promoted >= 1, "the hub must have been promoted");
    assert_eq!(single, rhizome, "pairwise intersections invariant under rhizome promotion");
    assert!(single.iter().any(|&h| h > 0), "wheel spokes share common neighbours");
}

/// Splitting the stream into increments does not change what gets promoted
/// or the final fixpoint (promotion counters persist across increments).
#[test]
fn increment_split_does_not_change_promotion() {
    let rcfg = RpvoConfig::basic(4, 2).with_rhizomes(6, 4);
    let edges: Vec<StreamEdge> =
        (1..20).map(|v| (0, v, 1)).chain((1..19).map(|v| (v, v + 1, 1))).collect();
    let run = |chunks: usize| {
        let mut g =
            StreamingGraph::new(ChipConfig::small_test(), rcfg, BfsAlgo::new(0), 20).unwrap();
        for c in edges.chunks(edges.len().div_ceil(chunks)) {
            g.stream_edges(c).unwrap();
        }
        (g.states(), g.rhizome_stats())
    };
    let whole = run(1);
    assert_eq!(whole, run(4));
    assert_eq!(whole.1 .0, 1, "exactly the hub promoted");
}
