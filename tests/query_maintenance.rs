//! Differential property tests of standing label-constrained path queries
//! (`sdgp_core::query`), pinned to the shared harness oracle
//! (`tests/common/oracle.rs::surviving_labeled_edges`): after ANY
//! interleaving of labelled inserts, deletes, and weight updates — any
//! batch split, rhizome root count K ∈ {1, 2, 4}, any shard count, either
//! repair mode — every registered query's result set equals a from-scratch
//! product-automaton recompute over the surviving labelled edge set
//! ([`oracle_results`]) after EVERY batch, not just at the end. A query
//! registered mid-stream must converge to the same results as one
//! registered before any edge arrived.

mod common;

use amcca::prelude::*;
use amcca::sdgp_core::oracle_results_multi;
use common::oracle::{surviving_labeled_edges, N};
use proptest::prelude::*;

/// The standing queries every differential run registers: star/plus/option
/// closures over the 4-letter alphabet the scripts draw labels from, with
/// sources spread across the vertex range.
const PATTERNS: [(&str, u32); 4] = [("a.b*.c", 0), ("d+", 0), ("a?.b.c*", 3), ("b", 5)];

/// Raw steps `(u, v, w, op, pick, label)`: `op % 4` selects the kind (adds
/// twice as likely), deletes and updates pick a live target by rotating
/// `pick`, labels are drawn from `a`–`d` (1..=4) so the closure patterns
/// above genuinely match and miss.
fn arb_labeled_script() -> impl Strategy<Value = Vec<(u32, u32, u32, u8, u8, u8)>> {
    prop::collection::vec((0..N, 0..N, 1u32..10, any::<u8>(), any::<u8>(), 1u8..=4), 1..140)
}

/// Materialize a script under ledger semantics so every delete names a live
/// `(u, v, w)` copy and every update a live pair (updates re-weight the
/// oldest copy and keep its label, like the host ledger).
fn materialize(script: &[(u32, u32, u32, u8, u8, u8)]) -> Vec<GraphMutation> {
    let mut muts = Vec::with_capacity(script.len());
    let mut live: Vec<StreamEdge> = Vec::new();
    for &(u, v, w, op, pick, label) in script {
        match op % 4 {
            2 if !live.is_empty() => {
                // Name the picked copy's triple; the ledger (and this
                // tracking) retracts the OLDEST live copy of it.
                let e = live[pick as usize % live.len()];
                let i = live.iter().position(|&x| x == e).expect("picked copy is live");
                live.remove(i);
                muts.push(GraphMutation::DelEdge(e));
            }
            3 if !live.is_empty() => {
                let (pu, pv, _) = live[pick as usize % live.len()];
                let oldest =
                    live.iter_mut().find(|&&mut (a, b, _)| (a, b) == (pu, pv)).expect("pair live");
                oldest.2 = w;
                muts.push(GraphMutation::UpdateWeight { u: pu, v: pv, w });
            }
            _ if u != v => {
                live.push((u, v, w));
                muts.push(GraphMutation::AddLabeledEdge((u, v, w), label));
            }
            _ => {}
        }
    }
    muts
}

fn graph(k: usize, shards: usize, mode: RepairMode) -> StreamingGraph<BfsAlgo> {
    let base = RpvoConfig::basic(3, 2);
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(N)
        .chip(ChipConfig::small_test().with_shards(shards))
        .rpvo(if k <= 1 { base } else { base.with_rhizomes(6, k) })
        .build()
        .unwrap();
    g.set_repair_mode(mode);
    g
}

/// Assert every registered query's maintained result set equals the
/// from-scratch recompute over the survivors of `applied`.
fn assert_queries_match_oracle(g: &StreamingGraph<BfsAlgo>, applied: &[GraphMutation], at: &str) {
    let live: Vec<(u32, u32, u8)> =
        surviving_labeled_edges(applied).iter().map(|&((u, v, _), l)| (u, v, l)).collect();
    for (qid, q) in g.registered_queries().iter().enumerate() {
        let want = oracle_results_multi(g.n_vertices(), &live, &q.dfa, &q.sources);
        assert_eq!(
            g.query_results(qid as u32),
            want,
            "{at}: query {qid} ({:?} @ {:?}) vs from-scratch recompute",
            q.pattern,
            q.sources
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Random labelled churn, checked against the oracle after EVERY batch,
    /// across rhizome root counts, shard counts, and batch splits.
    #[test]
    fn standing_queries_match_oracle_after_every_batch(
        script in arb_labeled_script(),
        chunks in 1usize..5,
        ki in 0usize..3,
        shards in 1usize..3,
    ) {
        let k = [1usize, 2, 4][ki];
        let muts = materialize(&script);
        prop_assume!(!muts.is_empty());
        let mut g = graph(k, shards, RepairMode::Targeted);
        for (pattern, source) in PATTERNS {
            g.register_query(pattern, source).unwrap();
        }
        let mut applied: Vec<GraphMutation> = Vec::new();
        for (i, c) in muts.chunks(muts.len().div_ceil(chunks).max(1)).enumerate() {
            g.stream_increment(c).unwrap();
            applied.extend_from_slice(c);
            assert_queries_match_oracle(&g, &applied, &format!("batch {i}"));
        }
        g.check_mirror_consistency().unwrap();
    }

    /// Full-wave and targeted repair maintain identical query results at
    /// every batch boundary (the clear-and-reseed query repair is scoped by
    /// the same frontier machinery the algorithm repair is).
    #[test]
    fn full_and_targeted_query_maintenance_agree(
        script in arb_labeled_script(),
        chunks in 1usize..5,
    ) {
        let muts = materialize(&script);
        prop_assume!(!muts.is_empty());
        let mut full = graph(2, 1, RepairMode::Full);
        let mut targeted = graph(2, 1, RepairMode::Targeted);
        for (pattern, source) in PATTERNS {
            full.register_query(pattern, source).unwrap();
            targeted.register_query(pattern, source).unwrap();
        }
        let mut applied: Vec<GraphMutation> = Vec::new();
        for (i, c) in muts.chunks(muts.len().div_ceil(chunks).max(1)).enumerate() {
            full.stream_increment(c).unwrap();
            targeted.stream_increment(c).unwrap();
            applied.extend_from_slice(c);
            for qid in 0..PATTERNS.len() as u32 {
                prop_assert_eq!(
                    full.query_results(qid),
                    targeted.query_results(qid),
                    "batch {}: query {} full vs targeted", i, qid
                );
            }
            assert_queries_match_oracle(&targeted, &applied, &format!("batch {i}"));
        }
    }

    /// The incrementally tracked result deltas are bit-identical to diffing
    /// the polled result sets before and after EVERY batch — the invariant
    /// the serve layer's push subscriptions ride on — under labelled churn,
    /// across rhizome root counts K ∈ {1, 2, 4}, shard counts ∈ {1, 2}, and
    /// batch splits. Multi-source queries included, and their maintained
    /// results must match the multi-source oracle throughout.
    #[test]
    fn query_deltas_match_polled_result_diffs(
        script in arb_labeled_script(),
        chunks in 1usize..5,
        ki in 0usize..3,
        shards in 1usize..3,
    ) {
        let k = [1usize, 2, 4][ki];
        let muts = materialize(&script);
        prop_assume!(!muts.is_empty());
        let mut g = graph(k, shards, RepairMode::Targeted);
        for (pattern, source) in PATTERNS {
            g.register_query(pattern, source).unwrap();
        }
        // A multi-source query rides along: same alphabet, anchors spread out.
        let multi = g.register_query_multi("a.b*.c", &[0, 3, 5]).unwrap();
        let n_queries = PATTERNS.len() as u32 + 1;
        let mut applied: Vec<GraphMutation> = Vec::new();
        for (i, c) in muts.chunks(muts.len().div_ceil(chunks).max(1)).enumerate() {
            let before: Vec<Vec<u32>> =
                (0..n_queries).map(|q| g.query_results(q)).collect();
            g.stream_increment(c).unwrap();
            applied.extend_from_slice(c);
            let deltas = g.take_query_deltas();
            prop_assert_eq!(deltas.len() as u32, n_queries, "one delta per query");
            for d in &deltas {
                let after = g.query_results(d.qid);
                let prev = &before[d.qid as usize];
                let want_added: Vec<u32> =
                    after.iter().copied().filter(|v| !prev.contains(v)).collect();
                let want_removed: Vec<u32> =
                    prev.iter().copied().filter(|v| !after.contains(v)).collect();
                prop_assert_eq!(
                    (&d.added, &d.removed),
                    (&want_added, &want_removed),
                    "batch {}: query {} delta vs polled diff", i, d.qid
                );
            }
            // Drained: a second take yields nothing until the next increment.
            prop_assert!(g.take_query_deltas().is_empty());
            assert_queries_match_oracle(&g, &applied, &format!("batch {i}"));
        }
        let _ = multi;
        g.check_mirror_consistency().unwrap();
    }

    /// Registering a query against an already-populated graph seeds and
    /// converges to exactly the results a cold registration reaches — the
    /// registration-time diffusion replays history it never saw.
    #[test]
    fn mid_stream_registration_matches_cold_registration(
        script in arb_labeled_script(),
        split_pick in any::<u8>(),
    ) {
        let muts = materialize(&script);
        prop_assume!(muts.len() >= 2);
        let split = 1 + split_pick as usize % (muts.len() - 1);

        let mut cold = graph(2, 1, RepairMode::Targeted);
        for (pattern, source) in PATTERNS {
            cold.register_query(pattern, source).unwrap();
        }
        cold.stream_increment(&muts).unwrap();

        let mut late = graph(2, 1, RepairMode::Targeted);
        late.stream_increment(&muts[..split]).unwrap();
        for (pattern, source) in PATTERNS {
            late.register_query(pattern, source).unwrap();
        }
        late.stream_increment(&muts[split..]).unwrap();

        for qid in 0..PATTERNS.len() as u32 {
            prop_assert_eq!(
                cold.query_results(qid),
                late.query_results(qid),
                "query {} cold vs mid-stream registration", qid
            );
        }
        assert_queries_match_oracle(&late, &muts, "final");
    }
}
