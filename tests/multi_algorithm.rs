//! Verification of the extension algorithms (the paper's §6 future work,
//! implemented here): incremental SSSP, incremental connected components,
//! and exact message-driven triangle counting — each against its sequential
//! reference oracle.

use amcca::prelude::*;
use gc_datasets::{edge_sampling, generate_sbm, SbmParams};
use refgraph::{count_triangles, dijkstra, jaccard_coefficients, min_labels, DiGraph};
use sdgp_core::apps::{JaccardAlgo, ACT_JC_GEN, ACT_TRI_GEN, INF};

#[test]
fn sssp_matches_dijkstra_every_increment() {
    let n = 600u32;
    let edges = generate_sbm(&SbmParams {
        n_vertices: n,
        n_edges: 6000,
        blocks: 6,
        intra_prob: 0.7,
        max_weight: 9,
        seed: 31,
    });
    let d = edge_sampling(n, edges, 5, 4);
    let mut g = StreamingGraph::builder(SsspAlgo::new(0))
        .vertices(n)
        .chip(ChipConfig::default())
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    let mut acc: Vec<StreamEdge> = Vec::new();
    for i in 0..d.increments() {
        g.stream_edges(d.increment(i)).unwrap();
        acc.extend_from_slice(d.increment(i));
        let reference = dijkstra(&DiGraph::from_edges(n, acc.iter().copied()), 0);
        assert_eq!(g.states(), reference, "SSSP mismatch after increment {i}");
    }
    g.check_mirror_consistency().unwrap();
}

#[test]
fn sssp_shortcut_lowers_downstream_distances() {
    let mut g = StreamingGraph::builder(SsspAlgo::new(0))
        .vertices(5)
        .chip(ChipConfig::small_test())
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    g.stream_edges(&[(0, 1, 10), (1, 2, 10), (2, 3, 10)]).unwrap();
    assert_eq!(g.state_of(3), 30);
    // A cheap shortcut 0→2 must incrementally improve 2 and 3.
    g.stream_edges(&[(0, 2, 3)]).unwrap();
    assert_eq!(g.state_of(2), 3);
    assert_eq!(g.state_of(3), 13);
    assert_eq!(g.state_of(4), INF, "untouched vertex stays unreached");
}

#[test]
fn connected_components_match_union_find() {
    let n = 500u32;
    let base = generate_sbm(&SbmParams::scaled(n, 2000, 17));
    let d = edge_sampling(n, base, 4, 9);
    let mut g = StreamingGraph::builder(CcAlgo)
        .vertices(n)
        .chip(ChipConfig::default())
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    let mut acc: Vec<StreamEdge> = Vec::new();
    for i in 0..d.increments() {
        // CC requires undirected connectivity: stream both directions.
        let sym = symmetrize(d.increment(i));
        g.stream_edges(&sym).unwrap();
        acc.extend_from_slice(&sym);
        let reference = min_labels(&DiGraph::from_edges(n, acc.iter().copied()));
        assert_eq!(g.states(), reference, "CC labels mismatch after increment {i}");
    }
}

#[test]
fn components_merge_when_bridge_streams() {
    let mut g = StreamingGraph::builder(CcAlgo)
        .vertices(6)
        .chip(ChipConfig::small_test())
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    g.stream_edges(&symmetrize(&[(0, 1, 1), (3, 4, 1)])).unwrap();
    assert_eq!(g.state_of(1), 0);
    assert_eq!(g.state_of(4), 3);
    assert_eq!(g.state_of(5), 5);
    // Bridge the two components: the higher label must drain to 0.
    g.stream_edges(&symmetrize(&[(1, 3, 1)])).unwrap();
    assert_eq!(g.state_of(3), 0);
    assert_eq!(g.state_of(4), 0);
    assert_eq!(g.state_of(5), 5, "isolated vertex keeps its own label");
}

fn run_triangle_count(n: u32, undirected: &[(u32, u32)]) -> u64 {
    let cfg = ChipConfig::default();
    let ncc = cfg.cell_count();
    let mut g = StreamingGraph::builder(TriangleAlgo::new(ncc))
        .vertices(n)
        .chip(cfg)
        .rpvo(RpvoConfig::basic(4, 2)) // force spills
        .build()
        .unwrap();
    let stream: Vec<StreamEdge> = undirected.iter().map(|&(u, v)| (u, v, 1)).collect();
    g.stream_edges(&symmetrize(&stream)).unwrap();
    // Snapshot query: a tri-gen wave over every vertex.
    let gens: Vec<Operon> =
        (0..n).map(|v| Operon::new(g.addr_of(v), ACT_TRI_GEN, [0, 0])).collect();
    g.device_mut().app_mut().algo.reset();
    g.run_query(gens).unwrap();
    g.device().app().algo.total()
}

#[test]
fn triangle_count_exact_on_known_graphs() {
    // K4 has 4 triangles.
    let k4 = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    assert_eq!(run_triangle_count(4, &k4), 4);
    // A square has none; with one diagonal, two.
    assert_eq!(run_triangle_count(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]), 0);
    assert_eq!(run_triangle_count(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]), 2);
}

#[test]
fn triangle_count_matches_reference_on_sbm() {
    let n = 300u32;
    let edges = generate_sbm(&SbmParams::scaled(n, 2400, 77));
    // Canonicalize to undirected unique pairs.
    let mut und: Vec<(u32, u32)> = edges.iter().map(|&(u, v, _)| (u.min(v), u.max(v))).collect();
    und.sort_unstable();
    und.dedup();
    let expect = count_triangles(n, und.iter().copied());
    assert!(expect > 0, "SBM community graph should contain triangles");
    assert_eq!(run_triangle_count(n, &und), expect);
}

/// Run a Jaccard query wave and return `(u, v, J)` per canonical edge.
fn run_jaccard(n: u32, undirected: &[(u32, u32)], rcfg: RpvoConfig) -> Vec<(u32, u32, f64)> {
    let mut g = StreamingGraph::builder(JaccardAlgo::new())
        .vertices(n)
        .chip(ChipConfig::default())
        .rpvo(rcfg)
        .build()
        .unwrap();
    let stream: Vec<StreamEdge> = undirected.iter().map(|&(u, v)| (u, v, 1)).collect();
    g.stream_edges(&symmetrize(&stream)).unwrap();
    let wave: Vec<Operon> = (0..n).map(|v| Operon::new(g.addr_of(v), ACT_JC_GEN, [0, 0])).collect();
    g.device_mut().app_mut().algo.reset();
    g.run_query(wave).unwrap();
    // Assemble J from intersection hits plus host-side degrees.
    let degrees: Vec<usize> = (0..n).map(|v| g.logical_edges(v).len()).collect();
    let mut out: Vec<(u32, u32, f64)> = Vec::new();
    for &(a, b) in undirected {
        let (u, v) = (a.min(b), a.max(b));
        let inter = g.device().app().algo.intersection(u, v) as f64;
        let union = (degrees[u as usize] + degrees[v as usize]) as f64 - inter;
        out.push((u, v, if union == 0.0 { 0.0 } else { inter / union }));
    }
    out.sort_by_key(|&(u, v, _)| (u, v));
    out.dedup_by_key(|&mut (u, v, _)| (u, v));
    out
}

#[test]
fn jaccard_exact_on_known_graphs() {
    // Triangle: every edge has J = 1/3.
    let j = run_jaccard(3, &[(0, 1), (1, 2), (0, 2)], RpvoConfig::default());
    assert_eq!(j.len(), 3);
    for &(_, _, v) in &j {
        assert!((v - 1.0 / 3.0).abs() < 1e-12, "triangle edge J = {v}");
    }
    // K4: every edge has J = 0.5; tight capacity forces ghost walks.
    let k4 = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    let j = run_jaccard(4, &k4, RpvoConfig::basic(1, 1));
    for &(_, _, v) in &j {
        assert!((v - 0.5).abs() < 1e-12, "K4 edge J = {v}");
    }
    // Path: disjoint neighbourhoods.
    let j = run_jaccard(4, &[(0, 1), (1, 2), (2, 3)], RpvoConfig::default());
    assert!(j.iter().all(|&(_, _, v)| v == 0.0));
}

#[test]
fn jaccard_matches_reference_on_sbm() {
    let n = 200u32;
    let edges = generate_sbm(&SbmParams::scaled(n, 1600, 55));
    let mut und: Vec<(u32, u32)> = edges.iter().map(|&(u, v, _)| (u.min(v), u.max(v))).collect();
    und.sort_unstable();
    und.dedup();
    let got = run_jaccard(n, &und, RpvoConfig::basic(8, 2));
    let want = jaccard_coefficients(n, und.iter().copied());
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!((g.0, g.1), (w.0, w.1));
        assert!((g.2 - w.2).abs() < 1e-9, "J({},{}) = {} vs ref {}", g.0, g.1, g.2, w.2);
    }
}

#[test]
fn triangle_recount_per_increment_tracks_growth() {
    // Build a growing clique; after each increment the snapshot count must
    // equal the reference on the accumulated graph.
    let n = 10u32;
    let cfg = ChipConfig::small_test();
    let ncc = cfg.cell_count();
    let mut g = StreamingGraph::builder(TriangleAlgo::new(ncc))
        .vertices(n)
        .chip(cfg)
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    let mut acc: Vec<(u32, u32)> = Vec::new();
    for k in 2..n {
        // Increment: connect vertex k to all previous vertices.
        let newe: Vec<(u32, u32)> = (0..k).map(|u| (u, k)).collect();
        let stream: Vec<StreamEdge> = newe.iter().map(|&(u, v)| (u, v, 1)).collect();
        g.stream_edges(&symmetrize(&stream)).unwrap();
        acc.extend_from_slice(&newe);
        let gens: Vec<Operon> =
            (0..n).map(|v| Operon::new(g.addr_of(v), ACT_TRI_GEN, [0, 0])).collect();
        g.device_mut().app_mut().algo.reset();
        g.run_query(gens).unwrap();
        let got = g.device().app().algo.total();
        let expect = count_triangles(n, acc.iter().copied());
        assert_eq!(got, expect, "triangle count after connecting vertex {k}");
    }
}
