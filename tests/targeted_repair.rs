//! Tests of frontier-scoped (targeted) deletion repair.
//!
//! The claims pinned here, per the repair contract in `sdgp_core::graph`:
//!
//! 1. **Fixpoint equivalence** — full-wave and targeted reseed reach
//!    bit-identical fixpoints (states, stored edges, mirrors) on
//!    sliding-window churn streams, arrival- and Snowball-ordered, with and
//!    without weight updates, batch after batch.
//! 2. **Scoping** — the targeted reseed's trigger count (the new
//!    `RunReport::reseed_triggers`) is bounded by the invalidated region:
//!    the recall-reachable closure of the deleted edges' endpoints plus its
//!    one-hop neighbourhood and the batch's own mutation sources — and is
//!    strictly below `n` on a small-batch/large-graph case where the full
//!    wave pays `n` every batch.

mod common;

use amcca::gc_datasets::{generate_churn, ChurnParams, Sampling};
use amcca::prelude::*;
use common::oracle::surviving_edges;
use refgraph::{bfs_levels, DiGraph};

/// Build one churn batch's mutation list in the generator's canonical order
/// (deletes → inserts → updates).
fn batch_muts(b: &amcca::gc_datasets::MutationBatch) -> Vec<GraphMutation> {
    let mut muts = Vec::with_capacity(b.dels.len() + b.adds.len() + b.updates.len());
    muts.extend(b.dels.iter().copied().map(GraphMutation::DelEdge));
    muts.extend(b.adds.iter().copied().map(GraphMutation::AddEdge));
    muts.extend(b.updates.iter().map(|&(u, v, w)| GraphMutation::UpdateWeight { u, v, w }));
    muts
}

fn graph(n: u32, mode: RepairMode) -> StreamingGraph<BfsAlgo> {
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(n)
        .chip(ChipConfig::small_test())
        .rpvo(RpvoConfig::basic(3, 2).with_rhizomes(8, 3))
        .build()
        .unwrap();
    g.set_repair_mode(mode);
    g
}

/// Full vs targeted on a churn schedule: bit-identical states, stored
/// edges, and oracle agreement after EVERY batch; targeted triggers never
/// exceed full's (which pays `n` whenever any repair runs).
fn assert_modes_agree(p: &ChurnParams) {
    let c = generate_churn(p);
    let mut full = graph(c.n_vertices, RepairMode::Full);
    let mut targeted = graph(c.n_vertices, RepairMode::Targeted);
    let mut repair_batches = 0u32;
    for i in 0..c.len() {
        let muts = batch_muts(c.batch(i));
        let rf = full.stream_increment(&muts).unwrap();
        let rt = targeted.stream_increment(&muts).unwrap();
        assert_eq!(full.states(), targeted.states(), "batch {i}: states bit-identical");
        assert_eq!(full.total_edges_stored(), targeted.total_edges_stored(), "batch {i}");
        let oracle =
            bfs_levels(&DiGraph::from_edges(c.n_vertices, c.live_after(i).iter().copied()), 0);
        assert_eq!(targeted.states(), oracle, "batch {i}: rebuild oracle");
        if rf.reseed_triggers > 0 {
            repair_batches += 1;
            assert_eq!(rf.reseed_triggers, c.n_vertices as u64, "full wave pays n");
            assert!(rt.reseed_triggers <= rf.reseed_triggers, "targeted never exceeds full");
        } else {
            assert_eq!(rt.reseed_triggers, 0, "batch {i}: both modes agree repair is needed");
        }
    }
    assert!(repair_batches > 0, "schedule must exercise the repair path");
    full.check_mirror_consistency().unwrap();
    targeted.check_mirror_consistency().unwrap();
}

#[test]
fn full_and_targeted_reach_identical_fixpoints_on_churn() {
    assert_modes_agree(&ChurnParams {
        n_vertices: 48,
        batches: 5,
        adds_per_batch: 90,
        window: 2,
        drain: true,
        updates_per_batch: 0,
        order: Sampling::Edge,
        labels: 0,
        seed: 7,
    });
}

#[test]
fn full_and_targeted_reach_identical_fixpoints_on_snowball_churn() {
    assert_modes_agree(&ChurnParams {
        n_vertices: 48,
        batches: 5,
        adds_per_batch: 90,
        window: 2,
        drain: true,
        updates_per_batch: 0,
        order: Sampling::Snowball,
        labels: 0,
        seed: 8,
    });
}

#[test]
fn full_and_targeted_reach_identical_fixpoints_with_weight_updates() {
    assert_modes_agree(&ChurnParams {
        n_vertices: 48,
        batches: 5,
        adds_per_batch: 90,
        window: 2,
        drain: true,
        updates_per_batch: 12,
        order: Sampling::Edge,
        labels: 0,
        seed: 9,
    });
}

/// An independent upper bound on the repair frontier of a delete-only
/// batch: every invalidated vertex lies in the recall-reachable closure `R`
/// of the deleted edges' destinations (recalls cascade only along the out-
/// edges of invalidated vertices), every rejector is in `R` or one out-hop
/// from it, every ledger in-neighbour is one in-hop from `R`, and the only
/// other triggers are the batch's own insert sources. Computed over the
/// union of pre-batch survivors and the batch's adds.
fn region_bound(pre: &[StreamEdge], batch: &[GraphMutation], n: u32) -> u64 {
    let mut edges: Vec<StreamEdge> = pre.to_vec();
    let mut seeds: Vec<u32> = Vec::new();
    let mut sources: Vec<u32> = Vec::new();
    for m in batch {
        match *m {
            GraphMutation::AddEdge(e) | GraphMutation::AddLabeledEdge(e, _) => {
                edges.push(e);
                sources.push(e.0);
            }
            GraphMutation::DelEdge((_, v, _)) => seeds.push(v),
            GraphMutation::UpdateWeight { u, v, .. } => {
                seeds.push(v);
                sources.push(u);
            }
        }
    }
    // Forward closure of the seeds.
    let mut in_region = vec![false; n as usize];
    let mut stack = seeds;
    while let Some(v) = stack.pop() {
        if std::mem::replace(&mut in_region[v as usize], true) {
            continue;
        }
        for &(a, b, _) in &edges {
            if a == v && !in_region[b as usize] {
                stack.push(b);
            }
        }
    }
    // One hop out (rejectors) and one hop in (ledger in-neighbours).
    let mut member = in_region.clone();
    for &(a, b, _) in &edges {
        if in_region[a as usize] {
            member[b as usize] = true;
        }
        if in_region[b as usize] {
            member[a as usize] = true;
        }
    }
    for s in sources {
        member[s as usize] = true;
    }
    member.iter().filter(|&&m| m).count() as u64
}

/// Small deletion batches on a large graph: the targeted trigger count is
/// bounded by the invalidated region's size — strictly below `n` — while
/// the full wave pays `n` per batch. Fixpoints stay bit-identical.
#[test]
fn targeted_triggers_are_bounded_by_the_invalidated_region() {
    let n: u32 = 200;
    // A long weave of chains plus cross links: deep BFS trees, so a single
    // deleted edge invalidates a bounded downstream region.
    let mut base: Vec<StreamEdge> = (0..n - 1).map(|v| (v, v + 1, 1)).collect();
    base.extend((0..n - 20).step_by(7).map(|v| (v, v + 20, 1)));
    let mut full = graph(n, RepairMode::Full);
    let mut targeted = graph(n, RepairMode::Targeted);
    full.stream_edges(&base).unwrap();
    targeted.stream_edges(&base).unwrap();
    // Five small delete batches, each retracting 3 edges from the middle.
    let mut applied: Vec<GraphMutation> = GraphMutation::adds(&base);
    for round in 0..5u32 {
        let at = 30 + round * 25;
        let batch: Vec<GraphMutation> =
            (0..3).map(|i| GraphMutation::DelEdge((at + i, at + i + 1, 1))).collect();
        let pre = surviving_edges(&applied);
        let rf = full.stream_increment(&batch).unwrap();
        let rt = targeted.stream_increment(&batch).unwrap();
        applied.extend_from_slice(&batch);
        assert_eq!(full.states(), targeted.states(), "round {round}: bit-identical fixpoints");
        assert_eq!(rf.reseed_triggers, n as u64, "full repair pays n every batch");
        let bound = region_bound(&pre, &batch, n);
        assert!(
            rt.reseed_triggers <= bound,
            "round {round}: {} triggers exceed the invalidated-region bound {bound}",
            rt.reseed_triggers
        );
        assert!(
            rt.reseed_triggers < n as u64,
            "round {round}: targeted repair must not touch every vertex"
        );
        assert!(rt.reseed_triggers > 0, "round {round}: something must reseed");
        // The host's own accounting is consistent with the wave it sent.
        let stats = targeted.last_repair();
        assert_eq!(stats.triggers, rt.reseed_triggers);
        assert!(
            stats.triggers
                <= stats.invalidated + stats.rejected + stats.in_neighbors + stats.touched,
            "triggers are a deduped union of the recorded frontier parts: {stats:?}"
        );
    }
    // End state still matches a from-scratch rebuild over the survivors.
    let live = surviving_edges(&applied);
    let oracle = bfs_levels(&DiGraph::from_edges(n, live.iter().copied()), 0);
    assert_eq!(targeted.states(), oracle);
    targeted.check_mirror_consistency().unwrap();
    full.check_mirror_consistency().unwrap();
}

/// Repair cycles follow the trigger scoping: on the small-batch workload
/// the targeted reseed phase is strictly cheaper than the full wave.
#[test]
fn targeted_repair_cycles_undercut_full_wave() {
    let n: u32 = 200;
    let base: Vec<StreamEdge> = (0..n - 1).map(|v| (v, v + 1, 1)).collect();
    let run = |mode: RepairMode| {
        let mut g = graph(n, mode);
        g.stream_edges(&base).unwrap();
        let r = g.stream_increment(&[GraphMutation::DelEdge((150, 151, 1))]).unwrap();
        (g.states(), r.reseed_triggers, r.repair_cycles)
    };
    let (fs, ft, fc) = run(RepairMode::Full);
    let (ts, tt, tc) = run(RepairMode::Targeted);
    assert_eq!(fs, ts, "bit-identical fixpoints");
    assert_eq!(ft, n as u64);
    assert!(tt < ft, "targeted triggers {tt} < full {ft}");
    assert!(tc < fc, "targeted repair cycles {tc} < full {fc}");
    assert!(tc > 0);
}
