//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec()`], mirroring `proptest::collection::SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate `Vec`s whose length is drawn from `size` (e.g. `1..400`) and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let n = self.size.lo + (rng.next_u64() % span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_ranges() {
        let mut rng = TestRng::from_name("vec_test");
        for _ in 0..200 {
            let v = vec((0u32..10, 5u32..8), 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 10 && (5..8).contains(&b)));
        }
    }

    #[test]
    fn nested_vec_generates() {
        let mut rng = TestRng::from_name("nested");
        let v = vec(vec(0u16..36, 1..8), 1..4).generate(&mut rng);
        assert!(!v.is_empty());
    }

    #[test]
    fn fixed_and_inclusive_sizes() {
        let mut rng = TestRng::from_name("sizes");
        assert_eq!(vec(0u8..5, 3).generate(&mut rng).len(), 3);
        let v = vec(0u8..5, 2..=4).generate(&mut rng);
        assert!((2..=4).contains(&v.len()));
    }
}
