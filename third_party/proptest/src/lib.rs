//! Offline stand-in for the `proptest` crate.
//!
//! Implements the surface this workspace uses: the [`proptest!`] macro (with
//! optional `#![proptest_config(..)]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, integer range and tuple strategies, [`collection::vec`],
//! `Strategy::prop_map`, and [`arbitrary::any`]. Cases are generated from a
//! deterministic per-test seed; there is **no shrinking** — a failing case
//! panics with the case number so it can be re-run deterministically.

pub mod strategy;

pub mod test_runner;

pub mod collection;

pub mod arbitrary;

/// The most common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_add(config.max_global_rejects);
                while ran < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest `{}`: too many rejected cases ({} attempts for {} cases)",
                        stringify!($name), attempts, config.cases,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body; ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {} (attempt {}): {}",
                                stringify!($name), ran, attempts, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    l, r,
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
                    l, r, format!($($fmt)+),
                );
            }
        }
    };
}

/// `assert_ne!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                    l,
                    r,
                );
            }
        }
    };
}

/// Reject the current case (it does not count toward `config.cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
