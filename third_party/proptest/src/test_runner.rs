//! Test-runner plumbing: configuration, case outcomes, and the case RNG.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must run.
    pub cases: u32,
    /// Abort the test if `prop_assume!` rejects this many cases in total.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 1024 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is not counted.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic per-test RNG (SplitMix64 seeded from the test's path).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
