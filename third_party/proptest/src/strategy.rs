//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

// u64 ranges need widening through u128 (i128 would overflow at u64::MAX).
impl Strategy for core::ops::Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end as u128 - self.start as u128;
        self.start + (rng.next_u64() as u128 % span) as u64
    }
}

impl Strategy for core::ops::RangeInclusive<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = hi as u128 - lo as u128 + 1;
        lo + (rng.next_u64() as u128 % span) as u64
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_map_stay_in_bounds() {
        let mut rng = TestRng::from_name("strategy_tests");
        for _ in 0..1000 {
            let (a, b) = (0u16..36, 1u64..100).generate(&mut rng);
            assert!(a < 36 && (1..100).contains(&b));
            let v = (0u32..=u32::MAX).generate(&mut rng);
            let _ = v;
            let doubled = (1usize..5).prop_map(|x| x * 2).generate(&mut rng);
            assert!([2, 4, 6, 8].contains(&doubled));
            assert_eq!(Just(7i32).generate(&mut rng), 7);
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = TestRng::from_name("u64_full");
        let _ = (0u64..=u64::MAX).generate(&mut rng);
    }
}
