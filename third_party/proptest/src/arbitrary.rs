//! `any::<T>()` — whole-domain strategies for primitive types.

use core::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_covers_high_bits() {
        let mut rng = TestRng::from_name("any_u64");
        assert!((0..100).any(|_| any::<u64>().generate(&mut rng) > u64::MAX / 2));
    }
}
