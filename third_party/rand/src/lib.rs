//! Offline stand-in for the `rand` crate.
//!
//! Implements only the surface this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] / [`Rng::gen_bool`]
//! over integer ranges. The generator is SplitMix64-based: deterministic per
//! seed but *not* stream-compatible with the real `rand::rngs::StdRng`.

/// Low-level source of randomness.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive integer range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled from, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 core).
    ///
    /// Statistically fine for tests and workload synthesis; not
    /// cryptographic and not stream-compatible with real `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "p=0.7 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn spread_covers_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..16)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
