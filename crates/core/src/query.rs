//! Standing label-constrained path queries.
//!
//! A query is a restricted regular expression over edge labels — atoms
//! `a`–`z` (mapped to labels 1–26), each optionally modified by `*` (zero or
//! more), `+` (one or more) or `?` (optional), concatenated with `.` — e.g.
//! `a.b*.c`. Registered against a `StreamingGraph`, the pattern is compiled
//! by [`compile`] into a small position automaton ([`QueryDfa`], ≤ 32
//! states): a vertex `v` is a **result** iff some path from the query's
//! source vertex to `v` spells a label word matching the pattern.
//!
//! Evaluation is the textbook product construction, maintained as one bitset
//! of automaton states per `(vertex, query)` on the vertex objects
//! themselves (`VertexObj::qbits`): inserts extend the reachable product
//! states through the monotone [`diffusive::query`] diffusion, and deletions
//! run a scoped clear-and-reseed repair over exactly the region reachable
//! from the deleted edges (see `StreamingGraph::register_query` and the
//! repair pass in `stream_increment`). [`oracle_results`] is the from-scratch
//! recompute every incremental result set is pinned against in tests and the
//! `paper queries` scenario.

use std::collections::VecDeque;
use std::fmt;

/// Highest edge label a pattern atom can name (`z` = 26; 0 = unlabelled).
pub const MAX_LABEL: u8 = 26;

/// Maximum automaton states (pattern factors + 1); bitsets are `u32`.
pub const MAX_STATES: usize = 32;

/// Why a query pattern failed to compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The pattern was empty.
    Empty,
    /// A factor did not start with an atom `a`–`z`.
    BadAtom(char),
    /// Two factors were not separated by exactly one `.`.
    BadSeparator(char),
    /// The pattern has more factors than [`MAX_STATES`] − 1.
    TooManyFactors(usize),
    /// The query's source vertex does not exist in the graph it was
    /// registered against (raised at registration, not compilation).
    SourceOutOfRange {
        /// The source vertex the registration named.
        source: u32,
        /// Number of vertices in the graph.
        n: u32,
    },
    /// A multi-source registration named no sources at all — the query
    /// could never match anything.
    NoSources,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QueryError::Empty => write!(f, "empty query pattern"),
            QueryError::BadAtom(c) => write!(f, "expected an atom a-z, found {c:?}"),
            QueryError::BadSeparator(c) => write!(f, "expected '.' between factors, found {c:?}"),
            QueryError::TooManyFactors(n) => {
                write!(f, "{n} factors exceed the {}-state automaton bound", MAX_STATES)
            }
            QueryError::SourceOutOfRange { source, n } => {
                write!(f, "query source {source} out of range (graph has {n} vertices)")
            }
            QueryError::NoSources => write!(f, "query registered with no source vertices"),
        }
    }
}

impl std::error::Error for QueryError {}

/// How often one factor's atom may repeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rep {
    /// Exactly once (no modifier).
    One,
    /// Zero or more (`*`).
    Star,
    /// One or more (`+`).
    Plus,
    /// Zero or one (`?`).
    Opt,
}

impl Rep {
    /// May the factor match the empty word?
    fn skippable(self) -> bool {
        matches!(self, Rep::Star | Rep::Opt)
    }

    /// May the factor consume more than one atom?
    fn repeatable(self) -> bool {
        matches!(self, Rep::Star | Rep::Plus)
    }
}

/// A compiled query automaton: state `i` means "the first `i` factors of the
/// pattern are satisfied", so state `n_states − 1` accepts. Transitions are
/// pre-closed over skippable factors, which keeps [`QueryDfa::step`] a pure
/// table fold over the set bits — the operation vertex objects perform when
/// an `ACT_QUERY` operon arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryDfa {
    n_states: u8,
    start: u32,
    accepting: u32,
    /// `steps[label][state]` = closed successor bitset (index 0 unused: an
    /// unlabelled edge never advances a query).
    steps: Vec<[u32; MAX_STATES]>,
}

impl QueryDfa {
    /// Number of automaton states (pattern factors + 1).
    pub fn n_states(&self) -> usize {
        self.n_states as usize
    }

    /// The closed start bitset — the states holding at the query's source
    /// vertex before any edge is traversed.
    pub fn start_bits(&self) -> u32 {
        self.start
    }

    /// The accepting-state mask.
    pub fn accepting_bits(&self) -> u32 {
        self.accepting
    }

    /// Does a state bitset contain an accepting state?
    pub fn accepts(&self, bits: u32) -> bool {
        bits & self.accepting != 0
    }

    /// Step a state bitset along one edge label: the union of the closed
    /// successors of every set state. Label 0 (unlabelled) and labels beyond
    /// [`MAX_LABEL`] never advance a query.
    pub fn step(&self, bits: u32, label: u8) -> u32 {
        let Some(table) = self.steps.get(label as usize).filter(|_| label != 0) else {
            return 0;
        };
        let mut out = 0;
        let mut rest = bits & ((1u64 << self.n_states) - 1) as u32;
        while rest != 0 {
            let s = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            out |= table[s];
        }
        out
    }
}

/// Compile a pattern (module docs grammar) into its position automaton.
pub fn compile(pattern: &str) -> Result<QueryDfa, QueryError> {
    let mut factors: Vec<(u8, Rep)> = Vec::new();
    let mut chars = pattern.chars().peekable();
    loop {
        let Some(c) = chars.next() else {
            return Err(QueryError::Empty);
        };
        if !c.is_ascii_lowercase() {
            return Err(QueryError::BadAtom(c));
        }
        let label = (c as u8) - b'a' + 1;
        let rep = match chars.peek() {
            Some('*') => Rep::Star,
            Some('+') => Rep::Plus,
            Some('?') => Rep::Opt,
            _ => Rep::One,
        };
        if rep != Rep::One {
            chars.next();
        }
        factors.push((label, rep));
        match chars.next() {
            None => break,
            Some('.') => continue,
            Some(c) => return Err(QueryError::BadSeparator(c)),
        }
    }
    let k = factors.len();
    if k > MAX_STATES - 1 {
        return Err(QueryError::TooManyFactors(k));
    }
    // eps(i): states reachable from i by skipping skippable factors forward.
    let eps = |i: usize| -> u32 {
        let mut bits = 1u32 << i;
        for (j, &(_, rep)) in factors.iter().enumerate().skip(i) {
            if !rep.skippable() {
                break;
            }
            bits |= 1 << (j + 1);
        }
        bits
    };
    let mut steps = vec![[0u32; MAX_STATES]; MAX_LABEL as usize + 1];
    for i in 0..=k {
        // Consume the next unskipped factor's atom from any eps-successor.
        let mut reach = eps(i);
        while reach != 0 {
            let j = reach.trailing_zeros() as usize;
            reach &= reach - 1;
            if j < k {
                let (label, _) = factors[j];
                steps[label as usize][i] |= eps(j + 1);
            }
        }
        // Repeat the factor just satisfied (its own atom, if repeatable).
        if i >= 1 {
            let (label, rep) = factors[i - 1];
            if rep.repeatable() {
                steps[label as usize][i] |= eps(i);
            }
        }
    }
    Ok(QueryDfa { n_states: (k + 1) as u8, start: eps(0), accepting: 1 << k, steps })
}

/// One registered standing query: the source pattern, the source vertices
/// the paths are anchored at, and the compiled automaton. All sources share
/// one compiled DFA and one qbits plane — a vertex matches if a matching
/// path reaches it from *any* source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StandingQuery {
    /// The pattern as registered (re-compiled on checkpoint restore).
    pub pattern: String,
    /// The vertices a matching path may start from (sorted, deduplicated
    /// at registration; single-source registration yields one entry).
    pub sources: Vec<u32>,
    /// The compiled automaton.
    pub dfa: QueryDfa,
}

/// One standing query's result-set change across a single increment:
/// vertices that entered (`added`) and left (`removed`) the accepting set,
/// both sorted ascending. Computed incrementally in `stream_increment`
/// from the qbits transitions the batch actually caused — not a rescan —
/// and pinned bit-identical to diffing the polled result sets before and
/// after the batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryDelta {
    /// The query the delta belongs to.
    pub qid: u32,
    /// Vertices that newly match, ascending.
    pub added: Vec<u32>,
    /// Vertices that no longer match, ascending.
    pub removed: Vec<u32>,
}

impl QueryDelta {
    /// True when the increment left the result set unchanged.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// From-scratch product-state recompute: the least fixpoint of automaton
/// state bitsets over the labelled edge set `(u, v, label)`, anchored at
/// `source` with the automaton's closed start states. Returns the sorted
/// result vertices (those holding an accepting state). This is the oracle
/// every incrementally maintained result set is pinned against.
pub fn oracle_results(
    n_vertices: u32,
    edges: &[(u32, u32, u8)],
    dfa: &QueryDfa,
    source: u32,
) -> Vec<u32> {
    oracle_results_multi(n_vertices, edges, dfa, &[source])
}

/// [`oracle_results`] for a multi-source query: start states are seeded at
/// every source, sharing one automaton — exactly the semantics of
/// `register_query_multi`.
pub fn oracle_results_multi(
    n_vertices: u32,
    edges: &[(u32, u32, u8)],
    dfa: &QueryDfa,
    sources: &[u32],
) -> Vec<u32> {
    let bits = oracle_bits_multi(n_vertices, edges, dfa, sources);
    (0..n_vertices).filter(|&v| dfa.accepts(bits[v as usize])).collect()
}

/// The per-vertex fixpoint bitsets behind [`oracle_results`] (exposed so
/// tests can pin the raw product states, not just the accepting set).
pub fn oracle_bits(
    n_vertices: u32,
    edges: &[(u32, u32, u8)],
    dfa: &QueryDfa,
    source: u32,
) -> Vec<u32> {
    oracle_bits_multi(n_vertices, edges, dfa, &[source])
}

/// The per-vertex fixpoint bitsets behind [`oracle_results_multi`].
pub fn oracle_bits_multi(
    n_vertices: u32,
    edges: &[(u32, u32, u8)],
    dfa: &QueryDfa,
    sources: &[u32],
) -> Vec<u32> {
    let mut adj: Vec<Vec<(u32, u8)>> = vec![Vec::new(); n_vertices as usize];
    for &(u, v, label) in edges {
        adj[u as usize].push((v, label));
    }
    let mut bits = vec![0u32; n_vertices as usize];
    let mut queue = VecDeque::new();
    for &source in sources {
        if source < n_vertices && bits[source as usize] != dfa.start_bits() {
            bits[source as usize] = dfa.start_bits();
            queue.push_back(source);
        }
    }
    while let Some(u) = queue.pop_front() {
        let ub = bits[u as usize];
        for &(v, label) in &adj[u as usize] {
            let new = dfa.step(ub, label) & !bits[v as usize];
            if new != 0 {
                bits[v as usize] |= new;
                queue.push_back(v);
            }
        }
    }
    bits
}

/// Map an atom character `a`–`z` to its edge label 1–26 (convenience for
/// dataset generators and benches building labelled streams).
pub fn label_of(atom: char) -> Option<u8> {
    atom.is_ascii_lowercase().then(|| (atom as u8) - b'a' + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results(pattern: &str, n: u32, edges: &[(u32, u32, u8)], source: u32) -> Vec<u32> {
        oracle_results(n, edges, &compile(pattern).unwrap(), source)
    }

    const A: u8 = 1;
    const B: u8 = 2;
    const C: u8 = 3;

    #[test]
    fn atom_mapping() {
        assert_eq!(label_of('a'), Some(1));
        assert_eq!(label_of('z'), Some(26));
        assert_eq!(label_of('A'), None);
        assert_eq!(label_of('.'), None);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(compile(""), Err(QueryError::Empty));
        assert_eq!(compile("a."), Err(QueryError::Empty), "trailing separator");
        assert_eq!(compile("A"), Err(QueryError::BadAtom('A')));
        assert_eq!(compile("a.*"), Err(QueryError::BadAtom('*')));
        assert_eq!(compile("ab"), Err(QueryError::BadSeparator('b')));
        assert_eq!(compile("a**"), Err(QueryError::BadSeparator('*')));
        let long = vec!["a"; MAX_STATES].join(".");
        assert_eq!(compile(&long), Err(QueryError::TooManyFactors(MAX_STATES)));
    }

    #[test]
    fn single_atom_matches_one_hop() {
        // 0 -a-> 1 -b-> 2
        let edges = [(0, 1, A), (1, 2, B)];
        assert_eq!(results("a", 3, &edges, 0), vec![1]);
        assert_eq!(results("a.b", 3, &edges, 0), vec![2]);
        assert_eq!(results("b", 3, &edges, 0), Vec::<u32>::new());
    }

    #[test]
    fn star_matches_zero_and_many() {
        // 0 -a-> 1 -b-> 2 -b-> 3 -c-> 4
        let edges = [(0, 1, A), (1, 2, B), (2, 3, B), (3, 4, C)];
        assert_eq!(results("a.b*.c", 5, &edges, 0), vec![4]);
        assert_eq!(results("a.b*", 5, &edges, 0), vec![1, 2, 3], "zero, one, two bs");
        assert_eq!(results("a.b+.c", 5, &edges, 0), vec![4]);
        assert_eq!(results("a.c?", 5, &edges, 0), vec![1], "c optional but absent");
    }

    #[test]
    fn skippable_prefix_accepts_the_source() {
        let edges = [(0, 1, A)];
        assert_eq!(results("a*", 2, &edges, 0), vec![0, 1], "empty word matches at the source");
        assert_eq!(results("a?.b?", 2, &edges, 0), vec![0, 1]);
        assert_eq!(results("a+", 2, &edges, 0), vec![1], "plus requires one atom");
    }

    #[test]
    fn plus_requires_the_first_atom_before_repeating() {
        // A b-cycle reachable over a: plus and star agree past the entry.
        let edges = [(0, 1, B), (1, 2, B), (2, 1, B)];
        assert_eq!(results("b+", 3, &edges, 0), vec![1, 2]);
        assert_eq!(results("b*", 3, &edges, 0), vec![0, 1, 2]);
    }

    #[test]
    fn unlabelled_edges_never_advance_a_query() {
        let edges = [(0, 1, 0), (1, 2, A)];
        assert_eq!(results("a", 3, &edges, 0), Vec::<u32>::new(), "0-labelled hop breaks the path");
        assert_eq!(results("a", 3, &edges, 1), vec![2]);
    }

    #[test]
    fn cycles_converge() {
        // a-cycle 0 -> 1 -> 0 plus an exit 1 -c-> 2.
        let edges = [(0, 1, A), (1, 0, A), (1, 2, C)];
        assert_eq!(results("a+.c", 3, &edges, 0), vec![2]);
        assert_eq!(results("a*", 3, &edges, 0), vec![0, 1]);
    }

    #[test]
    fn step_is_a_pure_table_fold() {
        let dfa = compile("a.b*.c").unwrap();
        assert_eq!(dfa.n_states(), 4);
        let s0 = dfa.start_bits();
        assert_eq!(s0, 0b0001);
        let s1 = dfa.step(s0, A);
        assert_eq!(s1, 0b0110, "a consumed, closed over the skippable b*");
        assert_eq!(dfa.step(s1, B), 0b0100, "b loops in place");
        assert!(dfa.accepts(dfa.step(s1, C)), "c completes");
        assert_eq!(dfa.step(s1, A), 0, "no second a");
        assert_eq!(dfa.step(s0, 0), 0, "unlabelled edges are inert");
        assert_eq!(dfa.step(s0, MAX_LABEL + 1), 0, "out-of-range labels are inert");
    }

    #[test]
    fn oracle_bits_expose_the_product_fixpoint() {
        let dfa = compile("a.b").unwrap();
        let bits = oracle_bits(3, &[(0, 1, A), (1, 2, B)], &dfa, 0);
        assert_eq!(bits, vec![0b001, 0b010, 0b100]);
    }

    #[test]
    fn multi_source_oracle_unions_the_anchors() {
        // Two disjoint a-chains anchored at 0 and 3.
        let edges = [(0, 1, A), (3, 4, A)];
        let dfa = compile("a").unwrap();
        assert_eq!(oracle_results_multi(5, &edges, &dfa, &[0, 3]), vec![1, 4]);
        assert_eq!(oracle_results_multi(5, &edges, &dfa, &[0, 0, 3]), vec![1, 4], "dups harmless");
        assert_eq!(oracle_results_multi(5, &edges, &dfa, &[]), Vec::<u32>::new());
        // The multi-source fixpoint is exactly the union of the per-source
        // fixpoints (the product construction is monotone in start seeds).
        let mut union: Vec<u32> = oracle_results(5, &edges, &dfa, 0)
            .into_iter()
            .chain(oracle_results(5, &edges, &dfa, 3))
            .collect();
        union.sort_unstable();
        union.dedup();
        assert_eq!(oracle_results_multi(5, &edges, &dfa, &[0, 3]), union);
    }
}
