//! The shared host-side mutation log: one implementation of the batch
//! coalescing semantics.
//!
//! [`MutationLog`] mirrors the live directed edge multiset (per-pair copy
//! queues, oldest first, at current weights) and accepts a stream of
//! [`GraphMutation`]s, coalescing the mutations of the **current epoch**
//! exactly the way `StreamingGraph::stream_increment` merges a batch before
//! anything reaches the fabric:
//!
//! * a delete that matches an insert of the same epoch **annihilates** it —
//!   the pair never leaves the host;
//! * a re-weight of a same-epoch insert **rewrites the insert in place**
//!   (nothing was ever announced under the old weight, so no repair);
//! * repeat re-weights of one copy **fold into a single patch** carrying the
//!   final weight;
//! * a delete of a re-weighted settled copy **drops the moot patch** and
//!   emits the retraction under the copy's epoch-start weight (the weight
//!   the fabric still stores).
//!
//! [`MutationLog::drain`] closes the epoch and returns the canonical
//! coalesced batch — surviving mutations in arrival order — together with
//! the repair bookkeeping the two-phase pipeline needs: whether anything
//! structural survived (`needs_repair`) and which sources the structural
//! phase would suppress (`touched`). Replaying the canonical batch against
//! a fresh consumer reproduces the exact live multiset, which is what makes
//! the log shareable: `StreamingGraph` drives its operon wave from it, the
//! `amcca-serve` ingest loop batches concurrent client submissions through
//! it, and `gc_datasets` replays churn schedules over it.
//!
//! Validation is part of the contract: deleting or re-weighting an identity
//! with no live copy is a host bug ([`MutationLog::push`] panics with the
//! streaming pipeline's exact message) or, for a server admitting untrusted
//! batches, a recoverable [`MutationError`] ([`MutationLog::try_push`]).

use std::collections::{HashMap, VecDeque};
use std::fmt;

use super::{GraphMutation, StreamEdge};

/// Why a mutation cannot be applied to the live edge multiset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationError {
    /// A `DelEdge` named an identity with no live copy at that weight.
    NoLiveCopyToDelete {
        /// Source vertex of the rejected delete.
        u: u32,
        /// Destination vertex of the rejected delete.
        v: u32,
        /// Weight the delete named.
        w: u32,
    },
    /// An `UpdateWeight` named a pair with no live copy.
    NoLiveCopyToUpdate {
        /// Source vertex of the rejected update.
        u: u32,
        /// Destination vertex of the rejected update.
        v: u32,
        /// New weight the update carried.
        w: u32,
    },
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MutationError::NoLiveCopyToDelete { u, v, w } => {
                write!(f, "DelEdge({u} -> {v}, w {w}): no live copy to delete")
            }
            MutationError::NoLiveCopyToUpdate { u, v, w } => {
                write!(f, "UpdateWeight({u} -> {v}, w {w}): no live copy to update")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// Where a live copy stands relative to the current epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyKind {
    /// Streamed in an earlier epoch: the fabric stores it.
    Settled,
    /// Inserted this epoch; `entry` indexes its pending `AddEdge`.
    Fresh { entry: usize },
    /// Settled copy re-weighted this epoch; `entry` indexes the pending
    /// patch and `w_start` is the weight the fabric still stores.
    Patched { w_start: u32, entry: usize },
}

/// One live copy of a directed pair.
#[derive(Debug, Clone, Copy)]
struct LogCopy {
    /// Global arrival number (drives insertion-order iteration).
    seq: u64,
    /// Current weight.
    w: u32,
    /// Edge label carried by the copy's insert (0 = unlabelled). Labels are
    /// immutable for a copy's lifetime and are not part of the delete/update
    /// addressing identity — they only drive standing-query automata.
    label: u8,
    kind: CopyKind,
}

/// The canonical coalesced batch an epoch drains to.
#[derive(Debug, Clone, Default)]
pub struct CoalescedBatch {
    /// Surviving mutations in arrival order: annihilated pairs removed,
    /// rewritten inserts and folded patches in place of their originals.
    pub muts: Vec<GraphMutation>,
    /// Sources of this epoch's inserts and first re-weights of settled
    /// copies, in arrival order with repeats (the structural phase
    /// suppresses their announcements; the repair frontier folds them in).
    pub touched: Vec<u32>,
    /// Whether anything in the epoch retracts or re-weighs announced state:
    /// a delete of a settled copy, or a re-weight above a settled copy's
    /// epoch-start weight — even when a later same-epoch delete dropped the
    /// patch itself (the decision to repair is made at arrival time).
    pub needs_repair: bool,
}

impl CoalescedBatch {
    /// True when nothing survived the epoch.
    pub fn is_empty(&self) -> bool {
        self.muts.is_empty()
    }

    /// Number of mutations in the canonical batch.
    pub fn len(&self) -> usize {
        self.muts.len()
    }
}

/// Host-side live-copy model plus current-epoch coalescing (module docs).
#[derive(Debug, Clone, Default)]
pub struct MutationLog {
    /// Live copies per directed pair, oldest first.
    pairs: HashMap<(u32, u32), VecDeque<LogCopy>>,
    /// Current epoch's pending mutations in arrival order (`None` =
    /// annihilated insert or dropped patch).
    entries: Vec<Option<GraphMutation>>,
    touched: Vec<u32>,
    needs_repair: bool,
    /// Live copies across all pairs.
    live: u64,
    /// Next arrival number.
    seq: u64,
}

impl MutationLog {
    /// An empty log: no live copies, empty epoch.
    pub fn new() -> MutationLog {
        MutationLog::default()
    }

    /// Push one mutation into the current epoch, coalescing it against the
    /// epoch's pending mutations.
    ///
    /// # Panics
    ///
    /// Panics if a delete or update names an identity with no live copy —
    /// the same contract (and message) as `StreamingGraph::stream_increment`.
    pub fn push(&mut self, m: GraphMutation) {
        if let Err(e) = self.try_push(m) {
            panic!("{e}");
        }
    }

    /// Push one mutation, returning the validation error instead of
    /// panicking (the admission path for server-submitted batches).
    pub fn try_push(&mut self, m: GraphMutation) -> Result<(), MutationError> {
        match m {
            GraphMutation::AddEdge(e) => self.push_add(e, 0),
            // Label 0 canonicalizes to a plain `AddEdge` at push time, so a
            // canonical batch never contains a labelled insert that a replay
            // would canonicalize differently.
            GraphMutation::AddLabeledEdge(e, label) => self.push_add(e, label),
            GraphMutation::DelEdge((u, v, w)) => {
                let err = MutationError::NoLiveCopyToDelete { u, v, w };
                let q = self.pairs.get_mut(&(u, v)).ok_or(err)?;
                let i = q.iter().position(|c| c.w == w).ok_or(err)?;
                let copy = q.remove(i).expect("position is in range");
                if q.is_empty() {
                    self.pairs.remove(&(u, v));
                }
                self.live -= 1;
                match copy.kind {
                    // The copy is still in this epoch's wave: annihilate the
                    // pair on the host.
                    CopyKind::Fresh { entry } => self.entries[entry] = None,
                    // A same-epoch patch of this copy is moot now — drop it
                    // and retract under the weight the fabric still stores.
                    CopyKind::Patched { w_start, entry } => {
                        self.entries[entry] = None;
                        self.entries.push(Some(GraphMutation::DelEdge((u, v, w_start))));
                        self.needs_repair = true;
                    }
                    CopyKind::Settled => {
                        self.entries.push(Some(GraphMutation::DelEdge((u, v, w))));
                        self.needs_repair = true;
                    }
                }
                Ok(())
            }
            GraphMutation::UpdateWeight { u, v, w } => {
                let err = MutationError::NoLiveCopyToUpdate { u, v, w };
                let copy = self.pairs.get_mut(&(u, v)).and_then(|q| q.front_mut()).ok_or(err)?;
                match copy.kind {
                    // The copy is still in this epoch's wave: rewrite the
                    // pending insert in place (nothing was ever announced
                    // under the old weight, so no repair is needed). The
                    // rewrite keeps the insert's label.
                    CopyKind::Fresh { entry } => {
                        self.entries[entry] = Some(if copy.label == 0 {
                            GraphMutation::AddEdge((u, v, w))
                        } else {
                            GraphMutation::AddLabeledEdge((u, v, w), copy.label)
                        });
                    }
                    // Coalesce repeat updates of one copy: one patch with the
                    // final weight (intermediates were never announced);
                    // repair compares against the epoch-start weight.
                    CopyKind::Patched { w_start, entry } => {
                        self.needs_repair |= w > w_start;
                        self.entries[entry] = Some(GraphMutation::UpdateWeight { u, v, w });
                    }
                    CopyKind::Settled => {
                        self.needs_repair |= w > copy.w;
                        copy.kind =
                            CopyKind::Patched { w_start: copy.w, entry: self.entries.len() };
                        self.entries.push(Some(GraphMutation::UpdateWeight { u, v, w }));
                        self.touched.push(u);
                    }
                }
                copy.w = w;
                Ok(())
            }
        }
    }

    /// Insert one copy of `(u, v, w)` carrying `label` (the shared body of
    /// the `AddEdge` / `AddLabeledEdge` push arms).
    fn push_add(&mut self, (u, v, w): StreamEdge, label: u8) -> Result<(), MutationError> {
        let entry = self.entries.len();
        self.entries.push(Some(if label == 0 {
            GraphMutation::AddEdge((u, v, w))
        } else {
            GraphMutation::AddLabeledEdge((u, v, w), label)
        }));
        self.seq += 1;
        let copy = LogCopy { seq: self.seq, w, label, kind: CopyKind::Fresh { entry } };
        self.pairs.entry((u, v)).or_default().push_back(copy);
        self.touched.push(u);
        self.live += 1;
        Ok(())
    }

    /// Close the epoch: settle this epoch's surviving copies and return the
    /// canonical coalesced batch (module docs). Replaying `muts` against any
    /// consumer that honours the ledger semantics — delete the oldest live
    /// copy at the named weight, re-weight the pair's oldest — reproduces
    /// this log's live multiset exactly.
    pub fn drain(&mut self) -> CoalescedBatch {
        let muts = self.entries.drain(..).flatten().collect();
        for q in self.pairs.values_mut() {
            for c in q.iter_mut() {
                c.kind = CopyKind::Settled;
            }
        }
        CoalescedBatch {
            muts,
            touched: std::mem::take(&mut self.touched),
            needs_repair: std::mem::replace(&mut self.needs_repair, false),
        }
    }

    /// Number of pending mutations the current epoch would drain to.
    pub fn pending_ops(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Live copies across all pairs (current epoch included).
    pub fn live_count(&self) -> u64 {
        self.live
    }

    /// The live edge multiset at current weights, in insertion order
    /// (current epoch's fresh copies included — callers wanting the settled
    /// state call this at an epoch boundary).
    pub fn live_edges(&self) -> Vec<StreamEdge> {
        let mut tagged: Vec<(u64, StreamEdge)> = self
            .pairs
            .iter()
            .flat_map(|(&(u, v), q)| q.iter().map(move |c| (c.seq, (u, v, c.w))))
            .collect();
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        tagged.into_iter().map(|(_, e)| e).collect()
    }

    /// Live copies of the directed pair `(u, v)`, oldest first, at current
    /// weights.
    pub fn live_copies(&self, u: u32, v: u32) -> Vec<u32> {
        self.pairs.get(&(u, v)).map(|q| q.iter().map(|c| c.w).collect()).unwrap_or_default()
    }

    /// [`Self::live_edges`] with each copy's label: the serialization hook
    /// label-aware checkpoints are built from, and the edge set standing
    /// queries are recomputed over.
    pub fn live_labeled_edges(&self) -> Vec<(StreamEdge, u8)> {
        let mut tagged: Vec<(u64, (StreamEdge, u8))> = self
            .pairs
            .iter()
            .flat_map(|(&(u, v), q)| q.iter().map(move |c| (c.seq, ((u, v, c.w), c.label))))
            .collect();
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        tagged.into_iter().map(|(_, e)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use GraphMutation::{AddEdge, DelEdge, UpdateWeight};

    fn drained(muts: &[GraphMutation]) -> CoalescedBatch {
        let mut log = MutationLog::new();
        for &m in muts {
            log.push(m);
        }
        log.drain()
    }

    #[test]
    fn same_epoch_add_delete_annihilates() {
        let b = drained(&[AddEdge((0, 1, 5)), DelEdge((0, 1, 5))]);
        assert!(b.muts.is_empty());
        assert!(!b.needs_repair, "nothing announced, nothing to repair");
        assert_eq!(b.touched, vec![0], "the add's source still counts as touched");
    }

    #[test]
    fn update_of_fresh_copy_rewrites_the_insert() {
        let b = drained(&[AddEdge((0, 1, 2)), UpdateWeight { u: 0, v: 1, w: 9 }]);
        assert_eq!(b.muts, vec![AddEdge((0, 1, 9))]);
        assert!(!b.needs_repair);
    }

    #[test]
    fn repeat_updates_fold_and_repair_compares_epoch_start() {
        let mut log = MutationLog::new();
        log.push(AddEdge((0, 1, 3)));
        let first = log.drain();
        assert_eq!(first.muts, vec![AddEdge((0, 1, 3))]);
        // Raise then lower below the start: the raise was observed at
        // arrival time, so the epoch still repairs.
        log.push(UpdateWeight { u: 0, v: 1, w: 7 });
        log.push(UpdateWeight { u: 0, v: 1, w: 2 });
        let b = log.drain();
        assert_eq!(b.muts, vec![UpdateWeight { u: 0, v: 1, w: 2 }]);
        assert!(b.needs_repair, "the intermediate raise forces a repair epoch");
        assert_eq!(b.touched, vec![0], "one touched entry per patched copy");
    }

    #[test]
    fn delete_of_patched_copy_drops_the_patch_and_names_the_start_weight() {
        let mut log = MutationLog::new();
        log.push(AddEdge((0, 1, 10)));
        log.push(AddEdge((0, 1, 5)));
        log.drain();
        log.push(UpdateWeight { u: 0, v: 1, w: 7 });
        log.push(DelEdge((0, 1, 7)));
        let b = log.drain();
        assert_eq!(
            b.muts,
            vec![DelEdge((0, 1, 10))],
            "the retraction names the weight the fabric still stores"
        );
        assert!(b.needs_repair);
        assert_eq!(log.live_edges(), vec![(0, 1, 5)], "the younger copy survives");
    }

    #[test]
    fn delete_matches_the_oldest_live_copy_at_current_weight() {
        let mut log = MutationLog::new();
        log.push(AddEdge((0, 1, 3)));
        log.drain();
        // A fresh same-weight copy arrives, then a delete at that weight:
        // the settled (older) copy is the match, so a real retraction is
        // emitted and the fresh insert survives.
        log.push(AddEdge((0, 1, 3)));
        log.push(DelEdge((0, 1, 3)));
        let b = log.drain();
        assert_eq!(b.muts, vec![AddEdge((0, 1, 3)), DelEdge((0, 1, 3))]);
        assert!(b.needs_repair);
        assert_eq!(log.live_count(), 1);
    }

    #[test]
    fn update_targets_the_pairs_oldest_live_copy() {
        let mut log = MutationLog::new();
        log.push(AddEdge((0, 1, 5)));
        log.push(AddEdge((0, 1, 9)));
        log.drain();
        log.push(UpdateWeight { u: 0, v: 1, w: 2 });
        let b = log.drain();
        assert_eq!(b.muts, vec![UpdateWeight { u: 0, v: 1, w: 2 }]);
        assert_eq!(log.live_copies(0, 1), vec![2, 9], "oldest copy re-weighted");
    }

    #[test]
    fn canonical_order_preserves_arrival_positions() {
        let b = drained(&[
            AddEdge((0, 1, 1)),
            AddEdge((2, 3, 1)),
            DelEdge((2, 3, 1)), // annihilates the second add
            AddEdge((4, 5, 1)),
        ]);
        assert_eq!(b.muts, vec![AddEdge((0, 1, 1)), AddEdge((4, 5, 1))]);
    }

    #[test]
    fn invalid_delete_and_update_are_recoverable_errors() {
        let mut log = MutationLog::new();
        assert_eq!(
            log.try_push(DelEdge((3, 4, 1))),
            Err(MutationError::NoLiveCopyToDelete { u: 3, v: 4, w: 1 })
        );
        log.push(AddEdge((3, 4, 1)));
        assert_eq!(
            log.try_push(DelEdge((3, 4, 9))),
            Err(MutationError::NoLiveCopyToDelete { u: 3, v: 4, w: 9 }),
            "weight must match a live copy"
        );
        assert_eq!(
            log.try_push(UpdateWeight { u: 9, v: 9, w: 1 }),
            Err(MutationError::NoLiveCopyToUpdate { u: 9, v: 9, w: 1 })
        );
        // A rejected mutation leaves the log untouched.
        assert_eq!(log.pending_ops(), 1);
        assert_eq!(log.live_count(), 1);
    }

    #[test]
    fn error_messages_match_the_streaming_pipeline() {
        assert_eq!(
            MutationError::NoLiveCopyToDelete { u: 1, v: 2, w: 3 }.to_string(),
            "DelEdge(1 -> 2, w 3): no live copy to delete"
        );
        assert_eq!(
            MutationError::NoLiveCopyToUpdate { u: 1, v: 2, w: 3 }.to_string(),
            "UpdateWeight(1 -> 2, w 3): no live copy to update"
        );
    }

    #[test]
    fn live_edges_iterate_in_insertion_order_across_epochs() {
        let mut log = MutationLog::new();
        log.push(AddEdge((5, 6, 1)));
        log.push(AddEdge((0, 1, 2)));
        log.drain();
        log.push(AddEdge((3, 4, 3)));
        log.push(DelEdge((5, 6, 1)));
        log.drain();
        assert_eq!(log.live_edges(), vec![(0, 1, 2), (3, 4, 3)]);
    }

    #[test]
    fn replaying_the_canonical_batch_reproduces_the_live_multiset() {
        // Arbitrary interleaving with annihilations, folds, and drops.
        let script = [
            AddEdge((0, 1, 4)),
            AddEdge((0, 1, 4)),
            UpdateWeight { u: 0, v: 1, w: 6 },
            DelEdge((0, 1, 4)),
            AddEdge((2, 0, 1)),
            DelEdge((2, 0, 1)),
            UpdateWeight { u: 0, v: 1, w: 9 },
            AddEdge((1, 2, 8)),
        ];
        let mut log = MutationLog::new();
        for &m in &script {
            log.push(m);
        }
        let canonical = log.drain();
        let mut replay = MutationLog::new();
        for &m in &canonical.muts {
            replay.push(m);
        }
        replay.drain();
        assert_eq!(replay.live_edges(), log.live_edges());
        assert_eq!(replay.live_count(), log.live_count());
    }

    #[test]
    fn labels_survive_weight_updates_and_ignore_delete_identity() {
        use GraphMutation::AddLabeledEdge;
        let mut log = MutationLog::new();
        log.push(AddLabeledEdge((0, 1, 4), 3));
        log.push(AddEdge((0, 1, 7)));
        log.drain();
        // Weight patch rewrites the oldest copy but keeps its label.
        log.push(UpdateWeight { u: 0, v: 1, w: 9 });
        log.drain();
        assert_eq!(log.live_labeled_edges(), vec![((0, 1, 9), 3), ((0, 1, 7), 0)]);
        // Deletes target the oldest copy regardless of its label.
        log.push(DelEdge((0, 1, 9)));
        log.drain();
        assert_eq!(log.live_labeled_edges(), vec![((0, 1, 7), 0)]);
    }

    #[test]
    fn label_zero_inserts_canonicalize_to_plain_adds() {
        let mut log = MutationLog::new();
        log.push(GraphMutation::AddLabeledEdge((2, 3, 1), 0));
        let batch = log.drain();
        assert_eq!(batch.muts, vec![AddEdge((2, 3, 1))], "label 0 is the unlabeled default");
        assert_eq!(log.live_labeled_edges(), vec![((2, 3, 1), 0)]);
    }
}
