//! Host-side streaming graph façade.
//!
//! Wraps a [`diffusive::Device`] running a [`GraphApp`] and provides the
//! workflow of the paper's experiments: allocate root RPVOs for all vertices
//! (untimed construction, §4), then stream batches of **mutations** — edge
//! insertions *and* deletions — through the IO channels and run each to
//! quiescence, collecting a [`RunReport`] per increment (the data behind
//! Figures 8–9 and Table 2, extended to the dynamic half of the workload
//! space that Besta et al.'s streaming-framework taxonomy treats as the
//! defining capability: deletions and sliding-window churn).
//!
//! # Mutation semantics
//!
//! A batch is an ordered multiset edit of the directed edge multiset. The
//! host keeps a **mutation ledger** assigning each inserted copy of a
//! directed pair `(src, dst)` a small copy tag (unique among the pair's live
//! copies), so a `DelEdge` retracts exactly one copy — the oldest live one
//! of the named weight — and an `UpdateWeight` re-weights exactly one copy —
//! the pair's oldest — no matter how copies spread across rhizome root
//! slices and ghost spills. A delete that matches an insert of the *same
//! batch* annihilates it on the host before anything reaches the fabric, and
//! same-batch updates of one copy coalesce into a single patch.
//!
//! Batches containing on-fabric deletions (or weight increases) run in two
//! phases when the algorithm propagates: a **structural** phase (inserts,
//! retractions, and weight patches apply, improvements are suppressed,
//! invalidation cascades recall state derived through deleted or re-weighted
//! edges — see [`diffusive::retract`]) and a **reseed** phase in which
//! surviving valid state re-announces and monotone relaxation rebuilds the
//! exact fixpoint over the surviving edge set. The reseed wave is scoped by
//! [`RepairMode`]: `Targeted` (default) triggers only the repair frontier
//! recorded during the cascade — invalidated vertices, recall-rejecting
//! survivors, surviving in-neighbours of the invalidated set, and the
//! batch's suppressed insert/update sources — while `Full` re-announces from
//! every vertex (the O(n) ablation baseline). Both reach bit-identical
//! fixpoints; pure-insert batches take the original single-phase fast path.

use std::collections::{HashMap, VecDeque};

use amcca_obs::Obs;
use amcca_sim::{max_mean_ratio, Address, ChipConfig, Operon, SimError, SplitMix64};
use diffusive::{Device, RunReport};

use crate::apps::algo::{
    delete_operon, insert_operon, update_weight_operon, GraphApp, VertexAlgo, ACT_DELETE,
    ACT_INSERT, ACT_RELAX, ACT_RESEED, ACT_UPDATE,
};
use crate::query::{compile, QueryDelta, QueryError, StandingQuery};
use crate::rpvo::rhizome::{peer_sets, RhizomeDirectory};
use crate::rpvo::{walk, Edge, RpvoConfig, VertexObj};
use diffusive::{query_operon, query_reseed_operon, QUERY_ALL};

mod mutlog;

pub use mutlog::{CoalescedBatch, MutationError, MutationLog};

/// A streamed edge: `(src, dst, weight)` with vertex ids.
pub type StreamEdge = (u32, u32, u32);

/// One element of a mutation stream: the typed unit the ingestion pipeline
/// is built around. `AddEdge` grows the directed edge multiset; `DelEdge`
/// removes one live copy of the named identity (the oldest); `UpdateWeight`
/// re-weights one live copy of a directed pair (the oldest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphMutation {
    /// Insert one copy of the directed edge.
    AddEdge(StreamEdge),
    /// Insert one copy of the directed edge carrying an edge label (1–26 in
    /// practice — the `a`–`z` atoms of [`crate::query`] patterns). Label 0
    /// canonicalizes to a plain [`GraphMutation::AddEdge`]. Labels are
    /// immutable for a copy's lifetime and are not part of the
    /// delete/update addressing identity.
    AddLabeledEdge(StreamEdge, u8),
    /// Delete one live copy of the directed edge (panics at stream time if
    /// no copy is live — deleting a non-existent edge is a host bug).
    DelEdge(StreamEdge),
    /// Re-weight the *oldest* live copy of the directed pair `u → v` to `w`
    /// (panics at stream time if no copy is live). For monotone algorithms a
    /// weight decrease is a plain relax along the edge; an increase runs a
    /// scoped invalidate+reseed of exactly the paths through the edge.
    UpdateWeight {
        /// Source vertex of the re-weighted pair.
        u: u32,
        /// Destination vertex of the re-weighted pair.
        v: u32,
        /// New weight of the copy.
        w: u32,
    },
}

impl GraphMutation {
    /// The `(src, dst, weight)` triple this mutation refers to (for
    /// `UpdateWeight`, the weight is the *new* weight).
    pub fn edge(&self) -> StreamEdge {
        match *self {
            GraphMutation::AddEdge(e)
            | GraphMutation::AddLabeledEdge(e, _)
            | GraphMutation::DelEdge(e) => e,
            GraphMutation::UpdateWeight { u, v, w } => (u, v, w),
        }
    }

    /// The edge plus label of an insert (`AddEdge` inserts carry label 0);
    /// `None` for deletes and re-weights.
    pub fn as_add(&self) -> Option<(StreamEdge, u8)> {
        match *self {
            GraphMutation::AddEdge(e) => Some((e, 0)),
            GraphMutation::AddLabeledEdge(e, label) => Some((e, label)),
            _ => None,
        }
    }

    /// Wrap a plain edge slice into an insert-only mutation batch.
    pub fn adds(edges: &[StreamEdge]) -> Vec<GraphMutation> {
        edges.iter().copied().map(GraphMutation::AddEdge).collect()
    }
}

/// How the repair phase of a delete-bearing increment triggers its reseed
/// wave (see the module docs; both modes reach bit-identical fixpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairMode {
    /// Re-announce from every vertex: an O(n) trigger wave per repair batch,
    /// kept as the ablation baseline (`paper churn --repair full`).
    Full,
    /// Re-announce only from the recorded repair frontier, so trigger work
    /// is proportional to the invalidated region instead of the graph.
    #[default]
    Targeted,
}

/// Bookkeeping of the most recent increment's repair phase (all zero when no
/// repair ran). Distinct-vertex counts; `triggers` is what the reseed wave
/// actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Distinct vertices whose state the invalidation cascade reset.
    pub invalidated: u64,
    /// Distinct vertices that rejected a recall while holding announceable
    /// state (survivors bordering the invalidated region).
    pub rejected: u64,
    /// Distinct surviving in-neighbours of the invalidated set (from the
    /// host ledger's reverse index).
    pub in_neighbors: u64,
    /// Distinct sources of this batch's inserts and weight updates (their
    /// announcements were suppressed during the structural phase).
    pub touched: u64,
    /// Reseed triggers injected: the deduped frontier union in `Targeted`
    /// mode, `n` in `Full` mode.
    pub triggers: u64,
}

/// Per-pair live-copy bookkeeping of the mutation ledger.
#[derive(Debug, Clone, Default)]
struct LiveCopies {
    /// Next tag to hand out (wrapping; tags need only be unique among the
    /// pair's *live* copies).
    next: u8,
    /// `(current weight, tag)` of live copies, oldest first.
    live: VecDeque<(u32, u8)>,
}

/// Host-side mutation ledger, keyed by the directed pair `(src, dst)`: which
/// copies are live, at which current weight, under which tag — plus a
/// reverse index of surviving in-neighbours per destination vertex, the
/// host-side half of the targeted-repair frontier (an invalidated vertex can
/// only be re-fed through its surviving in-edges). Lookup-only except for
/// [`EdgeLedger::sources_into`], whose consumers sort before driving output,
/// so the hash maps cannot perturb determinism.
#[derive(Debug, Clone, Default)]
struct EdgeLedger {
    copies: HashMap<(u32, u32), LiveCopies>,
    /// `dst → src → live copy count` over all weights of the pair.
    sources: HashMap<u32, HashMap<u32, u32>>,
}

impl EdgeLedger {
    /// Register a streamed copy of `(u, v, w)` and return its tag.
    fn add(&mut self, u: u32, v: u32, w: u32) -> u8 {
        let c = self.copies.entry((u, v)).or_default();
        let tag = c.next;
        c.next = c.next.wrapping_add(1);
        c.live.push_back((w, tag));
        *self.sources.entry(v).or_default().entry(u).or_insert(0) += 1;
        tag
    }

    /// Unregister the oldest live copy of `(u, v)` currently weighing `w`,
    /// returning its tag. The pair's entry (and its tag counter) survives a
    /// full drain until the increment completes: a re-added copy must NOT
    /// reuse a tag while a same-tag retraction may still be in flight in the
    /// same wave, or a miss-fanned broadcast could match both copies.
    fn remove(&mut self, u: u32, v: u32, w: u32) -> Option<u8> {
        let c = self.copies.get_mut(&(u, v))?;
        let i = c.live.iter().position(|&(cw, _)| cw == w)?;
        let (_, tag) = c.live.remove(i).expect("position is in range");
        let srcs = self.sources.get_mut(&v).expect("reverse index tracks live copies");
        let n = srcs.get_mut(&u).expect("reverse index tracks live copies");
        *n -= 1;
        if *n == 0 {
            srcs.remove(&u);
            if srcs.is_empty() {
                self.sources.remove(&v);
            }
        }
        Some(tag)
    }

    /// Re-weight the *oldest* live copy of the pair `(u, v)` to `w_new`,
    /// returning `(old weight, tag)`.
    fn update_weight(&mut self, u: u32, v: u32, w_new: u32) -> Option<(u32, u8)> {
        let front = self.copies.get_mut(&(u, v))?.live.front_mut()?;
        let old = front.0;
        front.0 = w_new;
        Some((old, front.1))
    }

    /// Sources of the surviving in-edges of vertex `v`, in arbitrary hash
    /// order — callers must sort before the result can drive output.
    fn sources_into(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.sources.get(&v).into_iter().flat_map(|m| m.keys().copied())
    }

    /// Drop fully drained pairs. Safe only at increment boundaries: the chip
    /// is quiescent, so no retraction that could collide with a reused tag
    /// is in flight. Keeps ledger memory bounded by the live edge set
    /// instead of the stream's history.
    fn prune_drained(&mut self) {
        self.copies.retain(|_, c| !c.live.is_empty());
    }

    /// Number of live copies across all pairs.
    fn live_count(&self) -> u64 {
        self.copies.values().map(|c| c.live.len() as u64).sum()
    }
}

/// Hot-object moves the automatic post-increment rebalance may perform per
/// increment (a small budget keeps the untimed host work — and the
/// `for_each_object_mut` patch pass — proportional to the skew, not the
/// graph).
const MIGRATE_BUDGET: u32 = 8;

/// StreamingGraph.
pub struct StreamingGraph<G: VertexAlgo> {
    dev: Device<GraphApp<G>>,
    /// Per-vertex root sets, streamed-degree counters, and the deterministic
    /// per-edge root router (single-root vertices route to their primary).
    rz: RhizomeDirectory,
    /// Live-copy tags per edge pair (deletion and re-weight addressing) plus
    /// the surviving-in-neighbour reverse index for targeted repair.
    ledger: EdgeLedger,
    /// The shared coalescing stage: every increment's mutations pass through
    /// here first, so same-batch merges happen in exactly one place (see
    /// [`MutationLog`]) and the live multiset is queryable for checkpoints.
    log: MutationLog,
    rcfg: RpvoConfig,
    /// Reseed-wave scoping policy for delete-bearing batches.
    repair: RepairMode,
    /// Bookkeeping of the most recent increment's repair phase.
    last_repair: RepairStats,
    /// Registered standing queries, indexed by query id: the host-side half
    /// of the query registry (pattern text, sources, compiled automaton) —
    /// checkpointed and re-registered on restore. The automata are mirrored
    /// into the fabric app, which maintains the per-object state bitsets.
    queries: Vec<StandingQuery>,
    /// Per-query accepting-set snapshot as of the end of the previous
    /// increment: one bitset over vertex ids per registered query, the
    /// baseline [`StreamingGraph::stream_increment`] diffs against when
    /// computing result deltas. Kept exactly in sync with what
    /// [`StreamingGraph::query_results`] would have returned then.
    qaccept: Vec<Vec<u64>>,
    /// Result deltas of the most recent increment, one per registered query,
    /// drained by [`StreamingGraph::take_query_deltas`].
    last_deltas: Vec<QueryDelta>,
    /// Wall-clock observability handle (disabled by default). Pure
    /// observation: spans and counters never feed back into control flow,
    /// so enabling it cannot perturb the fixpoint (pinned by the
    /// `obs_equivalence` proptest).
    obs: Obs,
    /// Monotonic increment sequence number — the batch id carried by this
    /// graph's trace spans. Advances whether or not obs is enabled.
    seq: u64,
    /// Run the hot-object rebalancer after every increment (see
    /// [`StreamingGraph::rebalance_hot`]; default off).
    migrate: bool,
    /// Chip diagnostics (`sharded_cycles`, `steal_rows`) as of the previous
    /// obs flush, so the obs counters record per-increment deltas.
    shard_marks: (u64, u64),
}

/// Builder for [`StreamingGraph`]: owns the chip shape, RPVO shape, and
/// repair-mode defaults so construction reads as one fluent chain,
///
/// ```
/// use sdgp_core::apps::BfsAlgo;
/// use sdgp_core::graph::StreamingGraph;
///
/// let g = StreamingGraph::builder(BfsAlgo::new(0)).vertices(8).build().unwrap();
/// assert_eq!(g.n_vertices(), 8);
/// ```
///
/// with every knob overridable before [`GraphBuilder::build`]:
/// [`GraphBuilder::chip`] (default [`ChipConfig::default`]),
/// [`GraphBuilder::rpvo`] (default [`RpvoConfig::default`]),
/// [`GraphBuilder::repair`] (default [`RepairMode::Targeted`]).
#[derive(Debug, Clone)]
pub struct GraphBuilder<G: VertexAlgo> {
    algo: G,
    n_vertices: u32,
    chip: ChipConfig,
    rpvo: RpvoConfig,
    repair: RepairMode,
    obs: Obs,
    migrate: bool,
}

impl<G: VertexAlgo> GraphBuilder<G> {
    /// Number of vertices to allocate root objects for (default 0).
    pub fn vertices(mut self, n: u32) -> Self {
        self.n_vertices = n;
        self
    }

    /// Chip configuration (mesh dims, placement policies, shard count).
    pub fn chip(mut self, cfg: ChipConfig) -> Self {
        self.chip = cfg;
        self
    }

    /// RPVO shape (edge cap, ghost fanout, rhizome knobs).
    pub fn rpvo(mut self, rcfg: RpvoConfig) -> Self {
        self.rpvo = rcfg;
        self
    }

    /// Reseed-wave scoping of delete-bearing increments.
    pub fn repair(mut self, mode: RepairMode) -> Self {
        self.repair = mode;
        self
    }

    /// Observability handle recording increment-phase spans and cycle
    /// counters (default [`Obs::disabled`], a no-op).
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Run the host-side hot-object rebalancer after every increment
    /// (default off): migrate the hottest single-root vertex objects from
    /// the most loaded mesh column to the least loaded one, so skewed churn
    /// cannot pin one column band of the sharded engine while its siblings
    /// idle. Seeded-deterministic and shard-count-independent — see
    /// [`StreamingGraph::rebalance_hot`].
    pub fn migrate_hot(mut self, on: bool) -> Self {
        self.migrate = on;
        self
    }

    /// Create the device, register the actions (Listing 1), and allocate the
    /// root vertex objects across the chip.
    pub fn build(self) -> Result<StreamingGraph<G>, SimError> {
        let GraphBuilder { algo, n_vertices, chip: cfg, rpvo: rcfg, repair, obs, migrate } = self;
        let dims = cfg.dims;
        let root_placement = cfg.root_placement;
        let seed = cfg.seed;
        let fanout = rcfg.ghost_fanout;
        let mut dev = Device::new(cfg, GraphApp::new(algo, rcfg, true));
        dev.register_action_at(ACT_INSERT, "insert-edge-action");
        dev.register_action_at(ACT_RELAX, G::NAME);
        dev.register_action_at(ACT_DELETE, "delete-edge-action");
        dev.register_action_at(ACT_RESEED, "reseed-action");
        dev.register_action_at(ACT_UPDATE, "update-weight-action");
        let mut addrs = Vec::with_capacity(n_vertices as usize);
        for vid in 0..n_vertices {
            let cc = root_placement.cell_for(vid, dims, seed);
            let state = dev.app().algo.root_state(vid);
            addrs.push(dev.host_alloc(cc, VertexObj::root(vid, state, fanout))?);
        }
        Ok(StreamingGraph {
            dev,
            rz: RhizomeDirectory::new(addrs),
            ledger: EdgeLedger::default(),
            log: MutationLog::new(),
            rcfg,
            repair,
            last_repair: RepairStats::default(),
            queries: Vec::new(),
            qaccept: Vec::new(),
            last_deltas: Vec::new(),
            obs,
            seq: 0,
            migrate,
            shard_marks: (0, 0),
        })
    }
}

impl<G: VertexAlgo> StreamingGraph<G> {
    /// Start a [`GraphBuilder`] chain for the given vertex algorithm (the
    /// chip defaults to [`ChipConfig::default`], the RPVO shape to
    /// [`RpvoConfig::default`], repair to [`RepairMode::Targeted`]).
    pub fn builder(algo: G) -> GraphBuilder<G> {
        GraphBuilder {
            algo,
            n_vertices: 0,
            chip: ChipConfig::default(),
            rpvo: RpvoConfig::default(),
            repair: RepairMode::default(),
            obs: Obs::disabled(),
            migrate: false,
        }
    }

    /// Pre-builder constructor, kept so existing callers compile. It is a
    /// thin shim over the [`GraphBuilder`] chain and cannot express the
    /// newer knobs (e.g. [`GraphBuilder::repair`]) — migrate by mapping the
    /// positional arguments onto the named builder steps:
    ///
    /// ```
    /// use sdgp_core::apps::BfsAlgo;
    /// use sdgp_core::graph::StreamingGraph;
    /// use sdgp_core::rpvo::RpvoConfig;
    /// use amcca_sim::ChipConfig;
    ///
    /// let (cfg, rcfg) = (ChipConfig::small_test(), RpvoConfig::basic(3, 2));
    /// # #[allow(deprecated)]
    /// let old = StreamingGraph::new(cfg.clone(), rcfg, BfsAlgo::new(0), 8).unwrap();
    /// let new = StreamingGraph::builder(BfsAlgo::new(0))
    ///     .vertices(8)
    ///     .chip(cfg)
    ///     .rpvo(rcfg)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(old.n_vertices(), new.n_vertices());
    /// assert_eq!(old.states(), new.states());
    /// ```
    #[deprecated(
        since = "0.1.0",
        note = "use StreamingGraph::builder(algo).vertices(n).chip(cfg).rpvo(rcfg).build()"
    )]
    pub fn new(
        cfg: ChipConfig,
        rcfg: RpvoConfig,
        algo: G,
        n_vertices: u32,
    ) -> Result<Self, SimError> {
        Self::builder(algo).vertices(n_vertices).chip(cfg).rpvo(rcfg).build()
    }

    /// Promote vertex `v` from a single root to a rhizome of
    /// `rcfg.rhizome_roots` co-equal roots: allocate the extra roots on the
    /// cells the chip's [`amcca_sim::RhizomePlacement`] picks (untimed, like
    /// graph construction), seed them with the primary's current converged
    /// state, and fully cross-link all roots. Subsequent edges for `v` are
    /// round-robined across the root set.
    fn promote(&mut self, v: u32) -> Result<(), SimError> {
        let k = self.rcfg.rhizome_roots;
        let primary = self.rz.primary(v);
        let cfg = self.dev.chip().cfg();
        let (dims, seed, policy) = (cfg.dims, cfg.seed, cfg.rhizome_placement);
        let cells = policy.cells_for(primary.cc, k, dims, seed ^ ((v as u64) << 1 | 1));
        let (state, qbits) = {
            let obj = self.dev.object(primary).expect("primary root live");
            (obj.state, obj.qbits.clone())
        };
        let fanout = self.rcfg.ghost_fanout;
        let mut roots = Vec::with_capacity(k);
        roots.push(primary);
        for cc in cells {
            let mut root = VertexObj::root(v, state, fanout);
            // Co-equal roots mirror the primary's converged standing-query
            // state exactly like its algorithm state.
            root.qbits = qbits.clone();
            roots.push(self.dev.host_alloc(cc, root)?);
        }
        for (addr, peers) in roots.iter().zip(peer_sets(&roots)) {
            self.dev.object_mut(*addr).expect("root live").peers = peers;
        }
        self.rz.install(v, roots[1..].to_vec());
        Ok(())
    }

    /// Demote every vertex in `due` back to a single root: collect the
    /// edges stored across each extra root's ghost subtree, free those
    /// objects (untimed, like promotion's allocation), clear the primary's
    /// rhizome links, patch any stored edge that pointed at a freed root to
    /// the vertex's primary, and return the re-ingest wave that merges the
    /// collected edges into the primary (timed — demotion pays real insert
    /// cycles in the increment that triggered it).
    fn demote_collapse(&mut self, due: &[u32]) -> Vec<Operon> {
        let mut merged: Vec<Edge> = Vec::new();
        let mut merge_primary: Vec<Address> = Vec::new();
        let mut remap: HashMap<Address, Address> = HashMap::new();
        for &v in due {
            let extras = self.rz.demote(v);
            let primary = self.rz.primary(v);
            for &r in &extras {
                remap.insert(r, primary);
                for a in walk::collect_objects(r, |x| self.dev.object(x)) {
                    let obj = self.dev.host_free(a).expect("demoted object live");
                    for e in obj.edges {
                        merged.push(e);
                        merge_primary.push(primary);
                    }
                }
            }
            self.dev.object_mut(primary).expect("primary live").peers = Box::new([]);
        }
        // Patch dangling destinations: stored edges (and the edges being
        // merged) that pointed at a freed co-equal root now point at that
        // vertex's primary. Only root addresses ever appear as edge
        // destinations, so the remap over freed extras is complete.
        self.dev.chip_mut().for_each_object_mut(|_, obj| {
            for e in obj.edges.iter_mut() {
                if let Some(&p) = remap.get(&e.dst) {
                    e.dst = p;
                }
            }
        });
        merged
            .iter_mut()
            .zip(merge_primary)
            .map(|(e, primary)| {
                if let Some(&p) = remap.get(&e.dst) {
                    e.dst = p;
                }
                insert_operon(primary, e)
            })
            .collect()
    }

    /// Migrate up to `budget` hot vertex objects from the most loaded mesh
    /// column to the least loaded one, and return how many moved. Must be
    /// called between increments (the chip is quiescent, so no operon holds
    /// a stale address). Load is measured per *column* — the sum of live
    /// streamed degrees of the vertices homed there — because the sharded
    /// engine's bands are contiguous column ranges for every shard count:
    /// levelling columns levels any banding of them, and the decisions
    /// depend only on the directory (never on the shard count), so migration
    /// preserves the engine's `--jobs`-independence.
    ///
    /// Each move picks the hottest single-root vertex of the donor column
    /// (ties to the lowest vid; rhizomes are skipped — their load is already
    /// fanned out across co-equal roots) and re-homes its root object on a
    /// seeded-deterministically chosen row of the target column, reusing
    /// demotion's machinery: [`diffusive::Device::host_free`] +
    /// `host_alloc`, then one `for_each_object_mut` pass patching every
    /// stored edge that pointed at a moved root (ghost links point *down*
    /// and rhizome peers never reference other vertices, so stored edges and
    /// the directory are the only address holders). Moves stop early when
    /// they would no longer strictly improve the column spread.
    pub fn rebalance_hot(&mut self, budget: u32) -> Result<u64, SimError> {
        let cfg = self.dev.chip().cfg();
        let (dims, seed, arena) = (cfg.dims, cfg.seed, cfg.arena_capacity);
        let mut col_load = vec![0u64; dims.x as usize];
        for v in 0..self.n_vertices() {
            let col = (self.rz.primary(v).cc % dims.x) as usize;
            col_load[col] += self.rz.live_degree(v) as u64;
        }
        let mut remap: HashMap<Address, Address> = HashMap::new();
        let mut moved_vids: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for _ in 0..budget {
            let mut donor = 0usize;
            let mut target = 0usize;
            for x in 1..col_load.len() {
                if col_load[x] > col_load[donor] {
                    donor = x;
                }
                if col_load[x] < col_load[target] {
                    target = x;
                }
            }
            if donor == target {
                break;
            }
            // Hottest movable vertex homed in the donor column. A vertex
            // moves at most once per pass: the address-patch below resolves
            // one hop, so chained moves would leave dangling edges.
            let mut pick: Option<(u32, u32)> = None;
            for v in 0..self.n_vertices() {
                if (self.rz.primary(v).cc % dims.x) as usize != donor
                    || self.rz.is_promoted(v)
                    || moved_vids.contains(&v)
                {
                    continue;
                }
                let d = self.rz.live_degree(v);
                if d > 0 && pick.is_none_or(|(pd, _)| d > pd) {
                    pick = Some((d, v));
                }
            }
            let Some((d, v)) = pick else { break };
            let d = d as u64;
            if col_load[target] + d >= col_load[donor] {
                break; // the move would not strictly improve the spread
            }
            // Seeded row probe in the target column (first row with arena
            // room, starting from a per-vertex hash).
            let start = SplitMix64::new(seed ^ ((v as u64) << 1 | 1)).next_u64();
            let cc = (0..dims.y as u64)
                .map(|i| {
                    let y = ((start + i) % dims.y as u64) as u16;
                    y * dims.x + target as u16
                })
                .find(|&cand| self.dev.chip().cell_object_count(cand) < arena);
            let Some(new_cc) = cc else { break };
            let old = self.rz.primary(v);
            let obj = self.dev.host_free(old).expect("primary root live");
            let new = self.dev.host_alloc(new_cc, obj)?;
            remap.insert(old, new);
            moved_vids.insert(v);
            self.rz.rebind_primary(v, new);
            col_load[donor] -= d;
            col_load[target] += d;
        }
        if !remap.is_empty() {
            self.dev.chip_mut().for_each_object_mut(|_, obj| {
                for e in obj.edges.iter_mut() {
                    if let Some(&p) = remap.get(&e.dst) {
                        e.dst = p;
                    }
                }
            });
        }
        Ok(remap.len() as u64)
    }

    /// Enable/disable the automatic post-increment hot-object rebalance
    /// (the builder knob [`GraphBuilder::migrate_hot`], settable at run
    /// time; `paper balance` ablates it).
    pub fn set_hot_migration(&mut self, on: bool) {
        self.migrate = on;
    }

    /// Assemble phase B's reseed trigger set after a structural phase:
    /// drain the frontier the invalidation cascade recorded on-fabric
    /// (invalidated vertices + recall-rejecting survivors), join the
    /// surviving in-neighbours of the invalidated set from the ledger's
    /// reverse index and the batch's suppressed insert/update sources, and
    /// dedup. Per-shard accumulation order and hash-map iteration order
    /// never reach the output: every constituent is sorted first, so the
    /// wave is deterministic and shard-count-independent. In
    /// [`RepairMode::Full`] the stats are still recorded but the trigger set
    /// is every vertex.
    fn repair_frontier(&mut self, touched: &[u32]) -> Vec<u32> {
        let (mut invalidated, mut rejected) = self.dev.app_mut().take_repair_sets();
        invalidated.sort_unstable();
        invalidated.dedup();
        rejected.sort_unstable();
        rejected.dedup();
        let mut in_nbrs: Vec<u32> =
            invalidated.iter().flat_map(|&v| self.ledger.sources_into(v)).collect();
        in_nbrs.sort_unstable();
        in_nbrs.dedup();
        let mut touched = touched.to_vec();
        touched.sort_unstable();
        touched.dedup();
        self.last_repair = RepairStats {
            invalidated: invalidated.len() as u64,
            rejected: rejected.len() as u64,
            in_neighbors: in_nbrs.len() as u64,
            touched: touched.len() as u64,
            triggers: 0,
        };
        let frontier = match self.repair {
            RepairMode::Full => (0..self.n_vertices()).collect::<Vec<u32>>(),
            RepairMode::Targeted => {
                let mut f = invalidated;
                f.extend(rejected);
                f.extend(in_nbrs);
                f.extend(touched);
                f.sort_unstable();
                f.dedup();
                f
            }
        };
        self.last_repair.triggers = frontier.len() as u64;
        frontier
    }

    /// Enable/disable the algorithm's propagation on insert (the paper's
    /// ingestion-only experiments disable it).
    pub fn set_algo_propagation(&mut self, on: bool) {
        self.dev.app_mut().propagate_algo = on;
    }

    /// Select the termination detector used by subsequent increments
    /// (global quiescence by default; Safra's token for the distributed
    /// variant — see `paper ablate-terminator`).
    pub fn set_termination_mode(&mut self, mode: diffusive::TerminationMode) {
        self.dev.set_termination_mode(mode);
    }

    /// Select how subsequent delete-bearing increments scope their reseed
    /// wave ([`RepairMode::Targeted`] by default; `Full` is the O(n)
    /// ablation baseline — both reach bit-identical fixpoints).
    pub fn set_repair_mode(&mut self, mode: RepairMode) {
        self.repair = mode;
    }

    /// The currently selected repair mode.
    pub fn repair_mode(&self) -> RepairMode {
        self.repair
    }

    /// Bookkeeping of the most recent increment's repair phase (all zero if
    /// the last increment ran no repair).
    pub fn last_repair(&self) -> RepairStats {
        self.last_repair
    }

    /// Number of vertices the graph was constructed with.
    pub fn n_vertices(&self) -> u32 {
        self.rz.len() as u32
    }

    /// Primary root-object address of a vertex (any co-equal rhizome roots
    /// are reachable through its links).
    pub fn addr_of(&self, vid: u32) -> Address {
        self.rz.primary(vid)
    }

    /// All co-equal root addresses of a vertex, primary first (one entry for
    /// ordinary vertices).
    pub fn roots_of(&self, vid: u32) -> Vec<Address> {
        self.rz.roots(vid)
    }

    /// Stream one increment of mutations through the IO channels and run the
    /// diffusion to quiescence.
    ///
    /// While building the wave the host counts each mutation endpoint toward
    /// its vertex's streamed degree; a vertex whose live degree crosses
    /// [`RpvoConfig::rhizome_threshold`] is promoted to a rhizome on the
    /// spot (untimed, like construction), and every edge is then routed to a
    /// deterministically chosen co-equal root of its source — with the
    /// destination address likewise picking one of the destination's roots —
    /// so a hub's ingest and frontier traffic fans out across cells.
    ///
    /// Deletions and weight increases run the two-phase repair described in
    /// the module docs (with the reseed wave scoped per
    /// [`Self::set_repair_mode`]), and after the batch quiesces, promoted
    /// vertices whose live degree fell back below the threshold are demoted:
    /// their extra roots collapse into the primary and the merged edges
    /// re-ingest (timed) within this call. The returned report spans all
    /// phases; its `reseed_triggers` / `repair_cycles` fields record the
    /// repair wave's size and cost.
    ///
    /// # Panics
    ///
    /// Panics if a [`GraphMutation::DelEdge`] or
    /// [`GraphMutation::UpdateWeight`] names an identity with no live copy.
    pub fn stream_increment(&mut self, muts: &[GraphMutation]) -> Result<RunReport, SimError> {
        let threshold = self.rcfg.rhizome_threshold;
        // Clone the handle so span guards borrow the local, not `self`.
        let obs = self.obs.clone();
        self.seq += 1;
        let bid = self.seq;
        let n_muts = muts.len() as u64;
        // Coalesce the batch through the shared mutation log: same-batch
        // merges (annihilation, insert rewrites, patch folds, moot-patch
        // drops) happen there, validation panics fire before any graph
        // state mutates, and the drained batch is canonical — surviving
        // mutations in arrival order whose replay below reproduces the
        // exact live multiset the log tracks.
        for m in muts {
            self.log.push(*m);
        }
        let batch = self.log.drain();
        let needs_repair = batch.needs_repair;
        // Build the operon wave from the canonical batch. Annihilated pairs
        // never reach this loop, so they neither advance the rhizome router
        // nor count toward streamed degrees.
        let mut wave: Vec<Operon> = Vec::with_capacity(batch.muts.len());
        for m in &batch.muts {
            if let Some(((u, v, w), label)) = m.as_add() {
                if self.rz.note_add(u, threshold) {
                    self.promote(u)?;
                }
                if self.rz.note_add(v, threshold) {
                    self.promote(v)?;
                }
                let tag = self.ledger.add(u, v, w);
                let src = self.rz.route(u);
                let dst = self.rz.route(v);
                wave.push(insert_operon(src, &Edge::labeled(dst, v, w, tag, label)));
                continue;
            }
            match *m {
                GraphMutation::AddEdge(..) | GraphMutation::AddLabeledEdge(..) => {
                    unreachable!("inserts handled above")
                }
                GraphMutation::DelEdge((u, v, w)) => {
                    // The canonical delete names the copy's ledger weight, so
                    // the ledger resolves the same copy the log matched.
                    let tag = self
                        .ledger
                        .remove(u, v, w)
                        .expect("canonical delete targets a live ledger copy");
                    self.rz.note_del(u);
                    self.rz.note_del(v);
                    wave.push(delete_operon(self.rz.primary(u), v, w, tag));
                }
                GraphMutation::UpdateWeight { u, v, w } => {
                    let (w_old, tag) = self
                        .ledger
                        .update_weight(u, v, w)
                        .expect("canonical update targets a live ledger pair");
                    wave.push(update_weight_operon(self.rz.primary(u), v, w_old, w, tag));
                }
            }
        }
        let touched = batch.touched;
        self.last_repair = RepairStats::default();
        let mut report = if needs_repair && self.dev.app().propagate_algo {
            // Phase A — structural: edges move and re-weigh, improvements
            // are suppressed, invalidation cascades recall state derived
            // through deletions and weight increases while recording the
            // repair frontier on-fabric.
            self.dev.app_mut().notify_inserts = false;
            self.dev.register_data_transfer(wave);
            let structural = {
                let _s = obs.span("structural", bid, n_muts);
                self.dev.run()
            };
            self.dev.app_mut().notify_inserts = true;
            let mut report = structural?;
            // Phase B — repair: trigger the reseed wave (scoped per the
            // repair mode); surviving announceable state re-announces and
            // relaxation rebuilds the exact fixpoint.
            let frontier = self.repair_frontier(&touched);
            let reseeds =
                frontier.iter().map(|&v| Operon::new(self.rz.primary(v), ACT_RESEED, [0, 0]));
            self.dev.register_data_transfer(reseeds);
            let mut repair = {
                let _s = obs.span("repair", bid, n_muts);
                self.dev.run()?
            };
            repair.reseed_triggers = frontier.len() as u64;
            repair.repair_cycles = repair.cycles;
            repair.repair_instrs = repair.counters.instrs;
            report.absorb(repair);
            report
        } else {
            self.dev.register_data_transfer(wave);
            let _s = obs.span("structural", bid, n_muts);
            self.dev.run()?
        };
        // Demotion sweep: collapse rhizomes whose live degree fell back
        // below the threshold, then re-ingest their merged edge slices.
        let due = self.rz.take_demotions(threshold);
        if !due.is_empty() {
            let merge = self.demote_collapse(&due);
            if !merge.is_empty() {
                self.dev.register_data_transfer(merge);
                let _s = obs.span("demote_merge", bid, n_muts);
                report.absorb(self.dev.run()?);
            }
        }
        // Standing-query maintenance: a deletion may have stranded automaton
        // states whose every derivation ran through the removed edge, and a
        // structural phase suppressed the insert-time query announcements.
        // Either way the repair is independent of the algorithm's repair mode
        // and of `propagate_algo` — query state must stay exact even when
        // the algorithm's own propagation is disabled.
        if !self.queries.is_empty() {
            let del_heads: Vec<u32> = batch
                .muts
                .iter()
                .filter_map(|m| match *m {
                    GraphMutation::DelEdge((_, v, _)) => Some(v),
                    _ => None,
                })
                .collect();
            let suppressed = needs_repair && self.dev.app().propagate_algo;
            let mut cleared: Vec<u32> = Vec::new();
            if !del_heads.is_empty() || suppressed {
                let (rq, region) = {
                    let _s = obs.span("query_repair", bid, n_muts);
                    self.repair_queries(&del_heads, &touched)?
                };
                obs.counter_add("query.repair_cycles", rq.cycles);
                report.absorb(rq);
                cleared = region;
            }
            // Result deltas: diff each query's current accepting set against
            // the stored baseline, restricted to the candidate vertices this
            // increment could have changed — the on-fabric recorded accepting
            // transitions plus the repair-cleared region. No full rescan.
            self.compute_query_deltas(&cleared);
        }
        // Quiescent: no retraction in flight, drained identities can go.
        self.ledger.prune_drained();
        // Hot-object rebalance (untimed, like construction): level the
        // per-column load before the next increment streams in.
        if self.migrate {
            report.migrations = self.rebalance_hot(MIGRATE_BUDGET)?;
        }
        // Fold the increment's RunReport deltas into the registry so the
        // live Stats snapshot carries simulated-time totals next to the
        // wall-clock span histograms.
        if obs.is_enabled() {
            obs.counter_add("graph.increments", 1);
            obs.counter_add("graph.mutations", n_muts);
            obs.counter_add("graph.cycles", report.cycles);
            obs.counter_add("graph.repair_cycles", report.repair_cycles);
            obs.counter_add("graph.reseed_triggers", report.reseed_triggers);
            obs.observe("graph.increment_cycles", report.cycles);
            obs.counter_add("shard.migrations", report.migrations);
            let chip = self.dev.chip();
            let (sc, sr) = (chip.sharded_cycles(), chip.steal_rows());
            obs.counter_add("shard.busy_cycles", sc - self.shard_marks.0);
            obs.counter_add("shard.steal_rows", sr - self.shard_marks.1);
            self.shard_marks = (sc, sr);
            // Run-to-date max/mean executor imbalance across the sharded
            // engine's workers, in milli-units (1000 = perfectly level).
            let imb = max_mean_ratio(chip.exec_active());
            obs.gauge_set("shard.imbalance_milli", (imb * 1000.0) as i64);
        }
        Ok(report)
    }

    /// Host-orchestrated deletion repair for standing-query state, the
    /// query-layer analogue of the invalidate+reseed cascade: compute the
    /// coarse invalidation region — the forward closure over the *surviving*
    /// directed adjacency (any label) from the heads of this batch's deleted
    /// edges — clear every automaton-state bitset stored anywhere in it
    /// (host-side, untimed, like promotion bookkeeping), and inject a timed
    /// repair wave that re-derives exactly the surviving states: each query
    /// re-seeds its closed start set at its source, and each frontier vertex
    /// (surviving in-neighbours of the region, the region itself, and the
    /// batch's touched sources) re-announces all its surviving states along
    /// its out-edges.
    ///
    /// Soundness: a state that survives the clearing has a derivation whose
    /// suffix after any deleted edge is intact, because every vertex forward
    /// of a deleted edge's head was cleared. Completeness: the first missing
    /// state on any surviving derivation path is re-fed either by its
    /// query's source seed or by a frontier in-neighbour's re-announcement,
    /// and monotone propagation rebuilds everything downstream.
    /// Returns the run report and the cleared region (sorted vertex ids) so
    /// the caller can fold the region into the result-delta candidate set —
    /// host-side clearing is the one accepting-bit removal path the on-fabric
    /// transition recorder cannot see.
    fn repair_queries(
        &mut self,
        del_heads: &[u32],
        touched: &[u32],
    ) -> Result<(RunReport, Vec<u32>), SimError> {
        // Forward closure over surviving out-edges (the closure is a set, so
        // hash-order traversal cannot perturb the sorted result).
        let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
        for (&(u, v), c) in &self.ledger.copies {
            if !c.live.is_empty() {
                adj.entry(u).or_default().push(v);
            }
        }
        let mut seen: std::collections::HashSet<u32> = del_heads.iter().copied().collect();
        let mut work: Vec<u32> = seen.iter().copied().collect();
        let mut region: Vec<u32> = Vec::new();
        while let Some(v) = work.pop() {
            region.push(v);
            if let Some(ns) = adj.get(&v) {
                for &n in ns {
                    if seen.insert(n) {
                        work.push(n);
                    }
                }
            }
        }
        region.sort_unstable();
        for &v in &region {
            for a in walk::collect_logical_objects(self.rz.primary(v), |x| self.dev.object(x)) {
                self.dev.object_mut(a).expect("object live").qbits.clear();
            }
        }
        let mut frontier: Vec<u32> =
            region.iter().flat_map(|&v| self.ledger.sources_into(v)).collect();
        frontier.extend_from_slice(&region);
        frontier.extend_from_slice(touched);
        frontier.sort_unstable();
        frontier.dedup();
        let mut wave: Vec<Operon> = Vec::with_capacity(self.queries.len() + frontier.len());
        for (qid, q) in self.queries.iter().enumerate() {
            for &s in &q.sources {
                wave.push(query_operon(self.rz.primary(s), qid as u32, q.dfa.start_bits()));
            }
        }
        for &v in &frontier {
            wave.push(query_reseed_operon(self.rz.primary(v), QUERY_ALL));
        }
        self.dev.register_data_transfer(wave);
        Ok((self.dev.run()?, region))
    }

    /// Stream an insert-only increment (the source paper's workload shape):
    /// sugar for [`Self::stream_increment`] over [`GraphMutation::AddEdge`]s.
    pub fn stream_edges(&mut self, edges: &[StreamEdge]) -> Result<RunReport, SimError> {
        self.stream_increment(&GraphMutation::adds(edges))
    }

    /// Inject an arbitrary operon wave through the IO channels and run it to
    /// quiescence (used by snapshot queries such as triangle counting).
    pub fn run_query(
        &mut self,
        ops: impl IntoIterator<Item = Operon>,
    ) -> Result<RunReport, SimError> {
        self.dev.register_data_transfer(ops);
        self.dev.run()
    }

    /// Register a standing label-constrained path query anchored at a single
    /// source vertex: sugar for [`Self::register_query_multi`] with one
    /// source.
    pub fn register_query(&mut self, pattern: &str, source: u32) -> Result<u32, QueryError> {
        self.register_query_multi(pattern, &[source])
    }

    /// Register a standing label-constrained path query anchored at several
    /// source vertices at once: compile `pattern` (see
    /// [`crate::query::compile`] for the grammar), assign the next query id,
    /// mirror the automaton into the fabric app **once** (one compiled DFA,
    /// one qbits plane regardless of source count), and seed the closed
    /// start-state set at every source's primary root — a timed diffusion
    /// run to quiescence that computes the union-over-sources result set.
    /// From then on every [`Self::stream_increment`] maintains the result
    /// incrementally and reports its per-increment delta
    /// ([`Self::take_query_deltas`]).
    ///
    /// `sources` is deduplicated and sorted at registration; it must be
    /// non-empty ([`QueryError::NoSources`]) and in range
    /// ([`QueryError::SourceOutOfRange`]).
    pub fn register_query_multi(
        &mut self,
        pattern: &str,
        sources: &[u32],
    ) -> Result<u32, QueryError> {
        let dfa = compile(pattern)?;
        if sources.is_empty() {
            return Err(QueryError::NoSources);
        }
        let mut sources = sources.to_vec();
        sources.sort_unstable();
        sources.dedup();
        for &s in &sources {
            if s >= self.n_vertices() {
                return Err(QueryError::SourceOutOfRange { source: s, n: self.n_vertices() });
            }
        }
        let qid = self.queries.len() as u32;
        self.dev.app_mut().queries.push(dfa.clone());
        let start = dfa.start_bits();
        let wave: Vec<Operon> =
            sources.iter().map(|&s| query_operon(self.rz.primary(s), qid, start)).collect();
        self.queries.push(StandingQuery { pattern: pattern.to_string(), sources, dfa });
        self.dev.register_data_transfer(wave);
        let obs = self.obs.clone();
        obs.counter_add("query.registered", 1);
        let report = {
            let _s = obs.span("query_seed", self.seq, 1);
            self.dev.run().expect("query registration diffusion")
        };
        obs.counter_add("query.repair_cycles", report.cycles);
        // The registration diffusion is the query's baseline, not a delta:
        // discard its transition records and snapshot the accepting set.
        let _ = self.dev.app_mut().take_query_touched();
        let words = (self.n_vertices() as usize).div_ceil(64);
        let mut plane = vec![0u64; words];
        for v in self.query_results(qid) {
            plane[(v / 64) as usize] |= 1 << (v % 64);
        }
        self.qaccept.push(plane);
        Ok(qid)
    }

    /// Current result set of registered query `qid`: the sorted vertex ids
    /// whose automaton-state bitset contains an accepting state — i.e. the
    /// vertices reachable from any of the query's sources along a path whose
    /// label word matches the pattern. Empty for an unknown id.
    pub fn query_results(&self, qid: u32) -> Vec<u32> {
        let Some(q) = self.queries.get(qid as usize) else { return Vec::new() };
        let accepting = q.dfa.accepting_bits();
        (0..self.n_vertices())
            .filter(|&v| {
                let obj = self.dev.object(self.rz.primary(v)).expect("root object live");
                obj.qbits_get(qid) & accepting != 0
            })
            .collect()
    }

    /// Drain the result-set deltas of the most recent increment: one
    /// [`QueryDelta`] per registered query (empty `added`/`removed` when
    /// that query's results did not change), pinned bit-identical to diffing
    /// [`Self::query_results`] before and after the increment. Computed
    /// incrementally from the transitions the batch actually caused, not by
    /// rescanning the vertex set. Empty if no increment ran since the last
    /// drain (or no queries are registered).
    pub fn take_query_deltas(&mut self) -> Vec<QueryDelta> {
        std::mem::take(&mut self.last_deltas)
    }

    /// Diff each query's current accepting set against the stored baseline
    /// over the candidate vertices only (recorded accepting transitions ∪
    /// `cleared`), update the baseline, and store the deltas for
    /// [`Self::take_query_deltas`]. Candidates may over-approximate — every
    /// candidate is re-checked against the primary root — but must cover:
    /// an accepting bit can only turn **on** through `absorb_query_bits`
    /// (recorded on-fabric; mirror replication cannot create a transition
    /// the primary never saw) and can only turn **off** through the
    /// repair-time host clear (`cleared`).
    fn compute_query_deltas(&mut self, cleared: &[u32]) {
        let touched = self.dev.app_mut().take_query_touched();
        let mut deltas = Vec::with_capacity(self.queries.len());
        for qid in 0..self.queries.len() {
            let accepting = self.queries[qid].dfa.accepting_bits();
            let mut cands: Vec<u32> = touched
                .iter()
                .filter(|&&(tq, _)| tq == qid as u32)
                .map(|&(_, v)| v)
                .chain(cleared.iter().copied())
                .collect();
            cands.sort_unstable();
            cands.dedup();
            let mut added = Vec::new();
            let mut removed = Vec::new();
            for v in cands {
                let obj = self.dev.object(self.rz.primary(v)).expect("root object live");
                let now = obj.qbits_get(qid as u32) & accepting != 0;
                let (w, b) = ((v / 64) as usize, v % 64);
                let before = self.qaccept[qid][w] >> b & 1 != 0;
                if now && !before {
                    self.qaccept[qid][w] |= 1 << b;
                    added.push(v);
                } else if !now && before {
                    self.qaccept[qid][w] &= !(1 << b);
                    removed.push(v);
                }
            }
            deltas.push(QueryDelta { qid: qid as u32, added, removed });
        }
        self.last_deltas = deltas;
    }

    /// The registered standing queries, indexed by query id (checkpoints
    /// persist this list so restore re-registers and re-derives each one).
    pub fn registered_queries(&self) -> &[StandingQuery] {
        &self.queries
    }

    /// The algorithm state stored at a vertex's primary root object (all
    /// co-equal roots agree at quiescence; see
    /// [`Self::check_mirror_consistency`]).
    pub fn state_of(&self, vid: u32) -> G::State {
        self.dev.object(self.rz.primary(vid)).expect("root object live").state
    }

    /// All root states, indexed by vertex id.
    pub fn states(&self) -> Vec<G::State> {
        (0..self.n_vertices()).map(|v| self.state_of(v)).collect()
    }

    /// All edges stored anywhere in a vertex's logical adjacency — every
    /// co-equal root and its ghost subtree — as `(dst_id, w)` pairs.
    pub fn logical_edges(&self, vid: u32) -> Vec<(u32, u32)> {
        walk::collect_logical_edges(self.rz.primary(vid), |a| self.dev.object(a))
            .into_iter()
            .map(|e| (e.dst_id, e.w))
            .collect()
    }

    /// Out-degree of a vertex: edges stored across all roots and ghosts.
    pub fn degree(&self, vid: u32) -> usize {
        walk::collect_logical_objects(self.rz.primary(vid), |a| self.dev.object(a))
            .into_iter()
            .map(|a| self.dev.object(a).expect("object live").edges.len())
            .sum()
    }

    /// Depth of a vertex's primary-root RPVO subtree (1 = root only).
    pub fn rpvo_depth(&self, vid: u32) -> usize {
        walk::depth(self.rz.primary(vid), |a| self.dev.object(a))
    }

    /// Addresses of every object of a vertex's *primary* RPVO subtree (root
    /// first). Use [`Self::rhizome_objects`] to span co-equal roots too.
    pub fn rpvo_objects(&self, vid: u32) -> Vec<Address> {
        walk::collect_objects(self.rz.primary(vid), |a| self.dev.object(a))
    }

    /// Addresses of every object of the whole logical vertex: all co-equal
    /// roots and each root's ghost subtree.
    pub fn rhizome_objects(&self, vid: u32) -> Vec<Address> {
        walk::collect_logical_objects(self.rz.primary(vid), |a| self.dev.object(a))
    }

    /// `(cumulative promotions, extra roots currently allocated)` so far.
    pub fn rhizome_stats(&self) -> (u64, u64) {
        (self.rz.promoted_count(), self.rz.extra_root_count())
    }

    /// Number of rhizome demotions performed so far.
    pub fn demotion_count(&self) -> u64 {
        self.rz.demoted_count()
    }

    /// Live streamed degree of a vertex (add-endpoint touches minus
    /// del-endpoint touches) — the promotion/demotion decision quantity.
    pub fn live_degree(&self, vid: u32) -> u32 {
        self.rz.live_degree(vid)
    }

    /// Number of live edges according to the host's mutation ledger (equals
    /// [`Self::total_edges_stored`] at quiescence).
    pub fn live_edge_count(&self) -> u64 {
        self.ledger.live_count()
    }

    /// The live edge multiset at current weights, in insertion order — the
    /// serialization hook checkpoints are built from: streaming this list
    /// into a freshly built graph reproduces the same per-pair copy order
    /// (oldest first), so a replayed mutation tail resolves deletes and
    /// re-weights to the same copies.
    pub fn live_edges(&self) -> Vec<StreamEdge> {
        self.log.live_edges()
    }

    /// [`Self::live_edges`] with each copy's label — the edge set standing
    /// queries run over, and what label-aware checkpoints serialize.
    pub fn live_labeled_edges(&self) -> Vec<(StreamEdge, u8)> {
        self.log.live_labeled_edges()
    }

    /// Per-vertex converged states as algorithm-defined wire values
    /// ([`VertexAlgo::sync_value`]; `None` where the algorithm has no
    /// announceable state, e.g. unreached BFS vertices). Checkpoints store
    /// these for the restore-time fixpoint integrity check.
    pub fn sync_values(&self) -> Vec<Option<u64>> {
        (0..self.n_vertices()).map(|v| self.dev.app().algo.sync_value(&self.state_of(v))).collect()
    }

    /// Currently promoted (multi-root) vertices, in ascending id order.
    pub fn promoted_vertices(&self) -> Vec<u32> {
        (0..self.n_vertices()).filter(|&v| self.rz.is_promoted(v)).collect()
    }

    /// Verify that every object of every vertex — co-equal roots and ghost
    /// mirrors alike — equals the primary root's state (must hold at
    /// quiescence). Returns the first violation.
    pub fn check_mirror_consistency(&self) -> Result<(), String> {
        for vid in 0..self.n_vertices() {
            let root = self.rz.primary(vid);
            let want = self.dev.object(root).expect("root live").state;
            for a in walk::collect_logical_objects(root, |x| self.dev.object(x)) {
                let got = self.dev.object(a).expect("object live").state;
                if got != want {
                    return Err(format!(
                        "vertex {vid}: mirror at {a} has {got:?}, root has {want:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total edges stored on the chip (each live streamed edge stored once).
    pub fn total_edges_stored(&self) -> u64 {
        let mut n = 0u64;
        self.dev.chip().for_each_object(|_, obj| n += obj.edges.len() as u64);
        n
    }

    /// `(ghost_count, average parent→ghost hop distance)` across all RPVOs —
    /// the quantity the Vicinity vs Random ablation compares (Fig. 5).
    pub fn ghost_distance_stats(&self) -> (u64, f64) {
        let dims = self.dev.chip().cfg().dims;
        let mut count = 0u64;
        let mut hops = 0u64;
        self.dev.chip().for_each_object(|addr, obj| {
            for g in obj.ready_ghosts() {
                count += 1;
                hops += dims.distance(addr.cc, g.cc) as u64;
            }
        });
        (count, if count == 0 { 0.0 } else { hops as f64 / count as f64 })
    }

    /// The observability handle this graph records into (the serving layer
    /// clones it so graph and server share one registry).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The underlying diffusive device (read access).
    pub fn device(&self) -> &Device<GraphApp<G>> {
        &self.dev
    }

    /// The underlying diffusive device (mutable access).
    pub fn device_mut(&mut self) -> &mut Device<GraphApp<G>> {
        &mut self.dev
    }
}

/// Symmetrize an undirected edge list into a directed stream (both
/// directions, interleaved so the two copies of an edge travel together).
pub fn symmetrize(edges: &[StreamEdge]) -> Vec<StreamEdge> {
    let mut out = Vec::with_capacity(edges.len() * 2);
    for &(u, v, w) in edges {
        out.push((u, v, w));
        out.push((v, u, w));
    }
    out
}

/// Symmetrize a mutation batch: every `AddEdge` inserts both directions,
/// every `UpdateWeight` re-weights both directions, and — crucially for
/// decremental correctness — every `DelEdge` retracts both directions, so an
/// undirected workload never leaves a stale or mis-weighted reverse edge
/// behind.
pub fn symmetrize_mutations(muts: &[GraphMutation]) -> Vec<GraphMutation> {
    let mut out = Vec::with_capacity(muts.len() * 2);
    for m in muts {
        match *m {
            GraphMutation::AddEdge((u, v, w)) => {
                out.push(GraphMutation::AddEdge((u, v, w)));
                out.push(GraphMutation::AddEdge((v, u, w)));
            }
            GraphMutation::AddLabeledEdge((u, v, w), l) => {
                out.push(GraphMutation::AddLabeledEdge((u, v, w), l));
                out.push(GraphMutation::AddLabeledEdge((v, u, w), l));
            }
            GraphMutation::DelEdge((u, v, w)) => {
                out.push(GraphMutation::DelEdge((u, v, w)));
                out.push(GraphMutation::DelEdge((v, u, w)));
            }
            GraphMutation::UpdateWeight { u, v, w } => {
                out.push(GraphMutation::UpdateWeight { u, v, w });
                out.push(GraphMutation::UpdateWeight { u: v, v: u, w });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::bfs::{BfsAlgo, MAX_LEVEL};
    use crate::apps::concomp::CcAlgo;
    use crate::apps::sssp::{SsspAlgo, INF};
    use amcca_sim::ChipConfig;
    use GraphMutation::{AddEdge, DelEdge};

    fn small() -> StreamingGraph<BfsAlgo> {
        StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(16)
            .chip(ChipConfig::small_test())
            .rpvo(RpvoConfig::basic(4, 2))
            .build()
            .unwrap()
    }

    #[test]
    fn hot_migration_levels_columns_and_preserves_results() {
        // Two moderate hubs (vertices 0 and 8) share mesh column 0 under
        // round-robin placement on the 8 × 8 test chip; the rebalancer
        // should move exactly one of them to an empty column (moving the
        // second would no longer strictly improve the spread).
        let run = |migrate: bool| {
            let mut g = StreamingGraph::builder(BfsAlgo::new(0))
                .vertices(16)
                .chip(ChipConfig::small_test())
                .rpvo(RpvoConfig::basic(4, 2))
                .migrate_hot(migrate)
                .build()
                .unwrap();
            let mut edges: Vec<StreamEdge> = (1..6).map(|v| (0, v, 1)).collect();
            edges.extend((9..14).map(|v| (8, v, 1)));
            let r = g.stream_edges(&edges).unwrap();
            // A follow-up increment exercises the patched addresses.
            let r2 = g.stream_edges(&[(5, 8, 1), (13, 15, 1)]).unwrap();
            (g, r.migrations, r2.migrations)
        };
        let (moved, m1, _) = run(true);
        let (stayed, z1, z2) = run(false);
        assert_eq!(m1, 1, "one hub moves, the second no longer improves the spread");
        assert_eq!((z1, z2), (0, 0), "knob off: no moves");
        let dims_x = 8;
        assert_ne!(moved.addr_of(0).cc % dims_x, 0, "hub 0 re-homed off column 0");
        assert_eq!(stayed.addr_of(0).cc % dims_x, 0);
        for v in 0..16 {
            assert_eq!(moved.state_of(v), stayed.state_of(v), "vertex {v} level unchanged");
        }
        moved.check_mirror_consistency().unwrap();
    }

    #[test]
    fn migration_skips_rhizomes_and_empty_graphs() {
        let mut g = StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(16)
            .chip(ChipConfig::small_test())
            .rpvo(RpvoConfig::basic(4, 2).with_rhizomes(4, 2))
            .build()
            .unwrap();
        assert_eq!(g.rebalance_hot(8).unwrap(), 0, "nothing streamed: no load to level");
        // Vertex 0 crosses the rhizome threshold — promoted vertices are
        // already fanned out and must not be rebound.
        g.stream_edges(&(1..6).map(|v| (0, v, 1)).collect::<Vec<_>>()).unwrap();
        assert!(g.roots_of(0).len() > 1, "hub promoted");
        g.rebalance_hot(8).unwrap();
        assert_eq!(g.roots_of(0).len(), g.rz.root_count(0), "directory still consistent");
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_still_builds_the_same_graph() {
        let g = StreamingGraph::new(
            ChipConfig::small_test(),
            RpvoConfig::basic(4, 2),
            BfsAlgo::new(0),
            16,
        )
        .unwrap();
        assert_eq!(g.n_vertices(), 16);
        assert_eq!(g.repair_mode(), RepairMode::Targeted);
    }

    #[test]
    fn construction_allocates_all_roots() {
        let g = small();
        assert_eq!(g.n_vertices(), 16);
        assert_eq!(g.state_of(0), 0, "BFS root at level 0");
        for v in 1..16 {
            assert_eq!(g.state_of(v), MAX_LEVEL);
        }
        assert_eq!(g.total_edges_stored(), 0);
    }

    #[test]
    fn stream_path_graph_levels() {
        let mut g = small();
        // 0 -> 1 -> 2 -> ... -> 15
        let edges: Vec<StreamEdge> = (0..15).map(|i| (i, i + 1, 1)).collect();
        g.stream_edges(&edges).unwrap();
        for v in 0..16 {
            assert_eq!(g.state_of(v), v as u64, "level along the path");
        }
        assert_eq!(g.total_edges_stored(), 15);
        assert_eq!(g.live_edge_count(), 15);
    }

    #[test]
    fn reversed_stream_order_converges_identically() {
        let mut g = small();
        let mut edges: Vec<StreamEdge> = (0..15).map(|i| (i, i + 1, 1)).collect();
        edges.reverse();
        g.stream_edges(&edges).unwrap();
        for v in 0..16 {
            assert_eq!(g.state_of(v), v as u64);
        }
    }

    #[test]
    fn increments_update_previous_results() {
        let mut g = small();
        // Increment 1: a long path 0->1->...->7.
        let edges: Vec<StreamEdge> = (0..7).map(|i| (i, i + 1, 1)).collect();
        g.stream_edges(&edges).unwrap();
        assert_eq!(g.state_of(7), 7);
        // Increment 2: shortcut 0 -> 6 lowers downstream levels without
        // recomputation from scratch.
        g.stream_edges(&[(0, 6, 1)]).unwrap();
        assert_eq!(g.state_of(6), 1);
        assert_eq!(g.state_of(7), 2);
        assert_eq!(g.state_of(3), 3, "untouched prefix keeps its level");
    }

    #[test]
    fn deleting_a_shortcut_restores_the_long_path() {
        let mut g = small();
        let path: Vec<StreamEdge> = (0..7).map(|i| (i, i + 1, 1)).collect();
        g.stream_edges(&path).unwrap();
        g.stream_edges(&[(0, 6, 1)]).unwrap();
        assert_eq!(g.state_of(7), 2, "shortcut in effect");
        // Retract the shortcut: invalidation recalls the derived levels and
        // the reseed wave re-relaxes along the surviving path.
        g.stream_increment(&[DelEdge((0, 6, 1))]).unwrap();
        assert_eq!(g.state_of(6), 6, "level re-derived along the path");
        assert_eq!(g.state_of(7), 7);
        assert_eq!(g.total_edges_stored(), 7);
        assert_eq!(g.live_edge_count(), 7);
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    fn deleting_the_only_reaching_edge_unreaches_downstream() {
        let mut g = small();
        g.stream_edges(&[(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        assert_eq!(g.state_of(3), 3);
        g.stream_increment(&[DelEdge((0, 1, 1))]).unwrap();
        for v in 1..4 {
            assert_eq!(g.state_of(v), MAX_LEVEL, "vertex {v} unreachable after the cut");
        }
        assert_eq!(g.state_of(0), 0, "the source is self-supported");
        assert_eq!(g.total_edges_stored(), 2);
    }

    #[test]
    fn delete_one_of_two_parallel_edges_keeps_the_level() {
        let mut g = small();
        g.stream_edges(&[(0, 1, 1), (0, 1, 1)]).unwrap();
        assert_eq!(g.state_of(1), 1);
        assert_eq!(g.total_edges_stored(), 2);
        g.stream_increment(&[DelEdge((0, 1, 1))]).unwrap();
        assert_eq!(g.total_edges_stored(), 1, "exactly one copy retracted");
        assert_eq!(g.state_of(1), 1, "the surviving copy re-supports the level");
        g.stream_increment(&[DelEdge((0, 1, 1))]).unwrap();
        assert_eq!(g.total_edges_stored(), 0);
        assert_eq!(g.state_of(1), MAX_LEVEL);
    }

    #[test]
    fn same_batch_add_delete_annihilates_on_host() {
        let mut g = small();
        let r = g
            .stream_increment(&[AddEdge((0, 1, 1)), AddEdge((1, 2, 1)), DelEdge((1, 2, 1))])
            .unwrap();
        assert_eq!(g.total_edges_stored(), 1, "the add/delete pair never hit the fabric");
        assert_eq!(g.state_of(1), 1);
        assert_eq!(g.state_of(2), MAX_LEVEL);
        // Annihilation means no deletion reached the fabric, so the batch
        // takes the single-phase fast path: counters show one insert only.
        assert_eq!(r.counters.msgs_delivered, 2, "one insert + its relax");
    }

    #[test]
    #[should_panic(expected = "no live copy to delete")]
    fn deleting_a_nonexistent_edge_is_a_host_bug() {
        let mut g = small();
        g.stream_increment(&[DelEdge((0, 1, 1))]).unwrap();
    }

    #[test]
    fn sssp_repair_after_deleting_the_cheap_road() {
        let mut g = StreamingGraph::builder(SsspAlgo::new(0))
            .vertices(8)
            .chip(ChipConfig::small_test())
            .rpvo(RpvoConfig::basic(4, 2))
            .build()
            .unwrap();
        g.stream_edges(&[(0, 1, 10), (1, 2, 10), (0, 2, 3)]).unwrap();
        assert_eq!(g.state_of(2), 3);
        g.stream_increment(&[DelEdge((0, 2, 3))]).unwrap();
        assert_eq!(g.state_of(2), 20, "distance re-derived through the long road");
        g.stream_increment(&[DelEdge((1, 2, 10))]).unwrap();
        assert_eq!(g.state_of(2), INF);
        assert_eq!(g.state_of(1), 10);
    }

    #[test]
    fn cc_split_after_deleting_a_symmetrized_bridge() {
        let mut g = StreamingGraph::builder(CcAlgo)
            .vertices(6)
            .chip(ChipConfig::small_test())
            .rpvo(RpvoConfig::basic(4, 2))
            .build()
            .unwrap();
        let und = [(0u32, 1u32, 1u32), (1, 2, 1), (3, 4, 1), (2, 3, 1)];
        g.stream_increment(&symmetrize_mutations(&GraphMutation::adds(&und))).unwrap();
        for v in 0..5 {
            assert_eq!(g.state_of(v), 0, "single component");
        }
        // Cut the bridge 2–3 in both directions: the far side must fall back
        // to its own minimum label. No stale reverse edge may keep label 0
        // alive on the 3–4 side.
        g.stream_increment(&symmetrize_mutations(&[DelEdge((2, 3, 1))])).unwrap();
        assert_eq!(g.state_of(0), 0);
        assert_eq!(g.state_of(2), 0);
        assert_eq!(g.state_of(3), 3, "split component re-labels from its min id");
        assert_eq!(g.state_of(4), 3);
        assert_eq!(g.state_of(5), 5);
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    fn deletion_without_propagation_only_edits_structure() {
        let mut g = small();
        g.set_algo_propagation(false);
        g.stream_edges(&[(0, 1, 1), (1, 2, 1)]).unwrap();
        let r = g.stream_increment(&[DelEdge((0, 1, 1))]).unwrap();
        assert_eq!(g.total_edges_stored(), 1);
        // No relax, retract-repair, or reseed traffic: structural only.
        assert_eq!(r.counters.msgs_delivered, 1, "just the delete operon");
        for v in 1..16 {
            assert_eq!(g.state_of(v), MAX_LEVEL);
        }
    }

    #[test]
    fn mirror_consistency_after_spills() {
        let mut g = small();
        // A star around vertex 0 forces RPVO spills (cap 4).
        let edges: Vec<StreamEdge> = (1..16).map(|v| (0, v, 1)).collect();
        g.stream_edges(&edges).unwrap();
        g.check_mirror_consistency().unwrap();
        assert!(g.rpvo_objects(0).len() > 1, "vertex 0 must have spilled");
        assert_eq!(g.total_edges_stored(), 15);
        // All leaves at level 1.
        for v in 1..16 {
            assert_eq!(g.state_of(v), 1);
        }
    }

    #[test]
    fn deletion_reaches_edges_spilled_into_ghosts() {
        let mut g = small();
        let edges: Vec<StreamEdge> = (1..16).map(|v| (0, v, 1)).collect();
        g.stream_edges(&edges).unwrap();
        assert!(g.rpvo_depth(0) >= 2, "cap 4 with 15 edges must spill");
        // Delete edges that certainly live in ghost objects (only 4 fit in
        // the root) — the retraction broadcast must find every one.
        let dels: Vec<GraphMutation> = (1..16).map(|v| DelEdge((0, v, 1))).collect();
        g.stream_increment(&dels).unwrap();
        assert_eq!(g.total_edges_stored(), 0);
        assert_eq!(g.degree(0), 0);
        for v in 1..16 {
            assert_eq!(g.state_of(v), MAX_LEVEL, "vertex {v} unreached after full cut");
        }
    }

    #[test]
    fn degree_and_depth_track_spills() {
        let mut g = small();
        let edges: Vec<StreamEdge> = (1..13).map(|v| (0, v, 1)).collect();
        g.stream_edges(&edges).unwrap();
        assert_eq!(g.degree(0), 12);
        assert_eq!(g.degree(1), 0);
        assert!(g.rpvo_depth(0) >= 2, "cap 4 with 12 edges must spill");
        assert_eq!(g.rpvo_depth(1), 1);
    }

    #[test]
    fn hub_promotes_to_rhizome_and_stays_correct() {
        let rcfg = RpvoConfig::basic(4, 2).with_rhizomes(6, 3);
        let mut g = StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(24)
            .chip(ChipConfig::small_test())
            .rpvo(rcfg)
            .build()
            .unwrap();
        // A star around vertex 0: crosses the threshold mid-increment.
        let edges: Vec<StreamEdge> = (1..24).map(|v| (0, v, 1)).collect();
        g.stream_edges(&edges).unwrap();
        let (promoted, extra) = g.rhizome_stats();
        assert_eq!(promoted, 1, "only the hub crossed the threshold");
        assert_eq!(extra, 2, "K=3 adds two extra roots");
        assert_eq!(g.roots_of(0).len(), 3);
        assert_eq!(g.roots_of(1).len(), 1);
        // Every root is cross-linked to the other two.
        for a in g.roots_of(0) {
            let obj = g.device().object(a).unwrap();
            assert!(obj.is_root() && obj.is_rhizome());
            assert_eq!(obj.peers.len(), 2);
        }
        // All 23 edges stored exactly once across the root slices.
        assert_eq!(g.degree(0), 23);
        assert_eq!(g.total_edges_stored(), 23);
        // The edge slices are genuinely split across roots.
        let with_edges = g
            .roots_of(0)
            .iter()
            .filter(|&&a| !walk::collect_edges(a, |x| g.device().object(x)).is_empty())
            .count();
        assert!(with_edges >= 2, "edge list split across co-equal roots");
        // BFS results unchanged: every leaf at level 1, mirrors consistent.
        for v in 1..24 {
            assert_eq!(g.state_of(v), 1);
        }
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    fn cold_rhizome_demotes_to_a_single_root() {
        let rcfg = RpvoConfig::basic(4, 2).with_rhizomes(6, 3);
        let mut g = StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(24)
            .chip(ChipConfig::small_test())
            .rpvo(rcfg)
            .build()
            .unwrap();
        let star: Vec<StreamEdge> = (1..24).map(|v| (0, v, 1)).collect();
        g.stream_edges(&star).unwrap();
        assert_eq!(g.roots_of(0).len(), 3, "hub promoted");
        let objects_before = {
            let mut n = 0;
            g.device().chip().for_each_object(|_, _| n += 1);
            n
        };
        // Cool the hub: delete all but two of its edges in one batch. The
        // live degree falls far below the threshold, so the sweep at the end
        // of the increment must collapse the rhizome.
        let dels: Vec<GraphMutation> = (3..24).map(|v| DelEdge((0, v, 1))).collect();
        g.stream_increment(&dels).unwrap();
        assert_eq!(g.roots_of(0).len(), 1, "demoted vertex has exactly one root");
        assert_eq!(g.demotion_count(), 1);
        let primary = g.addr_of(0);
        let obj = g.device().object(primary).unwrap();
        assert!(!obj.is_rhizome(), "rhizome links cleared");
        // The two surviving edges merged into the primary's subtree.
        let mut ids: Vec<u32> = g.logical_edges(0).iter().map(|&(d, _)| d).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(g.total_edges_stored(), 2);
        // The freed extra roots and their ghosts are genuinely gone.
        let objects_after = {
            let mut n = 0;
            g.device().chip().for_each_object(|_, _| n += 1);
            n
        };
        assert!(objects_after < objects_before, "extra roots were freed");
        // BFS is still exact: 1 and 2 at level 1, the rest unreached.
        assert_eq!(g.state_of(1), 1);
        assert_eq!(g.state_of(2), 1);
        for v in 3..24 {
            assert_eq!(g.state_of(v), MAX_LEVEL);
        }
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    fn demoted_hub_can_promote_again() {
        let rcfg = RpvoConfig::basic(4, 2).with_rhizomes(6, 3);
        let mut g = StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(32)
            .chip(ChipConfig::small_test())
            .rpvo(rcfg)
            .build()
            .unwrap();
        let star: Vec<StreamEdge> = (1..8).map(|v| (0, v, 1)).collect();
        g.stream_edges(&star).unwrap();
        assert!(g.rz.is_promoted(0));
        let dels: Vec<GraphMutation> = (1..8).map(|v| DelEdge((0, v, 1))).collect();
        g.stream_increment(&dels).unwrap();
        assert_eq!(g.roots_of(0).len(), 1);
        // Heat the hub back up: it must promote a second time.
        let star2: Vec<StreamEdge> = (8..20).map(|v| (0, v, 1)).collect();
        g.stream_edges(&star2).unwrap();
        assert_eq!(g.roots_of(0).len(), 3, "re-promoted after re-heating");
        assert_eq!(g.rhizome_stats().0, 2, "promotions accumulate");
        assert_eq!(g.demotion_count(), 1);
        for v in 8..20 {
            assert_eq!(g.state_of(v), 1);
        }
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    fn demotion_patches_edges_pointing_at_freed_roots() {
        // Vertex 1 promotes; OTHER vertices' edges were routed to its extra
        // roots. After demotion those destinations are freed, so every
        // stored edge must have been re-pointed at the primary — a relax
        // along such an edge must not fault and must still reach vertex 1.
        let rcfg = RpvoConfig::basic(4, 2).with_rhizomes(4, 3);
        let mut g = StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(16)
            .chip(ChipConfig::small_test())
            .rpvo(rcfg)
            .build()
            .unwrap();
        // Many in-edges to 1 from distinct sources: 1 promotes, and the
        // sources' stored edges point at 1's various co-equal roots.
        let ins: Vec<StreamEdge> = (2..12).map(|u| (u, 1, 1)).collect();
        g.stream_edges(&ins).unwrap();
        assert!(g.rz.is_promoted(1));
        // Cool vertex 1 below the threshold.
        let dels: Vec<GraphMutation> = (5..12).map(|u| DelEdge((u, 1, 1))).collect();
        g.stream_increment(&dels).unwrap();
        assert_eq!(g.roots_of(1).len(), 1, "demoted");
        // Reach one of the surviving sources: the relax must traverse its
        // stored edge to vertex 1 without hitting a freed address.
        g.stream_edges(&[(0, 2, 1)]).unwrap();
        assert_eq!(g.state_of(2), 1);
        assert_eq!(g.state_of(1), 2, "edge into the demoted vertex still works");
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    fn rhizome_states_match_single_root_reference() {
        // Same stream, with and without rhizomes: identical BFS fixpoints.
        let run = |rcfg: RpvoConfig| {
            let mut g = StreamingGraph::builder(BfsAlgo::new(0))
                .vertices(16)
                .chip(ChipConfig::small_test())
                .rpvo(rcfg)
                .build()
                .unwrap();
            let star: Vec<StreamEdge> = (1..16).map(|v| (0, v, 1)).collect();
            let path: Vec<StreamEdge> = (0..15).map(|v| (v, v + 1, 1)).collect();
            g.stream_edges(&star).unwrap();
            g.stream_edges(&path).unwrap();
            g.check_mirror_consistency().unwrap();
            (g.states(), g.total_edges_stored())
        };
        let single = run(RpvoConfig::basic(4, 2));
        let rhizome = run(RpvoConfig::basic(4, 2).with_rhizomes(4, 4));
        assert_eq!(single, rhizome);
    }

    #[test]
    fn promotion_mid_stream_preserves_reached_state() {
        // Reach vertex 5 first, then promote it in a later increment: the
        // extra roots must inherit the converged level so edges landing on
        // them still announce values.
        let rcfg = RpvoConfig::basic(4, 2).with_rhizomes(8, 2);
        let mut g = StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(32)
            .chip(ChipConfig::small_test())
            .rpvo(rcfg)
            .build()
            .unwrap();
        g.stream_edges(&[(0, 5, 1)]).unwrap();
        assert_eq!(g.state_of(5), 1);
        // Now hammer vertex 5 until it promotes, fanning edges to vertices
        // reached only through the post-promotion slices.
        let burst: Vec<StreamEdge> = (6..31).map(|v| (5, v, 1)).collect();
        g.stream_edges(&burst).unwrap();
        assert!(g.rhizome_stats().0 >= 1, "vertex 5 promoted");
        for v in 6..31 {
            assert_eq!(g.state_of(v), 2, "leaf {v} reached through a rhizome slice");
        }
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    fn sharded_rhizome_streaming_matches_sequential() {
        let run = |shards: usize| {
            let mut g = StreamingGraph::builder(BfsAlgo::new(0))
                .vertices(24)
                .chip(ChipConfig::small_test().with_shards(shards))
                .rpvo(RpvoConfig::basic(4, 2).with_rhizomes(5, 4))
                .build()
                .unwrap();
            let mut cycles = 0u64;
            let star: Vec<StreamEdge> = (1..24).map(|v| (0, v, 1)).collect();
            let path: Vec<StreamEdge> = (0..23).map(|v| (v, v + 1, 1)).collect();
            for inc in [star, path] {
                cycles += g.stream_edges(&inc).unwrap().cycles;
            }
            g.check_mirror_consistency().unwrap();
            (g.states(), cycles, *g.device().chip().counters(), g.rhizome_stats())
        };
        let sequential = run(1);
        assert!(sequential.3 .0 > 0, "workload must exercise promotion");
        assert_eq!(sequential, run(3));
    }

    #[test]
    fn sharded_churn_matches_sequential() {
        // The full mutation pipeline — deletions, repair, demotion — is
        // shard-count-independent like the insert-only path.
        let run = |shards: usize| {
            let mut g = StreamingGraph::builder(BfsAlgo::new(0))
                .vertices(24)
                .chip(ChipConfig::small_test().with_shards(shards))
                .rpvo(RpvoConfig::basic(3, 2).with_rhizomes(5, 3))
                .build()
                .unwrap();
            let mut cycles = 0u64;
            let star: Vec<StreamEdge> = (1..20).map(|v| (0, v, 1)).collect();
            let path: Vec<StreamEdge> = (0..19).map(|v| (v, v + 1, 1)).collect();
            cycles += g.stream_edges(&star).unwrap().cycles;
            cycles += g.stream_edges(&path).unwrap().cycles;
            let dels: Vec<GraphMutation> = (4..20).map(|v| DelEdge((0, v, 1))).collect();
            cycles += g.stream_increment(&dels).unwrap().cycles;
            g.check_mirror_consistency().unwrap();
            (
                g.states(),
                cycles,
                *g.device().chip().counters(),
                g.rhizome_stats(),
                g.demotion_count(),
            )
        };
        let sequential = run(1);
        assert!(sequential.4 > 0, "workload must exercise demotion");
        assert_eq!(sequential, run(3));
    }

    #[test]
    fn update_weight_decrease_is_a_single_phase_relax() {
        let mut g = StreamingGraph::builder(SsspAlgo::new(0))
            .vertices(8)
            .chip(ChipConfig::small_test())
            .rpvo(RpvoConfig::basic(4, 2))
            .build()
            .unwrap();
        g.stream_edges(&[(0, 1, 10), (1, 2, 10)]).unwrap();
        assert_eq!(g.state_of(2), 20);
        // Cheaper road: plain relax, no repair phase at all.
        let r = g.stream_increment(&[GraphMutation::UpdateWeight { u: 1, v: 2, w: 3 }]).unwrap();
        assert_eq!(g.state_of(2), 13, "decrease relaxes the downstream distance");
        assert_eq!(r.reseed_triggers, 0, "no repair wave for a weight decrease");
        assert_eq!(r.repair_cycles, 0);
        assert_eq!(g.logical_edges(1), vec![(2, 3)], "weight patched in place");
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    fn update_weight_increase_repairs_paths_through_the_edge() {
        let mut g = StreamingGraph::builder(SsspAlgo::new(0))
            .vertices(8)
            .chip(ChipConfig::small_test())
            .rpvo(RpvoConfig::basic(4, 2))
            .build()
            .unwrap();
        g.stream_edges(&[(0, 1, 10), (1, 2, 10), (0, 2, 3)]).unwrap();
        assert_eq!(g.state_of(2), 3, "shortcut in effect");
        // Raise the shortcut above the long road: the distance derived
        // through it must invalidate and re-derive.
        let r = g.stream_increment(&[GraphMutation::UpdateWeight { u: 0, v: 2, w: 30 }]).unwrap();
        assert_eq!(g.state_of(2), 20, "distance re-derived through the long road");
        assert!(r.reseed_triggers > 0, "increase runs a repair wave");
        assert!(r.repair_cycles > 0);
        let stats = g.last_repair();
        assert_eq!(stats.invalidated, 1, "only vertex 2 relied on the cheap shortcut");
        assert!(stats.triggers < 8, "targeted reseed does not trigger every vertex");
        // Raising it further, but still above the alternative: no change.
        g.stream_increment(&[GraphMutation::UpdateWeight { u: 0, v: 2, w: 40 }]).unwrap();
        assert_eq!(g.state_of(2), 20);
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    fn update_weight_same_batch_as_add_coalesces_on_host() {
        let mut g = StreamingGraph::builder(SsspAlgo::new(0))
            .vertices(8)
            .chip(ChipConfig::small_test())
            .rpvo(RpvoConfig::basic(4, 2))
            .build()
            .unwrap();
        // The add and its re-weight travel as ONE insert: no repair phase
        // even though the weight "increased".
        let r = g
            .stream_increment(&[
                AddEdge((0, 1, 2)),
                GraphMutation::UpdateWeight { u: 0, v: 1, w: 9 },
            ])
            .unwrap();
        assert_eq!(g.state_of(1), 9, "the coalesced insert carries the final weight");
        assert_eq!(r.reseed_triggers, 0, "nothing was announced under the old weight");
        assert_eq!(g.logical_edges(0), vec![(1, 9)]);
    }

    #[test]
    fn update_weight_then_delete_in_one_batch_drops_the_patch() {
        let mut g = StreamingGraph::builder(SsspAlgo::new(0))
            .vertices(8)
            .chip(ChipConfig::small_test())
            .rpvo(RpvoConfig::basic(4, 2))
            .build()
            .unwrap();
        g.stream_edges(&[(0, 1, 10), (0, 1, 5)]).unwrap();
        assert_eq!(g.state_of(1), 5);
        // Re-weight the oldest copy (w 10) then delete it (by its ledger
        // weight, 7) in the same batch: the patch is moot and must not race
        // the retraction.
        g.stream_increment(&[GraphMutation::UpdateWeight { u: 0, v: 1, w: 7 }, DelEdge((0, 1, 7))])
            .unwrap();
        assert_eq!(g.logical_edges(0), vec![(1, 5)], "only the younger copy survives");
        assert_eq!(g.state_of(1), 5);
        assert_eq!(g.live_edge_count(), 1);
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    fn update_weight_picks_the_oldest_live_copy_of_the_pair() {
        let mut g = small();
        g.stream_edges(&[(0, 1, 5), (0, 1, 9)]).unwrap();
        g.stream_increment(&[GraphMutation::UpdateWeight { u: 0, v: 1, w: 2 }]).unwrap();
        let mut ws: Vec<u32> = g.logical_edges(0).iter().map(|&(_, w)| w).collect();
        ws.sort_unstable();
        assert_eq!(ws, vec![2, 9], "the oldest copy (w 5) was re-weighted");
    }

    #[test]
    #[should_panic(expected = "no live copy to update")]
    fn updating_a_nonexistent_edge_is_a_host_bug() {
        let mut g = small();
        g.stream_increment(&[GraphMutation::UpdateWeight { u: 0, v: 1, w: 2 }]).unwrap();
    }

    #[test]
    fn full_and_targeted_repair_reach_identical_fixpoints() {
        let run = |mode: RepairMode| {
            let mut g = StreamingGraph::builder(BfsAlgo::new(0))
                .vertices(16)
                .chip(ChipConfig::small_test())
                .rpvo(RpvoConfig::basic(3, 2))
                .repair(mode)
                .build()
                .unwrap();
            let path: Vec<StreamEdge> = (0..15).map(|i| (i, i + 1, 1)).collect();
            g.stream_edges(&path).unwrap();
            g.stream_edges(&[(0, 6, 1)]).unwrap();
            let r = g.stream_increment(&[DelEdge((0, 6, 1))]).unwrap();
            g.check_mirror_consistency().unwrap();
            (g.states(), g.total_edges_stored(), r.reseed_triggers)
        };
        let full = run(RepairMode::Full);
        let targeted = run(RepairMode::Targeted);
        assert_eq!(full.0, targeted.0, "bit-identical fixpoints");
        assert_eq!(full.1, targeted.1);
        assert_eq!(full.2, 16, "full wave triggers every vertex");
        assert!(targeted.2 < 16, "targeted wave is scoped: {} triggers", targeted.2);
        assert!(targeted.2 > 0);
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let s = symmetrize(&[(1, 2, 9), (3, 4, 1)]);
        assert_eq!(s, vec![(1, 2, 9), (2, 1, 9), (3, 4, 1), (4, 3, 1)]);
    }

    #[test]
    fn symmetrize_mutations_mirrors_all_kinds() {
        use GraphMutation::UpdateWeight;
        let s = symmetrize_mutations(&[
            AddEdge((1, 2, 9)),
            DelEdge((3, 4, 1)),
            UpdateWeight { u: 5, v: 6, w: 2 },
        ]);
        assert_eq!(
            s,
            vec![
                AddEdge((1, 2, 9)),
                AddEdge((2, 1, 9)),
                DelEdge((3, 4, 1)),
                DelEdge((4, 3, 1)),
                UpdateWeight { u: 5, v: 6, w: 2 },
                UpdateWeight { u: 6, v: 5, w: 2 },
            ]
        );
    }

    #[test]
    fn sharded_streaming_matches_sequential() {
        // The full streaming-BFS workflow (ingestion spills, ghost
        // allocation, relax diffusion) is shard-count-independent: identical
        // states, cycles, and counters on 1 vs 3 shards.
        let run = |shards: usize| {
            let mut g = StreamingGraph::builder(BfsAlgo::new(0))
                .vertices(24)
                .chip(ChipConfig::small_test().with_shards(shards))
                .rpvo(RpvoConfig::basic(4, 2))
                .build()
                .unwrap();
            let mut cycles = 0u64;
            // A star (forces RPVO spills) plus a path (multi-hop BFS).
            let star: Vec<StreamEdge> = (1..24).map(|v| (0, v, 1)).collect();
            let path: Vec<StreamEdge> = (0..23).map(|v| (v, v + 1, 1)).collect();
            for inc in [star, path] {
                cycles += g.stream_edges(&inc).unwrap().cycles;
            }
            g.check_mirror_consistency().unwrap();
            (g.states(), cycles, *g.device().chip().counters())
        };
        let sequential = run(1);
        assert_eq!(sequential, run(3));
    }

    /// The from-scratch reference: run the query DFA over the live labeled
    /// edge set and compare with the incrementally maintained result.
    fn assert_query_matches_oracle(g: &StreamingGraph<BfsAlgo>, qid: u32) {
        let q = &g.registered_queries()[qid as usize];
        let edges: Vec<(u32, u32, u8)> =
            g.live_labeled_edges().iter().map(|&((u, v, _), l)| (u, v, l)).collect();
        let want = crate::query::oracle_results_multi(g.n_vertices(), &edges, &q.dfa, &q.sources);
        assert_eq!(g.query_results(qid), want, "query {qid} ({})", q.pattern);
    }

    #[test]
    fn standing_query_tracks_inserts() {
        use GraphMutation::AddLabeledEdge;
        let mut g = small();
        let q = g.register_query("a.b*.c", 0).unwrap();
        assert_eq!(g.query_results(q), Vec::<u32>::new());
        // 0 -a-> 1 -b-> 2 -b-> 3 -c-> 4, plus a distractor edge.
        g.stream_increment(&[
            AddLabeledEdge((0, 1, 1), 1),
            AddLabeledEdge((1, 2, 1), 2),
            AddLabeledEdge((5, 6, 1), 3),
        ])
        .unwrap();
        assert_query_matches_oracle(&g, q);
        g.stream_increment(&[AddLabeledEdge((2, 3, 1), 2), AddLabeledEdge((3, 4, 1), 3)]).unwrap();
        assert_eq!(g.query_results(q), vec![4], "a.b.b.c reaches vertex 4");
        // A shortcut c-edge straight off the a-frontier matches too (b*).
        g.stream_increment(&[AddLabeledEdge((1, 7, 1), 3)]).unwrap();
        assert_eq!(g.query_results(q), vec![4, 7]);
        assert_query_matches_oracle(&g, q);
    }

    #[test]
    fn standing_query_repairs_after_deletions() {
        use GraphMutation::AddLabeledEdge;
        let mut g = small();
        // Two disjoint witnesses for vertex 4: through 2 and through 3.
        g.stream_increment(&[
            AddLabeledEdge((0, 1, 1), 1),
            AddLabeledEdge((1, 2, 1), 2),
            AddLabeledEdge((1, 3, 1), 2),
            AddLabeledEdge((2, 4, 1), 3),
            AddLabeledEdge((3, 4, 1), 3),
        ])
        .unwrap();
        let q = g.register_query("a.b.c", 0).unwrap();
        assert_eq!(g.query_results(q), vec![4]);
        // Killing one witness keeps the match alive through the other.
        g.stream_increment(&[GraphMutation::DelEdge((2, 4, 1))]).unwrap();
        assert_eq!(g.query_results(q), vec![4]);
        assert_query_matches_oracle(&g, q);
        // Killing the last witness retracts the match.
        g.stream_increment(&[GraphMutation::DelEdge((1, 3, 1))]).unwrap();
        assert_eq!(g.query_results(q), Vec::<u32>::new());
        assert_query_matches_oracle(&g, q);
        // Re-inserting restores it through the monotone path.
        g.stream_increment(&[AddLabeledEdge((1, 3, 1), 2)]).unwrap();
        assert_eq!(g.query_results(q), vec![4]);
    }

    #[test]
    fn standing_query_full_and_targeted_repair_agree() {
        use GraphMutation::{AddLabeledEdge, DelEdge};
        let run = |mode: RepairMode| {
            let mut g = StreamingGraph::builder(BfsAlgo::new(0))
                .vertices(16)
                .chip(ChipConfig::small_test())
                .rpvo(RpvoConfig::basic(4, 2))
                .repair(mode)
                .build()
                .unwrap();
            let q = g.register_query("a.b+.c", 0).unwrap();
            g.stream_increment(&[
                AddLabeledEdge((0, 1, 1), 1),
                AddLabeledEdge((1, 2, 1), 2),
                AddLabeledEdge((2, 3, 1), 2),
                AddLabeledEdge((3, 4, 1), 3),
                AddLabeledEdge((2, 5, 1), 3),
            ])
            .unwrap();
            g.stream_increment(&[DelEdge((1, 2, 1)), AddLabeledEdge((0, 2, 1), 1)]).unwrap();
            g.stream_increment(&[DelEdge((2, 3, 1))]).unwrap();
            assert_query_matches_oracle(&g, q);
            g.query_results(q)
        };
        assert_eq!(run(RepairMode::Full), run(RepairMode::Targeted));
    }

    #[test]
    fn standing_queries_are_shard_count_independent() {
        use GraphMutation::{AddLabeledEdge, DelEdge};
        let run = |shards: usize| {
            let mut g = StreamingGraph::builder(BfsAlgo::new(0))
                .vertices(24)
                .chip(ChipConfig::small_test().with_shards(shards))
                .rpvo(RpvoConfig::basic(4, 2).with_rhizomes(5, 4))
                .build()
                .unwrap();
            let qa = g.register_query("a.b*.c", 0).unwrap();
            let qb = g.register_query("c+", 2).unwrap();
            // A labeled star off 0 (forces promotion under the query), then a
            // labeled path, then churn.
            let star: Vec<GraphMutation> =
                (1..20).map(|v| AddLabeledEdge((0, v, 1), (v % 3 + 1) as u8)).collect();
            let path: Vec<GraphMutation> =
                (0..19).map(|v| AddLabeledEdge((v, v + 1, 1), (v % 3 + 1) as u8)).collect();
            g.stream_increment(&star).unwrap();
            g.stream_increment(&path).unwrap();
            g.stream_increment(&[DelEdge((0, 4, 1)), DelEdge((4, 5, 1))]).unwrap();
            assert_query_matches_oracle(&g, qa);
            assert_query_matches_oracle(&g, qb);
            (g.query_results(qa), g.query_results(qb), g.states())
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn query_registration_rejects_bad_input() {
        let mut g = small();
        assert!(g.register_query("", 0).is_err(), "empty pattern");
        assert!(g.register_query("a.!", 0).is_err(), "bad atom");
        assert!(
            matches!(
                g.register_query("a", 99),
                Err(crate::query::QueryError::SourceOutOfRange { source: 99, n: 16 })
            ),
            "source beyond vertex range"
        );
        assert!(g.registered_queries().is_empty(), "failed registrations leave no residue");
    }
}
