//! Host-side streaming graph façade.
//!
//! Wraps a [`diffusive::Device`] running a [`GraphApp`] and provides the
//! workflow of the paper's experiments: allocate root RPVOs for all vertices
//! (untimed construction, §4), then stream edge increments through the IO
//! channels and run each to quiescence, collecting a [`RunReport`] per
//! increment (the data behind Figures 8–9 and Table 2).

use amcca_sim::{Address, ChipConfig, Operon, SimError};
use diffusive::{Device, RunReport};

use crate::apps::algo::{insert_operon, GraphApp, VertexAlgo, ACT_INSERT, ACT_RELAX};
use crate::rpvo::rhizome::{peer_sets, RhizomeDirectory};
use crate::rpvo::{walk, Edge, RpvoConfig, VertexObj};

/// A streamed edge: `(src, dst, weight)` with vertex ids.
pub type StreamEdge = (u32, u32, u32);

/// StreamingGraph.
pub struct StreamingGraph<G: VertexAlgo> {
    dev: Device<GraphApp<G>>,
    /// Per-vertex root sets, streamed-degree counters, and the deterministic
    /// per-edge root router (single-root vertices route to their primary).
    rz: RhizomeDirectory,
    rcfg: RpvoConfig,
}

impl<G: VertexAlgo> StreamingGraph<G> {
    /// Create the device, register the actions (Listing 1), and allocate the
    /// root vertex objects of `n_vertices` across the chip.
    pub fn new(
        cfg: ChipConfig,
        rcfg: RpvoConfig,
        algo: G,
        n_vertices: u32,
    ) -> Result<Self, SimError> {
        let dims = cfg.dims;
        let root_placement = cfg.root_placement;
        let seed = cfg.seed;
        let fanout = rcfg.ghost_fanout;
        let mut dev = Device::new(cfg, GraphApp::new(algo, rcfg, true));
        dev.register_action_at(ACT_INSERT, "insert-edge-action");
        dev.register_action_at(ACT_RELAX, G::NAME);
        let mut addrs = Vec::with_capacity(n_vertices as usize);
        for vid in 0..n_vertices {
            let cc = root_placement.cell_for(vid, dims, seed);
            let state = dev.app().algo.root_state(vid);
            addrs.push(dev.host_alloc(cc, VertexObj::root(vid, state, fanout))?);
        }
        Ok(StreamingGraph { dev, rz: RhizomeDirectory::new(addrs), rcfg })
    }

    /// Promote vertex `v` from a single root to a rhizome of
    /// `rcfg.rhizome_roots` co-equal roots: allocate the extra roots on the
    /// cells the chip's [`amcca_sim::RhizomePlacement`] picks (untimed, like
    /// graph construction), seed them with the primary's current converged
    /// state, and fully cross-link all roots. Subsequent edges for `v` are
    /// round-robined across the root set.
    fn promote(&mut self, v: u32) -> Result<(), SimError> {
        let k = self.rcfg.rhizome_roots;
        let primary = self.rz.primary(v);
        let cfg = self.dev.chip().cfg();
        let (dims, seed, policy) = (cfg.dims, cfg.seed, cfg.rhizome_placement);
        let cells = policy.cells_for(primary.cc, k, dims, seed ^ ((v as u64) << 1 | 1));
        let state = self.dev.object(primary).expect("primary root live").state;
        let fanout = self.rcfg.ghost_fanout;
        let mut roots = Vec::with_capacity(k);
        roots.push(primary);
        for cc in cells {
            roots.push(self.dev.host_alloc(cc, VertexObj::root(v, state, fanout))?);
        }
        for (addr, peers) in roots.iter().zip(peer_sets(&roots)) {
            self.dev.object_mut(*addr).expect("root live").peers = peers;
        }
        self.rz.install(v, roots[1..].to_vec());
        Ok(())
    }

    /// Enable/disable the algorithm's propagation on insert (the paper's
    /// ingestion-only experiments disable it).
    pub fn set_algo_propagation(&mut self, on: bool) {
        self.dev.app_mut().propagate_algo = on;
    }

    /// Select the termination detector used by subsequent increments
    /// (global quiescence by default; Safra's token for the distributed
    /// variant — see `paper ablate-terminator`).
    pub fn set_termination_mode(&mut self, mode: diffusive::TerminationMode) {
        self.dev.set_termination_mode(mode);
    }

    /// Number of vertices the graph was constructed with.
    pub fn n_vertices(&self) -> u32 {
        self.rz.len() as u32
    }

    /// Primary root-object address of a vertex (any co-equal rhizome roots
    /// are reachable through its links).
    pub fn addr_of(&self, vid: u32) -> Address {
        self.rz.primary(vid)
    }

    /// All co-equal root addresses of a vertex, primary first (one entry for
    /// ordinary vertices).
    pub fn roots_of(&self, vid: u32) -> Vec<Address> {
        self.rz.roots(vid)
    }

    /// Stream one increment of edges through the IO channels and run the
    /// diffusion to quiescence.
    ///
    /// While building the wave the host counts each edge endpoint toward its
    /// vertex's streamed degree; a vertex crossing
    /// [`RpvoConfig::rhizome_threshold`] is promoted to a rhizome on the
    /// spot (untimed, like construction), and every edge is then routed to a
    /// deterministically chosen co-equal root of its source — with the
    /// destination address likewise picking one of the destination's roots —
    /// so a hub's ingest and frontier traffic fans out across cells.
    pub fn stream_increment(&mut self, edges: &[StreamEdge]) -> Result<RunReport, SimError> {
        let threshold = self.rcfg.rhizome_threshold;
        let mut ops: Vec<Operon> = Vec::with_capacity(edges.len());
        for &(u, v, w) in edges {
            if self.rz.note_touch(u, threshold) {
                self.promote(u)?;
            }
            if self.rz.note_touch(v, threshold) {
                self.promote(v)?;
            }
            let src = self.rz.route(u);
            let dst = self.rz.route(v);
            ops.push(insert_operon(src, &Edge::new(dst, v, w)));
        }
        self.dev.register_data_transfer(ops);
        self.dev.run()
    }

    /// Inject an arbitrary operon wave through the IO channels and run it to
    /// quiescence (used by snapshot queries such as triangle counting).
    pub fn run_query(
        &mut self,
        ops: impl IntoIterator<Item = Operon>,
    ) -> Result<RunReport, SimError> {
        self.dev.register_data_transfer(ops);
        self.dev.run()
    }

    /// The algorithm state stored at a vertex's primary root object (all
    /// co-equal roots agree at quiescence; see
    /// [`Self::check_mirror_consistency`]).
    pub fn state_of(&self, vid: u32) -> G::State {
        self.dev.object(self.rz.primary(vid)).expect("root object live").state
    }

    /// All root states, indexed by vertex id.
    pub fn states(&self) -> Vec<G::State> {
        (0..self.n_vertices()).map(|v| self.state_of(v)).collect()
    }

    /// All edges stored anywhere in a vertex's logical adjacency — every
    /// co-equal root and its ghost subtree — as `(dst_id, w)` pairs.
    pub fn logical_edges(&self, vid: u32) -> Vec<(u32, u32)> {
        walk::collect_logical_edges(self.rz.primary(vid), |a| self.dev.object(a))
            .into_iter()
            .map(|e| (e.dst_id, e.w))
            .collect()
    }

    /// Out-degree of a vertex: edges stored across all roots and ghosts.
    pub fn degree(&self, vid: u32) -> usize {
        walk::collect_logical_objects(self.rz.primary(vid), |a| self.dev.object(a))
            .into_iter()
            .map(|a| self.dev.object(a).expect("object live").edges.len())
            .sum()
    }

    /// Depth of a vertex's primary-root RPVO subtree (1 = root only).
    pub fn rpvo_depth(&self, vid: u32) -> usize {
        walk::depth(self.rz.primary(vid), |a| self.dev.object(a))
    }

    /// Addresses of every object of a vertex's *primary* RPVO subtree (root
    /// first). Use [`Self::rhizome_objects`] to span co-equal roots too.
    pub fn rpvo_objects(&self, vid: u32) -> Vec<Address> {
        walk::collect_objects(self.rz.primary(vid), |a| self.dev.object(a))
    }

    /// Addresses of every object of the whole logical vertex: all co-equal
    /// roots and each root's ghost subtree.
    pub fn rhizome_objects(&self, vid: u32) -> Vec<Address> {
        walk::collect_logical_objects(self.rz.primary(vid), |a| self.dev.object(a))
    }

    /// `(promoted vertices, extra roots allocated)` so far.
    pub fn rhizome_stats(&self) -> (u64, u64) {
        (self.rz.promoted_count(), self.rz.extra_root_count())
    }

    /// Verify that every object of every vertex — co-equal roots and ghost
    /// mirrors alike — equals the primary root's state (must hold at
    /// quiescence). Returns the first violation.
    pub fn check_mirror_consistency(&self) -> Result<(), String> {
        for vid in 0..self.n_vertices() {
            let root = self.rz.primary(vid);
            let want = self.dev.object(root).expect("root live").state;
            for a in walk::collect_logical_objects(root, |x| self.dev.object(x)) {
                let got = self.dev.object(a).expect("object live").state;
                if got != want {
                    return Err(format!(
                        "vertex {vid}: mirror at {a} has {got:?}, root has {want:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total edges stored on the chip (each streamed edge stored once).
    pub fn total_edges_stored(&self) -> u64 {
        let mut n = 0u64;
        self.dev.chip().for_each_object(|_, obj| n += obj.edges.len() as u64);
        n
    }

    /// `(ghost_count, average parent→ghost hop distance)` across all RPVOs —
    /// the quantity the Vicinity vs Random ablation compares (Fig. 5).
    pub fn ghost_distance_stats(&self) -> (u64, f64) {
        let dims = self.dev.chip().cfg().dims;
        let mut count = 0u64;
        let mut hops = 0u64;
        self.dev.chip().for_each_object(|addr, obj| {
            for g in obj.ready_ghosts() {
                count += 1;
                hops += dims.distance(addr.cc, g.cc) as u64;
            }
        });
        (count, if count == 0 { 0.0 } else { hops as f64 / count as f64 })
    }

    /// The underlying diffusive device (read access).
    pub fn device(&self) -> &Device<GraphApp<G>> {
        &self.dev
    }

    /// The underlying diffusive device (mutable access).
    pub fn device_mut(&mut self) -> &mut Device<GraphApp<G>> {
        &mut self.dev
    }
}

/// Symmetrize an undirected edge list into a directed stream (both
/// directions, interleaved so the two copies of an edge travel together).
pub fn symmetrize(edges: &[StreamEdge]) -> Vec<StreamEdge> {
    let mut out = Vec::with_capacity(edges.len() * 2);
    for &(u, v, w) in edges {
        out.push((u, v, w));
        out.push((v, u, w));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::bfs::{BfsAlgo, MAX_LEVEL};
    use amcca_sim::ChipConfig;

    fn small() -> StreamingGraph<BfsAlgo> {
        StreamingGraph::new(ChipConfig::small_test(), RpvoConfig::basic(4, 2), BfsAlgo::new(0), 16)
            .unwrap()
    }

    #[test]
    fn construction_allocates_all_roots() {
        let g = small();
        assert_eq!(g.n_vertices(), 16);
        assert_eq!(g.state_of(0), 0, "BFS root at level 0");
        for v in 1..16 {
            assert_eq!(g.state_of(v), MAX_LEVEL);
        }
        assert_eq!(g.total_edges_stored(), 0);
    }

    #[test]
    fn stream_path_graph_levels() {
        let mut g = small();
        // 0 -> 1 -> 2 -> ... -> 15
        let edges: Vec<StreamEdge> = (0..15).map(|i| (i, i + 1, 1)).collect();
        g.stream_increment(&edges).unwrap();
        for v in 0..16 {
            assert_eq!(g.state_of(v), v as u64, "level along the path");
        }
        assert_eq!(g.total_edges_stored(), 15);
    }

    #[test]
    fn reversed_stream_order_converges_identically() {
        let mut g = small();
        let mut edges: Vec<StreamEdge> = (0..15).map(|i| (i, i + 1, 1)).collect();
        edges.reverse();
        g.stream_increment(&edges).unwrap();
        for v in 0..16 {
            assert_eq!(g.state_of(v), v as u64);
        }
    }

    #[test]
    fn increments_update_previous_results() {
        let mut g = small();
        // Increment 1: a long path 0->1->...->7.
        let edges: Vec<StreamEdge> = (0..7).map(|i| (i, i + 1, 1)).collect();
        g.stream_increment(&edges).unwrap();
        assert_eq!(g.state_of(7), 7);
        // Increment 2: shortcut 0 -> 6 lowers downstream levels without
        // recomputation from scratch.
        g.stream_increment(&[(0, 6, 1)]).unwrap();
        assert_eq!(g.state_of(6), 1);
        assert_eq!(g.state_of(7), 2);
        assert_eq!(g.state_of(3), 3, "untouched prefix keeps its level");
    }

    #[test]
    fn mirror_consistency_after_spills() {
        let mut g = small();
        // A star around vertex 0 forces RPVO spills (cap 4).
        let edges: Vec<StreamEdge> = (1..16).map(|v| (0, v, 1)).collect();
        g.stream_increment(&edges).unwrap();
        g.check_mirror_consistency().unwrap();
        assert!(g.rpvo_objects(0).len() > 1, "vertex 0 must have spilled");
        assert_eq!(g.total_edges_stored(), 15);
        // All leaves at level 1.
        for v in 1..16 {
            assert_eq!(g.state_of(v), 1);
        }
    }

    #[test]
    fn degree_and_depth_track_spills() {
        let mut g = small();
        let edges: Vec<StreamEdge> = (1..13).map(|v| (0, v, 1)).collect();
        g.stream_increment(&edges).unwrap();
        assert_eq!(g.degree(0), 12);
        assert_eq!(g.degree(1), 0);
        assert!(g.rpvo_depth(0) >= 2, "cap 4 with 12 edges must spill");
        assert_eq!(g.rpvo_depth(1), 1);
    }

    #[test]
    fn hub_promotes_to_rhizome_and_stays_correct() {
        let rcfg = RpvoConfig::basic(4, 2).with_rhizomes(6, 3);
        let mut g =
            StreamingGraph::new(ChipConfig::small_test(), rcfg, BfsAlgo::new(0), 24).unwrap();
        // A star around vertex 0: crosses the threshold mid-increment.
        let edges: Vec<StreamEdge> = (1..24).map(|v| (0, v, 1)).collect();
        g.stream_increment(&edges).unwrap();
        let (promoted, extra) = g.rhizome_stats();
        assert_eq!(promoted, 1, "only the hub crossed the threshold");
        assert_eq!(extra, 2, "K=3 adds two extra roots");
        assert_eq!(g.roots_of(0).len(), 3);
        assert_eq!(g.roots_of(1).len(), 1);
        // Every root is cross-linked to the other two.
        for a in g.roots_of(0) {
            let obj = g.device().object(a).unwrap();
            assert!(obj.is_root() && obj.is_rhizome());
            assert_eq!(obj.peers.len(), 2);
        }
        // All 23 edges stored exactly once across the root slices.
        assert_eq!(g.degree(0), 23);
        assert_eq!(g.total_edges_stored(), 23);
        // The edge slices are genuinely split across roots.
        let with_edges = g
            .roots_of(0)
            .iter()
            .filter(|&&a| !walk::collect_edges(a, |x| g.device().object(x)).is_empty())
            .count();
        assert!(with_edges >= 2, "edge list split across co-equal roots");
        // BFS results unchanged: every leaf at level 1, mirrors consistent.
        for v in 1..24 {
            assert_eq!(g.state_of(v), 1);
        }
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    fn rhizome_states_match_single_root_reference() {
        // Same stream, with and without rhizomes: identical BFS fixpoints.
        let run = |rcfg: RpvoConfig| {
            let mut g =
                StreamingGraph::new(ChipConfig::small_test(), rcfg, BfsAlgo::new(0), 16).unwrap();
            let star: Vec<StreamEdge> = (1..16).map(|v| (0, v, 1)).collect();
            let path: Vec<StreamEdge> = (0..15).map(|v| (v, v + 1, 1)).collect();
            g.stream_increment(&star).unwrap();
            g.stream_increment(&path).unwrap();
            g.check_mirror_consistency().unwrap();
            (g.states(), g.total_edges_stored())
        };
        let single = run(RpvoConfig::basic(4, 2));
        let rhizome = run(RpvoConfig::basic(4, 2).with_rhizomes(4, 4));
        assert_eq!(single, rhizome);
    }

    #[test]
    fn promotion_mid_stream_preserves_reached_state() {
        // Reach vertex 5 first, then promote it in a later increment: the
        // extra roots must inherit the converged level so edges landing on
        // them still announce values.
        let rcfg = RpvoConfig::basic(4, 2).with_rhizomes(8, 2);
        let mut g =
            StreamingGraph::new(ChipConfig::small_test(), rcfg, BfsAlgo::new(0), 32).unwrap();
        g.stream_increment(&[(0, 5, 1)]).unwrap();
        assert_eq!(g.state_of(5), 1);
        // Now hammer vertex 5 until it promotes, fanning edges to vertices
        // reached only through the post-promotion slices.
        let burst: Vec<StreamEdge> = (6..31).map(|v| (5, v, 1)).collect();
        g.stream_increment(&burst).unwrap();
        assert!(g.rhizome_stats().0 >= 1, "vertex 5 promoted");
        for v in 6..31 {
            assert_eq!(g.state_of(v), 2, "leaf {v} reached through a rhizome slice");
        }
        g.check_mirror_consistency().unwrap();
    }

    #[test]
    fn sharded_rhizome_streaming_matches_sequential() {
        let run = |shards: usize| {
            let mut g = StreamingGraph::new(
                ChipConfig::small_test().with_shards(shards),
                RpvoConfig::basic(4, 2).with_rhizomes(5, 4),
                BfsAlgo::new(0),
                24,
            )
            .unwrap();
            let mut cycles = 0u64;
            let star: Vec<StreamEdge> = (1..24).map(|v| (0, v, 1)).collect();
            let path: Vec<StreamEdge> = (0..23).map(|v| (v, v + 1, 1)).collect();
            for inc in [star, path] {
                cycles += g.stream_increment(&inc).unwrap().cycles;
            }
            g.check_mirror_consistency().unwrap();
            (g.states(), cycles, *g.device().chip().counters(), g.rhizome_stats())
        };
        let sequential = run(1);
        assert!(sequential.3 .0 > 0, "workload must exercise promotion");
        assert_eq!(sequential, run(3));
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let s = symmetrize(&[(1, 2, 9), (3, 4, 1)]);
        assert_eq!(s, vec![(1, 2, 9), (2, 1, 9), (3, 4, 1), (4, 3, 1)]);
    }

    #[test]
    fn sharded_streaming_matches_sequential() {
        // The full streaming-BFS workflow (ingestion spills, ghost
        // allocation, relax diffusion) is shard-count-independent: identical
        // states, cycles, and counters on 1 vs 3 shards.
        let run = |shards: usize| {
            let mut g = StreamingGraph::new(
                ChipConfig::small_test().with_shards(shards),
                RpvoConfig::basic(4, 2),
                BfsAlgo::new(0),
                24,
            )
            .unwrap();
            let mut cycles = 0u64;
            // A star (forces RPVO spills) plus a path (multi-hop BFS).
            let star: Vec<StreamEdge> = (1..24).map(|v| (0, v, 1)).collect();
            let path: Vec<StreamEdge> = (0..23).map(|v| (v, v + 1, 1)).collect();
            for inc in [star, path] {
                cycles += g.stream_increment(&inc).unwrap().cycles;
            }
            g.check_mirror_consistency().unwrap();
            (g.states(), cycles, *g.device().chip().counters())
        };
        let sequential = run(1);
        assert_eq!(sequential, run(3));
    }
}
