//! Checkpoint serialization for the serving layer.
//!
//! A [`GraphCheckpoint`] captures everything the host needs to rebuild a
//! [`StreamingGraph`]'s exact converged state from disk:
//!
//! * the **live edge multiset** in insertion order at current weights (from
//!   the shared mutation log) — replaying it into a fresh graph reproduces
//!   the per-pair oldest-first copy order, so a write-ahead mutation tail
//!   replayed on top resolves deletes and re-weights to the same copies;
//! * the **promoted (rhizome) vertex set** and the **converged per-vertex
//!   sync values**, stored as integrity checks: restore re-converges from
//!   the edge multiset and verifies both match bit-for-bit, so a corrupt or
//!   stale snapshot is caught at load time instead of surfacing as a wrong
//!   query answer later.
//!
//! The fixpoint itself is *recomputed*, not deserialized: converged states
//! depend only on the live multiset (the property the differential test
//! harness pins across batch splits and shard counts), which keeps the
//! format algorithm-independent — one codec serves BFS, SSSP, and CC.
//!
//! The binary format is little-endian with a magic, a version, and a
//! trailing FNV-1a checksum. [`encode_mutations`] / [`decode_mutations`]
//! share the per-mutation wire encoding with the serve crate's write-ahead
//! log and client protocol.

use std::fmt;

use amcca_sim::SimError;

use crate::apps::VertexAlgo;
use crate::graph::{GraphBuilder, GraphMutation, StreamEdge, StreamingGraph};

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"AMCK";
/// Current checkpoint format version. Version 2 added a per-edge label byte
/// and the registered standing-query list; version 3 widened each query's
/// single source vertex to a source *list* (multi-source registration).
/// Older files still decode: version 1 yields no labels and no queries,
/// version 2 yields one-element source lists.
pub const CHECKPOINT_VERSION: u32 = 3;

/// Why checkpoint bytes (or a mutation record) failed to decode or a
/// restored graph failed its integrity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer is shorter than the structure it claims to hold.
    Truncated,
    /// The magic bytes are not [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The version is newer than this build understands.
    BadVersion(u32),
    /// The trailing checksum does not match the payload.
    BadChecksum,
    /// An unknown mutation opcode.
    BadOpcode(u8),
    /// A checkpointed standing query failed to re-register on restore.
    BadQuery(String),
    /// The restored graph's converged state disagrees with the snapshot.
    StateMismatch(String),
    /// Rebuilding the graph failed in the simulator.
    Sim(SimError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadChecksum => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::BadOpcode(op) => write!(f, "unknown mutation opcode {op}"),
            CheckpointError::BadQuery(what) => {
                write!(f, "checkpointed query failed to re-register: {what}")
            }
            CheckpointError::StateMismatch(what) => {
                write!(f, "restored graph diverges from snapshot: {what}")
            }
            CheckpointError::Sim(e) => write!(f, "rebuild failed: {e:?}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SimError> for CheckpointError {
    fn from(e: SimError) -> Self {
        CheckpointError::Sim(e)
    }
}

/// A point-in-time snapshot of a quiescent [`StreamingGraph`] (module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphCheckpoint {
    /// Vertex count the graph was built with.
    pub n_vertices: u32,
    /// Live edge multiset at current weights, in insertion order.
    pub edges: Vec<StreamEdge>,
    /// Per-edge labels, parallel to `edges` (version 1 files decode to all
    /// zeros). Missing trailing entries encode as label 0.
    pub labels: Vec<u8>,
    /// Promoted (multi-root) vertices at capture time, ascending.
    pub promoted: Vec<u32>,
    /// Converged per-vertex sync values at capture time (the restore-time
    /// fixpoint integrity check).
    pub sync_states: Vec<Option<u64>>,
    /// Registered standing queries as `(pattern, sources)` pairs, in
    /// registration (query-id) order. Restore re-registers them, which
    /// recomputes their result sets from the rebuilt graph. Version-2
    /// files decode each query's single source into a one-element list.
    pub queries: Vec<(String, Vec<u32>)>,
}

impl GraphCheckpoint {
    /// Snapshot a quiescent graph: its ledger (live edges), rhizome
    /// directory (promoted set), and converged vertex states.
    pub fn capture<G: VertexAlgo>(g: &StreamingGraph<G>) -> GraphCheckpoint {
        let labeled = g.live_labeled_edges();
        GraphCheckpoint {
            n_vertices: g.n_vertices(),
            edges: labeled.iter().map(|&(e, _)| e).collect(),
            labels: labeled.iter().map(|&(_, l)| l).collect(),
            promoted: g.promoted_vertices(),
            sync_states: g.sync_values(),
            queries: g
                .registered_queries()
                .iter()
                .map(|q| (q.pattern.clone(), q.sources.clone()))
                .collect(),
        }
    }

    /// Rebuild a graph from this snapshot: construct from the builder's
    /// chip/RPVO/repair shape, stream the live multiset in one increment,
    /// and verify the re-converged fixpoint and promoted set match the
    /// captured ones bit-for-bit.
    pub fn restore<G: VertexAlgo>(
        &self,
        builder: GraphBuilder<G>,
    ) -> Result<StreamingGraph<G>, CheckpointError> {
        let mut g = builder.vertices(self.n_vertices).build()?;
        let muts: Vec<GraphMutation> = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, &e)| match self.labels.get(i).copied().unwrap_or(0) {
                0 => GraphMutation::AddEdge(e),
                l => GraphMutation::AddLabeledEdge(e, l),
            })
            .collect();
        g.stream_increment(&muts)?;
        if g.sync_values() != self.sync_states {
            return Err(CheckpointError::StateMismatch("converged sync values".into()));
        }
        if g.promoted_vertices() != self.promoted {
            return Err(CheckpointError::StateMismatch("promoted vertex set".into()));
        }
        for (pattern, sources) in &self.queries {
            g.register_query_multi(pattern, sources)
                .map_err(|e| CheckpointError::BadQuery(e.to_string()))?;
        }
        Ok(g)
    }

    /// Serialize to the versioned, checksummed binary format (always the
    /// current version).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.edges.len() * 13);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        put_u32(&mut out, CHECKPOINT_VERSION);
        put_u32(&mut out, self.n_vertices);
        put_u64(&mut out, self.edges.len() as u64);
        for (i, &(u, v, w)) in self.edges.iter().enumerate() {
            put_u32(&mut out, u);
            put_u32(&mut out, v);
            put_u32(&mut out, w);
            out.push(self.labels.get(i).copied().unwrap_or(0));
        }
        put_u32(&mut out, self.promoted.len() as u32);
        for &v in &self.promoted {
            put_u32(&mut out, v);
        }
        put_u32(&mut out, self.sync_states.len() as u32);
        for s in &self.sync_states {
            match s {
                Some(v) => {
                    out.push(1);
                    put_u64(&mut out, *v);
                }
                None => out.push(0),
            }
        }
        put_u32(&mut out, self.queries.len() as u32);
        for (pattern, sources) in &self.queries {
            put_u32(&mut out, sources.len() as u32);
            for &s in sources {
                put_u32(&mut out, s);
            }
            put_u32(&mut out, pattern.len() as u32);
            out.extend_from_slice(pattern.as_bytes());
        }
        let sum = fnv1a(&out);
        put_u64(&mut out, sum);
        out
    }

    /// Deserialize, verifying magic, version, and checksum.
    pub fn decode(bytes: &[u8]) -> Result<GraphCheckpoint, CheckpointError> {
        if bytes.len() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let want = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a(payload) != want {
            return Err(CheckpointError::BadChecksum);
        }
        let mut r = Reader { buf: payload, pos: 0 };
        if r.bytes(4)? != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version == 0 || version > CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let n_vertices = r.u32()?;
        let n_edges = r.u64()? as usize;
        let mut edges = Vec::with_capacity(n_edges.min(1 << 20));
        let mut labels = Vec::with_capacity(n_edges.min(1 << 20));
        for _ in 0..n_edges {
            edges.push((r.u32()?, r.u32()?, r.u32()?));
            labels.push(if version >= 2 { r.u8()? } else { 0 });
        }
        let n_promoted = r.u32()? as usize;
        let mut promoted = Vec::with_capacity(n_promoted.min(1 << 20));
        for _ in 0..n_promoted {
            promoted.push(r.u32()?);
        }
        let n_states = r.u32()? as usize;
        let mut sync_states = Vec::with_capacity(n_states.min(1 << 20));
        for _ in 0..n_states {
            sync_states.push(match r.u8()? {
                0 => None,
                _ => Some(r.u64()?),
            });
        }
        let mut queries = Vec::new();
        if version >= 2 {
            let n_queries = r.u32()? as usize;
            queries.reserve(n_queries.min(1 << 16));
            for _ in 0..n_queries {
                // v2 stored one source; v3 stores a count-prefixed list.
                let sources = if version >= 3 {
                    let n_sources = r.u32()? as usize;
                    let mut sources = Vec::with_capacity(n_sources.min(1 << 16));
                    for _ in 0..n_sources {
                        sources.push(r.u32()?);
                    }
                    sources
                } else {
                    vec![r.u32()?]
                };
                let len = r.u32()? as usize;
                let pattern = std::str::from_utf8(r.bytes(len)?)
                    .map_err(|_| CheckpointError::BadQuery("pattern is not UTF-8".into()))?
                    .to_string();
                queries.push((pattern, sources));
            }
        }
        Ok(GraphCheckpoint { n_vertices, edges, labels, promoted, sync_states, queries })
    }
}

/// Append one mutation's wire encoding (opcode byte + three `u32`s; opcode 3
/// — a labeled insert — carries one trailing label byte) — shared by the
/// serve crate's write-ahead log and client protocol.
pub fn encode_mutation(m: &GraphMutation, out: &mut Vec<u8>) {
    let (op, u, v, w, label) = match *m {
        GraphMutation::AddEdge((u, v, w)) => (0u8, u, v, w, None),
        GraphMutation::DelEdge((u, v, w)) => (1, u, v, w, None),
        GraphMutation::UpdateWeight { u, v, w } => (2, u, v, w, None),
        GraphMutation::AddLabeledEdge((u, v, w), l) => (3, u, v, w, Some(l)),
    };
    out.push(op);
    put_u32(out, u);
    put_u32(out, v);
    put_u32(out, w);
    if let Some(l) = label {
        out.push(l);
    }
}

/// Serialize a mutation batch (count-prefixed).
pub fn encode_mutations(muts: &[GraphMutation]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + muts.len() * 13);
    put_u32(&mut out, muts.len() as u32);
    for m in muts {
        encode_mutation(m, &mut out);
    }
    out
}

/// Deserialize a count-prefixed mutation batch.
pub fn decode_mutations(bytes: &[u8]) -> Result<Vec<GraphMutation>, CheckpointError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let (op, u, v, w) = (r.u8()?, r.u32()?, r.u32()?, r.u32()?);
        out.push(match op {
            0 => GraphMutation::AddEdge((u, v, w)),
            1 => GraphMutation::DelEdge((u, v, w)),
            2 => GraphMutation::UpdateWeight { u, v, w },
            3 => GraphMutation::AddLabeledEdge((u, v, w), r.u8()?),
            other => return Err(CheckpointError::BadOpcode(other)),
        });
    }
    Ok(out)
}

/// FNV-1a over a byte slice (the checkpoint and WAL record checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use amcca_sim::ChipConfig;

    use super::*;
    use crate::apps::BfsAlgo;
    use crate::rpvo::RpvoConfig;

    fn small() -> StreamingGraph<BfsAlgo> {
        StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(16)
            .chip(ChipConfig::small_test())
            .rpvo(RpvoConfig::basic(4, 2))
            .build()
            .unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ck = GraphCheckpoint {
            n_vertices: 9,
            edges: vec![(0, 1, 5), (1, 2, 7), (0, 1, 5)],
            labels: vec![0, 2, 26],
            promoted: vec![3, 7],
            sync_states: vec![Some(0), None, Some(12)],
            queries: vec![("a.b*.c".into(), vec![0]), ("z+".into(), vec![4, 7, 8])],
        };
        assert_eq!(GraphCheckpoint::decode(&ck.encode()).unwrap(), ck);
    }

    #[test]
    fn version_2_bytes_still_decode() {
        // Hand-build a v2 image: label bytes present, query section carries
        // a single u32 source per query (no source-count prefix).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&CHECKPOINT_MAGIC);
        put_u32(&mut bytes, 2); // version
        put_u32(&mut bytes, 4); // n_vertices
        put_u64(&mut bytes, 1); // edge count
        put_u32(&mut bytes, 0);
        put_u32(&mut bytes, 1);
        put_u32(&mut bytes, 5);
        bytes.push(2); // label
        put_u32(&mut bytes, 0); // promoted count
        put_u32(&mut bytes, 1); // sync count
        bytes.push(0); // None
        put_u32(&mut bytes, 2); // query count
        for (source, pattern) in [(0u32, "a.b*.c"), (3, "b+")] {
            put_u32(&mut bytes, source);
            put_u32(&mut bytes, pattern.len() as u32);
            bytes.extend_from_slice(pattern.as_bytes());
        }
        let sum = fnv1a(&bytes);
        put_u64(&mut bytes, sum);
        let ck = GraphCheckpoint::decode(&bytes).unwrap();
        assert_eq!(
            ck.queries,
            vec![("a.b*.c".to_string(), vec![0]), ("b+".to_string(), vec![3])],
            "v2 single sources widen to one-element lists"
        );
        assert_eq!(ck.labels, vec![2]);
    }

    #[test]
    fn version_1_bytes_still_decode() {
        // Hand-build a v1 image: no label bytes, no query section.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&CHECKPOINT_MAGIC);
        put_u32(&mut bytes, 1); // version
        put_u32(&mut bytes, 4); // n_vertices
        put_u64(&mut bytes, 2); // edge count
        for &(u, v, w) in &[(0u32, 1u32, 5u32), (1, 2, 7)] {
            put_u32(&mut bytes, u);
            put_u32(&mut bytes, v);
            put_u32(&mut bytes, w);
        }
        put_u32(&mut bytes, 1); // promoted count
        put_u32(&mut bytes, 2);
        put_u32(&mut bytes, 2); // sync count
        bytes.push(1);
        put_u64(&mut bytes, 9);
        bytes.push(0);
        let sum = fnv1a(&bytes);
        put_u64(&mut bytes, sum);
        let ck = GraphCheckpoint::decode(&bytes).unwrap();
        assert_eq!(ck.edges, vec![(0, 1, 5), (1, 2, 7)]);
        assert_eq!(ck.labels, vec![0, 0]);
        assert_eq!(ck.promoted, vec![2]);
        assert_eq!(ck.sync_states, vec![Some(9), None]);
        assert!(ck.queries.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let ck = GraphCheckpoint {
            n_vertices: 4,
            edges: vec![(0, 1, 1)],
            labels: vec![0],
            promoted: vec![],
            sync_states: vec![Some(0), Some(1), None, None],
            queries: vec![],
        };
        let mut bytes = ck.encode();
        bytes[10] ^= 0xff;
        assert_eq!(GraphCheckpoint::decode(&bytes), Err(CheckpointError::BadChecksum));
        assert_eq!(GraphCheckpoint::decode(&bytes[..6]), Err(CheckpointError::Truncated));
    }

    #[test]
    fn capture_restore_reaches_the_same_fixpoint() {
        let mut g = small();
        g.stream_edges(&[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 1)]).unwrap();
        g.stream_increment(&[GraphMutation::DelEdge((0, 3, 1))]).unwrap();
        let ck = GraphCheckpoint::capture(&g);
        let restored = ck
            .restore(
                StreamingGraph::builder(BfsAlgo::new(0))
                    .chip(ChipConfig::small_test())
                    .rpvo(RpvoConfig::basic(4, 2)),
            )
            .unwrap();
        assert_eq!(restored.states(), g.states());
        assert_eq!(restored.live_edges(), g.live_edges());
    }

    #[test]
    fn restore_rejects_a_forged_fixpoint() {
        let mut g = small();
        g.stream_edges(&[(0, 1, 1)]).unwrap();
        let mut ck = GraphCheckpoint::capture(&g);
        ck.sync_states[1] = Some(99);
        let err = match ck.restore(
            StreamingGraph::builder(BfsAlgo::new(0))
                .chip(ChipConfig::small_test())
                .rpvo(RpvoConfig::basic(4, 2)),
        ) {
            Ok(_) => panic!("forged fixpoint accepted"),
            Err(e) => e,
        };
        assert!(matches!(err, CheckpointError::StateMismatch(_)));
    }

    #[test]
    fn capture_restore_preserves_labels_and_queries() {
        let mut g = small();
        g.stream_increment(&[
            GraphMutation::AddLabeledEdge((0, 1, 1), 1),
            GraphMutation::AddLabeledEdge((1, 2, 1), 2),
            GraphMutation::AddLabeledEdge((2, 3, 1), 3),
        ])
        .unwrap();
        g.register_query("a.b.c", 0).unwrap();
        g.register_query_multi("b.c?", &[1, 2]).unwrap();
        assert_eq!(g.query_results(0), vec![3]);
        assert_eq!(g.query_results(1), vec![2, 3]);
        let ck = GraphCheckpoint::capture(&g);
        assert_eq!(ck.labels, vec![1, 2, 3]);
        assert_eq!(
            ck.queries,
            vec![("a.b.c".to_string(), vec![0]), ("b.c?".to_string(), vec![1, 2])]
        );
        let restored = ck
            .restore(
                StreamingGraph::builder(BfsAlgo::new(0))
                    .chip(ChipConfig::small_test())
                    .rpvo(RpvoConfig::basic(4, 2)),
            )
            .unwrap();
        assert_eq!(restored.live_labeled_edges(), g.live_labeled_edges());
        assert_eq!(restored.query_results(0), vec![3]);
        assert_eq!(restored.query_results(1), vec![2, 3], "multi-source query survives restore");
    }

    #[test]
    fn mutation_wire_roundtrip() {
        let muts = vec![
            GraphMutation::AddEdge((1, 2, 3)),
            GraphMutation::DelEdge((4, 5, 6)),
            GraphMutation::AddLabeledEdge((2, 6, 1), 7),
            GraphMutation::UpdateWeight { u: 7, v: 8, w: 9 },
        ];
        assert_eq!(decode_mutations(&encode_mutations(&muts)).unwrap(), muts);
        assert_eq!(decode_mutations(&encode_mutations(&[])).unwrap(), vec![]);
        let mut bad = encode_mutations(&muts);
        bad[4] = 77;
        assert_eq!(decode_mutations(&bad), Err(CheckpointError::BadOpcode(77)));
    }
}
