#![warn(missing_docs)]
//! # sdgp-core — streaming dynamic graph processing on AM-CCA
//!
//! The primary contribution of the reproduced paper: structures and
//! techniques for streaming dynamic graph processing on decentralized
//! message-driven systems.
//!
//! * [`rpvo`] — the **Recursively-Parallel Vertex Object**: a logical vertex
//!   parallelized across many scratchpad-coupled compute cells (root + ghost
//!   objects linked by future-of-pointer slots) behind a single address.
//! * [`apps`] — streaming algorithms: edge ingestion (Listing 6), dynamic
//!   BFS (Listings 4–5), and the paper's future-work algorithms implemented
//!   here as extensions (SSSP, connected components, triangle counting).
//! * [`graph`] — the host-side [`graph::StreamingGraph`] façade running the
//!   paper's experiment workflow: construct roots, stream increments, verify.
//! * [`query`] — standing label-constrained path queries: pattern
//!   compilation to small automata whose per-vertex state bitsets are
//!   maintained incrementally as mutations stream, plus the from-scratch
//!   recompute oracle they are pinned against.
//! * [`checkpoint`] — serialization of the live edge multiset, converged
//!   fixpoint, and registered queries for the serving layer's
//!   checkpoint/restore cycle.

pub mod apps;
pub mod checkpoint;
pub mod graph;
pub mod query;
pub mod rpvo;

pub use apps::{BfsAlgo, CcAlgo, GraphApp, SsspAlgo, TriangleAlgo, VertexAlgo};
pub use checkpoint::GraphCheckpoint;
pub use graph::{symmetrize, GraphBuilder, MutationLog, StreamEdge, StreamingGraph};
pub use query::{
    oracle_bits, oracle_bits_multi, oracle_results, oracle_results_multi, QueryDelta, QueryDfa,
    QueryError, StandingQuery,
};
pub use rpvo::{Edge, RpvoConfig, VertexObj};
