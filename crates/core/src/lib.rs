#![warn(missing_docs)]
//! # sdgp-core — streaming dynamic graph processing on AM-CCA
//!
//! The primary contribution of the reproduced paper: structures and
//! techniques for streaming dynamic graph processing on decentralized
//! message-driven systems.
//!
//! * [`rpvo`] — the **Recursively-Parallel Vertex Object**: a logical vertex
//!   parallelized across many scratchpad-coupled compute cells (root + ghost
//!   objects linked by future-of-pointer slots) behind a single address.
//! * [`apps`] — streaming algorithms: edge ingestion (Listing 6), dynamic
//!   BFS (Listings 4–5), and the paper's future-work algorithms implemented
//!   here as extensions (SSSP, connected components, triangle counting).
//! * [`graph`] — the host-side [`graph::StreamingGraph`] façade running the
//!   paper's experiment workflow: construct roots, stream increments, verify.
//! * [`checkpoint`] — serialization of the live edge multiset and converged
//!   fixpoint for the serving layer's checkpoint/restore cycle.

pub mod apps;
pub mod checkpoint;
pub mod graph;
pub mod rpvo;

pub use apps::{BfsAlgo, CcAlgo, GraphApp, SsspAlgo, TriangleAlgo, VertexAlgo};
pub use checkpoint::GraphCheckpoint;
pub use graph::{symmetrize, GraphBuilder, MutationLog, StreamEdge, StreamingGraph};
pub use rpvo::{Edge, RpvoConfig, VertexObj};
