//! Streaming dynamic Breadth-First Search (paper Listings 4–5).
//!
//! Every vertex object carries a `level`; `max-level` (here `u64::MAX`)
//! means unreached. When an edge is inserted at a vertex with a valid level,
//! the destination is informed with `level + 1` (Listing 4). The relax
//! action (`bfs-action`, Listing 5) monotonically lowers the level and
//! re-diffuses `level + 1` along all edges — so results of previous
//! computations are updated "without recomputing from scratch".

use crate::rpvo::Edge;

use super::algo::VertexAlgo;

/// The paper's `max-level` sentinel: vertex not yet reached.
pub const MAX_LEVEL: u64 = u64::MAX;

/// Breadth-first search from a designated root vertex.
#[derive(Debug, Clone, Copy)]
pub struct BfsAlgo {
    /// The BFS source vertex (level 0 from construction).
    pub root: u32,
}

impl BfsAlgo {
    /// BFS rooted at `root`.
    pub fn new(root: u32) -> Self {
        BfsAlgo { root }
    }
}

impl VertexAlgo for BfsAlgo {
    type State = u64;

    const NAME: &'static str = "bfs";

    fn fork(&self) -> Self {
        *self
    }

    fn root_state(&self, vid: u32) -> u64 {
        if vid == self.root {
            0
        } else {
            MAX_LEVEL
        }
    }

    fn ghost_state(&self, _vid: u32) -> u64 {
        MAX_LEVEL
    }

    fn improve(&self, s: &mut u64, incoming: u64) -> bool {
        // Listing 5: (if (> (vertex-level v) lvl) ...)
        if incoming < *s {
            *s = incoming;
            true
        } else {
            false
        }
    }

    fn along_edge(&self, v: u64, _e: &Edge) -> u64 {
        v + 1
    }

    fn notify_on_insert(&self, s: &u64, _e: &Edge) -> Option<u64> {
        // Listing 4: inform the dst vertex only if this src vertex has a
        // valid BFS level.
        if *s != MAX_LEVEL {
            Some(*s + 1)
        } else {
            None
        }
    }

    fn sync_value(&self, s: &u64) -> Option<u64> {
        (*s != MAX_LEVEL).then_some(*s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcca_sim::Address;

    #[test]
    fn root_gets_level_zero() {
        let a = BfsAlgo::new(5);
        assert_eq!(a.root_state(5), 0);
        assert_eq!(a.root_state(6), MAX_LEVEL);
        assert_eq!(a.ghost_state(5), MAX_LEVEL, "even the root's ghosts sync via diffusion");
    }

    #[test]
    fn improve_is_strictly_monotone() {
        let a = BfsAlgo::new(0);
        let mut s = 5u64;
        assert!(!a.improve(&mut s, 5), "equal level does not improve");
        assert!(!a.improve(&mut s, 7));
        assert!(a.improve(&mut s, 3));
        assert_eq!(s, 3);
    }

    #[test]
    fn notify_only_with_valid_level() {
        let a = BfsAlgo::new(0);
        let e = Edge::new(Address::new(0, 0), 1, 1);
        assert_eq!(a.notify_on_insert(&MAX_LEVEL, &e), None);
        assert_eq!(a.notify_on_insert(&4, &e), Some(5));
    }

    #[test]
    fn edge_value_is_level_plus_one() {
        let a = BfsAlgo::new(0);
        let e = Edge::new(Address::new(0, 0), 1, 99);
        assert_eq!(a.along_edge(7, &e), 8, "weight ignored by BFS");
    }
}
