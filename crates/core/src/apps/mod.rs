//! Streaming dynamic graph applications built on the diffusive model.

pub mod algo;
pub mod bfs;
pub mod concomp;
pub mod jaccard;
pub mod sssp;
pub mod triangle;

pub use algo::{
    delete_operon, insert_operon, update_weight_operon, GraphApp, VertexAlgo, ACT_ALGO_BASE,
    ACT_DELETE, ACT_INSERT, ACT_RELAX, ACT_RESEED, ACT_UPDATE,
};
pub use bfs::{BfsAlgo, MAX_LEVEL};
pub use concomp::CcAlgo;
pub use jaccard::{JaccardAlgo, ACT_JC_CHECK, ACT_JC_GEN, ACT_JC_PROBE};
pub use sssp::{SsspAlgo, INF};
pub use triangle::{TriangleAlgo, ACT_TRI_CHECK, ACT_TRI_GEN, ACT_TRI_PROBE};
