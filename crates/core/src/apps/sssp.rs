//! Streaming dynamic Single-Source Shortest Paths.
//!
//! A direct generalization of the paper's streaming BFS (one of the "more
//! complex message-driven streaming dynamic algorithms" of §6): state is a
//! tentative distance, relax values add edge weights instead of 1. With
//! non-negative weights the relaxation is monotone and converges to exact
//! shortest distances at quiescence.

use crate::rpvo::Edge;

use super::algo::VertexAlgo;

/// Distance sentinel: vertex not yet reached.
pub const INF: u64 = u64::MAX;

/// Incremental SSSP from a designated source vertex.
#[derive(Debug, Clone, Copy)]
pub struct SsspAlgo {
    /// The SSSP source vertex (distance 0 from construction).
    pub source: u32,
}

impl SsspAlgo {
    /// SSSP from `source`.
    pub fn new(source: u32) -> Self {
        SsspAlgo { source }
    }
}

impl VertexAlgo for SsspAlgo {
    type State = u64;

    const NAME: &'static str = "sssp";

    fn fork(&self) -> Self {
        *self
    }

    fn root_state(&self, vid: u32) -> u64 {
        if vid == self.source {
            0
        } else {
            INF
        }
    }

    fn ghost_state(&self, _vid: u32) -> u64 {
        INF
    }

    fn improve(&self, s: &mut u64, incoming: u64) -> bool {
        if incoming < *s {
            *s = incoming;
            true
        } else {
            false
        }
    }

    fn along_edge(&self, v: u64, e: &Edge) -> u64 {
        v.saturating_add(e.w as u64)
    }

    fn notify_on_insert(&self, s: &u64, e: &Edge) -> Option<u64> {
        (*s != INF).then(|| s.saturating_add(e.w as u64))
    }

    fn sync_value(&self, s: &u64) -> Option<u64> {
        (*s != INF).then_some(*s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcca_sim::Address;

    #[test]
    fn distances_accumulate_weights() {
        let a = SsspAlgo::new(0);
        let e = Edge::new(Address::new(0, 0), 1, 7);
        assert_eq!(a.along_edge(10, &e), 17);
        assert_eq!(a.notify_on_insert(&3, &e), Some(10));
        assert_eq!(a.notify_on_insert(&INF, &e), None);
    }

    #[test]
    fn saturating_add_avoids_overflow() {
        let a = SsspAlgo::new(0);
        let e = Edge::new(Address::new(0, 0), 1, u32::MAX);
        assert_eq!(a.along_edge(u64::MAX - 1, &e), u64::MAX);
    }

    #[test]
    fn improve_keeps_minimum() {
        let a = SsspAlgo::new(0);
        let mut s = INF;
        assert!(a.improve(&mut s, 40));
        assert!(a.improve(&mut s, 12));
        assert!(!a.improve(&mut s, 12));
        assert!(!a.improve(&mut s, 100));
        assert_eq!(s, 12);
    }
}
