//! Message-driven triangle counting over RPVO storage — the first of the
//! paper's named future-work algorithms (§6: "Triangle Counting, Jaccard
//! Coefficient, and Stochastic Block Partition").
//!
//! The query runs as a diffusion over a *quiescent, symmetrized* graph (each
//! undirected edge {a,b} stored in both directions). Orientation makes the
//! count exact, with each triangle {a<b<c} counted exactly once:
//!
//! 1. **tri-gen** visits every object of a vertex `u` and, for each local
//!    edge `(u,v)` with `v > u`, probes `v`.
//! 2. **tri-probe** at `v` (walking v's whole RPVO) emits, for each local
//!    edge `(v,w)` with `w > v`, a membership check `CHECK(w; u)`.
//! 3. **tri-check** at `w` scans for an edge back to `u`; a hit increments a
//!    per-cell counter; a miss forwards the check into w's ghosts (the edge,
//!    if present, is stored in exactly one object, so at most one hit).
//!
//! For the triangle {a<b<c} only the probe from edge (a,b) finds w = c > b,
//! and only the check CHECK(c; a) can hit — one count per triangle.
//!
//! Counting is re-run per streaming increment (a snapshot query); a fully
//! incremental variant remains future work, as in the paper.
//!
//! The graph must be **simple** (no duplicate directed edges): the
//! exactness argument rests on each edge being stored in exactly one
//! object, and a duplicate split across two ghost subtrees — or, on a
//! promoted rhizome vertex, across two root slices — would be counted once
//! per copy. The same assumption applies to the Jaccard query.

use amcca_sim::{ActionId, Address, ExecCtx, Operon, SimError};
use diffusive::{FutureLco, PendingOperon};

use crate::rpvo::{Edge, RpvoConfig, VertexObj};

use super::algo::{VertexAlgo, ACT_ALGO_BASE, QUERY_FANNED_BIT};

/// Start the pair-generation walk at a vertex object.
pub const ACT_TRI_GEN: ActionId = ACT_ALGO_BASE;
/// Probe a neighbour `v` of `u` for wedges `u–v–w` with `w > v`.
pub const ACT_TRI_PROBE: ActionId = ACT_ALGO_BASE + 1;
/// Membership check: does the target vertex have an edge to `payload[0]`?
pub const ACT_TRI_CHECK: ActionId = ACT_ALGO_BASE + 2;

/// Exact triangle counting via oriented probe/check diffusion.
pub struct TriangleAlgo {
    /// Per-compute-cell hit counters (summed by the host after quiescence;
    /// a decentralized reduction LCO would gather them on-chip).
    pub counts: Vec<u64>,
    scratch_edges: Vec<Edge>,
    scratch_ghosts: Vec<Address>,
    scratch_peers: Vec<Address>,
}

impl TriangleAlgo {
    /// Counter state for a chip with `cell_count` cells.
    pub fn new(cell_count: u32) -> Self {
        TriangleAlgo {
            counts: vec![0; cell_count as usize],
            scratch_edges: Vec::new(),
            scratch_ghosts: Vec::new(),
            scratch_peers: Vec::new(),
        }
    }

    /// Total triangles found since the last [`Self::reset`].
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Clear all per-cell counters (before a new query).
    pub fn reset(&mut self) {
        self.counts.fill(0);
    }

    /// Snapshot local edges + ghost targets of the object, enqueueing a
    /// deferred copy of `op` on any Pending ghost slot.
    fn snapshot(&mut self, ctx: &mut ExecCtx<'_, VertexObj<()>>, op: &Operon) -> Option<u32> {
        let Some(obj) = ctx.obj_mut(op.target.slot) else {
            ctx.fail(SimError::BadAddress { addr: op.target, action: op.action });
            return None;
        };
        self.scratch_edges.clear();
        self.scratch_edges.extend_from_slice(&obj.edges);
        self.scratch_peers.clear();
        self.scratch_peers.extend_from_slice(&obj.peers);
        self.scratch_ghosts.clear();
        for g in obj.ghosts.iter_mut() {
            match g {
                FutureLco::Ready(a) => self.scratch_ghosts.push(*a),
                FutureLco::Pending(q) => {
                    q.push(PendingOperon { action: op.action, payload: op.payload })
                }
                FutureLco::Null => {}
            }
        }
        Some(obj.vid)
    }

    /// First arrival of a query action at a rhizome root: fan a marked copy
    /// to every co-equal peer root, so each disjoint edge slice of the
    /// logical vertex participates (see [`super::algo::fan_query_to_peers`]).
    fn fan_rhizome(&mut self, ctx: &mut ExecCtx<'_, VertexObj<()>>, op: &Operon) {
        super::algo::fan_query_to_peers(ctx, op, &self.scratch_peers);
    }
}

impl VertexAlgo for TriangleAlgo {
    type State = ();

    const NAME: &'static str = "triangle";

    fn fork(&self) -> Self {
        TriangleAlgo::new(self.counts.len() as u32)
    }

    fn merge(&mut self, worker: Self) {
        // Per-cell hit counters: each cell belongs to exactly one shard, so
        // the element-wise sum reproduces the sequential counts exactly.
        for (total, shard) in self.counts.iter_mut().zip(&worker.counts) {
            *total += shard;
        }
    }

    fn root_state(&self, _vid: u32) {}

    fn ghost_state(&self, _vid: u32) {}

    fn improve(&self, _s: &mut (), _incoming: u64) -> bool {
        false
    }

    fn along_edge(&self, _v: u64, _e: &Edge) -> u64 {
        0
    }

    fn notify_on_insert(&self, _s: &(), _e: &Edge) -> Option<u64> {
        None
    }

    fn sync_value(&self, _s: &()) -> Option<u64> {
        None
    }

    fn on_other_action(
        &mut self,
        ctx: &mut ExecCtx<'_, VertexObj<()>>,
        op: &Operon,
        _rcfg: &RpvoConfig,
    ) {
        match op.action {
            ACT_TRI_GEN => {
                let Some(vid) = self.snapshot(ctx, op) else { return };
                self.fan_rhizome(ctx, op);
                ctx.charge(ctx.cost().scan_per_edge * self.scratch_edges.len() as u32);
                for i in 0..self.scratch_edges.len() {
                    let e = self.scratch_edges[i];
                    if e.dst_id > vid {
                        ctx.propagate(Operon::new(e.dst, ACT_TRI_PROBE, [vid as u64, 0]));
                    }
                }
                for i in 0..self.scratch_ghosts.len() {
                    let g = self.scratch_ghosts[i];
                    ctx.propagate(Operon::new(g, ACT_TRI_GEN, op.payload));
                }
            }
            ACT_TRI_PROBE => {
                let u = op.payload[0] & !QUERY_FANNED_BIT;
                let Some(vid) = self.snapshot(ctx, op) else { return };
                self.fan_rhizome(ctx, op);
                ctx.charge(ctx.cost().scan_per_edge * self.scratch_edges.len() as u32);
                for i in 0..self.scratch_edges.len() {
                    let e = self.scratch_edges[i];
                    if e.dst_id > vid {
                        ctx.propagate(Operon::new(e.dst, ACT_TRI_CHECK, [u, 0]));
                    }
                }
                for i in 0..self.scratch_ghosts.len() {
                    let g = self.scratch_ghosts[i];
                    ctx.propagate(Operon::new(g, ACT_TRI_PROBE, op.payload));
                }
            }
            ACT_TRI_CHECK => {
                let u = (op.payload[0] & !QUERY_FANNED_BIT) as u32;
                let Some(_vid) = self.snapshot(ctx, op) else { return };
                self.fan_rhizome(ctx, op);
                ctx.charge(ctx.cost().scan_per_edge * self.scratch_edges.len() as u32);
                if self.scratch_edges.iter().any(|e| e.dst_id == u) {
                    self.counts[ctx.cc as usize] += 1;
                } else {
                    // The edge, if it exists, lives in exactly one object of
                    // this RPVO: fan the check into the ghost subtrees.
                    for i in 0..self.scratch_ghosts.len() {
                        let g = self.scratch_ghosts[i];
                        ctx.propagate(Operon::new(g, ACT_TRI_CHECK, op.payload));
                    }
                }
            }
            other => panic!("triangle: unknown action {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_reset() {
        let mut t = TriangleAlgo::new(4);
        t.counts[0] = 3;
        t.counts[3] = 2;
        assert_eq!(t.total(), 5);
        t.reset();
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn algo_is_silent_on_inserts() {
        let t = TriangleAlgo::new(1);
        let e = Edge::new(Address::new(0, 0), 1, 1);
        assert_eq!(t.notify_on_insert(&(), &e), None);
        assert_eq!(t.sync_value(&()), None);
        let mut s = ();
        assert!(!t.improve(&mut s, 0));
    }
}
