//! Message-driven Jaccard coefficients — the second of the paper's named
//! future-work algorithms (§6: "Triangle Counting, **Jaccard Coefficient**,
//! and Stochastic Block Partition").
//!
//! For every undirected edge {u,v} the Jaccard coefficient is
//! `J(u,v) = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|`. Over a quiescent, symmetrized
//! graph the intersection counts are computed as a three-stage diffusion:
//!
//! 1. **jc-gen** walks every object of vertex `u`; each local edge `(u,v)`
//!    with `v > u` (canonical orientation — each pair computed once) sends a
//!    probe to `v`.
//! 2. **jc-probe** at `v` walks v's RPVO; each local edge `(v,w)` emits a
//!    membership check `CHECK(w; u, v)`.
//! 3. **jc-check** at `w` scans for an edge back to `u`; a hit means
//!    `w ∈ N(u) ∩ N(v)` and increments the accumulator for the pair `(u,v)`
//!    (misses fan into w's ghosts; the edge lives in exactly one object, so
//!    a pair is counted at most once per common neighbour).
//!
//! The union follows from degrees, `|N(u)∪N(v)| = d(u) + d(v) − inter`,
//! which the host reads off the RPVOs. Hit accumulators live per pair in the
//! application (a hardware run would keep per-cell partial maps and reduce
//! them with a gather diffusion; the host-side sum is equivalent).

use std::collections::HashMap;

use amcca_sim::{ActionId, Address, ExecCtx, Operon, SimError};
use diffusive::{FutureLco, PendingOperon};

use crate::rpvo::{Edge, RpvoConfig, VertexObj};

use super::algo::{VertexAlgo, ACT_ALGO_BASE, QUERY_FANNED_BIT};

/// Start the canonical-pair generation walk at a vertex object.
pub const ACT_JC_GEN: ActionId = ACT_ALGO_BASE;
/// Probe `v` for its neighbourhood, on behalf of pair `(u, v)`.
pub const ACT_JC_PROBE: ActionId = ACT_ALGO_BASE + 1;
/// Membership check at `w`: `u ∈ N(w)`? Payload carries the pair `(u, v)`.
pub const ACT_JC_CHECK: ActionId = ACT_ALGO_BASE + 2;

/// Exact Jaccard-coefficient computation via probe/check diffusion.
pub struct JaccardAlgo {
    /// Intersection hits per canonical pair, keyed `(u << 32) | v`.
    pub hits: HashMap<u64, u64>,
    scratch_edges: Vec<Edge>,
    scratch_ghosts: Vec<Address>,
    scratch_peers: Vec<Address>,
}

impl JaccardAlgo {
    /// Fresh accumulator state.
    pub fn new() -> Self {
        JaccardAlgo {
            hits: HashMap::new(),
            scratch_edges: Vec::new(),
            scratch_ghosts: Vec::new(),
            scratch_peers: Vec::new(),
        }
    }

    /// Clear all recorded intersection hits (before a new query).
    pub fn reset(&mut self) {
        self.hits.clear();
    }

    /// Intersection size recorded for the canonical pair `(u, v)`, `u < v`.
    pub fn intersection(&self, u: u32, v: u32) -> u64 {
        debug_assert!(u < v);
        self.hits.get(&(((u as u64) << 32) | v as u64)).copied().unwrap_or(0)
    }

    fn snapshot(&mut self, ctx: &mut ExecCtx<'_, VertexObj<()>>, op: &Operon) -> Option<u32> {
        let Some(obj) = ctx.obj_mut(op.target.slot) else {
            ctx.fail(SimError::BadAddress { addr: op.target, action: op.action });
            return None;
        };
        self.scratch_edges.clear();
        self.scratch_edges.extend_from_slice(&obj.edges);
        self.scratch_peers.clear();
        self.scratch_peers.extend_from_slice(&obj.peers);
        self.scratch_ghosts.clear();
        for g in obj.ghosts.iter_mut() {
            match g {
                FutureLco::Ready(a) => self.scratch_ghosts.push(*a),
                FutureLco::Pending(q) => {
                    q.push(PendingOperon { action: op.action, payload: op.payload })
                }
                FutureLco::Null => {}
            }
        }
        Some(obj.vid)
    }

    /// Fan an unmarked query arrival across the rhizome's co-equal roots
    /// (see [`super::algo::fan_query_to_peers`]); `payload[1]` — the pair
    /// key for checks — travels along unchanged.
    fn fan_rhizome(&mut self, ctx: &mut ExecCtx<'_, VertexObj<()>>, op: &Operon) {
        super::algo::fan_query_to_peers(ctx, op, &self.scratch_peers);
    }
}

impl Default for JaccardAlgo {
    fn default() -> Self {
        Self::new()
    }
}

impl VertexAlgo for JaccardAlgo {
    type State = ();

    const NAME: &'static str = "jaccard";

    fn fork(&self) -> Self {
        JaccardAlgo::new()
    }

    fn merge(&mut self, worker: Self) {
        // A pair's hits may be recorded on cells of different shards (one
        // common neighbour each); summing per key merges them exactly.
        for (pair, hits) in worker.hits {
            *self.hits.entry(pair).or_insert(0) += hits;
        }
    }

    fn root_state(&self, _vid: u32) {}

    fn ghost_state(&self, _vid: u32) {}

    fn improve(&self, _s: &mut (), _incoming: u64) -> bool {
        false
    }

    fn along_edge(&self, _v: u64, _e: &Edge) -> u64 {
        0
    }

    fn notify_on_insert(&self, _s: &(), _e: &Edge) -> Option<u64> {
        None
    }

    fn sync_value(&self, _s: &()) -> Option<u64> {
        None
    }

    fn on_other_action(
        &mut self,
        ctx: &mut ExecCtx<'_, VertexObj<()>>,
        op: &Operon,
        _rcfg: &RpvoConfig,
    ) {
        match op.action {
            ACT_JC_GEN => {
                let Some(vid) = self.snapshot(ctx, op) else { return };
                self.fan_rhizome(ctx, op);
                ctx.charge(ctx.cost().scan_per_edge * self.scratch_edges.len() as u32);
                for i in 0..self.scratch_edges.len() {
                    let e = self.scratch_edges[i];
                    if e.dst_id > vid {
                        // Canonical pair (u=vid, v=e.dst_id): probe v.
                        ctx.propagate(Operon::new(e.dst, ACT_JC_PROBE, [vid as u64, 0]));
                    }
                }
                for i in 0..self.scratch_ghosts.len() {
                    let g = self.scratch_ghosts[i];
                    ctx.propagate(Operon::new(g, ACT_JC_GEN, op.payload));
                }
            }
            ACT_JC_PROBE => {
                let u = (op.payload[0] & !QUERY_FANNED_BIT) as u32;
                let Some(vid) = self.snapshot(ctx, op) else { return };
                self.fan_rhizome(ctx, op);
                ctx.charge(ctx.cost().scan_per_edge * self.scratch_edges.len() as u32);
                let pair = ((u as u64) << 32) | vid as u64;
                for i in 0..self.scratch_edges.len() {
                    let e = self.scratch_edges[i];
                    // w = e.dst_id ∈ N(v); ask w whether u ∈ N(w).
                    ctx.propagate(Operon::new(e.dst, ACT_JC_CHECK, [u as u64, pair]));
                }
                for i in 0..self.scratch_ghosts.len() {
                    let g = self.scratch_ghosts[i];
                    ctx.propagate(Operon::new(g, ACT_JC_PROBE, op.payload));
                }
            }
            ACT_JC_CHECK => {
                let u = (op.payload[0] & !QUERY_FANNED_BIT) as u32;
                let Some(_w) = self.snapshot(ctx, op) else { return };
                self.fan_rhizome(ctx, op);
                ctx.charge(ctx.cost().scan_per_edge * self.scratch_edges.len() as u32);
                if self.scratch_edges.iter().any(|e| e.dst_id == u) {
                    *self.hits.entry(op.payload[1]).or_insert(0) += 1;
                } else {
                    for i in 0..self.scratch_ghosts.len() {
                        let g = self.scratch_ghosts[i];
                        ctx.propagate(Operon::new(g, ACT_JC_CHECK, op.payload));
                    }
                }
            }
            other => panic!("jaccard: unknown action {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_lookup_defaults_to_zero() {
        let mut j = JaccardAlgo::new();
        assert_eq!(j.intersection(1, 2), 0);
        j.hits.insert((1u64 << 32) | 2, 5);
        assert_eq!(j.intersection(1, 2), 5);
        j.reset();
        assert_eq!(j.intersection(1, 2), 0);
    }

    #[test]
    fn algo_is_silent_during_ingestion() {
        let j = JaccardAlgo::new();
        let e = Edge::new(Address::new(0, 0), 1, 1);
        assert_eq!(j.notify_on_insert(&(), &e), None);
        assert_eq!(j.sync_value(&()), None);
    }
}
