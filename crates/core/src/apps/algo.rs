//! Streaming graph application machinery.
//!
//! [`GraphApp`] is the diffusive application all streaming algorithms share.
//! It implements:
//!
//! * **`insert-edge-action`** (paper Listing 6): append the edge to the
//!   target object's inline list; on overflow, spill to a ghost slot —
//!   allocating the ghost through a continuation if the slot is Null,
//!   enqueueing on the future if Pending, or forwarding if Ready. After a
//!   successful insert the algorithm may announce a value along the new edge
//!   (Listing 4's "inform the dst vertex ... only if this src vertex has a
//!   valid BFS level").
//! * **the relax action** (paper Listing 5, generalized): monotonically
//!   improve the object's state with the incoming value and, if improved,
//!   diffuse a per-edge value along every local edge and forward the value to
//!   the object's ghosts so mirrors converge.
//! * **`delete-edge-action`**: the decremental counterpart of insert. The
//!   retraction broadcast walks the logical vertex (co-equal rhizome roots
//!   and ghost subtrees); the one object holding the tagged copy removes it
//!   and, if the algorithm propagates, recalls the value it last announced
//!   along that edge with the `retract` system diffusion
//!   ([`diffusive::retract`]) — derived downstream state invalidates and is
//!   later rebuilt by a **reseed** wave re-announcing surviving state. The
//!   cascade records the repair frontier on-fabric (reset objects plus
//!   recall-rejecting survivors) so the host can scope the reseed to the
//!   invalidated region instead of triggering every vertex.
//! * **`update-weight-action`**: patch one tagged edge copy's weight in
//!   place wherever it is stored. A decrease is announced as a plain relax;
//!   an increase recalls the contribution made under the old weight, so only
//!   paths through the now-costlier edge invalidate and repair.
//! * **the query system action** ([`diffusive::query`]): maintain per-object
//!   automaton-state bitsets of registered standing label-constrained path
//!   queries — a monotone OR-and-step diffusion on inserts plus a reseed
//!   walk re-announcing surviving states during deletion repair.
//!
//! Individual algorithms (BFS, SSSP, connected components, triangles) plug in
//! through the [`VertexAlgo`] trait.

use amcca_sim::{ActionId, Address, ExecCtx, Operon, SimError};
use diffusive::{
    allocate_operon, query_operon, query_reseed_operon, AllocRequest, App, Continuation, FutureLco,
    PendingOperon, QUERY_ALL, QUERY_RESEED_FANNED,
};

use crate::query::QueryDfa;
use crate::rpvo::{decode_edge, encode_edge, Edge, RpvoConfig, VertexObj};

/// Action id of `insert-edge-action`.
pub const ACT_INSERT: ActionId = diffusive::FIRST_USER_ACTION;
/// Action id of the algorithm's relax/diffuse action (`bfs-action` & co).
pub const ACT_RELAX: ActionId = diffusive::FIRST_USER_ACTION + 1;
/// Action id of `delete-edge-action`: retract one tagged edge copy from the
/// logical vertex's storage and start the deletion-repair diffusion.
pub const ACT_DELETE: ActionId = diffusive::FIRST_USER_ACTION + 2;
/// Action id of `reseed-action`: after a deletion batch's invalidation wave
/// quiesced, objects with surviving announceable state re-announce it along
/// their local edges so monotone relaxation rebuilds the exact fixpoint over
/// the surviving edge set. The host triggers it either from every vertex
/// (full wave) or only from the recorded repair frontier (targeted).
pub const ACT_RESEED: ActionId = diffusive::FIRST_USER_ACTION + 3;
/// Action id of `update-weight-action`: patch the weight of one tagged edge
/// copy in place wherever it is stored (root slice, rhizome peer, or ghost
/// spill). A weight decrease announces the improved contribution like an
/// insert; an increase recalls the contribution announced under the old
/// weight, seeding a scoped invalidate+reseed repair.
pub const ACT_UPDATE: ActionId = diffusive::FIRST_USER_ACTION + 4;
/// First action id available to algorithm-specific extras (triangle probes).
pub const ACT_ALGO_BASE: ActionId = diffusive::FIRST_USER_ACTION + 5;

/// Bit 63 of a *query* operon's `payload[0]` (triangle / Jaccard probes and
/// checks) marking that the operon was already fanned across a rhizome's
/// co-equal roots. The first root reached fans a marked copy to each peer so
/// the whole logical adjacency is visited exactly once; vertex ids are 32-bit,
/// so the flag never collides with the carried id.
pub const QUERY_FANNED_BIT: u64 = 1 << 63;

/// Fan an unmarked query arrival across a rhizome's co-equal roots: one
/// marked copy of `op` per peer (marked copies never re-fan; `payload[1]` —
/// e.g. Jaccard's pair key — travels along unchanged). No-op on already
/// fanned operons and on objects without peers (ghosts, single roots).
pub(crate) fn fan_query_to_peers<T>(ctx: &mut ExecCtx<'_, T>, op: &Operon, peers: &[Address]) {
    if op.payload[0] & QUERY_FANNED_BIT != 0 {
        return;
    }
    for &p in peers {
        ctx.propagate(Operon::new(p, op.action, [op.payload[0] | QUERY_FANNED_BIT, op.payload[1]]));
    }
}

/// A streaming vertex algorithm: per-vertex state plus the semantic hooks of
/// the monotone relax pattern. Values on the wire are `u64` (one payload
/// word); `State` is the per-object representation.
///
/// Algorithms are `Send` (with `Send` state) so the chip's sharded parallel
/// engine can run one forked instance per mesh shard; any accumulator state
/// an algorithm keeps (e.g. triangle hit counters) must merge commutatively
/// through [`VertexAlgo::merge`] — see `amcca_sim::Program` for the full
/// contract.
pub trait VertexAlgo: Send {
    /// Per-object algorithm state. `Copy` so handlers can snapshot it while
    /// juggling borrows of cell memory.
    type State: Copy + PartialEq + std::fmt::Debug + Send;

    /// `const` variant.
    const NAME: &'static str;

    /// Initial state of root vertex `vid` at graph construction.
    fn root_state(&self, vid: u32) -> Self::State;

    /// Initial state of a freshly allocated ghost of vertex `vid` (mirrors
    /// are synced from the parent right after attachment).
    fn ghost_state(&self, vid: u32) -> Self::State;

    /// Try to improve `s` with an incoming relax value. Must be monotone
    /// (improvements only); return whether `s` changed.
    fn improve(&self, s: &mut Self::State, incoming: u64) -> bool;

    /// Value to diffuse along edge `e` after this object improved to `v`
    /// (BFS: `v + 1`; SSSP: `v + w`; CC: `v`).
    fn along_edge(&self, v: u64, e: &Edge) -> u64;

    /// Value to announce along a *newly inserted* edge given the inserting
    /// object's state, or `None` to stay silent (BFS: `level + 1` if the
    /// level is valid).
    fn notify_on_insert(&self, s: &Self::State, e: &Edge) -> Option<u64>;

    /// Current state as a sync value for a freshly attached ghost (`None`
    /// if there is nothing to sync, e.g. an unreached BFS vertex).
    fn sync_value(&self, s: &Self::State) -> Option<u64>;

    /// Deletion-repair suspicion test: could state `s` only have been
    /// derived through a retracted announcement of `suspect`? Monotone
    /// relaxation guarantees `s`'s wire value is at most as good as any
    /// announcement it absorbed, so the conservative default — equality with
    /// the *best* (latest) value the retracted source announced — never
    /// under-invalidates: a strictly better state had independent support.
    /// Over-invalidation is safe (the reseed wave restores it).
    fn retract_match(&self, s: &Self::State, suspect: u64) -> bool {
        self.sync_value(s) == Some(suspect)
    }

    /// Handle algorithm-specific actions beyond insert/relax.
    fn on_other_action(
        &mut self,
        ctx: &mut ExecCtx<'_, VertexObj<Self::State>>,
        op: &Operon,
        rcfg: &RpvoConfig,
    ) {
        let _ = (ctx, rcfg);
        panic!("{}: unknown action {}", Self::NAME, op.action);
    }

    /// Create an independent instance for one shard of a parallel run
    /// (configuration copied, accumulators empty).
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Fold a shard instance's accumulated state back after a parallel run.
    /// The default drops the worker — correct only for algorithms whose
    /// forks accumulate nothing.
    fn merge(&mut self, worker: Self)
    where
        Self: Sized,
    {
        let _ = worker;
    }
}

/// The diffusive application driving any [`VertexAlgo`] over RPVO storage.
pub struct GraphApp<G: VertexAlgo> {
    /// The plugged-in algorithm.
    pub algo: G,
    /// RPVO shape shared by every vertex object.
    pub rcfg: RpvoConfig,
    /// When false, successful inserts do not announce values — the paper's
    /// "disabling the subsequent propagation of bfs-action when an edge is
    /// inserted" used to isolate ingestion time (§5).
    pub propagate_algo: bool,
    /// Internal phase gate: during the structural phase of a deletion batch
    /// the host suppresses every improvement source — insert notifications
    /// *and* ghost attach-syncs — because an improvement racing the
    /// invalidation cascade can slip a stale value past the equality test
    /// (the cascade recalls only the *latest* announced value). The phase
    /// is then purely structural: edges move, states only reset. The
    /// subsequent reseed wave re-announces all surviving state, which both
    /// relaxes the new edges and restores mirrors.
    pub(crate) notify_inserts: bool,
    /// Repair-frontier bookkeeping recorded on-fabric during a deletion
    /// batch's invalidation cascade: vertex ids whose state was reset.
    /// Drained by the host after the structural phase to scope the reseed
    /// wave ([`Self::take_repair_sets`]). Per-shard instances accumulate
    /// independently and fold back through [`App::merge`] like any other
    /// commutative accumulator; the host sorts + dedups before use, so the
    /// shard-dependent accumulation order never drives output.
    invalidated: Vec<u32>,
    /// Vertex ids that *rejected* a recall while holding announceable state —
    /// survivors adjacent to the invalidated region, the other half of the
    /// recorded repair frontier.
    rejected: Vec<u32>,
    /// Compiled automata of the registered standing queries, indexed by
    /// query id. Registration happens host-side between increments (the
    /// registry lives on the master app; per-shard forks clone it), so the
    /// vector is read-only during a run.
    pub(crate) queries: Vec<QueryDfa>,
    /// `(qid, vid)` pairs recorded whenever a query-bit absorption turned on
    /// an *accepting* automaton state at some object of the vertex — the
    /// candidate set for the host's per-increment result-delta diff.
    /// Duplicates possible (root, peers, and ghosts record independently);
    /// the host dedups and re-checks the primary, so over-recording is
    /// harmless. Commutative accumulator, folded back through [`App::merge`].
    qaccept_touched: Vec<(u32, u32)>,
    scratch_edges: Vec<Edge>,
    scratch_ghosts: Vec<Address>,
    scratch_peers: Vec<Address>,
    scratch_queries: Vec<(u32, u32)>,
}

impl<G: VertexAlgo> GraphApp<G> {
    /// Create the application from an algorithm, an RPVO shape, and the propagate-on-insert flag.
    pub fn new(algo: G, rcfg: RpvoConfig, propagate_algo: bool) -> Self {
        rcfg.validate().expect("invalid RPVO configuration");
        GraphApp {
            algo,
            rcfg,
            propagate_algo,
            notify_inserts: true,
            invalidated: Vec::new(),
            rejected: Vec::new(),
            queries: Vec::new(),
            qaccept_touched: Vec::new(),
            scratch_edges: Vec::new(),
            scratch_ghosts: Vec::new(),
            scratch_peers: Vec::new(),
            scratch_queries: Vec::new(),
        }
    }

    /// Drain the repair frontier recorded since the last call:
    /// `(invalidated vertex ids, recall-rejecting vertex ids)`, each possibly
    /// containing duplicates (a vertex's root, peers, and ghosts record
    /// independently). The host dedups.
    pub fn take_repair_sets(&mut self) -> (Vec<u32>, Vec<u32>) {
        (std::mem::take(&mut self.invalidated), std::mem::take(&mut self.rejected))
    }

    /// Drain the `(qid, vid)` pairs whose accepting automaton bits turned on
    /// since the last call — the candidate half of the host's incremental
    /// result-delta computation (the other half is the repair-cleared
    /// region). Duplicates possible; the host dedups.
    pub fn take_query_touched(&mut self) -> Vec<(u32, u32)> {
        std::mem::take(&mut self.qaccept_touched)
    }

    /// Listing 6: insert an edge, spilling through ghost futures on overflow.
    fn ingest(&mut self, ctx: &mut ExecCtx<'_, VertexObj<G::State>>, op: &Operon) {
        let target = op.target;
        let edge = decode_edge(op.payload);
        ctx.charge(ctx.cost().insert_edge);
        enum Outcome {
            Inserted(Option<u64>),
            Deferred,
            NeedAlloc { slot: u8, vid: u32 },
            Forward(Address),
        }
        let outcome = {
            let Some(obj) = ctx.obj_mut(target.slot) else {
                ctx.fail(SimError::BadAddress { addr: target, action: ACT_INSERT });
                return;
            };
            if obj.has_room(self.rcfg.edge_cap) {
                obj.edges.push(edge);
                let notify = if self.propagate_algo && self.notify_inserts {
                    self.algo.notify_on_insert(&obj.state, &edge)
                } else {
                    None
                };
                // Standing queries: the new edge may extend result paths, so
                // announce this object's stepped automaton states along it
                // (suppressed during structural phases — the query repair
                // pass re-announces from the batch's touched sources).
                self.scratch_queries.clear();
                if self.notify_inserts {
                    for (qid, dfa) in self.queries.iter().enumerate() {
                        let bits = obj.qbits_get(qid as u32);
                        if bits != 0 {
                            let stepped = dfa.step(bits, edge.label);
                            if stepped != 0 {
                                self.scratch_queries.push((qid as u32, stepped));
                            }
                        }
                    }
                }
                Outcome::Inserted(notify)
            } else {
                // Edge list full: send the edge to a ghost (Listing 6 else-branch).
                let slot = obj.pick_ghost_slot();
                let waiter = PendingOperon { action: ACT_INSERT, payload: op.payload };
                match &mut obj.ghosts[slot] {
                    g @ FutureLco::Null => {
                        // Ghost not allocated yet: set the future to pending
                        // and allocate through a continuation.
                        g.make_pending().expect("Null -> Pending");
                        g.enqueue(waiter).expect("pending enqueue");
                        Outcome::NeedAlloc { slot: slot as u8, vid: obj.vid }
                    }
                    FutureLco::Pending(q) => {
                        // Being fulfilled by a previous continuation:
                        // enqueue the task in the future.
                        q.push(waiter);
                        Outcome::Deferred
                    }
                    FutureLco::Ready(a) => {
                        // Ghost exists: recursively propagate the edge to it.
                        Outcome::Forward(*a)
                    }
                }
            }
        };
        match outcome {
            Outcome::Inserted(notify) => {
                if let Some(v) = notify {
                    ctx.propagate(Operon::new(edge.dst, ACT_RELAX, [v, 0]));
                }
                for i in 0..self.scratch_queries.len() {
                    let (qid, stepped) = self.scratch_queries[i];
                    ctx.propagate(query_operon(edge.dst, qid, stepped));
                }
            }
            Outcome::Deferred => {}
            Outcome::Forward(a) => {
                ctx.propagate(Operon::new(a, ACT_INSERT, op.payload));
            }
            Outcome::NeedAlloc { slot, vid } => {
                ctx.charge(ctx.cost().future_op);
                let target_cc = ctx.choose_alloc_target(0);
                let cont = Continuation { return_to: target, slot };
                ctx.propagate(allocate_operon(target_cc, cont, 0, vid as u64));
            }
        }
    }

    /// Listing 5 (generalized): relax the object's state and diffuse. Shared
    /// by the relax action proper and the cross-rhizome sync action (a peer
    /// root's announcement is semantically a relax; `action` only labels
    /// errors).
    fn relax_value(
        &mut self,
        ctx: &mut ExecCtx<'_, VertexObj<G::State>>,
        target: Address,
        incoming: u64,
        action: ActionId,
    ) {
        ctx.charge(ctx.cost().state_update);
        let improved = {
            let Some(obj) = ctx.obj_mut(target.slot) else {
                ctx.fail(SimError::BadAddress { addr: target, action });
                return;
            };
            if self.algo.improve(&mut obj.state, incoming) {
                // Snapshot diffusion targets while the object is borrowed.
                self.scratch_edges.clear();
                self.scratch_edges.extend_from_slice(&obj.edges);
                self.scratch_peers.clear();
                self.scratch_peers.extend_from_slice(&obj.peers);
                self.scratch_ghosts.clear();
                for g in obj.ghosts.iter_mut() {
                    match g {
                        FutureLco::Ready(a) => self.scratch_ghosts.push(*a),
                        FutureLco::Pending(q) => {
                            // Mirror sync will reach the ghost once attached.
                            q.push(PendingOperon { action: ACT_RELAX, payload: [incoming, 0] });
                        }
                        FutureLco::Null => {}
                    }
                }
                true
            } else {
                false
            }
        };
        if improved {
            ctx.charge(ctx.cost().scan_per_edge * self.scratch_edges.len() as u32);
            for i in 0..self.scratch_edges.len() {
                let e = self.scratch_edges[i];
                let v = self.algo.along_edge(incoming, &e);
                ctx.propagate(Operon::new(e.dst, ACT_RELAX, [v, 0]));
            }
            // Forward the improved value to ghost mirrors (same level, not
            // level+1: ghosts are part of the same logical vertex).
            for i in 0..self.scratch_ghosts.len() {
                let g = self.scratch_ghosts[i];
                ctx.propagate(Operon::new(g, ACT_RELAX, [incoming, 0]));
            }
            // Announce the improvement to co-equal rhizome roots so every
            // root (and through it, every edge slice) converges. Monotone
            // improvement bounds the exchange: a root only re-announces when
            // it actually improved, so the peer traffic terminates.
            for i in 0..self.scratch_peers.len() {
                let p = self.scratch_peers[i];
                ctx.propagate(diffusive::sync_operon(p, incoming));
            }
        }
    }

    /// `delete-edge-action`: retract one tagged edge copy. The broadcast
    /// visits the logical vertex's objects — on first arrival at a rhizome
    /// root a marked copy fans to every peer, and misses forward into the
    /// ready ghost subtrees. Exactly one object holds the `(dst, tag)` copy
    /// (tags are unique among a pair's live copies — the payload weight is
    /// advisory: a host-coalesced same-batch re-weight can leave the stored
    /// weight behind the ledger's), so exactly one removal happens; every
    /// other arrival dies silently. The remover recalls the value it last
    /// announced along the edge — at the *stored* weight — seeding the
    /// invalidation cascade ([`diffusive::retract`]).
    ///
    /// Pending ghost slots are skipped: deletions only ever target edges
    /// settled in a previous increment (same-batch adds are annihilated
    /// host-side), and a Pending slot's subtree did not exist then.
    fn retract_edge(&mut self, ctx: &mut ExecCtx<'_, VertexObj<G::State>>, op: &Operon) {
        let target = op.target;
        let (tag, dst_id, _w) = decode_delete(op.payload);
        ctx.charge(ctx.cost().dispatch);
        let (removed, scanned) = {
            let Some(obj) = ctx.obj_mut(target.slot) else {
                ctx.fail(SimError::BadAddress { addr: target, action: ACT_DELETE });
                return;
            };
            let scanned = obj.edges.len() as u32;
            let removed = match obj.edges.iter().position(|e| e.dst_id == dst_id && e.tag == tag) {
                Some(i) => {
                    // Order-preserving removal keeps the surviving edge list
                    // deterministic for later scans and walks.
                    let e = obj.edges.remove(i);
                    let recall =
                        if self.propagate_algo { self.algo.sync_value(&obj.state) } else { None };
                    Some((e, recall))
                }
                None => {
                    // Miss: snapshot the forwarding sets while borrowed.
                    self.scratch_peers.clear();
                    self.scratch_peers.extend_from_slice(&obj.peers);
                    self.scratch_ghosts.clear();
                    self.scratch_ghosts.extend(obj.ready_ghosts());
                    None
                }
            };
            (removed, scanned)
        };
        ctx.charge(ctx.cost().scan_per_edge * scanned);
        match removed {
            Some((e, recall)) => {
                ctx.charge(ctx.cost().delete_edge);
                if let Some(v) = recall {
                    // Recall the best value this object ever announced along
                    // the retracted edge; the destination invalidates iff
                    // its state could only have come from it.
                    ctx.propagate(diffusive::retract_operon(e.dst, self.algo.along_edge(v, &e)));
                }
            }
            None => {
                fan_query_to_peers(ctx, op, &self.scratch_peers);
                for i in 0..self.scratch_ghosts.len() {
                    let g = self.scratch_ghosts[i];
                    ctx.propagate(Operon::new(g, ACT_DELETE, op.payload));
                }
            }
        }
    }

    /// The deletion-repair invalidation ([`diffusive::ACT_RETRACT`]): if the
    /// object's state could only have been derived through the recalled
    /// value, reset it and cascade — along local edges with the value this
    /// object would have announced, and to mirrors and peers with the old
    /// value itself. States move to their reset value at most once per
    /// repair round, so the cascade terminates.
    ///
    /// Either way the cascade records the repair frontier on-fabric: a reset
    /// object joins [`Self::take_repair_sets`]'s *invalidated* set, while an
    /// object that rejects the recall with announceable state (independent
    /// support, or a self-supported reset value) joins the *rejected* set —
    /// together the survivors the targeted reseed wave re-announces from.
    fn invalidate(
        &mut self,
        ctx: &mut ExecCtx<'_, VertexObj<G::State>>,
        target: Address,
        suspect: u64,
    ) {
        ctx.charge(ctx.cost().invalidate);
        enum Verdict {
            /// Recall rejected without announceable state: nothing to record.
            Silent,
            /// Recall rejected (or matched a self-supported reset value) with
            /// announceable state: record on the frontier, no cascade.
            Survivor,
            /// State reset: record and cascade the given old value.
            Reset(u64),
        }
        let verdict = {
            let Some(obj) = ctx.obj_mut(target.slot) else {
                ctx.fail(SimError::BadAddress { addr: target, action: diffusive::ACT_RETRACT });
                return;
            };
            if !self.algo.retract_match(&obj.state, suspect) {
                // Rejected recall: this object's state has independent
                // support. If it is announceable, the object borders the
                // invalidated region and its re-announcement can re-feed
                // invalidated neighbours.
                if self.algo.sync_value(&obj.state).is_some() {
                    self.rejected.push(obj.vid);
                    Verdict::Survivor
                } else {
                    Verdict::Silent
                }
            } else {
                let old = obj.state;
                let reset = self.algo.root_state(obj.vid);
                if reset == old {
                    // Self-supported state (e.g. the BFS source, a CC vertex
                    // at its own label): nothing to invalidate, but the
                    // survivor is announceable (it matched the recall) and
                    // belongs on the frontier.
                    self.rejected.push(obj.vid);
                    Verdict::Survivor
                } else {
                    obj.state = reset;
                    self.invalidated.push(obj.vid);
                    // `old` passed retract_match, so it is announceable.
                    // Mirrors are recalled with the value THIS object
                    // announced (not the incoming `suspect`) — the two
                    // coincide for the default equality match but may differ
                    // under an overridden retract_match, and Pending ghosts
                    // must see the same recall as Ready ones.
                    let old_value = self.algo.sync_value(&old).expect("matched state announceable");
                    self.scratch_edges.clear();
                    self.scratch_edges.extend_from_slice(&obj.edges);
                    self.scratch_peers.clear();
                    self.scratch_peers.extend_from_slice(&obj.peers);
                    self.scratch_ghosts.clear();
                    for g in obj.ghosts.iter_mut() {
                        match g {
                            FutureLco::Ready(a) => self.scratch_ghosts.push(*a),
                            FutureLco::Pending(q) => q.push(PendingOperon {
                                action: diffusive::ACT_RETRACT,
                                payload: [old_value, 0],
                            }),
                            FutureLco::Null => {}
                        }
                    }
                    Verdict::Reset(old_value)
                }
            }
        };
        let old_value = match verdict {
            Verdict::Silent => return,
            Verdict::Survivor => {
                ctx.charge(ctx.cost().frontier_mark);
                return;
            }
            Verdict::Reset(v) => {
                ctx.charge(ctx.cost().frontier_mark);
                v
            }
        };
        ctx.charge(ctx.cost().scan_per_edge * self.scratch_edges.len() as u32);
        for i in 0..self.scratch_edges.len() {
            let e = self.scratch_edges[i];
            let v = self.algo.along_edge(old_value, &e);
            ctx.propagate(diffusive::retract_operon(e.dst, v));
        }
        for i in 0..self.scratch_ghosts.len() {
            let g = self.scratch_ghosts[i];
            ctx.propagate(diffusive::retract_operon(g, old_value));
        }
        for i in 0..self.scratch_peers.len() {
            let p = self.scratch_peers[i];
            ctx.propagate(diffusive::retract_operon(p, old_value));
        }
    }

    /// `update-weight-action`: patch one tagged edge copy's weight in place.
    /// The broadcast walks the logical vertex exactly like
    /// [`Self::retract_edge`] — peers fanned once, misses forwarded into
    /// ready ghost subtrees — and the one object holding the `(dst, tag)`
    /// copy (tags are unique among a pair's live copies) rewrites its weight.
    ///
    /// If the algorithm propagates, a weight **decrease** in a single-phase
    /// batch announces the improved contribution along the edge like an
    /// insert would; an **increase** recalls the contribution this object
    /// announced under the *old* weight, seeding the invalidation cascade
    /// for exactly the paths that relied on the cheaper edge. During a
    /// *structural* phase every patch — decrease included — recalls the old
    /// contribution instead: the patch rewrites the weight any concurrent
    /// invalidation cascade will scan, so downstream state derived under
    /// the old weight would no longer match the cascade's recall values and
    /// survive stale (under-invalidation). Recalling at patch time — while
    /// this object still holds its settled state — invalidates it
    /// conservatively; the reseed wave re-derives everything at the new
    /// weight.
    fn update_edge_weight(&mut self, ctx: &mut ExecCtx<'_, VertexObj<G::State>>, op: &Operon) {
        let target = op.target;
        let (tag, dst_id, w_old, w_new, raised) = decode_update_weight(op.payload);
        ctx.charge(ctx.cost().dispatch);
        let (patched, scanned) = {
            let Some(obj) = ctx.obj_mut(target.slot) else {
                ctx.fail(SimError::BadAddress { addr: target, action: ACT_UPDATE });
                return;
            };
            let scanned = obj.edges.len() as u32;
            let patched = match obj.edges.iter().position(|e| e.dst_id == dst_id && e.tag == tag) {
                Some(i) => {
                    debug_assert_eq!(obj.edges[i].w, w_old, "ledger and fabric agree on weight");
                    obj.edges[i].w = w_new;
                    let e = obj.edges[i];
                    let value =
                        if self.propagate_algo { self.algo.sync_value(&obj.state) } else { None };
                    Some((e, value))
                }
                None => {
                    self.scratch_peers.clear();
                    self.scratch_peers.extend_from_slice(&obj.peers);
                    self.scratch_ghosts.clear();
                    self.scratch_ghosts.extend(obj.ready_ghosts());
                    None
                }
            };
            (patched, scanned)
        };
        ctx.charge(ctx.cost().scan_per_edge * scanned);
        match patched {
            Some((e, value)) => {
                ctx.charge(ctx.cost().update_weight);
                if let Some(v) = value {
                    if raised || !self.notify_inserts {
                        // Recall the best value announced under the old
                        // weight; destinations that relied on it invalidate
                        // (see the doc comment for why structural-phase
                        // decreases must recall too).
                        let old_e = Edge { w: w_old, ..e };
                        ctx.propagate(diffusive::retract_operon(
                            e.dst,
                            self.algo.along_edge(v, &old_e),
                        ));
                    } else {
                        // Cheaper edge, single-phase batch: a plain monotone
                        // relax suffices.
                        ctx.propagate(Operon::new(
                            e.dst,
                            ACT_RELAX,
                            [self.algo.along_edge(v, &e), 0],
                        ));
                    }
                }
            }
            None => {
                fan_query_to_peers(ctx, op, &self.scratch_peers);
                for i in 0..self.scratch_ghosts.len() {
                    let g = self.scratch_ghosts[i];
                    ctx.propagate(Operon::new(g, ACT_UPDATE, op.payload));
                }
            }
        }
    }

    /// `reseed-action`: after the invalidation quiesced, re-announce this
    /// object's surviving state along its local edges, push it to mirrors
    /// (restoring ghosts that were reset or freshly attached un-synced), and
    /// walk the rest of the logical vertex — ghost subtrees re-announce
    /// their own edge slices, and on first arrival at a rhizome root a
    /// marked copy fans to every peer. Objects with nothing to announce stay
    /// silent; ordinary monotone relaxation rebuilds the exact fixpoint.
    fn reseed(&mut self, ctx: &mut ExecCtx<'_, VertexObj<G::State>>, op: &Operon) {
        ctx.charge(ctx.cost().reseed);
        let value = {
            let Some(obj) = ctx.obj_mut(op.target.slot) else {
                ctx.fail(SimError::BadAddress { addr: op.target, action: ACT_RESEED });
                return;
            };
            let Some(v) = self.algo.sync_value(&obj.state) else { return };
            self.scratch_edges.clear();
            self.scratch_edges.extend_from_slice(&obj.edges);
            self.scratch_peers.clear();
            self.scratch_peers.extend_from_slice(&obj.peers);
            self.scratch_ghosts.clear();
            self.scratch_ghosts.extend(obj.ready_ghosts());
            v
        };
        fan_query_to_peers(ctx, op, &self.scratch_peers);
        ctx.charge(ctx.cost().scan_per_edge * self.scratch_edges.len() as u32);
        for i in 0..self.scratch_edges.len() {
            let e = self.scratch_edges[i];
            let v = self.algo.along_edge(value, &e);
            ctx.propagate(Operon::new(e.dst, ACT_RELAX, [v, 0]));
        }
        for i in 0..self.scratch_ghosts.len() {
            let g = self.scratch_ghosts[i];
            // Mirror sync first (relax the ghost to this object's value),
            // then let the ghost re-announce its own slice.
            ctx.propagate(Operon::new(g, ACT_RELAX, [value, 0]));
            ctx.propagate(Operon::new(g, ACT_RESEED, op.payload));
        }
    }

    /// Monotone leg of the standing-query diffusion ([`diffusive::ACT_QUERY`]):
    /// OR the delivered automaton states into the object's bitset and, if any
    /// are genuinely new, step them through the query's automaton along every
    /// local edge's label, forward them *unstepped* to mirrors (ghosts are
    /// part of the same logical vertex) and co-equal peer roots, and enqueue
    /// them on pending ghost futures. States only ever accumulate, so the
    /// diffusion reaches the reachability fixpoint and quiesces.
    fn absorb_query_bits(
        &mut self,
        ctx: &mut ExecCtx<'_, VertexObj<G::State>>,
        target: Address,
        qid: u32,
        bits: u32,
    ) {
        ctx.charge(ctx.cost().state_update);
        let (new, vid) = {
            let Some(obj) = ctx.obj_mut(target.slot) else {
                ctx.fail(SimError::BadAddress { addr: target, action: diffusive::ACT_QUERY });
                return;
            };
            let new = obj.qbits_or(qid, bits);
            if new != 0 {
                self.scratch_edges.clear();
                self.scratch_edges.extend_from_slice(&obj.edges);
                self.scratch_peers.clear();
                self.scratch_peers.extend_from_slice(&obj.peers);
                self.scratch_ghosts.clear();
                for g in obj.ghosts.iter_mut() {
                    match g {
                        FutureLco::Ready(a) => self.scratch_ghosts.push(*a),
                        FutureLco::Pending(q) => q.push(PendingOperon {
                            action: diffusive::ACT_QUERY,
                            payload: [qid as u64, new as u64],
                        }),
                        FutureLco::Null => {}
                    }
                }
            }
            (new, obj.vid)
        };
        if new == 0 {
            return;
        }
        let Some(dfa) = self.queries.get(qid as usize) else { return };
        if new & dfa.accepting_bits() != 0 {
            // An accepting state just turned on somewhere in this vertex's
            // object tree: flag the vertex as a result-delta candidate. Bits
            // are monotone within a run, so the candidate set is exactly the
            // end-minus-start accepting transition set — deterministic and
            // shard-independent.
            self.qaccept_touched.push((qid, vid));
        }
        ctx.charge(ctx.cost().scan_per_edge * self.scratch_edges.len() as u32);
        for i in 0..self.scratch_edges.len() {
            let e = self.scratch_edges[i];
            let stepped = dfa.step(new, e.label);
            if stepped != 0 {
                ctx.propagate(query_operon(e.dst, qid, stepped));
            }
        }
        for i in 0..self.scratch_ghosts.len() {
            ctx.propagate(query_operon(self.scratch_ghosts[i], qid, new));
        }
        for i in 0..self.scratch_peers.len() {
            ctx.propagate(query_operon(self.scratch_peers[i], qid, new));
        }
    }

    /// Reseed leg of the standing-query diffusion: re-announce this object's
    /// *current* automaton states along its local edges regardless of
    /// novelty — the deletion-repair counterpart of [`Self::reseed`] for
    /// query state. `qid` selects one query, or every registered query when
    /// it is [`diffusive::QUERY_ALL`]. The walk covers the logical vertex:
    /// ghost subtrees re-announce their own edge slices (forwarding is a
    /// tree, so it terminates) and the first root reached fans one marked
    /// copy to each co-equal peer.
    fn reseed_queries(
        &mut self,
        ctx: &mut ExecCtx<'_, VertexObj<G::State>>,
        target: Address,
        qid: u32,
        fanned: bool,
    ) {
        ctx.charge(ctx.cost().reseed);
        {
            let Some(obj) = ctx.obj_mut(target.slot) else {
                ctx.fail(SimError::BadAddress { addr: target, action: diffusive::ACT_QUERY });
                return;
            };
            self.scratch_edges.clear();
            self.scratch_edges.extend_from_slice(&obj.edges);
            self.scratch_peers.clear();
            self.scratch_peers.extend_from_slice(&obj.peers);
            self.scratch_ghosts.clear();
            self.scratch_ghosts.extend(obj.ready_ghosts());
            self.scratch_queries.clear();
            for q in 0..self.queries.len() as u32 {
                if qid != QUERY_ALL && q != qid {
                    continue;
                }
                let bits = obj.qbits_get(q);
                if bits != 0 {
                    self.scratch_queries.push((q, bits));
                }
            }
        }
        if !fanned {
            for i in 0..self.scratch_peers.len() {
                let mut fan = query_reseed_operon(self.scratch_peers[i], qid);
                fan.payload[0] |= QUERY_RESEED_FANNED;
                ctx.propagate(fan);
            }
        }
        for i in 0..self.scratch_ghosts.len() {
            ctx.propagate(query_reseed_operon(self.scratch_ghosts[i], qid));
        }
        ctx.charge(ctx.cost().scan_per_edge * self.scratch_edges.len() as u32);
        for i in 0..self.scratch_queries.len() {
            let (q, bits) = self.scratch_queries[i];
            let dfa = &self.queries[q as usize];
            for j in 0..self.scratch_edges.len() {
                let e = self.scratch_edges[j];
                let stepped = dfa.step(bits, e.label);
                if stepped != 0 {
                    ctx.propagate(query_operon(e.dst, q, stepped));
                }
            }
        }
    }
}

impl<G: VertexAlgo> App for GraphApp<G> {
    type Object = VertexObj<G::State>;

    fn fork(&self) -> Self {
        GraphApp {
            algo: self.algo.fork(),
            rcfg: self.rcfg,
            propagate_algo: self.propagate_algo,
            notify_inserts: self.notify_inserts,
            invalidated: Vec::new(),
            rejected: Vec::new(),
            queries: self.queries.clone(),
            qaccept_touched: Vec::new(),
            scratch_edges: Vec::new(),
            scratch_ghosts: Vec::new(),
            scratch_peers: Vec::new(),
            scratch_queries: Vec::new(),
        }
    }

    fn merge(&mut self, worker: Self) {
        self.algo.merge(worker.algo);
        self.invalidated.extend(worker.invalidated);
        self.rejected.extend(worker.rejected);
        self.qaccept_touched.extend(worker.qaccept_touched);
    }

    fn construct(&mut self, req: &AllocRequest) -> Self::Object {
        let vid = req.tag as u32;
        VertexObj::ghost(vid, self.algo.ghost_state(vid), self.rcfg.ghost_fanout)
    }

    fn fulfill(
        &mut self,
        ctx: &mut ExecCtx<'_, Self::Object>,
        target: Address,
        slot: u8,
        value: Address,
    ) {
        let (waiters, sync) = {
            let Some(obj) = ctx.obj_mut(target.slot) else {
                ctx.fail(SimError::BadAddress { addr: target, action: diffusive::ACT_SET_FUTURE });
                return;
            };
            let waiters = match obj.ghosts[slot as usize].fulfill(value) {
                Ok(w) => w,
                Err(_) => {
                    ctx.fail(SimError::BadAddress {
                        addr: target,
                        action: diffusive::ACT_SET_FUTURE,
                    });
                    return;
                }
            };
            // Replicate standing-query state to the fresh mirror. Unlike the
            // algorithm sync below this is *not* phase-gated: query bits have
            // no racing invalidation cascade (deletion repair clears and
            // re-derives them host-orchestrated after the structural phase,
            // wiping every object of an affected vertex uniformly), so plain
            // replication is always safe.
            self.scratch_queries.clear();
            for qid in 0..self.queries.len() as u32 {
                let bits = obj.qbits_get(qid);
                if bits != 0 {
                    self.scratch_queries.push((qid, bits));
                }
            }
            (waiters, self.algo.sync_value(&obj.state))
        };
        for i in 0..self.scratch_queries.len() {
            let (qid, bits) = self.scratch_queries[i];
            ctx.propagate(query_operon(value, qid, bits));
        }
        // Sync the fresh mirror with the parent's current state first, so a
        // ghost created after the vertex was reached still diffuses. (The
        // structural phase of a deletion batch suppresses this too — see
        // `notify_inserts`; the reseed wave restores the mirror instead.)
        if self.propagate_algo && self.notify_inserts {
            if let Some(v) = sync {
                ctx.propagate(Operon::new(value, ACT_RELAX, [v, 0]));
            }
        }
        for w in waiters {
            ctx.propagate(w.into_operon(value));
        }
    }

    fn rhizome_sync(&mut self, ctx: &mut ExecCtx<'_, Self::Object>, target: Address, value: u64) {
        self.relax_value(ctx, target, value, diffusive::ACT_RHIZOME_SYNC);
    }

    fn retract(&mut self, ctx: &mut ExecCtx<'_, Self::Object>, target: Address, suspect: u64) {
        self.invalidate(ctx, target, suspect);
    }

    fn query(
        &mut self,
        ctx: &mut ExecCtx<'_, Self::Object>,
        target: Address,
        qid: u32,
        bits: u32,
        reseed: bool,
        fanned: bool,
    ) {
        if reseed {
            self.reseed_queries(ctx, target, qid, fanned);
        } else {
            self.absorb_query_bits(ctx, target, qid, bits);
        }
    }

    fn on_action(&mut self, ctx: &mut ExecCtx<'_, Self::Object>, op: &Operon) {
        match op.action {
            ACT_INSERT => self.ingest(ctx, op),
            ACT_RELAX => self.relax_value(ctx, op.target, op.payload[0], ACT_RELAX),
            ACT_DELETE => self.retract_edge(ctx, op),
            ACT_RESEED => self.reseed(ctx, op),
            ACT_UPDATE => self.update_edge_weight(ctx, op),
            _ => {
                // Split borrow: hand the algorithm the context plus config.
                let rcfg = self.rcfg;
                self.algo.on_other_action(ctx, op, &rcfg);
            }
        }
    }
}

/// Build an insert-edge operon targeting `src_root` carrying `edge`.
pub fn insert_operon(src_root: Address, edge: &Edge) -> Operon {
    Operon::new(src_root, ACT_INSERT, encode_edge(edge))
}

/// Build a delete-edge operon: retract the copy of `src → dst_id` with
/// weight `w` and copy tag `tag` from the logical vertex whose (primary)
/// root is `src_root`. `payload[0]` carries the tag (low byte) and the
/// rhizome fan marker ([`QUERY_FANNED_BIT`]); `payload[1]` = id ‖ weight,
/// exactly like an insert.
pub fn delete_operon(src_root: Address, dst_id: u32, w: u32, tag: u8) -> Operon {
    Operon::new(src_root, ACT_DELETE, [tag as u64, ((dst_id as u64) << 32) | w as u64])
}

/// Decode a delete-edge operon payload into `(tag, dst_id, w)`.
pub fn decode_delete(payload: [u64; 2]) -> (u8, u32, u32) {
    (payload[0] as u8, (payload[1] >> 32) as u32, payload[1] as u32)
}

/// Bit 62 of an update-weight operon's `payload[0]`: set when the update is
/// a weight *increase* (invalidate+reseed repair path) rather than a
/// decrease (plain relax). Sits below the rhizome fan marker
/// ([`QUERY_FANNED_BIT`], bit 63) and above the old weight (bits 16..48).
const UPDATE_RAISED_BIT: u64 = 1 << 62;

/// Build an update-weight operon: patch the copy of `src → dst_id` carrying
/// copy tag `tag` from weight `w_old` to `w_new` on the logical vertex whose
/// (primary) root is `src_root`. `payload[0]` carries the tag (low byte),
/// the old weight (bits 16..48), the increase flag (bit 62),
/// and the rhizome fan marker; `payload[1]` = id ‖ new weight, exactly like
/// an insert.
pub fn update_weight_operon(
    src_root: Address,
    dst_id: u32,
    w_old: u32,
    w_new: u32,
    tag: u8,
) -> Operon {
    let raised = if w_new > w_old { UPDATE_RAISED_BIT } else { 0 };
    Operon::new(
        src_root,
        ACT_UPDATE,
        [(tag as u64) | ((w_old as u64) << 16) | raised, ((dst_id as u64) << 32) | w_new as u64],
    )
}

/// Decode an update-weight operon payload into
/// `(tag, dst_id, w_old, w_new, raised)`.
pub fn decode_update_weight(payload: [u64; 2]) -> (u8, u32, u32, u32, bool) {
    (
        payload[0] as u8,
        (payload[1] >> 32) as u32,
        (payload[0] >> 16) as u32,
        payload[1] as u32,
        payload[0] & UPDATE_RAISED_BIT != 0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpvo::walk;
    use amcca_sim::{Chip, ChipConfig};
    use diffusive::Runtime;

    /// A no-op algorithm: ingestion only, no relax traffic.
    pub struct NullAlgo;

    impl VertexAlgo for NullAlgo {
        type State = ();
        const NAME: &'static str = "null";
        fn fork(&self) -> Self {
            NullAlgo
        }
        fn root_state(&self, _vid: u32) {}
        fn ghost_state(&self, _vid: u32) {}
        fn improve(&self, _s: &mut (), _incoming: u64) -> bool {
            false
        }
        fn along_edge(&self, _v: u64, _e: &Edge) -> u64 {
            0
        }
        fn notify_on_insert(&self, _s: &(), _e: &Edge) -> Option<u64> {
            None
        }
        fn sync_value(&self, _s: &()) -> Option<u64> {
            None
        }
    }

    type NullChip = Chip<Runtime<GraphApp<NullAlgo>>>;

    fn chip(rcfg: RpvoConfig) -> NullChip {
        let cfg = ChipConfig::small_test();
        let retries = cfg.max_alloc_retries;
        Chip::new(cfg, Runtime::new(GraphApp::new(NullAlgo, rcfg, true), retries))
    }

    fn stream_edges(chip: &mut NullChip, src: Address, n: u32) {
        let ops: Vec<Operon> =
            (0..n).map(|i| insert_operon(src, &Edge::new(Address::new(0, 999), 999, i))).collect();
        chip.io_load(ops);
        chip.run_until_quiescent().unwrap();
    }

    #[test]
    fn edges_within_capacity_stay_in_root() {
        let mut c = chip(RpvoConfig::basic(8, 2));
        let root = c.host_alloc(20, VertexObj::root(0, (), 2)).unwrap();
        stream_edges(&mut c, root, 8);
        let obj = c.object(root).unwrap();
        assert_eq!(obj.edges.len(), 8);
        assert_eq!(obj.ready_ghosts().count(), 0);
        assert_eq!(c.counters().allocs, 0);
    }

    #[test]
    fn overflow_spills_to_ghosts_without_losing_edges() {
        let mut c = chip(RpvoConfig::basic(4, 2));
        let root = c.host_alloc(20, VertexObj::root(0, (), 2)).unwrap();
        let n = 50;
        stream_edges(&mut c, root, n);
        let mut ws: Vec<u32> =
            walk::collect_edges(root, |a| c.object(a)).iter().map(|e| e.w).collect();
        ws.sort_unstable();
        assert_eq!(ws, (0..n).collect::<Vec<u32>>(), "every edge exactly once");
        let objs = walk::collect_objects(root, |a| c.object(a));
        assert!(objs.len() >= (n as usize).div_ceil(4), "enough objects for all edges");
        for a in &objs {
            assert!(c.object(*a).unwrap().edges.len() <= 4, "capacity respected everywhere");
        }
        assert!(c.counters().allocs as usize == objs.len() - 1);
    }

    #[test]
    fn ghosts_obey_vicinity_placement() {
        let mut c = chip(RpvoConfig::basic(2, 2));
        let root_cc = 36u16; // interior cell of the 8x8 mesh
        let root = c.host_alloc(root_cc, VertexObj::root(0, (), 2)).unwrap();
        stream_edges(&mut c, root, 30);
        let dims = c.cfg().dims;
        // Every parent->ghost link must span at most 2 hops.
        for a in walk::collect_objects(root, |x| c.object(x)) {
            for g in c.object(a).unwrap().ready_ghosts() {
                assert!(dims.distance(a.cc, g.cc) <= 2, "vicinity violated {a} -> {g}");
            }
        }
    }

    #[test]
    fn ghost_fanout_spreads_spill_subtrees() {
        let mut c = chip(RpvoConfig::basic(2, 2));
        let root = c.host_alloc(10, VertexObj::root(0, (), 2)).unwrap();
        stream_edges(&mut c, root, 40);
        let obj = c.object(root).unwrap();
        assert_eq!(obj.ready_ghosts().count(), 2, "both ghost slots engaged");
    }

    #[test]
    fn rpvo_depth_grows_logarithmically_with_fanout_two() {
        let mut c = chip(RpvoConfig::basic(2, 2));
        let root = c.host_alloc(10, VertexObj::root(0, (), 2)).unwrap();
        stream_edges(&mut c, root, 62); // 31 objects needed
        let d = walk::depth(root, |a| c.object(a));
        // A balanced binary spill tree of 31 nodes has depth 5; allow slack
        // for arbitration skew but reject a degenerate chain.
        assert!(d <= 10, "depth {d} suggests a chain, not a tree");
    }

    #[test]
    fn deterministic_ingestion() {
        let run = || {
            let mut c = chip(RpvoConfig::basic(4, 2));
            let root = c.host_alloc(20, VertexObj::root(0, (), 2)).unwrap();
            stream_edges(&mut c, root, 40);
            (c.cycle(), *c.counters())
        };
        assert_eq!(run(), run());
    }
}
