//! Streaming connected components by minimum-label propagation.
//!
//! Each vertex starts with its own id as label; every new edge announces the
//! inserting object's current label to the destination, and relaxes keep the
//! minimum. Over a *symmetrized* edge stream (each undirected edge inserted
//! in both directions) labels converge to the minimum vertex id of each
//! weakly connected component — incrementally, as components merge when
//! streamed edges join them.

use crate::rpvo::Edge;

use super::algo::VertexAlgo;

/// Incremental connected components (min-label propagation).
#[derive(Debug, Clone, Copy, Default)]
pub struct CcAlgo;

impl VertexAlgo for CcAlgo {
    type State = u64;

    const NAME: &'static str = "concomp";

    fn fork(&self) -> Self {
        *self
    }

    fn root_state(&self, vid: u32) -> u64 {
        vid as u64
    }

    fn ghost_state(&self, vid: u32) -> u64 {
        vid as u64
    }

    fn improve(&self, s: &mut u64, incoming: u64) -> bool {
        if incoming < *s {
            *s = incoming;
            true
        } else {
            false
        }
    }

    fn along_edge(&self, v: u64, _e: &Edge) -> u64 {
        v
    }

    fn notify_on_insert(&self, s: &u64, _e: &Edge) -> Option<u64> {
        // A label is always valid: always announce it along the new edge.
        Some(*s)
    }

    fn sync_value(&self, s: &u64) -> Option<u64> {
        Some(*s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcca_sim::Address;

    #[test]
    fn labels_start_as_own_id() {
        assert_eq!(CcAlgo.root_state(42), 42);
    }

    #[test]
    fn labels_flow_unchanged_along_edges() {
        let e = Edge::new(Address::new(0, 0), 1, 5);
        assert_eq!(CcAlgo.along_edge(7, &e), 7);
        assert_eq!(CcAlgo.notify_on_insert(&7, &e), Some(7));
    }

    #[test]
    fn min_label_wins() {
        let mut s = 9u64;
        assert!(CcAlgo.improve(&mut s, 3));
        assert!(!CcAlgo.improve(&mut s, 4));
        assert_eq!(s, 3);
    }
}
