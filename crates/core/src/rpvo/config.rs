//! RPVO shape parameters.
//!
//! The paper does not publish its inline edge-list capacity or ghost fanout;
//! both are exposed here and swept by the `ablate-edgecap` / `ablate-ghosts`
//! benches. Defaults: 16 edges per object, 2 ghost slots ("there can be two
//! or more ghost vertices per RPVO to arbitrate", Listing 6 caption).

/// Shape of every vertex object (root and ghost alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpvoConfig {
    /// Edges stored inline in one object before spilling to a ghost.
    pub edge_cap: usize,
    /// Ghost slots per object (spills arbitrate round-robin among them).
    pub ghost_fanout: usize,
}

impl Default for RpvoConfig {
    fn default() -> Self {
        RpvoConfig { edge_cap: 16, ghost_fanout: 2 }
    }
}

impl RpvoConfig {
    /// Validate against structural and encoding limits (the continuation
    /// encoding carries the ghost-slot index in 4 bits).
    pub fn validate(&self) -> Result<(), String> {
        if self.edge_cap == 0 {
            return Err("edge_cap must be at least 1".into());
        }
        if self.ghost_fanout == 0 {
            return Err("ghost_fanout must be at least 1".into());
        }
        if self.ghost_fanout > 16 {
            return Err(format!(
                "ghost_fanout {} exceeds the continuation encoding limit of 16",
                self.ghost_fanout
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(RpvoConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(RpvoConfig { edge_cap: 0, ghost_fanout: 2 }.validate().is_err());
        assert!(RpvoConfig { edge_cap: 4, ghost_fanout: 0 }.validate().is_err());
        assert!(RpvoConfig { edge_cap: 4, ghost_fanout: 17 }.validate().is_err());
        assert!(RpvoConfig { edge_cap: 1, ghost_fanout: 16 }.validate().is_ok());
    }
}
