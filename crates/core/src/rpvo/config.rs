//! RPVO shape parameters.
//!
//! The paper does not publish its inline edge-list capacity or ghost fanout;
//! both are exposed here and swept by the `ablate-edgecap` / `ablate-ghosts`
//! benches. Defaults: 16 edges per object, 2 ghost slots ("there can be two
//! or more ghost vertices per RPVO to arbitrate", Listing 6 caption).
//!
//! The rhizome knobs extend the RPVO with multiple co-equal roots for hub
//! vertices (Chandio et al., arXiv:2402.06086): once a vertex's *live*
//! streamed degree crosses [`RpvoConfig::rhizome_threshold`], the host
//! promotes it to [`RpvoConfig::rhizome_roots`] cross-linked roots, each
//! owning a disjoint slice of the edge list and its own ghost subtree. The
//! threshold is symmetric: once streamed deletions drop a promoted vertex's
//! live degree back below it, the vertex is **demoted** — collapsed to its
//! primary root again. A threshold of 0 (the default) disables both,
//! preserving the single-root RPVO of the source paper exactly.

/// Shape of every vertex object (root and ghost alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpvoConfig {
    /// Edges stored inline in one object before spilling to a ghost.
    pub edge_cap: usize,
    /// Ghost slots per object (spills arbitrate round-robin among them).
    pub ghost_fanout: usize,
    /// Live streamed degree at which a vertex is promoted from a single
    /// root to a rhizome: both endpoints of every streamed `AddEdge` count
    /// one touch and every `DelEdge` removes one (hubs are hot both as
    /// insert targets and as relax destinations). On-chip relax traffic is
    /// *not* counted. A promoted vertex whose live degree falls back below
    /// this value is demoted at the end of the increment. `0` disables
    /// promotion and demotion.
    pub rhizome_threshold: usize,
    /// Number of co-equal roots a promoted vertex is split into (K ≥ 2).
    pub rhizome_roots: usize,
}

impl Default for RpvoConfig {
    fn default() -> Self {
        RpvoConfig::basic(16, 2)
    }
}

impl RpvoConfig {
    /// A single-root configuration (rhizomes disabled) — the shape of the
    /// source paper's RPVO.
    pub fn basic(edge_cap: usize, ghost_fanout: usize) -> Self {
        RpvoConfig { edge_cap, ghost_fanout, rhizome_threshold: 0, rhizome_roots: 4 }
    }

    /// Builder-style rhizome enablement: promote at `threshold` into `roots`
    /// co-equal roots.
    pub fn with_rhizomes(mut self, threshold: usize, roots: usize) -> Self {
        self.rhizome_threshold = threshold;
        self.rhizome_roots = roots;
        self
    }

    /// Whether rhizome promotion is enabled.
    pub fn rhizomes_enabled(&self) -> bool {
        self.rhizome_threshold > 0 && self.rhizome_roots >= 2
    }

    /// Validate against structural and encoding limits (the continuation
    /// encoding carries the ghost-slot index in 4 bits).
    pub fn validate(&self) -> Result<(), String> {
        if self.edge_cap == 0 {
            return Err("edge_cap must be at least 1".into());
        }
        if self.ghost_fanout == 0 {
            return Err("ghost_fanout must be at least 1".into());
        }
        if self.ghost_fanout > 16 {
            return Err(format!(
                "ghost_fanout {} exceeds the continuation encoding limit of 16",
                self.ghost_fanout
            ));
        }
        if self.rhizome_threshold > 0 {
            if self.rhizome_roots < 2 {
                return Err("a rhizome needs at least 2 co-equal roots".into());
            }
            if self.rhizome_roots > 16 {
                return Err(format!(
                    "rhizome_roots {} exceeds the supported maximum of 16",
                    self.rhizome_roots
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_single_root() {
        let c = RpvoConfig::default();
        assert!(c.validate().is_ok());
        assert!(!c.rhizomes_enabled(), "rhizomes are opt-in");
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(RpvoConfig::basic(0, 2).validate().is_err());
        assert!(RpvoConfig::basic(4, 0).validate().is_err());
        assert!(RpvoConfig::basic(4, 17).validate().is_err());
        assert!(RpvoConfig::basic(1, 16).validate().is_ok());
    }

    #[test]
    fn rhizome_limits_enforced() {
        assert!(RpvoConfig::basic(4, 2).with_rhizomes(8, 4).validate().is_ok());
        assert!(RpvoConfig::basic(4, 2).with_rhizomes(8, 1).validate().is_err());
        assert!(RpvoConfig::basic(4, 2).with_rhizomes(8, 17).validate().is_err());
        assert!(RpvoConfig::basic(4, 2).with_rhizomes(0, 1).validate().is_ok(), "0 disables");
        assert!(RpvoConfig::basic(4, 2).with_rhizomes(8, 4).rhizomes_enabled());
    }
}
