//! The edge type (paper Listing 3): destination address plus weight. We also
//! carry the destination's numeric vertex id so algorithms that compare ids
//! (triangle counting's canonical orientation) need no reverse lookup.

use amcca_sim::Address;

/// A directed edge stored in a vertex object's local edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Address of the destination vertex's *root* object.
    pub dst: Address,
    /// Numeric id of the destination vertex.
    pub dst_id: u32,
    /// Edge weight (ignored by BFS, used by SSSP).
    pub w: u32,
}

impl Edge {
    /// Create an edge record.
    pub fn new(dst: Address, dst_id: u32, w: u32) -> Self {
        Edge { dst, dst_id, w }
    }
}

/// Encode an edge into an insert-operon payload:
/// `payload[0]` = packed destination address, `payload[1]` = id ‖ weight.
pub fn encode_edge(e: &Edge) -> [u64; 2] {
    [e.dst.pack(), ((e.dst_id as u64) << 32) | e.w as u64]
}

/// Decode an insert-operon payload back into an edge.
pub fn decode_edge(payload: [u64; 2]) -> Edge {
    Edge {
        dst: Address::unpack(payload[0]),
        dst_id: (payload[1] >> 32) as u32,
        w: payload[1] as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let e = Edge::new(Address::new(513, 77), 123_456, 42);
        assert_eq!(decode_edge(encode_edge(&e)), e);
    }

    #[test]
    fn extreme_values_roundtrip() {
        let e = Edge::new(Address::new(u16::MAX, u32::MAX), u32::MAX, u32::MAX);
        assert_eq!(decode_edge(encode_edge(&e)), e);
        let z = Edge::new(Address::new(0, 0), 0, 0);
        assert_eq!(decode_edge(encode_edge(&z)), z);
    }
}
