//! The edge type (paper Listing 3): destination address plus weight. We also
//! carry the destination's numeric vertex id so algorithms that compare ids
//! (triangle counting's canonical orientation) need no reverse lookup, a
//! small host-assigned **copy tag** so streamed deletions can retract exactly
//! one copy of a duplicated edge, and an edge **label** driving standing
//! label-constrained path queries (see [`crate::query`]).
//!
//! The tag disambiguates copies of the *same* `(src, dst, weight)` identity:
//! the host's mutation ledger hands the k-th live copy tag `k mod 2⁸` and a
//! `DelEdge` retracts the oldest live copy by its tag, so an on-fabric
//! retraction broadcast over a vertex's objects removes exactly one edge no
//! matter how the copies were spread across rhizome root slices and ghost
//! spills. Tags only need to be unique among *live* copies of one identity —
//! a bound of 256 simultaneously live duplicates of a single directed edge,
//! far beyond any real stream. (The tag narrowed from 16 to 8 bits when the
//! label claimed the payload's top byte.)

use amcca_sim::Address;

/// A directed edge stored in a vertex object's local edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Address of the destination vertex's *root* object.
    pub dst: Address,
    /// Numeric id of the destination vertex.
    pub dst_id: u32,
    /// Edge weight (ignored by BFS, used by SSSP).
    pub w: u32,
    /// Host-assigned copy tag (see module docs). 0 for untagged edges.
    pub tag: u8,
    /// Edge label (0 = unlabelled) stepping standing-query automata.
    pub label: u8,
}

impl Edge {
    /// Create an edge record with copy tag 0 and label 0.
    pub fn new(dst: Address, dst_id: u32, w: u32) -> Self {
        Edge { dst, dst_id, w, tag: 0, label: 0 }
    }

    /// Create an edge record carrying an explicit copy tag (label 0).
    pub fn tagged(dst: Address, dst_id: u32, w: u32, tag: u8) -> Self {
        Edge { dst, dst_id, w, tag, label: 0 }
    }

    /// Create an edge record carrying an explicit copy tag and label.
    pub fn labeled(dst: Address, dst_id: u32, w: u32, tag: u8, label: u8) -> Self {
        Edge { dst, dst_id, w, tag, label }
    }
}

/// Encode an edge into an insert-operon payload: `payload[0]` = packed
/// destination address (48 bits) with the copy tag in bits 48–55 and the
/// label in the top byte, `payload[1]` = id ‖ weight.
pub fn encode_edge(e: &Edge) -> [u64; 2] {
    [
        e.dst.pack() | ((e.tag as u64) << 48) | ((e.label as u64) << 56),
        ((e.dst_id as u64) << 32) | e.w as u64,
    ]
}

/// Decode an insert-operon payload back into an edge.
pub fn decode_edge(payload: [u64; 2]) -> Edge {
    Edge {
        dst: Address::unpack(payload[0] & 0x0000_FFFF_FFFF_FFFF),
        dst_id: (payload[1] >> 32) as u32,
        w: payload[1] as u32,
        tag: (payload[0] >> 48) as u8,
        label: (payload[0] >> 56) as u8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let e = Edge::new(Address::new(513, 77), 123_456, 42);
        assert_eq!(decode_edge(encode_edge(&e)), e);
    }

    #[test]
    fn tagged_payload_roundtrip() {
        let e = Edge::tagged(Address::new(99, 3), 7, 2, 0xBE);
        assert_eq!(decode_edge(encode_edge(&e)), e);
        assert_eq!(e.tag, 0xBE);
        assert_eq!(e.label, 0);
    }

    #[test]
    fn labeled_payload_roundtrip() {
        let e = Edge::labeled(Address::new(14, 9), 11, 5, 3, 26);
        assert_eq!(decode_edge(encode_edge(&e)), e);
        assert_eq!(e.label, 26);
    }

    #[test]
    fn extreme_values_roundtrip() {
        let e =
            Edge::labeled(Address::new(u16::MAX, u32::MAX), u32::MAX, u32::MAX, u8::MAX, u8::MAX);
        assert_eq!(decode_edge(encode_edge(&e)), e);
        let z = Edge::new(Address::new(0, 0), 0, 0);
        assert_eq!(decode_edge(encode_edge(&z)), z);
    }
}
