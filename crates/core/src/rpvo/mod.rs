//! The Recursively-Parallel Vertex Object (RPVO): the paper's hierarchical
//! dynamic vertex data structure (Fig. 1b), extended with multi-root
//! rhizomes for hub vertices on skewed graphs (see [`rhizome`]).

pub mod config;
pub mod edge;
pub mod rhizome;
pub mod vertex;
pub mod walk;

pub use config::RpvoConfig;
pub use edge::{decode_edge, encode_edge, Edge};
pub use rhizome::{peer_sets, RhizomeDirectory};
pub use vertex::{ObjKind, VertexObj};
