//! The Recursively-Parallel Vertex Object (RPVO): the paper's hierarchical
//! dynamic vertex data structure (Fig. 1b).

pub mod config;
pub mod edge;
pub mod vertex;
pub mod walk;

pub use config::RpvoConfig;
pub use edge::{decode_edge, encode_edge, Edge};
pub use vertex::{ObjKind, VertexObj};
