//! Host-side traversal of an RPVO hierarchy (verification and statistics).
//!
//! During simulation, actions reach ghost objects only through message
//! forwarding; the host, however, may walk the structure directly to check
//! invariants — e.g. that every streamed edge landed exactly once, or that
//! ghost state mirrors converged to the root's value.

use amcca_sim::Address;

use super::edge::Edge;
use super::vertex::VertexObj;

/// Collect the addresses of all objects of the logical vertex rooted at
/// `root`, in breadth-first ghost order (root first). `fetch` resolves an
/// address to the object stored there.
pub fn collect_objects<'a, S: 'a>(
    root: Address,
    fetch: impl Fn(Address) -> Option<&'a VertexObj<S>>,
) -> Vec<Address> {
    let mut out = vec![root];
    let mut i = 0;
    while i < out.len() {
        let addr = out[i];
        i += 1;
        let obj = fetch(addr).unwrap_or_else(|| panic!("dangling RPVO link to {addr}"));
        out.extend(obj.ready_ghosts());
        assert!(out.len() <= 1_000_000, "RPVO ghost chain implausibly long");
    }
    out
}

/// Collect every edge stored anywhere in the RPVO rooted at `root`.
pub fn collect_edges<'a, S: 'a>(
    root: Address,
    fetch: impl Fn(Address) -> Option<&'a VertexObj<S>> + Copy,
) -> Vec<Edge> {
    collect_objects(root, fetch)
        .into_iter()
        .flat_map(|a| fetch(a).unwrap().edges.iter().copied())
        .collect()
}

/// Collect the addresses of *all* roots of the logical vertex whose primary
/// (or any co-equal) root is `root`: the root itself first, then its rhizome
/// peers in link order. Single-root vertices yield just `[root]`.
pub fn collect_roots<'a, S: 'a>(
    root: Address,
    fetch: impl Fn(Address) -> Option<&'a VertexObj<S>>,
) -> Vec<Address> {
    let obj = fetch(root).unwrap_or_else(|| panic!("dangling rhizome link to {root}"));
    let mut out = Vec::with_capacity(1 + obj.peers.len());
    out.push(root);
    out.extend_from_slice(&obj.peers);
    out
}

/// Collect every object of the *logical* vertex at `root`: all co-equal
/// roots (via rhizome links) and each root's ghost subtree, in root order.
pub fn collect_logical_objects<'a, S: 'a>(
    root: Address,
    fetch: impl Fn(Address) -> Option<&'a VertexObj<S>> + Copy,
) -> Vec<Address> {
    collect_roots(root, fetch).into_iter().flat_map(|r| collect_objects(r, fetch)).collect()
}

/// Collect every edge stored anywhere in the logical vertex at `root`,
/// across all rhizome roots and their ghost subtrees.
pub fn collect_logical_edges<'a, S: 'a>(
    root: Address,
    fetch: impl Fn(Address) -> Option<&'a VertexObj<S>> + Copy,
) -> Vec<Edge> {
    collect_logical_objects(root, fetch)
        .into_iter()
        .flat_map(|a| fetch(a).unwrap().edges.iter().copied())
        .collect()
}

/// Depth of the RPVO: 1 for a root with no ghosts, 2 if ghosts exist, etc.
pub fn depth<'a, S: 'a>(
    root: Address,
    fetch: impl Fn(Address) -> Option<&'a VertexObj<S>> + Copy,
) -> usize {
    fn rec<'a, S: 'a>(
        a: Address,
        fetch: impl Fn(Address) -> Option<&'a VertexObj<S>> + Copy,
        guard: usize,
    ) -> usize {
        assert!(guard < 10_000, "RPVO depth implausible");
        let obj = fetch(a).expect("dangling RPVO link");
        1 + obj.ready_ghosts().map(|g| rec(g, fetch, guard + 1)).max().unwrap_or(0)
    }
    rec(root, fetch, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn store() -> (HashMap<Address, VertexObj<u64>>, Address) {
        // root(0) -> ghost(1) -> ghost(2); root also has a second ghost (3).
        let mut m = HashMap::new();
        let a = |i| Address::new(0, i);
        let mut root: VertexObj<u64> = VertexObj::root(7, 0, 2);
        root.edges.push(Edge::new(a(9), 9, 1));
        root.ghosts[0].fulfill(a(1)).unwrap();
        root.ghosts[1].fulfill(a(3)).unwrap();
        let mut g1 = VertexObj::ghost(7, 0, 2);
        g1.edges.push(Edge::new(a(8), 8, 1));
        g1.ghosts[0].fulfill(a(2)).unwrap();
        let mut g2 = VertexObj::ghost(7, 0, 2);
        g2.edges.push(Edge::new(a(6), 6, 1));
        let g3: VertexObj<u64> = VertexObj::ghost(7, 0, 2);
        m.insert(a(0), root);
        m.insert(a(1), g1);
        m.insert(a(2), g2);
        m.insert(a(3), g3);
        (m, a(0))
    }

    #[test]
    fn collects_all_objects_breadth_first() {
        let (m, root) = store();
        let objs = collect_objects(root, |a| m.get(&a));
        assert_eq!(objs.len(), 4);
        assert_eq!(objs[0], root);
        // BFS order: root's two ghosts before the grand-ghost.
        assert_eq!(objs[1], Address::new(0, 1));
        assert_eq!(objs[2], Address::new(0, 3));
        assert_eq!(objs[3], Address::new(0, 2));
    }

    #[test]
    fn collects_all_edges() {
        let (m, root) = store();
        let mut ids: Vec<u32> =
            collect_edges(root, |a| m.get(&a)).iter().map(|e| e.dst_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![6, 8, 9]);
    }

    #[test]
    fn logical_walk_spans_all_rhizome_roots() {
        // Two co-equal roots, each with its own ghost and edge slice.
        let mut m = HashMap::new();
        let a = |i| Address::new(0, i);
        let mut r0: VertexObj<u64> = VertexObj::root(5, 0, 1);
        r0.peers = vec![a(1)].into_boxed_slice();
        r0.edges.push(Edge::new(a(10), 10, 1));
        r0.ghosts[0].fulfill(a(2)).unwrap();
        let mut r1: VertexObj<u64> = VertexObj::root(5, 0, 1);
        r1.peers = vec![a(0)].into_boxed_slice();
        r1.edges.push(Edge::new(a(11), 11, 1));
        let mut g0: VertexObj<u64> = VertexObj::ghost(5, 0, 1);
        g0.edges.push(Edge::new(a(12), 12, 1));
        m.insert(a(0), r0);
        m.insert(a(1), r1);
        m.insert(a(2), g0);
        // From either root, the logical walk covers everything exactly once.
        for start in [a(0), a(1)] {
            let roots = collect_roots(start, |x| m.get(&x));
            assert_eq!(roots.len(), 2);
            assert_eq!(roots[0], start, "queried root first");
            let mut objs = collect_logical_objects(start, |x| m.get(&x));
            objs.sort_unstable_by_key(|x| x.slot);
            assert_eq!(objs, vec![a(0), a(1), a(2)]);
            let mut ids: Vec<u32> =
                collect_logical_edges(start, |x| m.get(&x)).iter().map(|e| e.dst_id).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![10, 11, 12]);
        }
    }

    #[test]
    fn single_root_logical_walk_equals_plain_walk() {
        let (m, root) = store();
        assert_eq!(collect_roots(root, |a| m.get(&a)), vec![root]);
        assert_eq!(
            collect_logical_objects(root, |a| m.get(&a)),
            collect_objects(root, |a| m.get(&a))
        );
    }

    #[test]
    fn depth_counts_levels() {
        let (m, root) = store();
        assert_eq!(depth(root, |a| m.get(&a)), 3);
        let lone: VertexObj<u64> = VertexObj::root(0, 0, 2);
        let mut m2 = HashMap::new();
        m2.insert(Address::new(1, 1), lone);
        assert_eq!(depth(Address::new(1, 1), |a| m2.get(&a)), 1);
    }
}
