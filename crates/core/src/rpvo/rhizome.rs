//! Multi-root (rhizome) vertex objects.
//!
//! The source paper's RPVO parallelizes a vertex's *storage* across ghost
//! objects but keeps a single root, so every ingest and frontier action for
//! a hub vertex still serializes at one compute cell. The follow-up work
//! (Chandio et al., "Rhizomes and Diffusions for Processing Highly Skewed
//! Graphs on Fine-Grain Message-Driven Systems", arXiv:2402.06086) breaks
//! that bottleneck with **rhizomes**: K co-equal root objects per hub
//! vertex, cross-linked through rhizome links, each owning a disjoint slice
//! of the edge list and its own ghost subtree.
//!
//! This module holds the host-side bookkeeping: the [`RhizomeDirectory`]
//! tracks every vertex's root set and streamed degree, decides *when* a
//! vertex is promoted (its degree crosses the configured threshold during
//! streaming ingestion), and answers *which* root an edge is routed to — a
//! deterministic per-vertex round-robin, so results are reproducible and
//! independent of host parallelism. The on-chip side (cross-linked
//! [`super::VertexObj::peers`], the `rhizome-sync` diffusion) lives in the
//! vertex object and the application layer.

use amcca_sim::Address;

/// Host-side registry of every logical vertex's root set.
///
/// Most vertices keep exactly one root; vertices promoted to rhizomes carry
/// `K - 1` extra roots. Routing state (the per-vertex round-robin cursor)
/// lives here too, so the host façade can pick a target root per edge in
/// O(1) deterministically.
#[derive(Debug, Clone)]
pub struct RhizomeDirectory {
    /// Primary root of each vertex (allocated at graph construction).
    primary: Vec<Address>,
    /// Extra co-equal roots of promoted vertices (empty otherwise).
    extra: Vec<Vec<Address>>,
    /// Streamed-degree counter per vertex: one touch per endpoint of every
    /// streamed edge (hubs are hot both as insert targets and as relax
    /// destinations, so both sides count toward promotion).
    touches: Vec<u32>,
    /// Round-robin cursor per vertex, advanced on every routed pick.
    rr: Vec<u32>,
    /// Number of vertices promoted so far.
    promoted: u64,
}

impl RhizomeDirectory {
    /// Build the directory from the primary roots allocated at construction.
    pub fn new(primary: Vec<Address>) -> Self {
        let n = primary.len();
        RhizomeDirectory {
            primary,
            extra: vec![Vec::new(); n],
            touches: vec![0; n],
            rr: vec![0; n],
            promoted: 0,
        }
    }

    /// Number of vertices tracked.
    pub fn len(&self) -> usize {
        self.primary.len()
    }

    /// True when no vertices are tracked.
    pub fn is_empty(&self) -> bool {
        self.primary.is_empty()
    }

    /// The primary root of vertex `v` (the address the host hands out for
    /// seeding queries; co-equal peers are reachable through its links).
    pub fn primary(&self, v: u32) -> Address {
        self.primary[v as usize]
    }

    /// All roots of vertex `v`, primary first.
    pub fn roots(&self, v: u32) -> Vec<Address> {
        let mut out = Vec::with_capacity(1 + self.extra[v as usize].len());
        out.push(self.primary[v as usize]);
        out.extend_from_slice(&self.extra[v as usize]);
        out
    }

    /// Number of co-equal roots vertex `v` currently has.
    pub fn root_count(&self, v: u32) -> usize {
        1 + self.extra[v as usize].len()
    }

    /// Record one streamed-degree touch on `v`; returns `true` exactly when
    /// the touch crosses `threshold` on a not-yet-promoted vertex (i.e. the
    /// caller must promote now). A `threshold` of 0 disables promotion.
    pub fn note_touch(&mut self, v: u32, threshold: usize) -> bool {
        let t = &mut self.touches[v as usize];
        *t = t.saturating_add(1);
        threshold > 0 && *t as usize == threshold && self.extra[v as usize].is_empty()
    }

    /// Streamed-degree touches recorded for vertex `v`.
    pub fn touches(&self, v: u32) -> u32 {
        self.touches[v as usize]
    }

    /// Install the extra roots of a freshly promoted vertex.
    pub fn install(&mut self, v: u32, extras: Vec<Address>) {
        assert!(self.extra[v as usize].is_empty(), "vertex {v} promoted twice");
        assert!(!extras.is_empty(), "a rhizome adds at least one root");
        self.extra[v as usize] = extras;
        self.promoted += 1;
    }

    /// Pick the root that handles the next action routed to `v`
    /// (deterministic per-vertex round-robin over the co-equal roots).
    pub fn route(&mut self, v: u32) -> Address {
        let extra = &self.extra[v as usize];
        if extra.is_empty() {
            return self.primary[v as usize];
        }
        let k = extra.len() + 1;
        let cursor = &mut self.rr[v as usize];
        let pick = *cursor as usize % k;
        *cursor = cursor.wrapping_add(1);
        if pick == 0 {
            self.primary[v as usize]
        } else {
            extra[pick - 1]
        }
    }

    /// Vertices promoted so far.
    pub fn promoted_count(&self) -> u64 {
        self.promoted
    }

    /// Total extra roots allocated across all promoted vertices.
    pub fn extra_root_count(&self) -> u64 {
        self.extra.iter().map(|e| e.len() as u64).sum()
    }
}

/// The fully cross-linked peer sets of a rhizome: for root `i` of `roots`,
/// entry `i` lists every *other* root (in root order). This is what gets
/// written into each root object's [`super::VertexObj::peers`].
pub fn peer_sets(roots: &[Address]) -> Vec<Box<[Address]>> {
    roots
        .iter()
        .enumerate()
        .map(|(i, _)| {
            roots
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &a)| a)
                .collect::<Vec<_>>()
                .into_boxed_slice()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(n: u32) -> RhizomeDirectory {
        RhizomeDirectory::new((0..n).map(|i| Address::new(i as u16, 0)).collect())
    }

    #[test]
    fn unpromoted_vertices_route_to_their_primary() {
        let mut d = dir(4);
        for v in 0..4 {
            assert_eq!(d.route(v), Address::new(v as u16, 0));
            assert_eq!(d.root_count(v), 1);
            assert_eq!(d.roots(v), vec![Address::new(v as u16, 0)]);
        }
        assert_eq!(d.promoted_count(), 0);
    }

    #[test]
    fn touch_crosses_threshold_exactly_once() {
        let mut d = dir(2);
        assert!(!d.note_touch(0, 3));
        assert!(!d.note_touch(0, 3));
        assert!(d.note_touch(0, 3), "third touch crosses the threshold");
        d.install(0, vec![Address::new(9, 0)]);
        assert!(!d.note_touch(0, 3), "already promoted: never again");
        assert_eq!(d.touches(0), 4);
        assert!(!d.note_touch(1, 0), "threshold 0 disables promotion");
    }

    #[test]
    fn promoted_vertex_round_robins_across_all_roots() {
        let mut d = dir(2);
        let extras = vec![Address::new(10, 0), Address::new(11, 0), Address::new(12, 0)];
        d.install(1, extras.clone());
        assert_eq!(d.root_count(1), 4);
        assert_eq!(d.promoted_count(), 1);
        assert_eq!(d.extra_root_count(), 3);
        let picks: Vec<Address> = (0..8).map(|_| d.route(1)).collect();
        assert_eq!(picks[0], Address::new(1, 0), "primary first");
        assert_eq!(&picks[1..4], &extras[..]);
        assert_eq!(&picks[0..4], &picks[4..8], "cycle repeats deterministically");
        // The other vertex is untouched.
        assert_eq!(d.route(0), Address::new(0, 0));
    }

    #[test]
    fn routing_is_reproducible() {
        let run = || {
            let mut d = dir(3);
            d.install(2, vec![Address::new(20, 0), Address::new(21, 0)]);
            (0..10).map(|i| d.route(i % 3)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "promoted twice")]
    fn double_promotion_is_a_bug() {
        let mut d = dir(1);
        d.install(0, vec![Address::new(5, 0)]);
        d.install(0, vec![Address::new(6, 0)]);
    }

    #[test]
    fn peer_sets_cross_link_fully() {
        let roots = [Address::new(0, 0), Address::new(1, 0), Address::new(2, 0)];
        let sets = peer_sets(&roots);
        assert_eq!(sets.len(), 3);
        for (i, set) in sets.iter().enumerate() {
            assert_eq!(set.len(), 2, "each root links every other root");
            assert!(!set.contains(&roots[i]), "no self link");
            for r in set.iter() {
                assert!(roots.contains(r));
            }
        }
    }
}
