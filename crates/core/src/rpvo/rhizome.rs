//! Multi-root (rhizome) vertex objects.
//!
//! The source paper's RPVO parallelizes a vertex's *storage* across ghost
//! objects but keeps a single root, so every ingest and frontier action for
//! a hub vertex still serializes at one compute cell. The follow-up work
//! (Chandio et al., "Rhizomes and Diffusions for Processing Highly Skewed
//! Graphs on Fine-Grain Message-Driven Systems", arXiv:2402.06086) breaks
//! that bottleneck with **rhizomes**: K co-equal root objects per hub
//! vertex, cross-linked through rhizome links, each owning a disjoint slice
//! of the edge list and its own ghost subtree.
//!
//! This module holds the host-side bookkeeping: the [`RhizomeDirectory`]
//! tracks every vertex's root set, lifetime touch count, and **live streamed
//! degree** (touches from `AddEdge` minus touches from `DelEdge`), decides
//! *when* a vertex is promoted (live degree crosses the configured threshold
//! during streaming ingestion) or **demoted** (a promoted vertex's live
//! degree falls back below the threshold once deletions land), and answers
//! *which* root an edge is routed to — a deterministic per-vertex
//! round-robin, so results are reproducible and independent of host
//! parallelism. The on-chip side (cross-linked [`super::VertexObj::peers`],
//! the `rhizome-sync` diffusion) lives in the vertex object and the
//! application layer.

use std::collections::BTreeSet;

use amcca_sim::Address;

/// Host-side registry of every logical vertex's root set.
///
/// Most vertices keep exactly one root; vertices promoted to rhizomes carry
/// `K - 1` extra roots. Routing state (the per-vertex round-robin cursor)
/// lives here too, so the host façade can pick a target root per edge in
/// O(1) deterministically.
#[derive(Debug, Clone)]
pub struct RhizomeDirectory {
    /// Primary root of each vertex (allocated at graph construction).
    primary: Vec<Address>,
    /// Extra co-equal roots of promoted vertices (empty otherwise).
    extra: Vec<Vec<Address>>,
    /// Lifetime streamed-activity counter per vertex: one touch per endpoint
    /// of every streamed mutation, additions and deletions alike (hubs are
    /// hot both as insert targets and as relax destinations).
    touches: Vec<u32>,
    /// Live streamed degree per vertex: endpoint touches from additions
    /// minus endpoint touches from deletions — the quantity promotion and
    /// demotion decisions compare against the threshold.
    live: Vec<u32>,
    /// Round-robin cursor per vertex, advanced on every routed pick.
    rr: Vec<u32>,
    /// Promoted vertices whose live degree dropped since the last demotion
    /// sweep (BTreeSet for deterministic sweep order).
    watch: BTreeSet<u32>,
    /// Number of promotions performed so far (cumulative; a vertex demoted
    /// and re-promoted counts twice).
    promoted: u64,
    /// Number of demotions performed so far.
    demoted: u64,
}

impl RhizomeDirectory {
    /// Build the directory from the primary roots allocated at construction.
    pub fn new(primary: Vec<Address>) -> Self {
        let n = primary.len();
        RhizomeDirectory {
            primary,
            extra: vec![Vec::new(); n],
            touches: vec![0; n],
            live: vec![0; n],
            rr: vec![0; n],
            watch: BTreeSet::new(),
            promoted: 0,
            demoted: 0,
        }
    }

    /// Number of vertices tracked.
    pub fn len(&self) -> usize {
        self.primary.len()
    }

    /// True when no vertices are tracked.
    pub fn is_empty(&self) -> bool {
        self.primary.is_empty()
    }

    /// The primary root of vertex `v` (the address the host hands out for
    /// seeding queries; co-equal peers are reachable through its links).
    pub fn primary(&self, v: u32) -> Address {
        self.primary[v as usize]
    }

    /// All roots of vertex `v`, primary first.
    pub fn roots(&self, v: u32) -> Vec<Address> {
        let mut out = Vec::with_capacity(1 + self.extra[v as usize].len());
        out.push(self.primary[v as usize]);
        out.extend_from_slice(&self.extra[v as usize]);
        out
    }

    /// Number of co-equal roots vertex `v` currently has.
    pub fn root_count(&self, v: u32) -> usize {
        1 + self.extra[v as usize].len()
    }

    /// True if vertex `v` currently is a rhizome (more than one root).
    pub fn is_promoted(&self, v: u32) -> bool {
        !self.extra[v as usize].is_empty()
    }

    /// Record one `AddEdge` endpoint touch on `v`; returns `true` exactly
    /// when the touch lifts the live degree onto `threshold` for a vertex
    /// that is not currently promoted (i.e. the caller must promote now).
    /// A `threshold` of 0 disables promotion.
    pub fn note_add(&mut self, v: u32, threshold: usize) -> bool {
        let i = v as usize;
        self.touches[i] = self.touches[i].saturating_add(1);
        self.live[i] = self.live[i].saturating_add(1);
        threshold > 0 && self.live[i] as usize == threshold && self.extra[i].is_empty()
    }

    /// Record one `DelEdge` endpoint touch on `v`: the live degree drops and
    /// a currently promoted vertex is queued for the next demotion sweep.
    pub fn note_del(&mut self, v: u32) {
        let i = v as usize;
        self.touches[i] = self.touches[i].saturating_add(1);
        self.live[i] = self.live[i].saturating_sub(1);
        if !self.extra[i].is_empty() {
            self.watch.insert(v);
        }
    }

    /// Lifetime streamed-activity touches recorded for vertex `v`.
    pub fn touches(&self, v: u32) -> u32 {
        self.touches[v as usize]
    }

    /// Live streamed degree of vertex `v` (add touches minus del touches).
    pub fn live_degree(&self, v: u32) -> u32 {
        self.live[v as usize]
    }

    /// Rebind the primary root of a single-root vertex to a new address
    /// (hot-object migration: the host moved the root object to another
    /// cell). Callers must patch every stored edge that pointed at the old
    /// address themselves — the directory only tracks the mapping.
    ///
    /// # Panics
    ///
    /// Panics if `v` is currently promoted: a rhizome's roots are
    /// cross-linked through on-fabric peer sets, and its load is already
    /// fanned out — migration handles single-root vertices only.
    pub fn rebind_primary(&mut self, v: u32, a: Address) {
        assert!(self.extra[v as usize].is_empty(), "vertex {v} is a rhizome; cannot rebind");
        self.primary[v as usize] = a;
    }

    /// Install the extra roots of a freshly promoted vertex.
    pub fn install(&mut self, v: u32, extras: Vec<Address>) {
        assert!(self.extra[v as usize].is_empty(), "vertex {v} promoted twice");
        assert!(!extras.is_empty(), "a rhizome adds at least one root");
        self.extra[v as usize] = extras;
        self.promoted += 1;
    }

    /// Drain the vertices due for demotion: promoted vertices whose live
    /// degree fell below `threshold` since the last sweep, in ascending
    /// vertex order (deterministic). The caller performs the actual collapse
    /// and must then call [`Self::demote`] per vertex.
    pub fn take_demotions(&mut self, threshold: usize) -> Vec<u32> {
        let due: Vec<u32> = self
            .watch
            .iter()
            .copied()
            .filter(|&v| {
                !self.extra[v as usize].is_empty() && (self.live[v as usize] as usize) < threshold
            })
            .collect();
        self.watch.clear();
        due
    }

    /// Collapse vertex `v` back to a single root, returning the extra root
    /// addresses the caller must merge and free. Routing falls back to the
    /// primary; the vertex may be promoted again if its live degree rises.
    pub fn demote(&mut self, v: u32) -> Vec<Address> {
        let extras = std::mem::take(&mut self.extra[v as usize]);
        assert!(!extras.is_empty(), "vertex {v} demoted while not promoted");
        self.rr[v as usize] = 0;
        self.demoted += 1;
        extras
    }

    /// Pick the root that handles the next action routed to `v`
    /// (deterministic per-vertex round-robin over the co-equal roots).
    pub fn route(&mut self, v: u32) -> Address {
        let extra = &self.extra[v as usize];
        if extra.is_empty() {
            return self.primary[v as usize];
        }
        let k = extra.len() + 1;
        let cursor = &mut self.rr[v as usize];
        let pick = *cursor as usize % k;
        *cursor = cursor.wrapping_add(1);
        if pick == 0 {
            self.primary[v as usize]
        } else {
            extra[pick - 1]
        }
    }

    /// Promotions performed so far (cumulative over re-promotions).
    pub fn promoted_count(&self) -> u64 {
        self.promoted
    }

    /// Demotions performed so far.
    pub fn demoted_count(&self) -> u64 {
        self.demoted
    }

    /// Total extra roots currently allocated across all promoted vertices.
    pub fn extra_root_count(&self) -> u64 {
        self.extra.iter().map(|e| e.len() as u64).sum()
    }
}

/// The fully cross-linked peer sets of a rhizome: for root `i` of `roots`,
/// entry `i` lists every *other* root (in root order). This is what gets
/// written into each root object's [`super::VertexObj::peers`].
pub fn peer_sets(roots: &[Address]) -> Vec<Box<[Address]>> {
    roots
        .iter()
        .enumerate()
        .map(|(i, _)| {
            roots
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &a)| a)
                .collect::<Vec<_>>()
                .into_boxed_slice()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(n: u32) -> RhizomeDirectory {
        RhizomeDirectory::new((0..n).map(|i| Address::new(i as u16, 0)).collect())
    }

    #[test]
    fn unpromoted_vertices_route_to_their_primary() {
        let mut d = dir(4);
        for v in 0..4 {
            assert_eq!(d.route(v), Address::new(v as u16, 0));
            assert_eq!(d.root_count(v), 1);
            assert_eq!(d.roots(v), vec![Address::new(v as u16, 0)]);
        }
        assert_eq!(d.promoted_count(), 0);
        assert_eq!(d.demoted_count(), 0);
    }

    #[test]
    fn add_touch_crosses_threshold_exactly_once() {
        let mut d = dir(2);
        assert!(!d.note_add(0, 3));
        assert!(!d.note_add(0, 3));
        assert!(d.note_add(0, 3), "third touch crosses the threshold");
        d.install(0, vec![Address::new(9, 0)]);
        assert!(!d.note_add(0, 3), "already promoted: never again");
        assert_eq!(d.touches(0), 4);
        assert_eq!(d.live_degree(0), 4);
        assert!(!d.note_add(1, 0), "threshold 0 disables promotion");
    }

    #[test]
    fn del_touches_lower_live_degree_but_not_lifetime_touches() {
        let mut d = dir(1);
        for _ in 0..3 {
            d.note_add(0, 0);
        }
        d.note_del(0);
        d.note_del(0);
        assert_eq!(d.touches(0), 5, "every endpoint touch counts as activity");
        assert_eq!(d.live_degree(0), 1, "live degree nets adds against dels");
    }

    #[test]
    fn demotion_sweep_flags_cold_promoted_vertices_only() {
        let mut d = dir(3);
        for _ in 0..4 {
            d.note_add(1, 4);
            d.note_add(2, 4);
        }
        d.install(1, vec![Address::new(10, 0)]);
        d.install(2, vec![Address::new(11, 0)]);
        // Vertex 1 cools below the threshold; vertex 2 stays warm.
        d.note_del(1);
        d.note_del(2);
        d.note_add(2, 4);
        assert_eq!(d.take_demotions(4), vec![1]);
        assert!(d.take_demotions(4).is_empty(), "sweep drains the watch set");
        let freed = d.demote(1);
        assert_eq!(freed, vec![Address::new(10, 0)]);
        assert_eq!(d.root_count(1), 1);
        assert!(!d.is_promoted(1));
        assert_eq!(d.demoted_count(), 1);
        assert_eq!(d.route(1), Address::new(1, 0), "routing falls back to the primary");
    }

    #[test]
    fn demoted_vertex_can_promote_again() {
        let mut d = dir(1);
        for _ in 0..3 {
            d.note_add(0, 3);
        }
        d.install(0, vec![Address::new(5, 0)]);
        d.note_del(0);
        assert_eq!(d.take_demotions(3), vec![0]);
        d.demote(0);
        // Live degree is 2; one more add re-crosses the threshold.
        assert!(d.note_add(0, 3), "re-promotion fires on re-crossing");
        d.install(0, vec![Address::new(6, 0)]);
        assert_eq!(d.promoted_count(), 2, "promotions are cumulative");
        assert_eq!(d.demoted_count(), 1);
    }

    #[test]
    fn promoted_vertex_round_robins_across_all_roots() {
        let mut d = dir(2);
        let extras = vec![Address::new(10, 0), Address::new(11, 0), Address::new(12, 0)];
        d.install(1, extras.clone());
        assert_eq!(d.root_count(1), 4);
        assert_eq!(d.promoted_count(), 1);
        assert_eq!(d.extra_root_count(), 3);
        let picks: Vec<Address> = (0..8).map(|_| d.route(1)).collect();
        assert_eq!(picks[0], Address::new(1, 0), "primary first");
        assert_eq!(&picks[1..4], &extras[..]);
        assert_eq!(&picks[0..4], &picks[4..8], "cycle repeats deterministically");
        // The other vertex is untouched.
        assert_eq!(d.route(0), Address::new(0, 0));
    }

    #[test]
    fn routing_is_reproducible() {
        let run = || {
            let mut d = dir(3);
            d.install(2, vec![Address::new(20, 0), Address::new(21, 0)]);
            (0..10).map(|i| d.route(i % 3)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rebind_moves_a_single_root_vertex() {
        let mut d = dir(2);
        d.rebind_primary(1, Address::new(42, 3));
        assert_eq!(d.primary(1), Address::new(42, 3));
        assert_eq!(d.route(1), Address::new(42, 3), "routing follows the rebound primary");
        assert_eq!(d.primary(0), Address::new(0, 0), "other vertices untouched");
    }

    #[test]
    #[should_panic(expected = "cannot rebind")]
    fn rebinding_a_rhizome_is_a_bug() {
        let mut d = dir(1);
        d.install(0, vec![Address::new(5, 0)]);
        d.rebind_primary(0, Address::new(6, 0));
    }

    #[test]
    #[should_panic(expected = "promoted twice")]
    fn double_promotion_is_a_bug() {
        let mut d = dir(1);
        d.install(0, vec![Address::new(5, 0)]);
        d.install(0, vec![Address::new(6, 0)]);
    }

    #[test]
    #[should_panic(expected = "demoted while not promoted")]
    fn demoting_a_single_root_vertex_is_a_bug() {
        let mut d = dir(1);
        d.demote(0);
    }

    #[test]
    fn peer_sets_cross_link_fully() {
        let roots = [Address::new(0, 0), Address::new(1, 0), Address::new(2, 0)];
        let sets = peer_sets(&roots);
        assert_eq!(sets.len(), 3);
        for (i, set) in sets.iter().enumerate() {
            assert_eq!(set.len(), 2, "each root links every other root");
            assert!(!set.contains(&roots[i]), "no self link");
            for r in set.iter() {
                assert!(roots.contains(r));
            }
        }
    }
}
