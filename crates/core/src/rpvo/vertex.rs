//! The Recursively-Parallel Vertex Object (paper Fig. 1b, Listing 2).
//!
//! A logical vertex is stored as a hierarchy: a **root** object on its home
//! compute cell plus zero or more **ghost** objects on (usually nearby)
//! cells, linked through ghost slots of type *future of pointer*. Every
//! object — root or ghost — has the same layout: an inline edge list of
//! bounded capacity and `ghost_fanout` ghost slots, so spilling recurses and
//! the structure parallelizes a high-degree vertex across many cells while a
//! single address (the root) remains the programming abstraction.

use amcca_sim::Address;
use diffusive::FutureLco;

use super::edge::Edge;

/// Whether an object is the root of its RPVO or a ghost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjKind {
    /// `Root` variant.
    Root,
    /// `Ghost` variant.
    Ghost,
}

/// One object of an RPVO, generic over the application's per-vertex state
/// (BFS carries a level, SSSP a distance, …). Ghost objects mirror the
/// application state of their root, kept consistent by the diffusion.
#[derive(Debug, Clone)]
pub struct VertexObj<S> {
    /// Id of the logical vertex this object belongs to.
    pub vid: u32,
    /// Root or ghost.
    pub kind: ObjKind,
    /// Application state (paper Listing 2's `level` field, generalized).
    pub state: S,
    /// Inline edge list; the ingestion logic bounds its length by
    /// [`super::config::RpvoConfig::edge_cap`].
    pub edges: Vec<Edge>,
    /// Ghost links: futures of pointers (paper Listing 2's `ghosts` field).
    pub ghosts: Box<[FutureLco<Address>]>,
    /// Round-robin cursor arbitrating spills among ghost slots.
    pub ghost_rr: u8,
    /// Rhizome links: the addresses of this root's co-equal peer roots
    /// (empty for ordinary single-root vertices and for ghosts). Peers are
    /// fully cross-linked so any root can answer or forward actions for the
    /// logical vertex, and improvements diffuse to peers via the
    /// `rhizome-sync` system action.
    pub peers: Box<[Address]>,
    /// Standing-query automaton states: `qbits[qid]` is the bitset of DFA
    /// states of registered query `qid` reachable at this vertex along some
    /// labelled path from the query's source (empty = no states, lazily
    /// grown as queries register). Mirrored across ghosts and peers by the
    /// `query` system action (see [`crate::query`]).
    pub qbits: Vec<u32>,
}

impl<S> VertexObj<S> {
    /// Create a root object for vertex `vid`.
    pub fn root(vid: u32, state: S, ghost_fanout: usize) -> Self {
        Self::with_kind(vid, state, ghost_fanout, ObjKind::Root)
    }

    /// Create a ghost object mirroring vertex `vid`.
    pub fn ghost(vid: u32, state: S, ghost_fanout: usize) -> Self {
        Self::with_kind(vid, state, ghost_fanout, ObjKind::Ghost)
    }

    fn with_kind(vid: u32, state: S, ghost_fanout: usize, kind: ObjKind) -> Self {
        let ghosts = (0..ghost_fanout).map(|_| FutureLco::Null).collect();
        VertexObj {
            vid,
            kind,
            state,
            edges: Vec::new(),
            ghosts,
            ghost_rr: 0,
            peers: Box::new([]),
            qbits: Vec::new(),
        }
    }

    /// Current automaton-state bitset of query `qid` (0 if never reached).
    pub fn qbits_get(&self, qid: u32) -> u32 {
        self.qbits.get(qid as usize).copied().unwrap_or(0)
    }

    /// OR `bits` into query `qid`'s bitset, returning the genuinely new
    /// states (`bits & !previous`) — 0 means the delivery was redundant.
    pub fn qbits_or(&mut self, qid: u32, bits: u32) -> u32 {
        let i = qid as usize;
        if self.qbits.len() <= i {
            self.qbits.resize(i + 1, 0);
        }
        let new = bits & !self.qbits[i];
        self.qbits[i] |= new;
        new
    }

    /// Does the inline edge list still have room (paper's `vertex-has-room`)?
    pub fn has_room(&self, edge_cap: usize) -> bool {
        self.edges.len() < edge_cap
    }

    /// Pick the ghost slot for the next spill (round-robin arbitration).
    pub fn pick_ghost_slot(&mut self) -> usize {
        let n = self.ghosts.len();
        let slot = self.ghost_rr as usize % n;
        self.ghost_rr = ((slot + 1) % n) as u8;
        slot
    }

    /// Addresses of all attached (Ready) ghosts.
    pub fn ready_ghosts(&self) -> impl Iterator<Item = Address> + '_ {
        self.ghosts.iter().filter_map(|g| g.value().copied())
    }

    /// True for the root object of an RPVO.
    pub fn is_root(&self) -> bool {
        matches!(self.kind, ObjKind::Root)
    }

    /// True for a root that is part of a rhizome (has co-equal peer roots).
    pub fn is_rhizome(&self) -> bool {
        !self.peers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_starts_empty_with_null_ghosts() {
        let v: VertexObj<u64> = VertexObj::root(7, u64::MAX, 2);
        assert!(v.is_root());
        assert!(v.has_room(4));
        assert_eq!(v.ghosts.len(), 2);
        assert!(v.ghosts.iter().all(|g| g.is_null()));
        assert_eq!(v.ready_ghosts().count(), 0);
        assert!(!v.is_rhizome(), "fresh roots are single-root until promoted");
    }

    #[test]
    fn cross_linked_root_reports_rhizome() {
        let mut v: VertexObj<u64> = VertexObj::root(7, 0, 2);
        v.peers = vec![Address::new(1, 0), Address::new(2, 0)].into_boxed_slice();
        assert!(v.is_rhizome());
        assert!(v.is_root(), "rhizome links do not change the object kind");
    }

    #[test]
    fn room_respects_capacity() {
        let mut v: VertexObj<u64> = VertexObj::root(0, 0, 1);
        for i in 0..3 {
            v.edges.push(Edge::new(Address::new(0, i), i, 1));
        }
        assert!(v.has_room(4));
        assert!(!v.has_room(3));
    }

    #[test]
    fn ghost_slot_arbitration_round_robins() {
        let mut v: VertexObj<u64> = VertexObj::root(0, 0, 3);
        let picks: Vec<usize> = (0..7).map(|_| v.pick_ghost_slot()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn single_slot_always_zero() {
        let mut v: VertexObj<u64> = VertexObj::root(0, 0, 1);
        assert_eq!(v.pick_ghost_slot(), 0);
        assert_eq!(v.pick_ghost_slot(), 0);
    }

    #[test]
    fn qbits_track_new_states_per_query() {
        let mut v: VertexObj<u64> = VertexObj::root(0, 0, 1);
        assert_eq!(v.qbits_get(3), 0, "unregistered queries read as empty");
        assert_eq!(v.qbits_or(3, 0b0110), 0b0110, "all states new on first delivery");
        assert_eq!(v.qbits_or(3, 0b0010), 0, "redundant delivery yields no new states");
        assert_eq!(v.qbits_or(3, 0b1010), 0b1000, "only the genuinely new state survives");
        assert_eq!(v.qbits_get(3), 0b1110);
        assert_eq!(v.qbits_get(0), 0, "other slots untouched");
    }

    #[test]
    fn ready_ghosts_lists_fulfilled_slots() {
        let mut v: VertexObj<u64> = VertexObj::root(0, 0, 2);
        v.ghosts[1].fulfill(Address::new(3, 9)).unwrap();
        let ready: Vec<Address> = v.ready_ghosts().collect();
        assert_eq!(ready, vec![Address::new(3, 9)]);
    }
}
