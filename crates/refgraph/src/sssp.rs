//! Reference single-source shortest paths (binary-heap Dijkstra).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::DiGraph;

/// Sentinel for unreachable vertices.
pub const INF: u64 = u64::MAX;

/// Dijkstra distances from `source` (non-negative weights).
pub fn dijkstra(g: &DiGraph, source: u32) -> Vec<u64> {
    let mut dist = vec![INF; g.n() as usize];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d.saturating_add(w as u64);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_path() {
        let g = DiGraph::from_edges(4, [(0, 1, 2), (1, 2, 3), (2, 3, 4)]);
        assert_eq!(dijkstra(&g, 0), vec![0, 2, 5, 9]);
    }

    #[test]
    fn shortcut_wins() {
        let g = DiGraph::from_edges(3, [(0, 1, 10), (0, 2, 1), (2, 1, 1)]);
        assert_eq!(dijkstra(&g, 0)[1], 2);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = DiGraph::from_edges(3, [(0, 1, 1)]);
        assert_eq!(dijkstra(&g, 0)[2], INF);
    }

    #[test]
    fn zero_weight_edges() {
        let g = DiGraph::from_edges(3, [(0, 1, 0), (1, 2, 0)]);
        assert_eq!(dijkstra(&g, 0), vec![0, 0, 0]);
    }
}
