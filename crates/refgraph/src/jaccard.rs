//! Reference Jaccard coefficients per undirected edge.

use std::collections::HashSet;

/// Jaccard coefficient for every canonical edge `(u < v)` of the undirected
/// simple graph induced by `edges`: `J = |N(u)∩N(v)| / |N(u)∪N(v)|`.
/// Returns `(u, v, J)` sorted by `(u, v)`.
pub fn jaccard_coefficients(
    n: u32,
    edges: impl IntoIterator<Item = (u32, u32)>,
) -> Vec<(u32, u32, f64)> {
    let mut nbrs: Vec<HashSet<u32>> = vec![HashSet::new(); n as usize];
    let mut canon: Vec<(u32, u32)> = Vec::new();
    for (a, b) in edges {
        if a == b {
            continue;
        }
        let (u, v) = (a.min(b), a.max(b));
        if nbrs[u as usize].insert(v) {
            canon.push((u, v));
        }
        nbrs[v as usize].insert(u);
    }
    canon.sort_unstable();
    canon
        .into_iter()
        .map(|(u, v)| {
            let nu = &nbrs[u as usize];
            let nv = &nbrs[v as usize];
            let inter = nu.intersection(nv).count() as f64;
            let union = (nu.len() + nv.len()) as f64 - inter;
            (u, v, if union == 0.0 { 0.0 } else { inter / union })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_edges_share_one_neighbor() {
        let j = jaccard_coefficients(3, [(0, 1), (1, 2), (0, 2)]);
        // Each edge: intersection 1 (the third vertex), union 3 (deg 2+2-1).
        for &(_, _, v) in &j {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn path_has_zero_overlap() {
        let j = jaccard_coefficients(3, [(0, 1), (1, 2)]);
        assert_eq!(j.len(), 2);
        assert!(j.iter().all(|&(_, _, v)| v == 0.0));
    }

    #[test]
    fn k4_edges() {
        let k4 = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let j = jaccard_coefficients(4, k4);
        // Every edge of K4: |inter| = 2, |union| = 3+3-2 = 4 → 0.5.
        assert_eq!(j.len(), 6);
        for &(_, _, v) in &j {
            assert!((v - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicates_and_loops_ignored() {
        let j = jaccard_coefficients(3, [(0, 1), (1, 0), (1, 1), (1, 2), (0, 2)]);
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn star_center_vs_leaves() {
        // Star: leaves share the center; leaf pairs are not edges, so only
        // center-leaf edges exist, each with empty intersection.
        let j = jaccard_coefficients(4, [(0, 1), (0, 2), (0, 3)]);
        assert!(j.iter().all(|&(_, _, v)| v == 0.0));
    }
}
