#![warn(missing_docs)]
//! # refgraph — sequential reference graph algorithms
//!
//! The paper verifies simulator results "for correctness against known
//! results found using NetworkX" (§4). This crate is that oracle: simple,
//! obviously-correct sequential implementations of the algorithms the
//! simulator runs as diffusions, applied to accumulated edge sets.

pub mod bfs;
pub mod cc;
pub mod graph;
pub mod jaccard;
pub mod sssp;
pub mod triangle;

pub use bfs::{bfs_levels, UNREACHED};
pub use cc::{min_labels, UnionFind};
pub use graph::DiGraph;
pub use jaccard::jaccard_coefficients;
pub use sssp::{dijkstra, INF};
pub use triangle::count_triangles;
