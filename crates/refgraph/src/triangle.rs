//! Reference exact triangle counting on an undirected simple graph
//! (node-iterator over oriented adjacency, O(Σ d(v)²) worst case).

use std::collections::HashSet;

/// Count triangles in the undirected simple graph induced by `edges`
/// (duplicates and self-loops are ignored).
pub fn count_triangles(n: u32, edges: impl IntoIterator<Item = (u32, u32)>) -> u64 {
    let mut seen = HashSet::new();
    let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); n as usize]; // u -> v with v > u
    for (a, b) in edges {
        if a == b {
            continue;
        }
        let (u, v) = (a.min(b), a.max(b));
        if seen.insert(((u as u64) << 32) | v as u64) {
            fwd[u as usize].push(v);
        }
    }
    for l in &mut fwd {
        l.sort_unstable();
    }
    let mut count = 0u64;
    for u in 0..n as usize {
        let nu = &fwd[u];
        for (i, &v) in nu.iter().enumerate() {
            let nv = &fwd[v as usize];
            // Intersect {w ∈ N⁺(u), w > v} with N⁺(v) by merge.
            let (mut a, mut b) = (i + 1, 0);
            while a < nu.len() && b < nv.len() {
                match nu[a].cmp(&nv[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_triangle() {
        assert_eq!(count_triangles(3, [(0, 1), (1, 2), (0, 2)]), 1);
    }

    #[test]
    fn square_has_none_diagonal_adds_two() {
        let square = [(0, 1), (1, 2), (2, 3), (3, 0)];
        assert_eq!(count_triangles(4, square), 0);
        let with_diag: Vec<_> = square.iter().copied().chain([(0, 2)]).collect();
        assert_eq!(count_triangles(4, with_diag), 2);
    }

    #[test]
    fn k4_has_four() {
        let k4 = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        assert_eq!(count_triangles(4, k4), 4);
    }

    #[test]
    fn duplicates_and_loops_ignored() {
        assert_eq!(count_triangles(3, [(0, 1), (1, 0), (1, 2), (0, 2), (2, 2)]), 1);
    }

    #[test]
    fn k5_has_ten() {
        let mut es = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                es.push((u, v));
            }
        }
        assert_eq!(count_triangles(5, es), 10);
    }
}
