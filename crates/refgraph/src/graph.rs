//! A plain adjacency-list digraph used as ground truth.

/// Directed multigraph with `u32` vertex ids and `u32` edge weights.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    adj: Vec<Vec<(u32, u32)>>,
}

impl DiGraph {
    /// Empty graph on `n` vertices.
    pub fn new(n: u32) -> Self {
        DiGraph { adj: vec![Vec::new(); n as usize] }
    }

    /// Build a graph from an edge list.
    pub fn from_edges(n: u32, edges: impl IntoIterator<Item = (u32, u32, u32)>) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> u32 {
        self.adj.len() as u32
    }

    /// Number of directed edges.
    pub fn m(&self) -> u64 {
        self.adj.iter().map(|a| a.len() as u64).sum()
    }

    /// Append a directed edge `u → v` with weight `w`.
    pub fn add_edge(&mut self, u: u32, v: u32, w: u32) {
        assert!((u as usize) < self.adj.len() && (v as usize) < self.adj.len());
        self.adj[u as usize].push((v, w));
    }

    /// Neighbors.
    pub fn neighbors(&self, u: u32) -> &[(u32, u32)] {
        &self.adj[u as usize]
    }

    /// Out degree.
    pub fn out_degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = DiGraph::from_edges(4, [(0, 1, 5), (1, 2, 1), (0, 2, 9)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.neighbors(1), &[(2, 1)]);
        assert!(g.neighbors(3).is_empty());
    }
}
