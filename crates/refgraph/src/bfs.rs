//! Reference BFS levels (what NetworkX's `shortest_path_length` gives the
//! paper's authors for verification, §4).

use std::collections::VecDeque;

use crate::graph::DiGraph;

/// Sentinel for unreachable vertices, matching the simulator's `max-level`.
pub const UNREACHED: u64 = u64::MAX;

/// BFS levels from `root` over directed edges.
pub fn bfs_levels(g: &DiGraph, root: u32) -> Vec<u64> {
    let mut level = vec![UNREACHED; g.n() as usize];
    let mut q = VecDeque::new();
    level[root as usize] = 0;
    q.push_back(root);
    while let Some(u) = q.pop_front() {
        let lu = level[u as usize];
        for &(v, _) in g.neighbors(u) {
            if level[v as usize] == UNREACHED {
                level[v as usize] = lu + 1;
                q.push_back(v);
            }
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_levels() {
        let g = DiGraph::from_edges(5, (0..4).map(|i| (i, i + 1, 1)));
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_stays_max() {
        let g = DiGraph::from_edges(4, [(0, 1, 1)]);
        let l = bfs_levels(&g, 0);
        assert_eq!(l[1], 1);
        assert_eq!(l[2], UNREACHED);
        assert_eq!(l[3], UNREACHED);
    }

    #[test]
    fn direction_matters() {
        let g = DiGraph::from_edges(3, [(1, 0, 1), (1, 2, 1)]);
        let l = bfs_levels(&g, 0);
        assert_eq!(l, vec![0, UNREACHED, UNREACHED]);
    }

    #[test]
    fn diamond_takes_shortest() {
        // 0->1->3, 0->2->3, 0->3
        let g = DiGraph::from_edges(4, [(0, 1, 1), (1, 3, 1), (0, 2, 1), (2, 3, 1), (0, 3, 1)]);
        assert_eq!(bfs_levels(&g, 0)[3], 1);
    }
}
