//! Reference weakly-connected components via union-find, reported as
//! min-vertex-id labels (the fixpoint of the simulator's label propagation).

use crate::graph::DiGraph;

/// Union-find with path halving and union by size.
#[derive(Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// New.
    pub fn new(n: u32) -> Self {
        UnionFind { parent: (0..n).collect(), size: vec![1; n as usize] }
    }

    /// Find.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Union.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }
}

/// Per-vertex label = minimum vertex id in its weakly connected component
/// (edges treated as undirected).
pub fn min_labels(g: &DiGraph) -> Vec<u64> {
    let n = g.n();
    let mut uf = UnionFind::new(n);
    for u in 0..n {
        for &(v, _) in g.neighbors(u) {
            uf.union(u, v);
        }
    }
    let mut min_of_root = vec![u32::MAX; n as usize];
    for v in 0..n {
        let r = uf.find(v) as usize;
        min_of_root[r] = min_of_root[r].min(v);
    }
    (0..n).map(|v| min_of_root[uf.find(v) as usize] as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components() {
        let g = DiGraph::from_edges(6, [(0, 1, 1), (1, 2, 1), (4, 5, 1)]);
        assert_eq!(min_labels(&g), vec![0, 0, 0, 3, 4, 4]);
    }

    #[test]
    fn direction_ignored() {
        let g = DiGraph::from_edges(3, [(2, 0, 1)]);
        assert_eq!(min_labels(&g), vec![0, 1, 0]);
    }

    #[test]
    fn union_find_merges_once() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.find(1), uf.find(0));
        assert_ne!(uf.find(2), uf.find(0));
    }
}
