//! Property-based conservation tests of the chip itself: under arbitrary
//! traffic patterns and arbitrarily tight resources, no operon is ever
//! duplicated, dropped, or delivered to the wrong cell, and the flow
//! counters balance exactly.

use amcca_sim::{Address, Chip, ChipConfig, Dims, ExecCtx, Operon, Program};
use proptest::prelude::*;

/// Test program: objects are `u64` accumulators; action 8 adds payload[0];
/// action 9 adds and forwards a copy to the address in payload[1] with a
/// decremented TTL packed into the upper bits of payload[0].
struct AccProgram;

const TTL_SHIFT: u32 = 48;

impl Program for AccProgram {
    type Object = u64;

    fn fork(&self) -> Self {
        AccProgram
    }

    fn execute(&mut self, ctx: &mut ExecCtx<'_, u64>, op: &Operon) {
        ctx.charge(1);
        let value = op.payload[0] & ((1 << TTL_SHIFT) - 1);
        let ttl = op.payload[0] >> TTL_SHIFT;
        match op.action {
            8 => {
                *ctx.obj_mut(op.target.slot).expect("live object") += value;
            }
            9 => {
                *ctx.obj_mut(op.target.slot).expect("live object") += value;
                if ttl > 0 {
                    let next = Address::unpack(op.payload[1]);
                    // Rotate the forward target deterministically.
                    let after = Address::new(op.target.cc, op.target.slot);
                    ctx.propagate(Operon::new(
                        next,
                        9,
                        [((ttl - 1) << TTL_SHIFT) | value, after.pack()],
                    ));
                }
            }
            other => panic!("unknown action {other}"),
        }
    }
}

fn chip(dims: (u16, u16), link_buffer: usize, queue_cap: usize) -> Chip<AccProgram> {
    let cfg = ChipConfig {
        dims: Dims::new(dims.0, dims.1),
        link_buffer,
        task_queue_cap: queue_cap,
        ..ChipConfig::small_test()
    };
    Chip::new(cfg, AccProgram)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Sum of all objects after quiescence equals the sum of injected values
    /// (action 8: no forwarding): nothing lost, nothing duplicated — even
    /// with single-slot buffers and a two-deep task queue.
    #[test]
    fn value_conservation_under_any_traffic(
        msgs in prop::collection::vec((0u16..36, 1u64..100), 1..200),
        link_buffer in 1usize..5,
        queue_cap in 2usize..10,
    ) {
        let mut chip = chip((6, 6), link_buffer, queue_cap);
        let addrs: Vec<Address> =
            (0..36u16).map(|cc| chip.host_alloc(cc, 0).unwrap()).collect();
        let expected: u64 = msgs.iter().map(|&(_, v)| v).sum();
        let count = msgs.len() as u64;
        chip.io_load(msgs.iter().map(|&(cc, v)| Operon::new(addrs[cc as usize], 8, [v, 0])));
        chip.run_until_quiescent().unwrap();
        let mut total = 0u64;
        chip.for_each_object(|_, &v| total += v);
        prop_assert_eq!(total, expected);
        prop_assert_eq!(chip.counters().io_injected, count);
        prop_assert_eq!(chip.counters().msgs_delivered, count);
    }

    /// Forwarding chains (action 9) multiply the traffic; the delivered
    /// count must equal injections plus stages, and the accumulated value
    /// must equal value × (ttl + 1) per injected operon.
    #[test]
    fn forwarding_chains_balance_flow_counters(
        seeds in prop::collection::vec((0u16..36, 0u16..36, 1u64..10, 0u64..12), 1..40),
    ) {
        let mut chip = chip((6, 6), 4, 64);
        let addrs: Vec<Address> =
            (0..36u16).map(|cc| chip.host_alloc(cc, 0).unwrap()).collect();
        let mut expected = 0u64;
        let ops: Vec<Operon> = seeds
            .iter()
            .map(|&(a, b, v, ttl)| {
                expected += v * (ttl + 1);
                Operon::new(
                    addrs[a as usize],
                    9,
                    [(ttl << TTL_SHIFT) | v, addrs[b as usize].pack()],
                )
            })
            .collect();
        let injected = ops.len() as u64;
        chip.io_load(ops);
        chip.run_until_quiescent().unwrap();
        let mut total = 0u64;
        chip.for_each_object(|_, &v| total += v);
        prop_assert_eq!(total, expected);
        let c = chip.counters();
        prop_assert_eq!(c.msgs_delivered, c.io_injected + c.msgs_staged,
            "deliveries = injections + propagations at quiescence");
        prop_assert_eq!(c.io_injected, injected);
    }

    /// The per-cell delivery loads sum to the global delivery counter.
    #[test]
    fn cell_loads_sum_to_global_counter(
        msgs in prop::collection::vec(0u16..36, 1..150),
    ) {
        let mut chip = chip((6, 6), 4, 64);
        let addrs: Vec<Address> =
            (0..36u16).map(|cc| chip.host_alloc(cc, 0).unwrap()).collect();
        chip.io_load(msgs.iter().map(|&cc| Operon::new(addrs[cc as usize], 8, [1, 0])));
        chip.run_until_quiescent().unwrap();
        let per_cell: u64 = chip.cell_loads().iter().map(|l| l.delivered).sum();
        prop_assert_eq!(per_cell, chip.counters().msgs_delivered);
    }

    /// Determinism as a property: any traffic pattern replayed with the same
    /// seed produces identical cycle counts and counters.
    #[test]
    fn replay_determinism(
        msgs in prop::collection::vec((0u16..36, 1u64..50), 1..80),
        seed in 0u64..500,
    ) {
        let run = || {
            let mut cfg = ChipConfig {
                dims: Dims::new(6, 6),
                ..ChipConfig::small_test()
            };
            cfg.seed = seed;
            let mut chip = Chip::new(cfg, AccProgram);
            let addrs: Vec<Address> =
                (0..36u16).map(|cc| chip.host_alloc(cc, 0).unwrap()).collect();
            chip.io_load(
                msgs.iter().map(|&(cc, v)| Operon::new(addrs[cc as usize], 8, [v, 0])),
            );
            chip.run_until_quiescent().unwrap();
            (chip.cycle(), *chip.counters())
        };
        prop_assert_eq!(run(), run());
    }
}
