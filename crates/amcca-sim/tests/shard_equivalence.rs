//! Property tests of the sharded parallel engine: for arbitrary operon
//! workloads, any shard count must produce results **bit-identical** to the
//! sequential reference engine — final object states, cycle counts, event
//! counters, per-cell loads, activity series, errors, and the Safra
//! detector's statistics.

use amcca_sim::{
    ActivityRecording, Address, Chip, ChipConfig, Counters, Dims, ExecCtx, Operon, Program,
    SimError,
};
use proptest::prelude::*;

/// Workload program exercising every engine surface: fan-out diffusion
/// (action 7), local allocation + placement-RNG routing (action 8), and
/// plain increments (action 9). Payload packs `value | ttl << 48`.
struct StressProgram;

const TTL_SHIFT: u32 = 48;

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

const DIMS: Dims = Dims::new(9, 5);
const N_CELLS: u64 = 45;

impl Program for StressProgram {
    type Object = u64;

    fn fork(&self) -> Self {
        StressProgram
    }

    fn execute(&mut self, ctx: &mut ExecCtx<'_, u64>, op: &Operon) {
        ctx.charge(1);
        let value = op.payload[0] & 0xFFFF;
        let ttl = (op.payload[0] >> TTL_SHIFT) & 0xFF;
        match op.action {
            // Fan-out: add, then forward two children to mixed cells.
            7 => {
                *ctx.obj_mut(op.target.slot).expect("live") += value;
                if ttl > 0 {
                    for k in 0..2u64 {
                        let h = mix(op.payload[1] ^ (ttl << 8) ^ k);
                        let cc = (h % N_CELLS) as u16;
                        ctx.propagate(Operon::new(
                            Address::new(cc, 0),
                            7,
                            [((ttl - 1) << TTL_SHIFT) | value, h],
                        ));
                    }
                }
            }
            // Allocate locally, then route an increment through the
            // placement policy's per-cell RNG (exercises RNG determinism).
            8 => {
                if let Ok(addr) = ctx.alloc(value) {
                    ctx.propagate(Operon::new(addr, 9, [1, 0]));
                }
                let tcc = ctx.choose_alloc_target(0);
                ctx.propagate(Operon::new(Address::new(tcc, 0), 9, [value, 0]));
            }
            9 => match ctx.obj_mut(op.target.slot) {
                Some(v) => *v += value,
                None => ctx.fail(SimError::BadAddress { addr: op.target, action: 9 }),
            },
            other => panic!("unknown action {other}"),
        }
    }
}

#[derive(Debug, PartialEq)]
struct RunOutcome {
    result: Result<u64, SimError>,
    cycle: u64,
    counters: Counters,
    objects: Vec<(u16, u32, u64)>,
    loads: Vec<(u64, u32)>,
    activity: Vec<u16>,
}

fn build(shards: usize, link_buffer: usize, queue_cap: usize, seed: u64) -> Chip<StressProgram> {
    build_adaptive(shards, link_buffer, queue_cap, seed, false)
}

fn build_adaptive(
    shards: usize,
    link_buffer: usize,
    queue_cap: usize,
    seed: u64,
    adaptive: bool,
) -> Chip<StressProgram> {
    build_cfg(shards, link_buffer, queue_cap, seed, adaptive, true)
}

fn build_cfg(
    shards: usize,
    link_buffer: usize,
    queue_cap: usize,
    seed: u64,
    adaptive: bool,
    steal: bool,
) -> Chip<StressProgram> {
    let cfg = ChipConfig {
        dims: DIMS,
        link_buffer,
        task_queue_cap: queue_cap,
        record_activity: ActivityRecording::Counts,
        seed,
        shards,
        adaptive_shards: adaptive,
        // Low enough that hot phases of these 45-cell workloads actually
        // cross it, so adaptive runs exercise both engines (and the steal
        // scheduler's minimum-activity cutoff actually clears).
        shard_break_even: 4,
        work_stealing: steal,
        ..ChipConfig::small_test()
    };
    let mut chip = Chip::new(cfg, StressProgram);
    for cc in 0..N_CELLS as u16 {
        chip.host_alloc(cc, 0).unwrap();
    }
    chip
}

fn run(
    shards: usize,
    link_buffer: usize,
    queue_cap: usize,
    seed: u64,
    adaptive: bool,
    ops: &[Operon],
) -> RunOutcome {
    run_steal(shards, link_buffer, queue_cap, seed, adaptive, true, ops)
}

#[allow(clippy::too_many_arguments)]
fn run_steal(
    shards: usize,
    link_buffer: usize,
    queue_cap: usize,
    seed: u64,
    adaptive: bool,
    steal: bool,
    ops: &[Operon],
) -> RunOutcome {
    let mut chip = build_cfg(shards, link_buffer, queue_cap, seed, adaptive, steal);
    assert_eq!(chip.is_sharded(), shards > 1, "plan engages for every tested shard count");
    chip.io_load(ops.iter().copied());
    let result = chip.run_until_quiescent();
    let mut objects = Vec::new();
    chip.for_each_object(|a, &v| objects.push((a.cc, a.slot, v)));
    RunOutcome {
        result,
        cycle: chip.cycle(),
        counters: *chip.counters(),
        objects,
        loads: chip.cell_loads().iter().map(|l| (l.delivered, l.peak_queue)).collect(),
        activity: chip.activity().counts.clone(),
    }
}

fn workload(seeds: &[(u16, u64, u64, u64, u8)]) -> Vec<Operon> {
    seeds
        .iter()
        .map(|&(cc, v, ttl, h, action)| {
            let action = 7 + (action % 2) as u16; // 7 (fan-out) or 8 (alloc+rng)
            Operon::new(Address::new(cc % N_CELLS as u16, 0), action, [(ttl << TTL_SHIFT) | v, h])
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Sequential (shards = 1) and sharded (2, 3, 8) runs are bit-identical:
    /// same cycles, counters, objects, loads, and activity series — even
    /// under tight buffers where backpressure stalls dominate.
    #[test]
    fn sharded_runs_match_sequential(
        seeds in prop::collection::vec(
            (0u16..N_CELLS as u16, 1u64..8, 0u64..5, any::<u64>(), 0u8..2), 1..24),
        link_buffer in 1usize..3,
        queue_cap in 2usize..40,
        chip_seed in 0u64..1000,
    ) {
        let ops = workload(&seeds);
        let reference = run(1, link_buffer, queue_cap, chip_seed, false, &ops);
        prop_assert!(reference.result.is_ok());
        for shards in [2usize, 3, 8] {
            for adaptive in [false, true] {
                let sharded = run(shards, link_buffer, queue_cap, chip_seed, adaptive, &ops);
                prop_assert_eq!(
                    &reference, &sharded,
                    "shards={} adaptive={} diverged", shards, adaptive
                );
            }
        }
    }

    /// Deterministic work stealing is invisible to every result: steal-on,
    /// steal-off, and sequential runs are bit-identical for K ∈ {1, 2, 4} on
    /// column-skewed workloads (seeds homed in the west third of the mesh,
    /// so one band saturates and the scheduler has something to do).
    #[test]
    fn work_stealing_matches_sequential(
        seeds in prop::collection::vec(
            (0u16..N_CELLS as u16, 1u64..8, 2u64..6, any::<u64>(), 0u8..2), 4..20),
        chip_seed in 0u64..1000,
    ) {
        let skewed: Vec<(u16, u64, u64, u64, u8)> = seeds
            .iter()
            .map(|&(cc, v, ttl, h, a)| ((cc / DIMS.x) * DIMS.x + cc % 3, v, ttl, h, a))
            .collect();
        let ops = workload(&skewed);
        let reference = run_steal(1, 4, 1 << 16, chip_seed, false, false, &ops);
        prop_assert!(reference.result.is_ok());
        for shards in [2usize, 4] {
            for steal in [false, true] {
                let sharded = run_steal(shards, 4, 1 << 16, chip_seed, false, steal, &ops);
                prop_assert_eq!(
                    &reference, &sharded,
                    "shards={} steal={} diverged", shards, steal
                );
            }
        }
    }

    /// The distributed Safra detector behaves identically under sharding:
    /// same detection cycle, same token statistics, same results.
    #[test]
    fn sharded_safra_matches_sequential(
        seeds in prop::collection::vec(
            (0u16..N_CELLS as u16, 1u64..8, 0u64..4, any::<u64>(), 0u8..2), 1..12),
        chip_seed in 0u64..1000,
    ) {
        let ops = workload(&seeds);
        let outcomes: Vec<_> = [1usize, 2, 3, 8]
            .into_iter()
            .map(|shards| {
                let mut chip = build(shards, 4, 1 << 16, chip_seed);
                chip.io_load(ops.iter().copied());
                chip.enable_safra_termination();
                chip.begin_safra_probe();
                chip.run_until_terminated().unwrap();
                let s = chip.safra().unwrap();
                let mut objects = Vec::new();
                chip.for_each_object(|a, &v| objects.push((a.cc, a.slot, v)));
                (
                    chip.cycle(),
                    *chip.counters(),
                    objects,
                    s.rounds,
                    s.token_hops,
                    s.token_requeues,
                    s.detected_at,
                    chip.safra_balance(),
                )
            })
            .collect();
        for o in &outcomes[1..] {
            prop_assert_eq!(&outcomes[0], o);
        }
        prop_assert_eq!(outcomes[0].7, 0, "closed-system accounting balances");
    }
}

/// Errors surface identically: same variant, at the same cycle.
#[test]
fn sharded_error_matches_sequential() {
    let bad = Operon::new(Address::new(40, 7), 9, [1, 0]); // dead slot
    let mut mixed: Vec<Operon> =
        workload(&[(3, 2, 3, 99, 0), (17, 1, 2, 7, 1), (40, 1, 4, 1234, 0)]);
    mixed.push(bad);
    let mut outcomes = Vec::new();
    for shards in [1usize, 3] {
        let mut chip = build(shards, 4, 1 << 16, 42);
        chip.io_load(mixed.iter().copied());
        let err = chip.run_until_quiescent().unwrap_err();
        outcomes.push((err, chip.cycle()));
    }
    assert!(matches!(outcomes[0].0, SimError::BadAddress { .. }));
    assert_eq!(outcomes[0], outcomes[1]);
}

/// A workload too small to ever cross the break-even never pays for the
/// sharded engine: the adaptive run completes entirely sequentially.
#[test]
fn adaptive_small_run_stays_sequential() {
    let ops = workload(&[(3, 2, 0, 5, 0), (11, 1, 0, 9, 0)]); // ttl 0: no fan-out
    let reference = run(1, 4, 1 << 16, 21, false, &ops);
    let mut chip = build_adaptive(4, 4, 1 << 16, 21, true);
    chip.io_load(ops.iter().copied());
    chip.run_until_quiescent().unwrap();
    assert_eq!(chip.sharded_cycles(), 0, "two lonely operons never amortize a barrier");
    assert_eq!(chip.cycle(), reference.cycle);
    assert_eq!(chip.counters(), &reference.counters);
}

/// A hot fan-out workload crosses the break-even: the adaptive run engages
/// the sharded engine mid-run and drops back for the cold tail — with
/// results still bit-identical to the sequential reference.
#[test]
fn adaptive_hot_run_engages_sharded_engine() {
    let seeds: Vec<(u16, u64, u64, u64, u8)> =
        (0..24).map(|i| (i as u16 * 2 % N_CELLS as u16, 3, 7, mix(i), 0)).collect();
    let ops = workload(&seeds);
    let reference = run(1, 4, 1 << 16, 33, false, &ops);
    let adaptive = run(4, 4, 1 << 16, 33, true, &ops);
    assert_eq!(reference, adaptive, "adaptive switching must not change any result");
    let mut chip = build_adaptive(4, 4, 1 << 16, 33, true);
    chip.io_load(ops.iter().copied());
    chip.run_until_quiescent().unwrap();
    assert!(chip.sharded_cycles() > 0, "the hot phase must have run sharded");
    assert!(chip.sharded_cycles() < chip.cycle(), "warm-up and tail ran sequentially");
}

/// The equivalence proptests would be vacuous if the scheduler never fired:
/// a hot column-skewed fan-out workload must actually steal rows — and the
/// stolen run still matches the sequential reference bit for bit, with the
/// owner-attributed band totals conserved across executors.
#[test]
fn skewed_workload_steals_rows_and_stays_identical() {
    // Thirty hot fan-out seeds, all homed in mesh column 0.
    let seeds: Vec<(u16, u64, u64, u64, u8)> =
        (0..30).map(|i| ((i % 5) * DIMS.x, 3, 6, mix(i as u64), 0)).collect();
    let ops = workload(&seeds);
    let reference = run_steal(1, 4, 1 << 16, 33, false, false, &ops);
    let mut chip = build_cfg(3, 4, 1 << 16, 33, false, true);
    chip.io_load(ops.iter().copied());
    chip.run_until_quiescent().unwrap();
    assert!(chip.steal_rows() > 0, "the steal scheduler must have fired");
    assert_eq!(chip.cycle(), reference.cycle, "stealing must not change the cycle count");
    assert_eq!(chip.counters(), &reference.counters);
    let mut objects = Vec::new();
    chip.for_each_object(|a, &v| objects.push((a.cc, a.slot, v)));
    assert_eq!(objects, reference.objects);
    // Work is conserved: executors executed exactly the owners' work, and
    // with stealing on the executor spread is no worse than the band spread.
    let band: u64 = chip.band_active().iter().sum();
    let exec: u64 = chip.exec_active().iter().sum();
    assert_eq!(band, exec, "owner- and executor-attributed totals conserve");
    assert!(band > 0, "the run did compute work on the sharded engine");
    // The same workload with stealing off reports identical results but a
    // fully owner-bound execution.
    let off = run_steal(3, 4, 1 << 16, 33, false, false, &ops);
    assert_eq!(off, reference);
}

/// Frame-mode activity bitmaps (the animation data) are identical too.
#[test]
fn sharded_frames_match_sequential() {
    let ops = workload(&[(1, 3, 4, 5, 0), (20, 2, 3, 11, 1), (44, 1, 4, 23, 0)]);
    let mut frames = Vec::new();
    for shards in [1usize, 4] {
        let mut chip = build(shards, 4, 1 << 16, 7);
        chip.set_activity_recording(ActivityRecording::Frames { stride: 2 });
        chip.io_load(ops.iter().copied());
        chip.run_until_quiescent().unwrap();
        frames.push((chip.activity().counts.clone(), chip.activity().frames.clone()));
    }
    assert!(!frames[0].1.is_empty(), "frames were recorded");
    assert_eq!(frames[0], frames[1]);
}
