//! Adversarial NoC traffic patterns: incast (all-to-one), broadcast-like
//! fan-out, transpose permutation, and column congestion. The YX router
//! must deliver everything exactly once under each, with backpressure but
//! without deadlock — the property the turn-restricted routing guarantees.

use amcca_sim::{Address, Chip, ChipConfig, Coord, Dims, ExecCtx, Operon, Program};

struct CountProgram;

impl Program for CountProgram {
    type Object = u64;

    fn fork(&self) -> Self {
        CountProgram
    }

    fn execute(&mut self, ctx: &mut ExecCtx<'_, u64>, op: &Operon) {
        ctx.charge(1);
        match op.action {
            8 => *ctx.obj_mut(op.target.slot).unwrap() += 1,
            // Fan-out: on delivery, send one operon to each of the four
            // chip corners (amplifies congestion near the source).
            9 => {
                *ctx.obj_mut(op.target.slot).unwrap() += 1;
                for i in 0..4 {
                    let corner = Address::unpack(op.payload[i / 2]);
                    // payload packs two corner addresses; alternate slots.
                    let a = if i % 2 == 0 { corner } else { Address::new(corner.cc, corner.slot) };
                    ctx.propagate(Operon::new(a, 8, [0, 0]));
                }
            }
            other => panic!("unknown action {other}"),
        }
    }
}

fn chip(link_buffer: usize) -> Chip<CountProgram> {
    let cfg = ChipConfig { dims: Dims::new(8, 8), link_buffer, ..ChipConfig::small_test() };
    Chip::new(cfg, CountProgram)
}

#[test]
fn incast_all_to_one_delivers_everything() {
    for buf in [1usize, 4] {
        let mut c = chip(buf);
        let center = c.cfg().dims.id_of(Coord::new(4, 4));
        let a = c.host_alloc(center, 0).unwrap();
        let n = 500u64;
        c.io_load((0..n).map(|_| Operon::new(a, 8, [0, 0])));
        c.run_until_quiescent().unwrap();
        assert_eq!(*c.object(a).unwrap(), n, "buf={buf}");
        assert!(c.counters().net_stalls > 0 || buf > 1, "incast must backpressure tiny buffers");
    }
}

#[test]
fn transpose_permutation_traffic() {
    // Message from (x,y)-cell to (y,x)-cell for every cell: a classic
    // adversarial pattern for dimension-ordered routing (concentrates on
    // the diagonal). All must arrive exactly once.
    let mut c = chip(2);
    let dims = c.cfg().dims;
    let addrs: Vec<Address> = dims.iter_ids().map(|cc| c.host_alloc(cc, 0).unwrap()).collect();
    let ops: Vec<Operon> = dims
        .iter_ids()
        .map(|cc| {
            let p = dims.coord_of(cc);
            let t = dims.id_of(Coord::new(p.y, p.x));
            Operon::new(addrs[t as usize], 8, [0, 0])
        })
        .collect();
    c.io_load(ops);
    c.run_until_quiescent().unwrap();
    let mut total = 0u64;
    c.for_each_object(|_, &v| total += v);
    assert_eq!(total, dims.cell_count() as u64);
    // Every cell received exactly one message (transpose is a permutation).
    c.for_each_object(|_, &v| assert_eq!(v, 1));
}

#[test]
fn fan_out_amplification_converges() {
    let mut c = chip(4);
    let dims = c.cfg().dims;
    let nw = c.host_alloc(dims.id_of(Coord::new(0, 0)), 0).unwrap();
    let se = c.host_alloc(dims.id_of(Coord::new(7, 7)), 0).unwrap();
    let mid = c.host_alloc(dims.id_of(Coord::new(4, 3)), 0).unwrap();
    let k = 50u64;
    c.io_load((0..k).map(|_| Operon::new(mid, 9, [nw.pack(), se.pack()])));
    c.run_until_quiescent().unwrap();
    assert_eq!(*c.object(mid).unwrap(), k);
    // Each trigger fans 4 messages: 2 to nw, 2 to se.
    assert_eq!(*c.object(nw).unwrap(), 2 * k);
    assert_eq!(*c.object(se).unwrap(), 2 * k);
    assert_eq!(c.counters().msgs_staged, 4 * k);
}

#[test]
fn single_column_congestion_is_fair() {
    // All traffic targets the 8 cells of column 3: YX routing funnels
    // everything through vertical links of that column. Round-robin
    // arbitration must serve every input, so all deliveries complete and
    // loads stay equal per target.
    let mut c = chip(2);
    let dims = c.cfg().dims;
    let col: Vec<Address> =
        (0..8).map(|y| c.host_alloc(dims.id_of(Coord::new(3, y)), 0).unwrap()).collect();
    let per_cell = 64u64;
    let ops: Vec<Operon> =
        (0..per_cell).flat_map(|_| col.iter().map(|&a| Operon::new(a, 8, [0, 0]))).collect();
    c.io_load(ops);
    c.run_until_quiescent().unwrap();
    for &a in &col {
        assert_eq!(*c.object(a).unwrap(), per_cell);
    }
}

#[test]
fn rectangular_meshes_route_correctly() {
    // Non-square chips exercise border arithmetic in routing and IO layout.
    for (w, h) in [(16u16, 4u16), (4, 16), (2, 8), (32, 2)] {
        let cfg = ChipConfig { dims: Dims::new(w, h), ..ChipConfig::small_test() };
        let mut c = Chip::new(cfg, CountProgram);
        let dims = c.cfg().dims;
        let addrs: Vec<Address> = dims.iter_ids().map(|cc| c.host_alloc(cc, 0).unwrap()).collect();
        c.io_load(addrs.iter().map(|&a| Operon::new(a, 8, [0, 0])));
        c.run_until_quiescent().unwrap();
        let mut total = 0u64;
        c.for_each_object(|_, &v| total += v);
        assert_eq!(total, dims.cell_count() as u64, "{w}x{h}");
    }
}
