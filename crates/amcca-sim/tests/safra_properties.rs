//! Property tests of the distributed termination detector: for arbitrary
//! diffusion workloads, Safra's token must (a) always detect, (b) never
//! detect before the diffusion's effects are complete, and (c) leave
//! results identical to a plain quiescence run.

use amcca_sim::{Address, Chip, ChipConfig, Dims, ExecCtx, Operon, Program};
use proptest::prelude::*;

/// Action 9: add `value`, and while TTL > 0, forward two children to
/// pseudo-random cells derived from the payload — an exponential diffusion
/// whose total effect is predictable: each seed contributes
/// `value * (2^(ttl+1) - 1)`.
struct FanProgram;

const TTL_SHIFT: u32 = 48;

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

impl Program for FanProgram {
    type Object = u64;

    fn fork(&self) -> Self {
        FanProgram
    }

    fn execute(&mut self, ctx: &mut ExecCtx<'_, u64>, op: &Operon) {
        ctx.charge(1);
        let value = op.payload[0] & 0xFFFF;
        let ttl = (op.payload[0] >> TTL_SHIFT) & 0xFF;
        *ctx.obj_mut(op.target.slot).expect("live") += value;
        if ttl > 0 {
            for k in 0..2u64 {
                let h = mix(op.payload[1] ^ (ttl << 8) ^ k);
                let cc = (h % 36) as u16;
                ctx.propagate(Operon::new(
                    Address::new(cc, 0),
                    9,
                    [((ttl - 1) << TTL_SHIFT) | value, h],
                ));
            }
        }
    }
}

fn build(seed: u64) -> Chip<FanProgram> {
    let cfg = ChipConfig { dims: Dims::new(6, 6), seed, ..ChipConfig::small_test() };
    let mut chip = Chip::new(cfg, FanProgram);
    for cc in 0..36u16 {
        chip.host_alloc(cc, 0).unwrap();
    }
    chip
}

fn total(chip: &Chip<FanProgram>) -> u64 {
    let mut t = 0;
    chip.for_each_object(|_, &v| t += v);
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Safra detects every terminating diffusion, at a point where all of
    /// its effects are already visible, and never corrupts results.
    #[test]
    fn safra_detects_exactly_like_quiescence(
        seeds in prop::collection::vec((0u16..36, 1u64..8, 0u64..5, any::<u64>()), 1..20),
        chip_seed in 0u64..100,
    ) {
        let load = |chip: &mut Chip<FanProgram>| {
            let expected: u64 = seeds
                .iter()
                .map(|&(_, v, ttl, _)| v * ((1u64 << (ttl + 1)) - 1))
                .sum();
            chip.io_load(seeds.iter().map(|&(cc, v, ttl, h)| {
                Operon::new(Address::new(cc, 0), 9, [(ttl << TTL_SHIFT) | v, h])
            }));
            expected
        };

        // Baseline: quiescence.
        let mut base = build(chip_seed);
        let expected = load(&mut base);
        base.run_until_quiescent().unwrap();
        prop_assert_eq!(total(&base), expected);

        // Safra run on the identical workload.
        let mut chip = build(chip_seed);
        load(&mut chip);
        chip.enable_safra_termination();
        chip.begin_safra_probe();
        chip.run_until_terminated().unwrap();
        // (b) at detection, every effect is present — nothing in flight.
        prop_assert_eq!(total(&chip), expected, "no effect may be outstanding at detection");
        let s = chip.safra().unwrap();
        prop_assert!(s.terminated);
        // Global message balance: Σ mc over all cells is zero.
        prop_assert_eq!(chip.safra_balance(), 0, "closed-system accounting must balance");
        // (a) detection happened at or after true termination.
        prop_assert!(chip.cycle() >= base.cycle());
    }

    /// Re-probing across segments keeps detecting correctly.
    #[test]
    fn safra_multi_segment_detection(
        batches in prop::collection::vec(
            prop::collection::vec((0u16..36, 1u64..5), 1..8), 1..4),
    ) {
        let mut chip = build(7);
        chip.enable_safra_termination();
        let mut expected = 0u64;
        for batch in &batches {
            expected += batch.iter().map(|&(_, v)| v).sum::<u64>();
            chip.io_load(batch.iter().map(|&(cc, v)| {
                Operon::new(Address::new(cc, 0), 9, [v, 0]) // ttl 0: no fan-out
            }));
            chip.begin_safra_probe();
            chip.run_until_terminated().unwrap();
            prop_assert_eq!(total(&chip), expected, "per-segment effects complete");
        }
    }
}
