//! The whole-chip cycle-level simulation loop.
//!
//! One simulation cycle comprises three phases, matching the paper's §4
//! timing rules:
//!
//! 1. **Network** — every router output forwards at most one operon one hop
//!    along its YX route; arrived operons eject into the target cell's task
//!    queue. "In a single simulation cycle, a message can traverse one hop."
//! 2. **Compute** — every CC performs at most one unit of work: retire one
//!    instruction of the running action, or stage one `propagate`d operon
//!    into its router ("a single CC can perform either of the two
//!    operations: a computing instruction, or the creation and staging of a
//!    new message").
//! 3. **IO** — every IO cell injects at most one pending operon into its
//!    border cell. "Every cycle, each IO Cell reads an edge ... and sends it
//!    to its connected CC."
//!
//! A cell that performed compute-phase work counts as *active* for the cycle
//! (the quantity plotted in the paper's Figures 6–7).

use crate::cell::Cell;
use crate::config::ChipConfig;
use crate::error::SimError;
use crate::geom::{yx_route_step, Dims};
use crate::iocell::{IoCell, IoSystem};
use crate::operon::{Address, Operon};
use crate::placement::PlacementTable;
use crate::program::{ExecCtx, Program};
use crate::rng::SplitMix64;
use crate::router::{NUM_OUTPUTS, NUM_PORTS, OUT_EJECT, PORT_IO, PORT_LOCAL};
use crate::safra::{decode_token, initiator_detects, token_operon, CellTd, SafraState, ACT_TOKEN};
use crate::shard::ShardPlan;
use crate::stats::{ActivityRecording, ActivitySeries, CellLoad, Counters};

/// One resolved network-phase move; decided for all cells first, then applied
/// (so every decision sees the same start-of-cycle state).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Move {
    /// Forward the head of `src`'s `port` FIFO one hop to `dst`'s `in_port`.
    Hop {
        /// Source cell id.
        src: u16,
        /// Source input-FIFO index holding the flit.
        port: u8,
        /// Destination (neighbouring) cell id.
        dst: u16,
        /// Destination input-FIFO index the flit arrives on.
        in_port: u8,
    },
    /// Eject the head of `cell`'s `port` FIFO into its local task queue.
    Deliver {
        /// The arriving flit's cell id.
        cell: u16,
        /// Input-FIFO index holding the arrived flit.
        port: u8,
    },
}

/// A simulated AM-CCA chip running program `P`.
///
/// Fields are `pub(crate)` so the sharded parallel engine (the crate's
/// `parallel` module) can split-borrow them across worker threads.
pub struct Chip<P: Program> {
    pub(crate) cfg: ChipConfig,
    pub(crate) placement: PlacementTable,
    pub(crate) cells: Vec<Cell<P::Object>>,
    pub(crate) io: IoSystem,
    pub(crate) program: P,
    pub(crate) cycle: u64,
    pub(crate) counters: Counters,
    pub(crate) activity: ActivitySeries,
    /// Operons inside routers (staged or in flight).
    pub(crate) in_network: u64,
    /// Operons delivered but not yet picked up.
    pub(crate) queued_tasks: u64,
    /// Cells currently occupied by an action.
    pub(crate) busy: u32,
    pub(crate) error: Option<SimError>,
    moves: Vec<Move>,
    pub(crate) frame_scratch: Vec<u64>,
    /// Distributed termination detection (Safra token), when enabled.
    pub(crate) safra: Option<SafraState>,
    /// True while a termination token is circulating.
    pub(crate) token_alive: bool,
    /// Per-cell load counters (deliveries, queue peaks).
    pub(crate) loads: Vec<CellLoad>,
    /// Active-cell count of the most recent cycle (drives the adaptive
    /// engine switch; not part of [`Counters`], so shard counts and engine
    /// choices stay invisible to result comparisons).
    pub(crate) last_active: u32,
    /// Cycles executed on the sharded engine (diagnostics for the adaptive
    /// switch; deliberately not part of [`Counters`]).
    pub(crate) sharded_cycles: u64,
    /// Mesh rows reassigned by the work-stealing scheduler, summed over all
    /// sharded cycles (diagnostics; not part of [`Counters`]).
    pub(crate) steal_rows: u64,
    /// Owner-attributed active-cell totals per column band, summed over all
    /// sharded cycles: index `s` counts the work *belonging* to band `s`
    /// regardless of which worker executed it. Sized lazily by the sharded
    /// engine (empty until it runs). Diagnostics; not part of [`Counters`].
    pub(crate) band_active: Vec<u64>,
    /// Executor-attributed active-cell totals per worker: index `s` counts
    /// the work worker `s` actually executed (own rows plus stolen ones).
    /// With stealing off this equals [`Chip::band_active`]. Diagnostics; not
    /// part of [`Counters`].
    pub(crate) exec_active: Vec<u64>,
}

/// Consecutive cycles above/below [`ChipConfig::shard_break_even`] required
/// before the adaptive engine switches up/down. Hysteresis: both directions
/// use the same window and the same measured active-cell count, so the
/// switch cannot thrash on a workload hovering at the threshold.
pub(crate) const ADAPT_WINDOW: u32 = 16;

// ----------------------------------------------------------------------
// Shared per-cell phase logic.
//
// These free functions are the single source of truth for what one cell does
// in each phase of a cycle. The sequential `Chip::step` path and the sharded
// parallel engine both call them, which is what makes the two engines
// bit-identical by construction: a shard worker runs exactly this code over
// its own cells, and every side effect that is not cell-local is surfaced
// through the explicit outputs (`Move` lists, `ComputeFx`, return values) so
// the caller can aggregate it deterministically.
// ----------------------------------------------------------------------

/// What the Safra token did at the cell that held it this cycle. The caller
/// owns the chip-global detector scalars and applies the matching update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokenStep {
    /// Cell was not passive: token re-queued behind pending work.
    Requeued,
    /// Non-initiator forwarded the token along the ring.
    Forwarded,
    /// Initiator's probe failed: a fresh white probe was launched.
    Restarted,
    /// Initiator detected termination; the token retires.
    Detected,
}

/// Non-cell-local side effects of one cell's compute phase, reported as
/// deltas so per-shard sums merge into the chip totals exactly.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ComputeFx {
    /// Change in the number of delivered-but-unconsumed tasks.
    pub d_queued: i64,
    /// Change in the number of busy cells.
    pub d_busy: i64,
    /// Change in the number of operons inside routers.
    pub d_in_network: i64,
    /// Safra-token action performed by this cell, if it held the token.
    pub token: Option<TokenStep>,
}

/// Decide the network-phase moves of one cell: serve each input FIFO in the
/// cycle's rotated round-robin order, granting at most one flit per output
/// port, subject to start-of-cycle credits. `accepts(nb, in_port)` answers
/// whether neighbour `nb` had a free slot on `in_port` at cycle start (the
/// parallel engine answers cross-shard probes from published credit frames).
#[allow(clippy::too_many_arguments)]
pub(crate) fn decide_cell_moves<T>(
    cell: &Cell<T>,
    src: u16,
    cycle: u64,
    dims: Dims,
    n_cells: usize,
    task_queue_cap: usize,
    accepts: &mut dyn FnMut(u16, usize) -> bool,
    moves: &mut Vec<Move>,
    counters: &mut Counters,
    error: &mut Option<SimError>,
) {
    if cell.router.total() == 0 {
        return;
    }
    let mut out_used = [false; NUM_OUTPUTS];
    let rot = (cycle as usize).wrapping_add(src as usize);
    for k in 0..NUM_PORTS {
        let port = (k + rot) % NUM_PORTS;
        let Some(head) = cell.router.front(port) else { continue };
        let tcc = head.target.cc;
        if tcc as usize >= n_cells {
            if error.is_none() {
                *error = Some(SimError::BadTargetCell { cc: tcc });
            }
            continue;
        }
        if tcc == src {
            // Ejection port: deliver to the local task queue.
            if out_used[OUT_EJECT] {
                continue;
            }
            if cell.task_queue.len() < task_queue_cap {
                out_used[OUT_EJECT] = true;
                moves.push(Move::Deliver { cell: src, port: port as u8 });
            } else {
                counters.deliver_stalls += 1;
            }
        } else {
            let dir = yx_route_step(cell.coord, dims.coord_of(tcc))
                .expect("non-local target must need a hop");
            let out = dir.index();
            if out_used[out] {
                continue;
            }
            let nb = dims.neighbor(src, dir).expect("YX minimal route never leaves the mesh");
            let in_port = dir.opposite().index();
            if accepts(nb, in_port) {
                out_used[out] = true;
                moves.push(Move::Hop { src, port: port as u8, dst: nb, in_port: in_port as u8 });
            } else {
                counters.net_stalls += 1;
            }
        }
    }
}

/// Run one cell's compute phase: pick up a task if idle (executing the action
/// body, or handling the Safra token), then retire one instruction or stage
/// one outgoing operon. Returns whether the cell did work (is *active*).
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_cell<P: Program>(
    cell: &mut Cell<P::Object>,
    i: usize,
    safra_on: bool,
    program: &mut P,
    counters: &mut Counters,
    cfg: &ChipConfig,
    placement: &PlacementTable,
    error: &mut Option<SimError>,
    fx: &mut ComputeFx,
) -> bool {
    if !cell.busy {
        if let Some(op) = cell.task_queue.pop_front() {
            fx.d_queued -= 1;
            if op.action == ACT_TOKEN {
                // Safra Rule 1: hold the token until passive, then add our
                // count, colour it, whiten ourselves, and forward — or, at
                // the initiator, run the Rule-2 detection check. Global
                // detector scalars are the caller's via `fx.token`.
                debug_assert!(safra_on, "token without detector");
                cell.busy = true;
                cell.remaining = 1; // one bookkeeping instruction
                fx.d_busy += 1;
                if cell.task_queue.is_empty() {
                    let (q, colour) = decode_token(&op);
                    let td = cell.td;
                    if i == 0 {
                        if initiator_detects(q, colour, td) {
                            fx.token = Some(TokenStep::Detected);
                        } else {
                            // Unsuccessful probe: whiten, fresh round.
                            fx.token = Some(TokenStep::Restarted);
                            cell.td.black = false;
                            let next = cfg.dims.serpentine_next(0);
                            cell.outbox.push_back(token_operon(
                                next,
                                0,
                                crate::safra::Colour::White,
                            ));
                        }
                    } else {
                        let fwd_q = q + td.mc;
                        let fwd_colour = if td.black || colour == crate::safra::Colour::Black {
                            crate::safra::Colour::Black
                        } else {
                            crate::safra::Colour::White
                        };
                        cell.td.black = false;
                        let next = cfg.dims.serpentine_next(i as u16);
                        cell.outbox.push_back(token_operon(next, fwd_q, fwd_colour));
                        fx.token = Some(TokenStep::Forwarded);
                    }
                } else {
                    // Not passive: poll — requeue the token behind the
                    // pending work.
                    fx.token = Some(TokenStep::Requeued);
                    cell.task_queue.push_back(op);
                    fx.d_queued += 1;
                }
            } else {
                if safra_on {
                    cell.td.on_consume();
                }
                let mut charge = cfg.cost.dispatch;
                {
                    let mut ctx = ExecCtx::new(
                        cell.id,
                        cell.coord,
                        &mut cell.memory,
                        &mut cell.outbox,
                        &mut charge,
                        counters,
                        &cfg.cost,
                        placement,
                        &mut cell.rng,
                        error,
                    );
                    program.execute(&mut ctx, &op);
                }
                cell.busy = true;
                cell.remaining = charge.max(1);
                fx.d_busy += 1;
            }
        } else {
            return false;
        }
    }
    debug_assert!(cell.busy);
    let mut did_work = false;
    if cell.remaining > 0 {
        cell.remaining -= 1;
        counters.instrs += 1;
        did_work = true;
    } else if let Some(&op) = cell.outbox.front() {
        if cell.router.accepts_now(PORT_LOCAL) {
            cell.outbox.pop_front();
            cell.router.push(PORT_LOCAL, op);
            fx.d_in_network += 1;
            counters.msgs_staged += 1;
            if op.action != ACT_TOKEN && safra_on {
                cell.td.on_send();
            }
            did_work = true;
        } else {
            counters.stage_stalls += 1;
        }
    }
    if cell.remaining == 0 && cell.outbox.is_empty() {
        cell.busy = false;
        fx.d_busy -= 1;
    }
    did_work
}

/// Apply a cell's [`TokenStep`] to the chip-global detector scalars. Both
/// engines route token effects through here so the bookkeeping is identical.
pub(crate) fn apply_token_step(
    step: TokenStep,
    s: &mut SafraState,
    token_alive: &mut bool,
    cycle_now: u64,
) {
    match step {
        TokenStep::Requeued => s.token_requeues += 1,
        TokenStep::Forwarded => {}
        TokenStep::Restarted => s.rounds += 1,
        TokenStep::Detected => {
            s.terminated = true;
            s.detected_at = Some(cycle_now);
            *token_alive = false; // token retired
        }
    }
}

/// Run one IO cell's phase: inject its head operon into the attached border
/// cell's router if the IO port has a free slot. Returns whether an operon
/// was injected (the caller updates `io.pending` / `in_network`).
pub(crate) fn io_cell_step<T>(
    io_cell: &mut IoCell,
    border: &mut Cell<T>,
    safra_on: bool,
    counters: &mut Counters,
) -> bool {
    let Some(&op) = io_cell.queue.front() else { return false };
    if !border.router.accepts_now(PORT_IO) {
        return false;
    }
    io_cell.queue.pop_front();
    border.router.push(PORT_IO, op);
    counters.io_injected += 1;
    // The IO-cell-to-CC link traversal is a hop like any other.
    counters.hops += 1;
    // Termination accounting: an IO injection is a send by the environment,
    // attributed to the border cell so the message count stays closed.
    if safra_on {
        border.td.on_send();
    }
    true
}

impl<P: Program> Chip<P> {
    /// Build a chip from its configuration and program (action set).
    pub fn new(cfg: ChipConfig, program: P) -> Self {
        let placement = PlacementTable::new(cfg.ghost_placement, cfg.dims);
        let root_rng = SplitMix64::new(cfg.seed);
        let cells = cfg
            .dims
            .iter_ids()
            .map(|id| {
                Cell::new(
                    id,
                    cfg.dims.coord_of(id),
                    cfg.arena_capacity,
                    cfg.link_buffer,
                    root_rng.fork(id as u64),
                )
            })
            .collect();
        let io = IoSystem::new(&cfg);
        let stride = match cfg.record_activity {
            ActivityRecording::Frames { stride } => stride,
            _ => 0,
        };
        let words = (cfg.cell_count() as usize).div_ceil(64);
        Chip {
            placement,
            cells,
            io,
            program,
            cycle: 0,
            counters: Counters::default(),
            activity: ActivitySeries { frame_stride: stride, ..Default::default() },
            in_network: 0,
            queued_tasks: 0,
            busy: 0,
            error: None,
            moves: Vec::with_capacity(cfg.cell_count() as usize),
            frame_scratch: vec![0u64; words],
            safra: None,
            token_alive: false,
            loads: vec![CellLoad::default(); cfg.cell_count() as usize],
            last_active: 0,
            sharded_cycles: 0,
            steal_rows: 0,
            band_active: Vec::new(),
            exec_active: Vec::new(),
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Host-side (untimed) interface: graph construction and inspection.
    // ------------------------------------------------------------------

    /// Allocate an object on cell `cc` without charging simulation time.
    /// Used for host-side graph construction ("the graph is constructed by
    /// first allocating the root RPVO objects on the AM-CCA chip", §4).
    pub fn host_alloc(&mut self, cc: u16, value: P::Object) -> Result<Address, SimError> {
        if cc as u32 >= self.cfg.cell_count() {
            return Err(SimError::BadTargetCell { cc });
        }
        match self.cells[cc as usize].memory.alloc(value) {
            Ok(slot) => Ok(Address::new(cc, slot)),
            Err(_) => Err(SimError::OutOfMemory { origin_cc: cc, retries: 0 }),
        }
    }

    /// Free an object without charging simulation time, returning its value.
    /// Used by host-side restructuring between runs (e.g. collapsing the
    /// extra roots of a demoted rhizome back into the primary); the slot is
    /// recycled by later allocations. `None` if the address was not live.
    pub fn host_free(&mut self, addr: Address) -> Option<P::Object> {
        self.cells.get_mut(addr.cc as usize)?.memory.free(addr.slot)
    }

    /// Host-side read of any object in the PGAS (for verification only).
    pub fn object(&self, addr: Address) -> Option<&P::Object> {
        self.cells.get(addr.cc as usize)?.memory.get(addr.slot)
    }

    /// Host-side mutable access (used to seed initial state, e.g. the BFS
    /// root's level).
    pub fn object_mut(&mut self, addr: Address) -> Option<&mut P::Object> {
        self.cells.get_mut(addr.cc as usize)?.memory.get_mut(addr.slot)
    }

    /// Visit every live object on the chip.
    pub fn for_each_object(&self, mut f: impl FnMut(Address, &P::Object)) {
        for cell in &self.cells {
            for (slot, obj) in cell.memory.iter() {
                f(Address::new(cell.id, slot), obj);
            }
        }
    }

    /// Visit every live object on the chip mutably (host-side, untimed; used
    /// to patch stored addresses when host restructuring frees objects).
    pub fn for_each_object_mut(&mut self, mut f: impl FnMut(Address, &mut P::Object)) {
        for cell in &mut self.cells {
            for (slot, obj) in cell.memory.iter_mut() {
                f(Address::new(cell.id, slot), obj);
            }
        }
    }

    /// Queue a stream of operons for injection through the IO channels,
    /// distributed round-robin over the IO cells.
    pub fn io_load(&mut self, ops: impl IntoIterator<Item = Operon>) {
        self.io.load(ops);
    }

    /// Queue operons on one specific IO cell (ordered streams, tests).
    pub fn io_load_to(&mut self, io_index: usize, ops: impl IntoIterator<Item = Operon>) {
        self.io.load_to(io_index, ops);
    }

    /// Number of IO cells on this chip.
    pub fn io_cell_count(&self) -> usize {
        self.io.cells.len()
    }

    /// Directly enqueue an operon into its target cell's task queue,
    /// bypassing the network. Host/debug facility for unit tests; not used
    /// by the paper experiments.
    pub fn host_inject(&mut self, op: Operon) {
        let cc = op.target.cc as usize;
        assert!(cc < self.cells.len(), "host_inject: bad target cell");
        if op.action != ACT_TOKEN && self.safra.is_some() {
            self.cells[cc].td.on_send();
        }
        self.cells[cc].task_queue.push_back(op);
        self.queued_tasks += 1;
    }

    // ------------------------------------------------------------------
    // Simulation loop.
    // ------------------------------------------------------------------

    /// Advance the chip by one cycle.
    pub fn step(&mut self) {
        self.network_phase();
        let active = self.compute_phase();
        self.io_phase();
        self.record_activity(active);
        self.last_active = active;
        self.cycle += 1;
    }

    fn network_phase(&mut self) {
        for cell in &mut self.cells {
            cell.router.begin_cycle();
        }
        let dims = self.cfg.dims;
        let n = self.cells.len();
        let cap = self.cfg.task_queue_cap;
        let cyc = self.cycle;
        let Chip { cells, counters, error, moves, .. } = self;
        moves.clear();
        for src in 0..n {
            let cell = &cells[src];
            let mut accepts = |nb: u16, in_port: usize| cells[nb as usize].router.accepts(in_port);
            decide_cell_moves(
                cell,
                src as u16,
                cyc,
                dims,
                n,
                cap,
                &mut accepts,
                moves,
                counters,
                error,
            );
        }
        for i in 0..self.moves.len() {
            match self.moves[i] {
                Move::Hop { src, port, dst, in_port } => {
                    let op = self.cells[src as usize].router.pop(port as usize);
                    if op.action == ACT_TOKEN {
                        if let Some(s) = self.safra.as_mut() {
                            s.token_hops += 1;
                        }
                    }
                    self.cells[dst as usize].router.push(in_port as usize, op);
                    self.counters.hops += 1;
                }
                Move::Deliver { cell, port } => {
                    let op = self.cells[cell as usize].router.pop(port as usize);
                    self.cells[cell as usize].task_queue.push_back(op);
                    self.in_network -= 1;
                    self.queued_tasks += 1;
                    self.counters.msgs_delivered += 1;
                    let load = &mut self.loads[cell as usize];
                    load.delivered += 1;
                    load.peak_queue =
                        load.peak_queue.max(self.cells[cell as usize].task_queue.len() as u32);
                }
            }
        }
    }

    /// Returns the number of cells that performed work this cycle.
    fn compute_phase(&mut self) -> u32 {
        let record_frames = matches!(self.cfg.record_activity, ActivityRecording::Frames { .. });
        if record_frames {
            self.frame_scratch.fill(0);
        }
        let mut active = 0u32;
        let cycle_now = self.cycle;
        let safra_on = self.safra.is_some();
        let Chip {
            cells,
            program,
            counters,
            error,
            placement,
            cfg,
            queued_tasks,
            in_network,
            busy,
            frame_scratch,
            safra,
            token_alive,
            ..
        } = self;
        let mut totals = ComputeFx::default();
        for (i, cell) in cells.iter_mut().enumerate() {
            let mut fx = ComputeFx::default();
            let did_work =
                compute_cell(cell, i, safra_on, program, counters, cfg, placement, error, &mut fx);
            if let Some(step) = fx.token {
                apply_token_step(
                    step,
                    safra.as_mut().expect("token without detector"),
                    token_alive,
                    cycle_now,
                );
            }
            totals.d_queued += fx.d_queued;
            totals.d_busy += fx.d_busy;
            totals.d_in_network += fx.d_in_network;
            if did_work {
                active += 1;
                if record_frames {
                    frame_scratch[i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        *queued_tasks = (*queued_tasks as i64 + totals.d_queued) as u64;
        *busy = (*busy as i64 + totals.d_busy) as u32;
        *in_network = (*in_network as i64 + totals.d_in_network) as u64;
        active
    }

    fn io_phase(&mut self) {
        let safra_on = self.safra.is_some();
        let Chip { cells, io, counters, in_network, .. } = self;
        let IoSystem { cells: io_cells, pending, .. } = io;
        for io_cell in io_cells.iter_mut() {
            let cc = io_cell.cc as usize;
            if io_cell_step(io_cell, &mut cells[cc], safra_on, counters) {
                *pending -= 1;
                *in_network += 1;
            }
        }
    }

    fn record_activity(&mut self, active: u32) {
        match self.cfg.record_activity {
            ActivityRecording::Off => {}
            ActivityRecording::Counts => {
                self.activity.counts.push(active.min(u16::MAX as u32) as u16);
            }
            ActivityRecording::Frames { stride } => {
                self.activity.counts.push(active.min(u16::MAX as u32) as u16);
                if stride > 0 && self.cycle.is_multiple_of(stride as u64) {
                    self.activity.frames.push(self.frame_scratch.clone());
                }
            }
        }
    }

    /// True when no work remains anywhere: routers, task queues, running
    /// actions, and IO streams are all empty. This is the terminator's
    /// quiescence condition.
    pub fn is_quiescent(&self) -> bool {
        self.in_network == 0 && self.queued_tasks == 0 && self.busy == 0 && self.io.pending == 0
    }

    /// Whether runs will use the sharded parallel engine (more than one
    /// non-empty column band after clamping to the mesh width).
    pub fn is_sharded(&self) -> bool {
        self.cfg.shards > 1 && ShardPlan::new(self.cfg.dims, self.cfg.shards).shard_count() > 1
    }

    /// Run until quiescent; returns the number of cycles this run consumed.
    ///
    /// With [`ChipConfig::shards`] > 1 the run executes on the sharded
    /// parallel engine; results (cycle count, counters, object states,
    /// activity, energy) are bit-identical to the sequential path. With
    /// [`ChipConfig::adaptive_shards`] (the default) the run starts on the
    /// sequential engine and switches to the sharded one only while measured
    /// per-cycle activity stays above [`ChipConfig::shard_break_even`] — so
    /// small increments and diffusion tails skip the barrier cost entirely,
    /// still with bit-identical results (the engines are interchangeable at
    /// any cycle boundary).
    pub fn run_until_quiescent(&mut self) -> Result<u64, SimError> {
        use crate::parallel::{run_sharded, RunGoal, SegmentEnd};
        let start = self.cycle;
        if self.is_sharded() && !self.cfg.adaptive_shards {
            run_sharded(self, RunGoal::Quiescence, start, false)?;
            return Ok(self.cycle - start);
        }
        let adaptive = self.is_sharded();
        let mut hot_streak = 0u32;
        loop {
            // Sequential engine while cold (or always, when not sharded).
            while !self.is_quiescent() {
                if let Some(e) = self.error.take() {
                    return Err(e);
                }
                if self.cycle - start >= self.cfg.max_cycles {
                    return Err(SimError::CycleLimitExceeded { limit: self.cfg.max_cycles });
                }
                if adaptive && hot_streak >= ADAPT_WINDOW {
                    break;
                }
                self.step();
                if self.last_active >= self.cfg.shard_break_even {
                    hot_streak += 1;
                } else {
                    hot_streak = 0;
                }
            }
            if self.is_quiescent() {
                if let Some(e) = self.error.take() {
                    return Err(e);
                }
                return Ok(self.cycle - start);
            }
            // Hot for a full window: hand the run to the sharded engine. It
            // returns either at the goal or after a cold window (yield).
            hot_streak = 0;
            match run_sharded(self, RunGoal::Quiescence, start, true)? {
                SegmentEnd::Done => return Ok(self.cycle - start),
                SegmentEnd::Yielded => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Distributed termination detection (Safra token).
    // ------------------------------------------------------------------

    /// Enable Safra-token termination detection. Must be called while no
    /// application messages are in flight (e.g. right after construction or
    /// between quiescent segments) so the message accounting starts closed.
    /// IO streams may already be loaded — they are counted on injection.
    pub fn enable_safra_termination(&mut self) {
        assert!(
            self.in_network == 0 && self.queued_tasks == 0 && self.busy == 0,
            "Safra accounting must start with no in-flight activity"
        );
        assert!(self.cfg.cell_count() >= 2, "token ring needs at least two cells");
        if self.safra.is_none() {
            self.safra = Some(SafraState::new());
            for cell in &mut self.cells {
                cell.td = CellTd::start();
            }
        }
    }

    /// Whether the distributed termination detector is enabled.
    pub fn safra_enabled(&self) -> bool {
        self.safra.is_some()
    }

    /// Start (or restart) a detection probe: injects the token at the
    /// initiator. No-op if a token is already circulating.
    pub fn begin_safra_probe(&mut self) {
        assert!(self.safra.is_some(), "enable_safra_termination first");
        if self.token_alive {
            return;
        }
        let s = self.safra.as_mut().unwrap();
        s.terminated = false;
        s.detected_at = None;
        // The initiator's state must be conservative at probe start.
        self.cells[0].td.black = true;
        self.token_alive = true;
        // Seed the probe: a black token so round 1 can never detect.
        let op = token_operon(0, 0, crate::safra::Colour::Black);
        self.cells[0].task_queue.push_back(op);
        self.queued_tasks += 1;
    }

    /// Detector state (counters, rounds, overhead), if enabled.
    pub fn safra(&self) -> Option<&SafraState> {
        self.safra.as_ref()
    }

    /// Global Safra message balance: Σ `mc` over all cells. Zero exactly when
    /// the closed-system accounting balances (no operon in flight).
    pub fn safra_balance(&self) -> i64 {
        self.cells.iter().map(|c| c.td.mc).sum()
    }

    /// Run until the *distributed* detector declares termination. With the
    /// token circulating, [`Self::is_quiescent`] never holds, so this is the
    /// only correct way to run a Safra-enabled chip.
    pub fn run_until_terminated(&mut self) -> Result<u64, SimError> {
        assert!(self.safra.is_some(), "enable_safra_termination first");
        assert!(self.token_alive, "no probe running; call begin_safra_probe");
        let start = self.cycle;
        if self.is_sharded() {
            // The circulating token keeps at least one cell active every few
            // cycles, so the quiescence-based adaptive switch does not apply;
            // Safra runs stay on the sharded engine end to end.
            crate::parallel::run_sharded(
                self,
                crate::parallel::RunGoal::SafraTermination,
                start,
                false,
            )?;
            return Ok(self.cycle - start);
        }
        while !self.safra.as_ref().unwrap().terminated {
            if let Some(e) = self.error.take() {
                return Err(e);
            }
            if self.cycle - start >= self.cfg.max_cycles {
                return Err(SimError::CycleLimitExceeded { limit: self.cfg.max_cycles });
            }
            self.step();
        }
        Ok(self.cycle - start)
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /// The chip configuration.
    pub fn cfg(&self) -> &ChipConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cumulative event counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Recorded per-cycle activity (if recording is enabled).
    pub fn activity(&self) -> &ActivitySeries {
        &self.activity
    }

    /// Take the recorded activity series, leaving an empty one.
    pub fn take_activity(&mut self) -> ActivitySeries {
        let stride = self.activity.frame_stride;
        std::mem::replace(
            &mut self.activity,
            ActivitySeries { frame_stride: stride, ..Default::default() },
        )
    }

    /// Switch activity recording at run time (e.g. only for the increment a
    /// figure needs).
    pub fn set_activity_recording(&mut self, mode: ActivityRecording) {
        self.cfg.record_activity = mode;
        if let ActivityRecording::Frames { stride } = mode {
            self.activity.frame_stride = stride;
        }
    }

    /// The program (action set) running on the chip.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Mutable access to the program (e.g. to read app counters).
    pub fn program_mut(&mut self) -> &mut P {
        &mut self.program
    }

    /// Total energy consumed so far, in microjoules.
    pub fn energy_uj(&self) -> f64 {
        self.cfg.energy.total_uj(&self.counters, self.cfg.cell_count() as u64, self.cycle)
    }

    /// Snapshot `(cycle, counters)` for computing run-segment deltas.
    pub fn snapshot(&self) -> (u64, Counters) {
        (self.cycle, self.counters)
    }

    /// Number of operons currently queued at one cell (diagnostics).
    pub fn cell_queue_len(&self, cc: u16) -> usize {
        self.cells[cc as usize].task_queue.len()
    }

    /// Per-cell load counters (deliveries, queue peaks), indexed by cell id.
    pub fn cell_loads(&self) -> &[CellLoad] {
        &self.loads
    }

    /// Reset per-cell load counters (e.g. between experiment segments).
    pub fn reset_cell_loads(&mut self) {
        self.loads.fill(CellLoad::default());
    }

    /// Objects currently allocated at one cell (diagnostics / load maps).
    pub fn cell_object_count(&self, cc: u16) -> u32 {
        self.cells[cc as usize].memory.len()
    }

    /// Cycles executed on the sharded engine so far (the remainder ran
    /// sequentially). Diagnostics for the adaptive engine switch — the split
    /// never affects simulation results, only wall-clock time.
    pub fn sharded_cycles(&self) -> u64 {
        self.sharded_cycles
    }

    /// Mesh rows reassigned by the deterministic work-stealing scheduler,
    /// summed over all sharded cycles. Zero with stealing off (or when no
    /// cycle was imbalanced enough to steal). Diagnostics only — stealing
    /// never affects simulation results.
    pub fn steal_rows(&self) -> u64 {
        self.steal_rows
    }

    /// Owner-attributed active-cell totals per column band, summed over all
    /// sharded cycles: entry `s` counts the compute work *belonging* to band
    /// `s`, regardless of which worker executed it. Empty until the sharded
    /// engine has run. The max/mean ratio of these totals measures the
    /// workload's inherent band imbalance (what a static partition would
    /// suffer).
    pub fn band_active(&self) -> &[u64] {
        &self.band_active
    }

    /// Executor-attributed active-cell totals per worker: entry `s` counts
    /// the work worker `s` actually executed (own rows plus stolen ones,
    /// minus donated ones). With stealing off this equals
    /// [`Chip::band_active`]; with stealing on, its max/mean ratio measures
    /// the residual imbalance after the scheduler levels the load.
    pub fn exec_active(&self) -> &[u64] {
        &self.exec_active
    }
}

/// A minimal program used by the chip's own unit tests: objects are `u64`
/// counters; action 10 increments the target and optionally forwards a copy.
#[cfg(test)]
pub(crate) struct CounterProgram;

#[cfg(test)]
impl Program for CounterProgram {
    type Object = u64;

    fn fork(&self) -> Self {
        CounterProgram
    }

    fn execute(&mut self, ctx: &mut ExecCtx<'_, u64>, op: &Operon) {
        match op.action {
            // Increment the target object by payload[0].
            10 => {
                ctx.charge(1);
                let tgt = op.target;
                match ctx.obj_mut(tgt.slot) {
                    Some(v) => *v += op.payload[0],
                    None => ctx.fail(SimError::BadAddress { addr: tgt, action: 10 }),
                }
            }
            // Increment then forward the same increment to payload[1]'s addr.
            11 => {
                ctx.charge(1);
                let tgt = op.target;
                if let Some(v) = ctx.obj_mut(tgt.slot) {
                    *v += op.payload[0];
                }
                let fwd = Address::unpack(op.payload[1]);
                ctx.propagate(Operon::new(fwd, 10, [op.payload[0], 0]));
            }
            other => panic!("unknown action {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Coord;

    fn test_chip() -> Chip<CounterProgram> {
        Chip::new(ChipConfig::small_test(), CounterProgram)
    }

    #[test]
    fn empty_chip_is_quiescent() {
        let chip = test_chip();
        assert!(chip.is_quiescent());
    }

    #[test]
    fn single_operon_delivery_and_latency() {
        let mut chip = test_chip();
        // Object on the far corner; operon injected via IO on the near corner.
        let dims = chip.cfg().dims;
        let dst_cc = dims.id_of(Coord::new(7, 7));
        let addr = chip.host_alloc(dst_cc, 0u64).unwrap();
        chip.io.load_to(0, [Operon::new(addr, 10, [5, 0])]); // io cell 0 feeds (0,0)
        let cycles = chip.run_until_quiescent().unwrap();
        assert_eq!(*chip.object(addr).unwrap(), 5);
        // Injection (1) + 14 mesh hops + ejection + dispatch+1 instr ≈ 18;
        // allow slack but require a plausible latency, not 0.
        assert!(cycles >= 14, "cycles={cycles}");
        assert!(cycles <= 30, "cycles={cycles}");
        assert_eq!(chip.counters().io_injected, 1);
        assert_eq!(chip.counters().msgs_delivered, 1);
        // 14 mesh hops + 1 io link.
        assert_eq!(chip.counters().hops, 15);
    }

    #[test]
    fn forwarding_diffuses_work() {
        let mut chip = test_chip();
        let a = chip.host_alloc(3, 0u64).unwrap();
        let b = chip.host_alloc(60, 0u64).unwrap();
        // Action 11 at `a` increments and forwards an increment to `b`.
        chip.io_load([Operon::new(a, 11, [7, b.pack()])]);
        chip.run_until_quiescent().unwrap();
        assert_eq!(*chip.object(a).unwrap(), 7);
        assert_eq!(*chip.object(b).unwrap(), 7);
        assert_eq!(chip.counters().msgs_staged, 1, "one propagate");
        assert_eq!(chip.counters().msgs_delivered, 2);
    }

    #[test]
    fn many_operons_all_arrive() {
        let mut chip = test_chip();
        let n = 64u32;
        let addrs: Vec<Address> =
            (0..n).map(|i| chip.host_alloc((i % 64) as u16, 0u64).unwrap()).collect();
        let ops: Vec<Operon> = addrs.iter().map(|&a| Operon::new(a, 10, [1, 0])).collect();
        chip.io_load(ops);
        chip.run_until_quiescent().unwrap();
        for &a in &addrs {
            assert_eq!(*chip.object(a).unwrap(), 1);
        }
        assert_eq!(chip.counters().msgs_delivered, 64);
    }

    #[test]
    fn contention_on_one_cell_serializes() {
        let mut chip = test_chip();
        let a = chip.host_alloc(27, 0u64).unwrap();
        let k = 100u64;
        chip.io_load((0..k).map(|_| Operon::new(a, 10, [1, 0])));
        let cycles = chip.run_until_quiescent().unwrap();
        assert_eq!(*chip.object(a).unwrap(), k);
        // Each action costs dispatch(1)+1 = 2 cycles of compute at one cell.
        assert!(cycles >= 2 * k, "serialized execution: {cycles} >= {}", 2 * k);
    }

    #[test]
    fn bad_address_surfaces_as_error() {
        let mut chip = test_chip();
        let a = chip.host_alloc(5, 0u64).unwrap();
        let dead = Address::new(5, a.slot + 100);
        chip.io_load([Operon::new(dead, 10, [1, 0])]);
        let err = chip.run_until_quiescent().unwrap_err();
        assert!(matches!(err, SimError::BadAddress { .. }));
    }

    #[test]
    fn host_inject_bypasses_network() {
        let mut chip = test_chip();
        let a = chip.host_alloc(9, 0u64).unwrap();
        chip.host_inject(Operon::new(a, 10, [3, 0]));
        chip.run_until_quiescent().unwrap();
        assert_eq!(*chip.object(a).unwrap(), 3);
        assert_eq!(chip.counters().hops, 0, "no network traversal");
    }

    #[test]
    fn activity_counts_recorded() {
        let mut chip = Chip::new(
            ChipConfig { record_activity: ActivityRecording::Counts, ..ChipConfig::small_test() },
            CounterProgram,
        );
        let a = chip.host_alloc(12, 0u64).unwrap();
        chip.io_load([Operon::new(a, 10, [1, 0])]);
        chip.run_until_quiescent().unwrap();
        let act = chip.activity();
        assert_eq!(act.counts.len() as u64, chip.cycle());
        assert!(act.counts.iter().any(|&c| c > 0), "some cycle had an active cell");
        assert!(act.counts.iter().all(|&c| c <= 1), "at most one cell busy here");
    }

    #[test]
    fn frames_recorded_at_stride() {
        let mut chip = Chip::new(
            ChipConfig {
                record_activity: ActivityRecording::Frames { stride: 2 },
                ..ChipConfig::small_test()
            },
            CounterProgram,
        );
        let a = chip.host_alloc(0, 0u64).unwrap();
        chip.io_load([Operon::new(a, 10, [1, 0])]);
        chip.run_until_quiescent().unwrap();
        assert_eq!(chip.activity().frames.len() as u64, chip.cycle().div_ceil(2));
    }

    #[test]
    fn determinism_same_seed_same_cycles() {
        let run = || {
            let mut chip = test_chip();
            let addrs: Vec<Address> =
                (0..40).map(|i| chip.host_alloc(i % 64, 0u64).unwrap()).collect();
            chip.io_load(addrs.iter().map(|&a| Operon::new(a, 10, [1, 0])));
            chip.run_until_quiescent().unwrap();
            (chip.cycle(), *chip.counters())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cell_loads_track_deliveries_and_peaks() {
        let mut chip = test_chip();
        let a = chip.host_alloc(17, 0u64).unwrap();
        let b = chip.host_alloc(18, 0u64).unwrap();
        chip.io_load((0..20).map(|_| Operon::new(a, 10, [1, 0])));
        chip.io_load([Operon::new(b, 10, [1, 0])]);
        chip.run_until_quiescent().unwrap();
        let loads = chip.cell_loads();
        assert_eq!(loads[17].delivered, 20);
        assert_eq!(loads[18].delivered, 1);
        assert!(loads[17].peak_queue >= 2, "hammered cell queued up");
        assert_eq!(loads[20].delivered, 0);
        let delivered: Vec<u64> = loads.iter().map(|l| l.delivered).collect();
        assert!(crate::stats::gini(&delivered) > 0.9, "two hot cells out of 64");
        chip.reset_cell_loads();
        assert_eq!(chip.cell_loads()[17].delivered, 0);
    }

    #[test]
    fn safra_detects_termination_of_a_diffusion() {
        // Same workload twice: global quiescence vs Safra token. Results
        // must agree; the distributed detector must lag, not lead.
        let workload = |chip: &mut Chip<CounterProgram>| -> Vec<Address> {
            let addrs: Vec<Address> =
                (0..48).map(|i| chip.host_alloc(i % 64, 0u64).unwrap()).collect();
            // Forwarding chains: action 11 increments and forwards to the
            // next address, creating multi-hop diffusions.
            let ops: Vec<Operon> =
                addrs.windows(2).map(|w| Operon::new(w[0], 11, [1, w[1].pack()])).collect();
            chip.io_load(ops);
            addrs
        };
        // Quiescence baseline.
        let mut base = test_chip();
        let addrs_b = workload(&mut base);
        base.run_until_quiescent().unwrap();
        let quiesce_cycles = base.cycle();

        // Safra run.
        let mut chip = test_chip();
        let addrs = workload(&mut chip);
        chip.enable_safra_termination();
        chip.begin_safra_probe();
        chip.run_until_terminated().unwrap();
        let s = chip.safra().unwrap();
        assert!(s.terminated);
        assert!(s.token_hops > 0, "the token paid real hops");
        // Every effect of the diffusion is visible at detection time.
        for (a, b) in addrs.iter().zip(&addrs_b) {
            assert_eq!(chip.object(*a), base.object(*b));
        }
        assert!(
            chip.cycle() >= quiesce_cycles,
            "distributed detection cannot precede actual termination: {} < {}",
            chip.cycle(),
            quiesce_cycles
        );
    }

    #[test]
    fn safra_never_detects_early() {
        // A long serial chain: if the detector fired early, the tail of the
        // chain would still be un-incremented at detection.
        let mut chip = test_chip();
        let addrs: Vec<Address> = (0..64).map(|i| chip.host_alloc(i, 0u64).unwrap()).collect();
        let ops: Vec<Operon> =
            addrs.windows(2).map(|w| Operon::new(w[0], 11, [1, w[1].pack()])).collect();
        chip.enable_safra_termination();
        chip.io_load(ops);
        chip.begin_safra_probe();
        chip.run_until_terminated().unwrap();
        for a in &addrs[1..63] {
            assert_eq!(*chip.object(*a).unwrap(), 2, "chain fully settled at {a}");
        }
    }

    #[test]
    fn safra_probe_can_rerun_across_segments() {
        let mut chip = test_chip();
        let a = chip.host_alloc(30, 0u64).unwrap();
        chip.enable_safra_termination();
        for seg in 1..=3u64 {
            chip.io_load([Operon::new(a, 10, [1, 0])]);
            chip.begin_safra_probe();
            chip.run_until_terminated().unwrap();
            assert_eq!(*chip.object(a).unwrap(), seg);
        }
        assert!(chip.safra().unwrap().rounds >= 3, "each segment ran probe rounds");
    }

    #[test]
    fn safra_on_empty_chip_detects_quickly() {
        let mut chip = test_chip();
        chip.enable_safra_termination();
        chip.begin_safra_probe();
        let cycles = chip.run_until_terminated().unwrap();
        // Black seed round + one clean white round over a 64-cell ring,
        // with per-cell polling: well under 2K cycles.
        assert!(cycles < 2000, "idle detection took {cycles} cycles");
        assert_eq!(chip.safra().unwrap().token_requeues, 0, "no work to poll behind");
    }

    #[test]
    fn cycle_limit_enforced() {
        let mut cfg = ChipConfig::small_test();
        cfg.max_cycles = 3;
        let mut chip = Chip::new(cfg, CounterProgram);
        let a = chip.host_alloc(63, 0u64).unwrap();
        chip.io_load([Operon::new(a, 10, [1, 0])]);
        let err = chip.run_until_quiescent().unwrap_err();
        assert!(matches!(err, SimError::CycleLimitExceeded { limit: 3 }));
    }
}
