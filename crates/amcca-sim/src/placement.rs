//! Object placement policies.
//!
//! Two concerns are covered: where *root* vertex objects go when the host
//! constructs the graph, and where *ghost* vertices are allocated when an
//! RPVO spills. The paper contrasts the **Vicinity Allocator** (ghosts land
//! within 2 hops of the requesting cell, keeping intra-vertex latency low)
//! with the **Random Allocator** (no locality; Fig. 5). Both are implemented;
//! `paper ablate-alloc` quantifies the difference.

use crate::geom::Dims;
use crate::rng::SplitMix64;

/// Placement policy for ghost-vertex allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GhostPlacement {
    /// Allocate within `max_hops` of the requesting cell (paper default: 2).
    /// `Vicinity` variant.
    Vicinity {
        /// Maximum Manhattan distance from the requesting cell.
        max_hops: u32,
    },
    /// Allocate on a uniformly random cell anywhere on the chip.
    Random,
}

impl Default for GhostPlacement {
    fn default() -> Self {
        GhostPlacement::Vicinity { max_hops: 2 }
    }
}

/// Precomputed candidate tables for ghost placement. Vicinity rings are
/// computed once per chip so the per-allocation choice is O(1).
#[derive(Debug, Clone)]
pub struct PlacementTable {
    policy: GhostPlacement,
    dims: Dims,
    /// For Vicinity: candidate cells per origin, ordered by distance.
    rings: Vec<Vec<u16>>,
}

impl PlacementTable {
    /// Precompute the candidate tables for `policy` on a `dims` mesh.
    pub fn new(policy: GhostPlacement, dims: Dims) -> Self {
        let rings = match policy {
            GhostPlacement::Vicinity { max_hops } => {
                dims.iter_ids().map(|id| dims.vicinity(id, max_hops)).collect()
            }
            GhostPlacement::Random => Vec::new(),
        };
        PlacementTable { policy, dims, rings }
    }

    /// The policy this table was built for.
    pub fn policy(&self) -> GhostPlacement {
        self.policy
    }

    /// Choose the target cell for an allocation requested by `origin`.
    /// `retry` > 0 walks further candidates after a failed attempt, so a full
    /// neighbour does not wedge the allocation.
    pub fn choose(&self, origin: u16, retry: u32, rng: &mut SplitMix64) -> u16 {
        match self.policy {
            GhostPlacement::Vicinity { .. } => {
                let ring = &self.rings[origin as usize];
                debug_assert!(!ring.is_empty(), "vicinity ring empty");
                if retry == 0 {
                    ring[rng.gen_range(ring.len() as u64) as usize]
                } else {
                    // Deterministically sweep the ring outward on retries;
                    // beyond the ring, spiral over the whole chip.
                    let idx = retry as usize - 1;
                    if idx < ring.len() {
                        ring[idx]
                    } else {
                        let all = self.dims.cell_count() as u64;
                        ((origin as u64 + retry as u64 * 131) % all) as u16
                    }
                }
            }
            GhostPlacement::Random => {
                if retry == 0 {
                    rng.gen_range(self.dims.cell_count() as u64) as u16
                } else {
                    let all = self.dims.cell_count() as u64;
                    ((origin as u64 + retry as u64 * 131 + rng.gen_range(all)) % all) as u16
                }
            }
        }
    }
}

/// Placement policy for the *extra* co-equal roots of a rhizome (a vertex
/// promoted from one root to `k` roots once its streamed degree crosses a
/// threshold; Chandio et al., "Rhizomes and Diffusions for Processing Highly
/// Skewed Graphs", arXiv:2402.06086). The point of a rhizome is to break the
/// hub-vertex serialization at one compute cell, so the default spreads the
/// roots across evenly spaced column bands — the unit the sharded execution
/// engine parallelizes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RhizomePlacement {
    /// Spread the `k` roots across evenly spaced columns (and rows), so each
    /// lands in a different band of the sharded engine where possible.
    #[default]
    ColumnBands,
    /// Keep the extra roots within `max_hops` of the primary root (locality
    /// baseline for the rhizome ablation: low sync latency, no band spread).
    Vicinity {
        /// Maximum Manhattan distance from the primary root's cell.
        max_hops: u32,
    },
}

impl RhizomePlacement {
    /// Cells for the `k - 1` extra roots of a rhizome whose primary root
    /// lives on `primary`. Deterministic in `(primary, k, dims, seed)`; the
    /// returned cells are distinct from each other and from `primary`. `k`
    /// is clamped to the cell count, so a rhizome larger than the mesh
    /// degrades to one root per cell instead of looping.
    pub fn cells_for(&self, primary: u16, k: usize, dims: Dims, seed: u64) -> Vec<u16> {
        assert!(k >= 1, "a rhizome has at least one root");
        let n = dims.cell_count();
        let k = k.min(n as usize);
        let mut out = Vec::with_capacity(k - 1);
        // Collision fallback: deterministic linear probe from `cell`,
        // skipping the primary and already-picked cells. Terminates because
        // `k <= n` guarantees a free cell exists.
        let resolve = |mut cell: u16, out: &[u16]| -> u16 {
            while cell == primary || out.contains(&cell) {
                cell = ((cell as u32 + 1) % n) as u16;
            }
            cell
        };
        match self {
            RhizomePlacement::ColumnBands => {
                let px = primary % dims.x;
                let py = primary / dims.x;
                for r in 1..k as u16 {
                    // Walk columns (and rows) in equal strides from the
                    // primary; linear-probe on collision.
                    let x = (px as u32 + r as u32 * dims.x as u32 / k as u32) % dims.x as u32;
                    let y = (py as u32 + r as u32 * dims.y as u32 / k as u32) % dims.y as u32;
                    out.push(resolve((y * dims.x as u32 + x) as u16, &out));
                }
            }
            RhizomePlacement::Vicinity { max_hops } => {
                let mut ring = dims.vicinity(primary, *max_hops);
                if ring.is_empty() {
                    // max_hops 0 (or a 1-cell mesh): no neighbourhood to
                    // draw from — degrade to the whole chip minus primary.
                    ring = (0..n as u16).filter(|&c| c != primary).collect();
                }
                let mut rng = SplitMix64::new(seed ^ 0x52485649); // "RHVI"
                for _ in 1..k {
                    // Random ring cell; on collision scan the ring from
                    // there, and past the ring's capacity linear-probe the
                    // rest of the chip.
                    let start = rng.gen_range(ring.len() as u64) as usize;
                    let local = (0..ring.len())
                        .map(|o| ring[(start + o) % ring.len()])
                        .find(|c| *c != primary && !out.contains(c));
                    out.push(match local {
                        Some(c) => c,
                        None => resolve(ring[start], &out),
                    });
                }
            }
        }
        debug_assert_eq!(out.len(), k - 1);
        out
    }
}

/// Placement policy for root vertex objects (host-side graph construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RootPlacement {
    /// Vertex `i` lands on cell `i mod n_cells` (uniform spread; default).
    #[default]
    RoundRobin,
    /// Pseudorandom cell per vertex id (seeded, reproducible).
    Hashed,
}

impl RootPlacement {
    /// Home cell for root vertex `vertex_id`.
    pub fn cell_for(&self, vertex_id: u32, dims: Dims, seed: u64) -> u16 {
        let n = dims.cell_count() as u64;
        match self {
            RootPlacement::RoundRobin => (vertex_id as u64 % n) as u16,
            RootPlacement::Hashed => {
                let mut r = SplitMix64::new(seed ^ (vertex_id as u64).wrapping_mul(0x9e3779b9));
                r.gen_range(n) as u16
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Dims;

    #[test]
    fn vicinity_choices_stay_within_radius() {
        let dims = Dims::new(16, 16);
        let t = PlacementTable::new(GhostPlacement::Vicinity { max_hops: 2 }, dims);
        let mut rng = SplitMix64::new(1);
        for origin in dims.iter_ids() {
            for _ in 0..8 {
                let c = t.choose(origin, 0, &mut rng);
                assert!(dims.distance(origin, c) <= 2);
                assert_ne!(c, origin);
            }
        }
    }

    #[test]
    fn vicinity_retries_walk_the_ring_then_spiral() {
        let dims = Dims::new(8, 8);
        let t = PlacementTable::new(GhostPlacement::Vicinity { max_hops: 1 }, dims);
        let mut rng = SplitMix64::new(2);
        let origin = dims.id_of(crate::geom::Coord::new(4, 4));
        let ring = dims.vicinity(origin, 1);
        let c1 = t.choose(origin, 1, &mut rng);
        let c2 = t.choose(origin, 2, &mut rng);
        assert_eq!(c1, ring[0]);
        assert_eq!(c2, ring[1]);
        // Retries beyond the ring still return valid, distinct cells.
        let far = t.choose(origin, 10, &mut rng);
        assert!((far as u32) < dims.cell_count());
    }

    #[test]
    fn random_policy_disperses() {
        let dims = Dims::new(32, 32);
        let t = PlacementTable::new(GhostPlacement::Random, dims);
        let mut rng = SplitMix64::new(3);
        let origin = 0u16;
        let far = (0..256)
            .map(|_| t.choose(origin, 0, &mut rng))
            .filter(|&c| dims.distance(origin, c) > 2)
            .count();
        assert!(far > 200, "random placement should usually leave the vicinity: {far}");
    }

    #[test]
    fn random_policy_is_deterministic_for_a_given_rng_state() {
        let dims = Dims::new(16, 16);
        let t = PlacementTable::new(GhostPlacement::Random, dims);
        let picks = |seed: u64| -> Vec<u16> {
            let mut rng = SplitMix64::new(seed);
            (0..32).map(|r| t.choose(100, r % 4, &mut rng)).collect()
        };
        assert_eq!(picks(9), picks(9), "same rng stream, same placement");
        assert_ne!(picks(9), picks(10), "placement follows the seeded stream");
    }

    #[test]
    fn random_policy_retries_stay_in_range_and_move() {
        let dims = Dims::new(8, 8);
        let t = PlacementTable::new(GhostPlacement::Random, dims);
        let mut rng = SplitMix64::new(4);
        for origin in [0u16, 27, 63] {
            for retry in 0..20 {
                let c = t.choose(origin, retry, &mut rng);
                assert!((c as u32) < dims.cell_count(), "cell {c} out of range");
            }
        }
        // Retried picks are not stuck on a single candidate.
        let all: std::collections::HashSet<u16> =
            (1..30).map(|r| t.choose(5, r, &mut rng)).collect();
        assert!(all.len() > 10, "retries explore the chip: {}", all.len());
    }

    #[test]
    fn rhizome_column_bands_spread_roots() {
        let dims = Dims::new(32, 32);
        for k in [2usize, 4, 8] {
            let cells = RhizomePlacement::ColumnBands.cells_for(5, k, dims, 7);
            assert_eq!(cells.len(), k - 1);
            let mut cols: Vec<u16> = cells.iter().map(|c| c % dims.x).collect();
            cols.push(5 % dims.x);
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), k, "every root lands in its own column (k={k})");
            // Roots are spread: adjacent roots sit in different bands of a
            // k-way column partition.
            let band = |x: u16| x as usize * k / dims.x as usize;
            let mut bands: Vec<usize> = cols.iter().map(|&x| band(x)).collect();
            bands.sort_unstable();
            bands.dedup();
            assert_eq!(bands.len(), k, "one root per column band (k={k})");
        }
    }

    #[test]
    fn rhizome_placement_is_deterministic_and_distinct() {
        let dims = Dims::new(8, 8);
        for policy in [RhizomePlacement::ColumnBands, RhizomePlacement::Vicinity { max_hops: 2 }] {
            let a = policy.cells_for(27, 4, dims, 99);
            let b = policy.cells_for(27, 4, dims, 99);
            assert_eq!(a, b, "{policy:?} must be reproducible");
            let mut uniq = a.clone();
            uniq.push(27);
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 4, "{policy:?} roots all distinct");
            for c in a {
                assert!((c as u32) < dims.cell_count());
            }
        }
    }

    #[test]
    fn rhizome_larger_than_mesh_clamps_instead_of_looping() {
        let dims = Dims::new(3, 3); // 9 cells
        let cells = RhizomePlacement::ColumnBands.cells_for(4, 16, dims, 1);
        assert_eq!(cells.len(), 8, "clamped to one root per cell");
        let mut uniq = cells.clone();
        uniq.push(4);
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 9, "every cell used exactly once");
        let v = RhizomePlacement::Vicinity { max_hops: 1 }.cells_for(4, 16, dims, 1);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn rhizome_vicinity_zero_hops_degrades_instead_of_panicking() {
        let dims = Dims::new(8, 8);
        let cells = RhizomePlacement::Vicinity { max_hops: 0 }.cells_for(27, 4, dims, 1);
        assert_eq!(cells.len(), 3);
        let mut uniq = cells.clone();
        uniq.push(27);
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "distinct cells, none equal to the primary");
    }

    #[test]
    fn rhizome_vicinity_stays_local() {
        let dims = Dims::new(16, 16);
        let primary = dims.id_of(crate::geom::Coord::new(8, 8));
        let cells = RhizomePlacement::Vicinity { max_hops: 2 }.cells_for(primary, 4, dims, 3);
        for c in cells {
            assert!(dims.distance(primary, c) <= 2, "vicinity rhizome root strayed to {c}");
        }
    }

    #[test]
    fn round_robin_root_placement_covers_cells() {
        let dims = Dims::new(4, 4);
        let mut seen = [false; 16];
        for v in 0..16u32 {
            seen[RootPlacement::RoundRobin.cell_for(v, dims, 0) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hashed_root_placement_is_deterministic() {
        let dims = Dims::new(8, 8);
        for v in 0..64u32 {
            let a = RootPlacement::Hashed.cell_for(v, dims, 42);
            let b = RootPlacement::Hashed.cell_for(v, dims, 42);
            assert_eq!(a, b);
        }
    }
}
