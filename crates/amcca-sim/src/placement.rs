//! Object placement policies.
//!
//! Two concerns are covered: where *root* vertex objects go when the host
//! constructs the graph, and where *ghost* vertices are allocated when an
//! RPVO spills. The paper contrasts the **Vicinity Allocator** (ghosts land
//! within 2 hops of the requesting cell, keeping intra-vertex latency low)
//! with the **Random Allocator** (no locality; Fig. 5). Both are implemented;
//! `paper ablate-alloc` quantifies the difference.

use crate::geom::Dims;
use crate::rng::SplitMix64;

/// Placement policy for ghost-vertex allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GhostPlacement {
    /// Allocate within `max_hops` of the requesting cell (paper default: 2).
    /// `Vicinity` variant.
    Vicinity {
        /// Maximum Manhattan distance from the requesting cell.
        max_hops: u32,
    },
    /// Allocate on a uniformly random cell anywhere on the chip.
    Random,
}

impl Default for GhostPlacement {
    fn default() -> Self {
        GhostPlacement::Vicinity { max_hops: 2 }
    }
}

/// Precomputed candidate tables for ghost placement. Vicinity rings are
/// computed once per chip so the per-allocation choice is O(1).
#[derive(Debug, Clone)]
pub struct PlacementTable {
    policy: GhostPlacement,
    dims: Dims,
    /// For Vicinity: candidate cells per origin, ordered by distance.
    rings: Vec<Vec<u16>>,
}

impl PlacementTable {
    /// Precompute the candidate tables for `policy` on a `dims` mesh.
    pub fn new(policy: GhostPlacement, dims: Dims) -> Self {
        let rings = match policy {
            GhostPlacement::Vicinity { max_hops } => {
                dims.iter_ids().map(|id| dims.vicinity(id, max_hops)).collect()
            }
            GhostPlacement::Random => Vec::new(),
        };
        PlacementTable { policy, dims, rings }
    }

    /// The policy this table was built for.
    pub fn policy(&self) -> GhostPlacement {
        self.policy
    }

    /// Choose the target cell for an allocation requested by `origin`.
    /// `retry` > 0 walks further candidates after a failed attempt, so a full
    /// neighbour does not wedge the allocation.
    pub fn choose(&self, origin: u16, retry: u32, rng: &mut SplitMix64) -> u16 {
        match self.policy {
            GhostPlacement::Vicinity { .. } => {
                let ring = &self.rings[origin as usize];
                debug_assert!(!ring.is_empty(), "vicinity ring empty");
                if retry == 0 {
                    ring[rng.gen_range(ring.len() as u64) as usize]
                } else {
                    // Deterministically sweep the ring outward on retries;
                    // beyond the ring, spiral over the whole chip.
                    let idx = retry as usize - 1;
                    if idx < ring.len() {
                        ring[idx]
                    } else {
                        let all = self.dims.cell_count() as u64;
                        ((origin as u64 + retry as u64 * 131) % all) as u16
                    }
                }
            }
            GhostPlacement::Random => {
                if retry == 0 {
                    rng.gen_range(self.dims.cell_count() as u64) as u16
                } else {
                    let all = self.dims.cell_count() as u64;
                    ((origin as u64 + retry as u64 * 131 + rng.gen_range(all)) % all) as u16
                }
            }
        }
    }
}

/// Placement policy for root vertex objects (host-side graph construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RootPlacement {
    /// Vertex `i` lands on cell `i mod n_cells` (uniform spread; default).
    #[default]
    RoundRobin,
    /// Pseudorandom cell per vertex id (seeded, reproducible).
    Hashed,
}

impl RootPlacement {
    /// Home cell for root vertex `vertex_id`.
    pub fn cell_for(&self, vertex_id: u32, dims: Dims, seed: u64) -> u16 {
        let n = dims.cell_count() as u64;
        match self {
            RootPlacement::RoundRobin => (vertex_id as u64 % n) as u16,
            RootPlacement::Hashed => {
                let mut r = SplitMix64::new(seed ^ (vertex_id as u64).wrapping_mul(0x9e3779b9));
                r.gen_range(n) as u16
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Dims;

    #[test]
    fn vicinity_choices_stay_within_radius() {
        let dims = Dims::new(16, 16);
        let t = PlacementTable::new(GhostPlacement::Vicinity { max_hops: 2 }, dims);
        let mut rng = SplitMix64::new(1);
        for origin in dims.iter_ids() {
            for _ in 0..8 {
                let c = t.choose(origin, 0, &mut rng);
                assert!(dims.distance(origin, c) <= 2);
                assert_ne!(c, origin);
            }
        }
    }

    #[test]
    fn vicinity_retries_walk_the_ring_then_spiral() {
        let dims = Dims::new(8, 8);
        let t = PlacementTable::new(GhostPlacement::Vicinity { max_hops: 1 }, dims);
        let mut rng = SplitMix64::new(2);
        let origin = dims.id_of(crate::geom::Coord::new(4, 4));
        let ring = dims.vicinity(origin, 1);
        let c1 = t.choose(origin, 1, &mut rng);
        let c2 = t.choose(origin, 2, &mut rng);
        assert_eq!(c1, ring[0]);
        assert_eq!(c2, ring[1]);
        // Retries beyond the ring still return valid, distinct cells.
        let far = t.choose(origin, 10, &mut rng);
        assert!((far as u32) < dims.cell_count());
    }

    #[test]
    fn random_policy_disperses() {
        let dims = Dims::new(32, 32);
        let t = PlacementTable::new(GhostPlacement::Random, dims);
        let mut rng = SplitMix64::new(3);
        let origin = 0u16;
        let far = (0..256)
            .map(|_| t.choose(origin, 0, &mut rng))
            .filter(|&c| dims.distance(origin, c) > 2)
            .count();
        assert!(far > 200, "random placement should usually leave the vicinity: {far}");
    }

    #[test]
    fn round_robin_root_placement_covers_cells() {
        let dims = Dims::new(4, 4);
        let mut seen = [false; 16];
        for v in 0..16u32 {
            seen[RootPlacement::RoundRobin.cell_for(v, dims, 0) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hashed_root_placement_is_deterministic() {
        let dims = Dims::new(8, 8);
        for v in 0..64u32 {
            let a = RootPlacement::Hashed.cell_for(v, dims, 42);
            let b = RootPlacement::Hashed.cell_for(v, dims, 42);
            assert_eq!(a, b);
        }
    }
}
