//! Chip geometry: coordinates, mesh dimensions, directions, and the
//! turn-restricted YX dimension-ordered route function.
//!
//! The AM-CCA chip is a 2-D mesh of Compute Cells (paper Fig. 2). Row 0 is the
//! *north* border (where one IO channel sits); row `y-1` is the *south* border.
//! Routing is YX dimension-ordered: a message first travels vertically until it
//! reaches the destination row, then horizontally (paper §4, citing the Glass &
//! Ni turn model). YX order makes the route minimal, unique, and deadlock-free.

/// A position on the mesh. `x` is the column (0 = west), `y` the row (0 = north).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column index (0 = west border).
    pub x: u16,
    /// Row index (0 = north border).
    pub y: u16,
}

impl Coord {
    /// Create a coordinate / dimension pair.
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan (L1) distance — the number of hops of any minimal route.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

/// Mesh dimensions. The paper evaluates a 32 × 32 chip (1024 CCs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// Column index (0 = west border).
    pub x: u16,
    /// Row index (0 = north border).
    pub y: u16,
}

impl Dims {
    /// Create a coordinate / dimension pair.
    pub const fn new(x: u16, y: u16) -> Self {
        assert!(x > 0 && y > 0, "mesh dimensions must be non-zero");
        Dims { x, y }
    }

    /// Total number of compute cells on the chip.
    pub fn cell_count(self) -> u32 {
        self.x as u32 * self.y as u32
    }

    /// Row-major cell id of a coordinate.
    pub fn id_of(self, c: Coord) -> u16 {
        debug_assert!(self.contains(c), "coordinate {c:?} out of {self:?}");
        c.y * self.x + c.x
    }

    /// Coordinate of a row-major cell id.
    pub fn coord_of(self, id: u16) -> Coord {
        debug_assert!((id as u32) < self.cell_count(), "cell id {id} out of range");
        Coord { x: id % self.x, y: id / self.x }
    }

    /// Whether the coordinate lies on this mesh.
    pub fn contains(self, c: Coord) -> bool {
        c.x < self.x && c.y < self.y
    }

    /// Manhattan distance between two cell ids.
    pub fn distance(self, a: u16, b: u16) -> u32 {
        self.coord_of(a).manhattan(self.coord_of(b))
    }

    /// Iterator over all cell ids.
    pub fn iter_ids(self) -> impl Iterator<Item = u16> {
        (0..self.cell_count()).map(|i| i as u16)
    }

    /// The neighbouring cell id in `dir`, if it exists on the mesh.
    pub fn neighbor(self, id: u16, dir: Direction) -> Option<u16> {
        let c = self.coord_of(id);
        let n = match dir {
            Direction::North => {
                if c.y == 0 {
                    return None;
                }
                Coord::new(c.x, c.y - 1)
            }
            Direction::South => {
                if c.y + 1 >= self.y {
                    return None;
                }
                Coord::new(c.x, c.y + 1)
            }
            Direction::East => {
                if c.x + 1 >= self.x {
                    return None;
                }
                Coord::new(c.x + 1, c.y)
            }
            Direction::West => {
                if c.x == 0 {
                    return None;
                }
                Coord::new(c.x - 1, c.y)
            }
        };
        Some(self.id_of(n))
    }

    /// Successor of `id` on the serpentine (boustrophedon) ring that visits
    /// every cell with single-hop steps: even rows run west→east, odd rows
    /// east→west, and the last cell wraps back to cell 0. Used by the token
    /// termination detector so each token move is exactly one mesh hop
    /// (except the final wrap, which rides the west column home).
    pub fn serpentine_next(self, id: u16) -> u16 {
        let c = self.coord_of(id);
        let next = if c.y.is_multiple_of(2) {
            if c.x + 1 < self.x {
                Coord::new(c.x + 1, c.y)
            } else {
                Coord::new(c.x, c.y + 1)
            }
        } else if c.x > 0 {
            Coord::new(c.x - 1, c.y)
        } else {
            Coord::new(c.x, c.y + 1)
        };
        if next.y >= self.y {
            return 0; // wrap: end of the serpentine, ride back to the origin
        }
        self.id_of(next)
    }

    /// All cell ids within Manhattan distance `max_hops` of `origin`,
    /// excluding the origin itself, ordered by (distance, id). This is the
    /// candidate ring used by the Vicinity Allocator (paper Fig. 5a).
    pub fn vicinity(self, origin: u16, max_hops: u32) -> Vec<u16> {
        let o = self.coord_of(origin);
        let mut out: Vec<u16> = Vec::new();
        let lo_y = o.y.saturating_sub(max_hops as u16);
        let hi_y = (o.y as u32 + max_hops).min(self.y as u32 - 1) as u16;
        for y in lo_y..=hi_y {
            let rem = max_hops - (o.y.abs_diff(y)) as u32;
            let lo_x = o.x.saturating_sub(rem as u16);
            let hi_x = (o.x as u32 + rem).min(self.x as u32 - 1) as u16;
            for x in lo_x..=hi_x {
                let c = Coord::new(x, y);
                if c != o {
                    out.push(self.id_of(c));
                }
            }
        }
        out.sort_by_key(|&id| (self.distance(origin, id), id));
        out
    }
}

/// The four mesh link directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Direction {
    /// Towards row 0.
    North = 0,
    /// Towards row `y − 1`.
    South = 1,
    /// Towards larger column indices.
    East = 2,
    /// Towards column 0.
    West = 3,
}

impl Direction {
    /// All four directions, in index order.
    pub const ALL: [Direction; 4] =
        [Direction::North, Direction::South, Direction::East, Direction::West];

    /// Numeric index (N=0, S=1, E=2, W=3), matching router port order.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The reverse direction (the input port a hop in `self` arrives on).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }
}

/// The next hop of the YX dimension-ordered route from `from` towards `to`:
/// vertical movement first ("takes vertical paths first before turning
/// horizontal", §4), then horizontal. `None` means the message has arrived.
pub fn yx_route_step(from: Coord, to: Coord) -> Option<Direction> {
    if to.y < from.y {
        Some(Direction::North)
    } else if to.y > from.y {
        Some(Direction::South)
    } else if to.x > from.x {
        Some(Direction::East)
    } else if to.x < from.x {
        Some(Direction::West)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_roundtrip() {
        let d = Dims::new(7, 5);
        for id in d.iter_ids() {
            assert_eq!(d.id_of(d.coord_of(id)), id);
        }
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
        assert_eq!(Coord::new(5, 2).manhattan(Coord::new(5, 2)), 0);
        assert_eq!(Coord::new(2, 9).manhattan(Coord::new(4, 1)), 10);
    }

    #[test]
    fn neighbors_respect_borders() {
        let d = Dims::new(3, 3);
        let nw = d.id_of(Coord::new(0, 0));
        assert_eq!(d.neighbor(nw, Direction::North), None);
        assert_eq!(d.neighbor(nw, Direction::West), None);
        assert_eq!(d.neighbor(nw, Direction::South), Some(d.id_of(Coord::new(0, 1))));
        assert_eq!(d.neighbor(nw, Direction::East), Some(d.id_of(Coord::new(1, 0))));
        let se = d.id_of(Coord::new(2, 2));
        assert_eq!(d.neighbor(se, Direction::South), None);
        assert_eq!(d.neighbor(se, Direction::East), None);
    }

    #[test]
    fn yx_route_goes_vertical_first() {
        // From (0,0) to (3,2): the first moves must be South until row matches.
        let to = Coord::new(3, 2);
        let mut at = Coord::new(0, 0);
        let mut path = Vec::new();
        while let Some(d) = yx_route_step(at, to) {
            path.push(d);
            at = match d {
                Direction::North => Coord::new(at.x, at.y - 1),
                Direction::South => Coord::new(at.x, at.y + 1),
                Direction::East => Coord::new(at.x + 1, at.y),
                Direction::West => Coord::new(at.x - 1, at.y),
            };
        }
        assert_eq!(at, to);
        assert_eq!(
            path,
            vec![
                Direction::South,
                Direction::South,
                Direction::East,
                Direction::East,
                Direction::East
            ]
        );
    }

    #[test]
    fn yx_route_length_is_manhattan() {
        let dims = Dims::new(9, 9);
        for a in dims.iter_ids().step_by(7) {
            for b in dims.iter_ids().step_by(5) {
                let (ca, cb) = (dims.coord_of(a), dims.coord_of(b));
                let mut at = ca;
                let mut hops = 0;
                while let Some(d) = yx_route_step(at, cb) {
                    at = match d {
                        Direction::North => Coord::new(at.x, at.y - 1),
                        Direction::South => Coord::new(at.x, at.y + 1),
                        Direction::East => Coord::new(at.x + 1, at.y),
                        Direction::West => Coord::new(at.x - 1, at.y),
                    };
                    hops += 1;
                    assert!(hops <= 64, "route must terminate");
                }
                assert_eq!(hops, ca.manhattan(cb));
            }
        }
    }

    #[test]
    fn yx_route_never_turns_back_to_vertical() {
        // Once moving horizontally, a YX route never moves vertically again:
        // this is exactly the turn restriction that makes it deadlock-free.
        let dims = Dims::new(8, 8);
        for a in dims.iter_ids() {
            for b in dims.iter_ids().step_by(3) {
                let cb = dims.coord_of(b);
                let mut at = dims.coord_of(a);
                let mut seen_horizontal = false;
                while let Some(d) = yx_route_step(at, cb) {
                    match d {
                        Direction::East | Direction::West => seen_horizontal = true,
                        Direction::North | Direction::South => {
                            assert!(!seen_horizontal, "illegal X→Y turn")
                        }
                    }
                    at = match d {
                        Direction::North => Coord::new(at.x, at.y - 1),
                        Direction::South => Coord::new(at.x, at.y + 1),
                        Direction::East => Coord::new(at.x + 1, at.y),
                        Direction::West => Coord::new(at.x - 1, at.y),
                    };
                }
            }
        }
    }

    #[test]
    fn serpentine_visits_every_cell_once() {
        for (w, h) in [(4u16, 4u16), (5, 3), (3, 5), (2, 2)] {
            let d = Dims::new(w, h);
            let mut seen = vec![false; d.cell_count() as usize];
            let mut at = 0u16;
            for _ in 0..d.cell_count() {
                assert!(!seen[at as usize], "revisited cell {at} on {w}x{h}");
                seen[at as usize] = true;
                at = d.serpentine_next(at);
            }
            assert_eq!(at, 0, "ring closes at the initiator");
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn serpentine_steps_are_single_hop() {
        let d = Dims::new(8, 8);
        let mut at = 0u16;
        for _ in 0..d.cell_count() - 1 {
            let nx = d.serpentine_next(at);
            assert_eq!(d.distance(at, nx), 1, "step {at} -> {nx}");
            at = nx;
        }
        // The wrap rides the mesh home; it is the only multi-hop move.
        assert_eq!(d.serpentine_next(at), 0);
    }

    #[test]
    fn vicinity_ring_two_hops() {
        let d = Dims::new(32, 32);
        let origin = d.id_of(Coord::new(16, 16));
        let v = d.vicinity(origin, 2);
        // A full diamond of radius 2 has 12 cells (4 at distance 1, 8 at 2).
        assert_eq!(v.len(), 12);
        assert!(v.iter().all(|&c| d.distance(origin, c) <= 2 && c != origin));
        // Sorted by distance first.
        assert!(d.distance(origin, v[0]) == 1 && d.distance(origin, v[11]) == 2);
    }

    #[test]
    fn vicinity_clipped_at_corner() {
        let d = Dims::new(32, 32);
        let corner = d.id_of(Coord::new(0, 0));
        let v = d.vicinity(corner, 2);
        assert_eq!(v.len(), 5); // (1,0),(0,1),(2,0),(1,1),(0,2)
    }
}
