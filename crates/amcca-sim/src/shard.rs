//! Shard partitioning and the small synchronization primitives behind the
//! parallel execution engine.
//!
//! The mesh is partitioned into **contiguous column bands** (BLADYG-style
//! vertical partitions): with YX dimension-ordered routing every vertical hop
//! stays inside its column, so the *only* cross-shard traffic is east/west
//! hops across a band boundary — a narrow, well-defined exchange surface.
//! Column bands also give every shard its own slice of the north/south IO
//! cells, so ingestion parallelizes with the compute.
//!
//! This module also hosts [`run_tasks`], the workspace-wide work-queue helper
//! used by the `paper` and `amcca-run` drivers to fan independent experiment
//! runs over a bounded worker pool.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::geom::Dims;

/// A partition of the mesh columns into contiguous bands, one per shard.
/// Bands differ in width by at most one column; the requested shard count is
/// clamped to the number of columns so every band is non-empty.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    dims: Dims,
    /// Column boundaries: shard `s` owns columns `bounds[s] .. bounds[s+1]`.
    bounds: Vec<u16>,
}

impl ShardPlan {
    /// Partition `dims.x` columns into (at most) `shards` bands.
    pub fn new(dims: Dims, shards: usize) -> Self {
        let n = shards.clamp(1, dims.x as usize);
        let bounds = (0..=n).map(|s| (s * dims.x as usize / n) as u16).collect::<Vec<_>>();
        ShardPlan { dims, bounds }
    }

    /// The mesh this plan partitions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Number of (non-empty) shards after clamping.
    pub fn shard_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Column band `[x0, x1)` owned by shard `s`.
    pub fn band(&self, s: usize) -> (u16, u16) {
        (self.bounds[s], self.bounds[s + 1])
    }

    /// The shard owning column `x`.
    pub fn shard_of_col(&self, x: u16) -> usize {
        debug_assert!(x < self.dims.x);
        // bounds is sorted; the owning shard is the last bound <= x.
        match self.bounds.binary_search(&x) {
            Ok(i) => i.min(self.shard_count() - 1),
            Err(i) => i - 1,
        }
    }

    /// The shard owning (row-major) cell id `id`.
    pub fn shard_of_cell(&self, id: u16) -> usize {
        self.shard_of_col(id % self.dims.x)
    }
}

/// One entry of a cycle's steal schedule: `executor` runs the compute phase
/// of mesh row `y` of `owner`'s band, for exactly one cycle. Routing, IO,
/// and credit publication stay with the owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StealAssign {
    /// Band that owns (and donates) the row.
    pub owner: u16,
    /// Band whose worker computes the row this cycle.
    pub executor: u16,
    /// Mesh row index.
    pub y: u16,
}

/// Compute the next cycle's deterministic steal schedule from the merged
/// per-(band, row) active-cell counts of the cycle just finished
/// (`rows[s * y_rows + y]`, attributed to the *owner* band regardless of who
/// executed the row). A **pure function** of those counts: the busiest band
/// donates whole rows — heaviest first — to the currently least-loaded
/// bands, and a row moves only while the receiving band stays no busier
/// than the donor. Ties break toward the lowest shard id and lowest row, so
/// the schedule is identical on every host; and because compute is
/// cell-local, *any* schedule yields bit-identical results anyway — purity
/// only pins down the wall-clock and the diagnostics.
pub(crate) fn steal_schedule(
    rows: &[u32],
    n_shards: usize,
    y_rows: usize,
    min_active: u32,
) -> Vec<StealAssign> {
    debug_assert_eq!(rows.len(), n_shards * y_rows);
    let mut loads: Vec<u64> = (0..n_shards)
        .map(|s| rows[s * y_rows..(s + 1) * y_rows].iter().map(|&c| c as u64).sum())
        .collect();
    let total: u64 = loads.iter().sum();
    if n_shards < 2 || total < min_active as u64 {
        return Vec::new(); // cold cycle: the barrier dance would not pay.
    }
    let mut donor = 0usize;
    for s in 1..n_shards {
        if loads[s] > loads[donor] {
            donor = s;
        }
    }
    let mut cand: Vec<usize> = (0..y_rows).filter(|&y| rows[donor * y_rows + y] > 0).collect();
    cand.sort_by_key(|&y| (std::cmp::Reverse(rows[donor * y_rows + y]), y));
    let mut out = Vec::new();
    for y in cand {
        let w = rows[donor * y_rows + y] as u64;
        let mut thief = usize::from(donor == 0);
        for s in 0..n_shards {
            if s != donor && loads[s] < loads[thief] {
                thief = s;
            }
        }
        // Move only if the thief stays no busier than the donor afterwards
        // (strict levelling; lighter rows may still fit when heavy ones
        // did not).
        if loads[thief] + w > loads[donor] - w {
            continue;
        }
        loads[donor] -= w;
        loads[thief] += w;
        out.push(StealAssign { owner: donor as u16, executor: thief as u16, y: y as u16 });
    }
    out
}

/// A sense-reversing spin barrier for the per-cycle worker rendezvous.
///
/// `std::sync::Barrier` parks on a condvar, which costs microseconds per
/// wait — comparable to a whole simulated cycle. This barrier spins briefly
/// and falls back to `yield_now` so oversubscribed runs (e.g. `cargo test`)
/// stay civil. `poison` releases all waiters into a panic, so one worker's
/// panic cannot hang the others.
pub(crate) struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    pub fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Block (spinning) until all `n` parties have arrived.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arrival: reset the count, then release the generation.
            // Spinners cannot re-arrive until they observe the new
            // generation, so the reset cannot race with their increments.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if self.poisoned.load(Ordering::Relaxed) {
                    panic!("shard barrier poisoned: a sibling worker panicked");
                }
                backoff(&mut spins);
            }
        }
    }

    /// Release every current and future waiter into a panic.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }
}

/// Bounded spinning with a yield fallback (keeps oversubscribed runs fair).
#[inline]
pub(crate) fn backoff(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < 128 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Run `tasks` on at most `workers` scoped threads, returning the results in
/// task order. This is the shared fan-out helper for *independent* jobs
/// (dataset builds, experiment scenarios); for sharding a single chip run use
/// [`crate::ChipConfig::shards`] instead.
pub fn run_tasks<T, F>(tasks: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    use std::sync::Mutex;
    let n = tasks.len();
    let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.max(1).min(n.max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = tasks[i].lock().unwrap().take().unwrap();
                *results[i].lock().unwrap() = Some(task());
            });
        }
    });
    results.into_iter().map(|r| r.into_inner().unwrap().unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_all_columns_evenly() {
        for (x, shards) in [(32u16, 4usize), (32, 3), (8, 8), (7, 3), (5, 16), (1, 4)] {
            let plan = ShardPlan::new(Dims::new(x, 4), shards);
            let n = plan.shard_count();
            assert!(n >= 1 && n <= shards.max(1) && n <= x as usize);
            let mut widths = Vec::new();
            let mut next = 0u16;
            for s in 0..n {
                let (a, b) = plan.band(s);
                assert_eq!(a, next, "bands contiguous");
                assert!(b > a, "bands non-empty");
                widths.push(b - a);
                next = b;
            }
            assert_eq!(next, x, "bands cover every column");
            let (min, max) = (widths.iter().min().unwrap(), widths.iter().max().unwrap());
            assert!(max - min <= 1, "balanced bands: {widths:?}");
        }
    }

    #[test]
    fn shard_of_col_matches_bands() {
        let plan = ShardPlan::new(Dims::new(32, 32), 5);
        for x in 0..32u16 {
            let s = plan.shard_of_col(x);
            let (a, b) = plan.band(s);
            assert!(x >= a && x < b, "column {x} in band {s} [{a},{b})");
        }
        // Cell ids map through their column.
        let dims = Dims::new(32, 32);
        for id in [0u16, 31, 32, 1000, 1023] {
            assert_eq!(plan.shard_of_cell(id), plan.shard_of_col(id % dims.x));
        }
    }

    #[test]
    fn steal_schedule_moves_rows_from_busiest_to_idle() {
        // 3 bands × 4 rows; band 1 carries everything.
        let rows = [0, 0, 0, 0, 9, 7, 1, 3, 0, 0, 0, 0];
        let sched = steal_schedule(&rows, 3, 4, 1);
        assert!(!sched.is_empty(), "skew must trigger stealing");
        for a in &sched {
            assert_eq!(a.owner, 1, "only the busiest band donates");
            assert_ne!(a.executor, a.owner);
            assert!(rows[4 + a.y as usize] > 0, "idle rows never move");
        }
        // Deterministic: same input, same schedule.
        assert_eq!(sched, steal_schedule(&rows, 3, 4, 1));
        // The donated rows are distinct.
        let mut ys: Vec<_> = sched.iter().map(|a| a.y).collect();
        ys.sort_unstable();
        ys.dedup();
        assert_eq!(ys.len(), sched.len());
    }

    #[test]
    fn steal_schedule_idles_when_balanced_or_cold() {
        // Balanced load: no move can level further.
        let rows = [5u32, 5, 5, 5, 5, 5, 5, 5];
        assert!(steal_schedule(&rows, 2, 4, 1).is_empty());
        // Cold cycle: below the activity floor.
        let rows = [3u32, 0, 0, 0, 0, 0, 0, 0];
        assert!(steal_schedule(&rows, 2, 4, 24).is_empty());
        // Degenerate shard count.
        assert!(steal_schedule(&[7, 7], 1, 2, 1).is_empty());
    }

    #[test]
    fn steal_schedule_levels_loads() {
        // One hot band, three idle: after applying the schedule the hot
        // band's remaining load must not exceed its pre-steal load, and
        // every thief stays at or below the donor.
        let y = 4;
        let mut rows = vec![0u32; 4 * y];
        rows[0..y].copy_from_slice(&[8, 8, 8, 8]);
        let sched = steal_schedule(&rows, 4, y, 1);
        let mut loads = [32u64, 0, 0, 0];
        for a in &sched {
            let w = rows[a.owner as usize * y + a.y as usize] as u64;
            loads[a.owner as usize] -= w;
            loads[a.executor as usize] += w;
        }
        assert_eq!(sched.len(), 3, "three rows level the load: {sched:?}");
        assert_eq!(loads, [8, 8, 8, 8], "perfectly levelled");
    }

    #[test]
    fn spin_barrier_synchronizes_rounds() {
        use std::sync::atomic::AtomicU64;
        let n = 4;
        let barrier = SpinBarrier::new(n);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| {
                    for round in 0..50u64 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Between the two waits every thread sees the full
                        // round's increments.
                        assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * n as u64);
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn run_tasks_preserves_order_and_runs_everything() {
        let tasks: Vec<_> = (0..17).map(|i| move || i * 3).collect();
        let out = run_tasks(tasks, 4);
        assert_eq!(out, (0..17).map(|i| i * 3).collect::<Vec<_>>());
        // Degenerate worker counts still complete.
        let out = run_tasks(vec![|| 1, || 2], 0);
        assert_eq!(out, vec![1, 2]);
    }
}
