//! Simulation statistics: event counters, per-cycle activity series, and
//! run reports. The activity series is the raw data behind the paper's
//! Figures 6 and 7 ("Percent of Cells Active" per cycle).

/// Monotonic event counters accumulated over a chip's lifetime. Reports for a
/// run segment are computed as deltas between two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Instructions retired by compute cells.
    pub instrs: u64,
    /// Link traversals (mesh hops plus IO-cell injection links).
    pub hops: u64,
    /// Operons staged by `propagate` (entered the network from a CC).
    pub msgs_staged: u64,
    /// Operons injected by IO cells.
    pub io_injected: u64,
    /// Operons delivered to their target cell's task queue.
    pub msgs_delivered: u64,
    /// Objects allocated by the `allocate` system action.
    pub allocs: u64,
    /// Allocation attempts that failed on a full cell and were re-routed.
    pub alloc_retries: u64,
    /// Compute-phase cycles wasted stalling on a full local injection port.
    pub stage_stalls: u64,
    /// Network moves blocked by downstream buffer backpressure.
    pub net_stalls: u64,
    /// Deliveries blocked by a full task queue.
    pub deliver_stalls: u64,
}

impl Counters {
    /// Element-wise sum `self += other`. Used to fold the per-shard counters
    /// of a parallel run back into the chip's totals; every field is an
    /// order-independent event count, so the merged result is bit-identical
    /// to a sequential run.
    ///
    /// The exhaustive destructuring is deliberate: adding a counter field
    /// without merging it here becomes a compile error, not a silent drop.
    pub fn merge(&mut self, other: &Counters) {
        let Counters {
            instrs,
            hops,
            msgs_staged,
            io_injected,
            msgs_delivered,
            allocs,
            alloc_retries,
            stage_stalls,
            net_stalls,
            deliver_stalls,
        } = *other;
        self.instrs += instrs;
        self.hops += hops;
        self.msgs_staged += msgs_staged;
        self.io_injected += io_injected;
        self.msgs_delivered += msgs_delivered;
        self.allocs += allocs;
        self.alloc_retries += alloc_retries;
        self.stage_stalls += stage_stalls;
        self.net_stalls += net_stalls;
        self.deliver_stalls += deliver_stalls;
    }

    /// Element-wise difference `self - earlier` (for run-segment reports).
    /// Exhaustively destructured like [`Counters::merge`], and for the same
    /// reason.
    pub fn delta(&self, earlier: &Counters) -> Counters {
        let Counters {
            instrs,
            hops,
            msgs_staged,
            io_injected,
            msgs_delivered,
            allocs,
            alloc_retries,
            stage_stalls,
            net_stalls,
            deliver_stalls,
        } = *earlier;
        Counters {
            instrs: self.instrs - instrs,
            hops: self.hops - hops,
            msgs_staged: self.msgs_staged - msgs_staged,
            io_injected: self.io_injected - io_injected,
            msgs_delivered: self.msgs_delivered - msgs_delivered,
            allocs: self.allocs - allocs,
            alloc_retries: self.alloc_retries - alloc_retries,
            stage_stalls: self.stage_stalls - stage_stalls,
            net_stalls: self.net_stalls - net_stalls,
            deliver_stalls: self.deliver_stalls - deliver_stalls,
        }
    }
}

/// Per-cell load counters, kept for every cell of the chip (cheap enough to
/// track unconditionally). The paper's §5 explains Snowball sampling's
/// longer ingestion by "congestion on a few compute cells that host [the
/// frontier] vertices" — these counters make that measurable
/// (`paper loadmap`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellLoad {
    /// Operons delivered to this cell's task queue.
    pub delivered: u64,
    /// Highest task-queue occupancy ever observed.
    pub peak_queue: u32,
}

/// Max/mean ratio of a load distribution (1.0 = perfectly balanced).
pub fn max_mean_ratio(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let max = *loads.iter().max().unwrap() as f64;
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        max / mean
    }
}

/// Gini coefficient of a load distribution (0 = equal, →1 = concentrated).
pub fn gini(loads: &[u64]) -> f64 {
    let n = loads.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = loads.to_vec();
    sorted.sort_unstable();
    let total: u128 = sorted.iter().map(|&x| x as u128).sum();
    if total == 0 {
        return 0.0;
    }
    // G = (2 Σ_i i·x_i) / (n Σ x) − (n+1)/n, with i starting at 1.
    let weighted: u128 = sorted.iter().enumerate().map(|(i, &x)| (i as u128 + 1) * x as u128).sum();
    (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Fraction of total load carried by the most-loaded `k` cells.
pub fn top_k_share(loads: &[u64], k: usize) -> f64 {
    let total: u128 = loads.iter().map(|&x| x as u128).sum();
    if total == 0 || k == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = loads.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top: u128 = sorted.iter().take(k).map(|&x| x as u128).sum();
    top as f64 / total as f64
}

/// How (and whether) to record per-cycle activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivityRecording {
    /// Record nothing (fastest; Table 2 / Fig 8–9 runs only need totals).
    Off,
    /// Record the number of active cells each cycle (Figures 6–7).
    Counts,
    /// Record full activity bitmaps every `stride` cycles (animations).
    Frames {
        /// Capture a bitmap every `stride` cycles.
        stride: u32,
    },
}

/// Per-cycle activity data. `counts[i]` is the number of compute cells that
/// performed compute-phase work in cycle `i` (relative to recording start).
#[derive(Debug, Clone, Default)]
pub struct ActivitySeries {
    /// Active-cell count per recorded cycle.
    pub counts: Vec<u16>,
    /// Activity bitmaps (one bit per cell, row-major), captured every
    /// `frame_stride` cycles when frame recording is enabled.
    pub frames: Vec<Vec<u64>>,
    /// Cycle stride between captured frames (0 = frames disabled).
    pub frame_stride: u32,
}

impl ActivitySeries {
    /// Percentage of active cells per recorded cycle.
    pub fn percent(&self, total_cells: u32) -> Vec<f32> {
        self.counts.iter().map(|&c| c as f32 * 100.0 / total_cells as f32).collect()
    }

    /// Down-sample the series to at most `buckets` points by max-pooling
    /// (preserves activity peaks, which is what the figures show).
    pub fn downsample_max(&self, buckets: usize) -> Vec<u16> {
        if self.counts.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let chunk = self.counts.len().div_ceil(buckets);
        self.counts.chunks(chunk).map(|c| *c.iter().max().unwrap()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_mean_ratio_balanced_vs_skewed() {
        assert_eq!(max_mean_ratio(&[5, 5, 5, 5]), 1.0);
        assert_eq!(max_mean_ratio(&[0, 0, 0, 20]), 4.0);
        assert_eq!(max_mean_ratio(&[]), 0.0);
        assert_eq!(max_mean_ratio(&[0, 0]), 0.0);
    }

    #[test]
    fn gini_bounds() {
        assert!((gini(&[7, 7, 7, 7]) - 0.0).abs() < 1e-12, "equal loads: G = 0");
        let concentrated = gini(&[0, 0, 0, 0, 0, 0, 0, 100]);
        assert!(concentrated > 0.8, "all load on one cell: G = {concentrated}");
        let mild = gini(&[8, 10, 12, 10]);
        assert!(mild > 0.0 && mild < 0.2, "mild skew: G = {mild}");
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn top_k_share_concentration() {
        assert_eq!(top_k_share(&[10, 10, 10, 10], 1), 0.25);
        assert_eq!(top_k_share(&[40, 0, 0, 0], 1), 1.0);
        assert_eq!(top_k_share(&[1, 2, 3, 4], 2), 0.7);
        assert_eq!(top_k_share(&[], 3), 0.0);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = Counters { instrs: 10, hops: 20, ..Default::default() };
        let b = Counters { instrs: 5, msgs_delivered: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.instrs, 15);
        assert_eq!(a.hops, 20);
        assert_eq!(a.msgs_delivered, 3);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = Counters { instrs: 10, hops: 20, ..Default::default() };
        let b = Counters { instrs: 25, hops: 21, msgs_staged: 5, ..Default::default() };
        let d = b.delta(&a);
        assert_eq!(d.instrs, 15);
        assert_eq!(d.hops, 1);
        assert_eq!(d.msgs_staged, 5);
    }

    #[test]
    fn percent_scales() {
        let s = ActivitySeries { counts: vec![0, 512, 1024], ..Default::default() };
        let p = s.percent(1024);
        assert_eq!(p, vec![0.0, 50.0, 100.0]);
    }

    #[test]
    fn downsample_max_pools_peaks() {
        let s = ActivitySeries { counts: vec![1, 9, 2, 3, 8, 1, 0, 0], ..Default::default() };
        let d = s.downsample_max(4);
        assert_eq!(d, vec![9, 3, 8, 0]);
    }

    #[test]
    fn downsample_handles_empty() {
        let s = ActivitySeries::default();
        assert!(s.downsample_max(10).is_empty());
    }
}
