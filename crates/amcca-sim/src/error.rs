//! Simulator errors. Diffusive execution has no recoverable user-level
//! failures — an action either runs or the simulation is mis-configured — so
//! errors here are fatal for the run and carried out of `Chip::run_*`.

use crate::operon::Address;

/// Fatal simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Every allocation-retry candidate was full; the chip is out of memory.
    /// `OutOfMemory` variant.
    OutOfMemory {
        /// Cell whose vertex requested the failed allocation.
        origin_cc: u16,
        /// Placement candidates that were tried.
        retries: u32,
    },
    /// An action referenced an address whose slot is not live.
    /// `BadAddress` variant.
    BadAddress {
        /// The dead or out-of-range address.
        addr: Address,
        /// Action id that referenced it.
        action: u16,
    },
    /// `run_until_quiescent` exceeded the configured cycle budget.
    /// `CycleLimitExceeded` variant.
    CycleLimitExceeded {
        /// The configured `max_cycles` budget.
        limit: u64,
    },
    /// An operon targeted a cell id outside the mesh.
    /// `BadTargetCell` variant.
    BadTargetCell {
        /// The offending cell id.
        cc: u16,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::OutOfMemory { origin_cc, retries } => {
                write!(
                    f,
                    "out of memory: allocation from cc{origin_cc} failed after {retries} retries"
                )
            }
            SimError::BadAddress { addr, action } => {
                write!(f, "action {action} targeted dead address {addr}")
            }
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded cycle limit {limit} without quiescing")
            }
            SimError::BadTargetCell { cc } => write!(f, "operon targeted non-existent cell {cc}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::OutOfMemory { origin_cc: 3, retries: 9 };
        assert!(e.to_string().contains("cc3"));
        let e = SimError::CycleLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
        let e = SimError::BadAddress { addr: Address::new(1, 2), action: 7 };
        assert!(e.to_string().contains("cc1#2"));
    }
}
