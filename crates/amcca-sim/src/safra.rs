//! Distributed termination detection: Safra's token-ring algorithm.
//!
//! The paper's host API creates "a terminator object that handles
//! termination detection for the diffusion" (Listing 1). The CCASimulator —
//! like this crate's default — detects termination by *global quiescence*, a
//! zero-overhead check only a simulator can perform. A real decentralized
//! machine must detect termination with messages, so this module provides
//! the classic alternative: **Safra's token algorithm** (Dijkstra's EWD 998
//! formulation for asynchronous message passing), run over the chip's own
//! mesh with a token that pays real hops and real compute cycles.
//!
//! Protocol summary:
//!
//! * every cell keeps a message counter `mc` (+1 per application operon
//!   sent, −1 per operon consumed) and a colour (black after consuming);
//! * a token `(q, colour)` circulates a serpentine ring over all cells; a
//!   cell holds the token until it is *passive* (idle, empty queue), then
//!   forwards it with `q += mc`, blackening the token if the cell is black,
//!   and whitens itself;
//! * when the initiator (cell 0) gets the token back while itself passive
//!   and white, with a white token and `q + mc₀ == 0`, the diffusion has
//!   terminated; otherwise a fresh white probe starts.
//!
//! IO-cell injections are accounted as sends by the attached border cell, so
//! the system stays closed. `paper ablate-terminator` measures the overhead
//! against the quiescence detector.

use crate::operon::{ActionId, Address, Operon};

/// Reserved action id of the termination token (never a user action).
pub const ACT_TOKEN: ActionId = u16::MAX;

/// Colour in Safra's algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Colour {
    /// No unaccounted consumption since the last token pass.
    White,
    /// The cell consumed a message since the last token pass.
    Black,
}

/// Per-cell termination-detection state. This lives *inside* each
/// [`crate::cell::Cell`] (not in a chip-global table) so that the sharded
/// parallel engine can update it with no cross-thread traffic — exactly the
/// decentralization a real machine would have.
#[derive(Debug, Clone, Copy)]
pub struct CellTd {
    /// Messages sent minus messages consumed by this cell.
    pub mc: i64,
    /// Black after consuming a message, whitened when forwarding the token.
    pub black: bool,
}

impl CellTd {
    /// Fresh per-cell state at detector start. Starts black: activity before
    /// the first probe must not allow a spurious first-round detection.
    pub fn start() -> Self {
        CellTd { mc: 0, black: true }
    }

    /// Account one application-operon send by this cell.
    #[inline]
    pub fn on_send(&mut self) {
        self.mc += 1;
    }

    /// Account one application-operon consumption by this cell.
    #[inline]
    pub fn on_consume(&mut self) {
        self.mc -= 1;
        self.black = true;
    }
}

impl Default for CellTd {
    fn default() -> Self {
        Self::start()
    }
}

/// Chip-level detector state: only the global scalars live here. The
/// per-cell counters and colours are each cell's [`CellTd`]
/// (`Cell::td`), so every hot-path update stays cell-local.
#[derive(Debug, Default)]
pub struct SafraState {
    /// Set when the initiator declares termination.
    pub terminated: bool,
    /// Completed (unsuccessful) probe rounds.
    pub rounds: u64,
    /// Mesh hops consumed by the token (the detector's network overhead).
    pub token_hops: u64,
    /// Times the token was re-queued behind pending work (polling cost).
    pub token_requeues: u64,
    /// Cycle at which termination was declared.
    pub detected_at: Option<u64>,
}

impl SafraState {
    /// Fresh detector state (per-cell state is reset by the chip).
    pub fn new() -> Self {
        SafraState::default()
    }
}

/// Token payload codec: `payload[0]` = q as two's-complement i64,
/// `payload[1]` = colour bit.
pub fn token_operon(target_cc: u16, q: i64, colour: Colour) -> Operon {
    Operon::new(
        Address::new(target_cc, 0),
        ACT_TOKEN,
        [q as u64, matches!(colour, Colour::Black) as u64],
    )
}

/// Decode a token operon back into `(q, colour)`.
pub fn decode_token(op: &Operon) -> (i64, Colour) {
    debug_assert_eq!(op.action, ACT_TOKEN);
    let colour = if op.payload[1] == 1 { Colour::Black } else { Colour::White };
    (op.payload[0] as i64, colour)
}

/// The initiator's Rule-2 check: token returned white to a white, passive
/// initiator and the global message count balances.
pub fn initiator_detects(token_q: i64, token_colour: Colour, init: CellTd) -> bool {
    token_colour == Colour::White && !init.black && token_q + init.mc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_codec_roundtrip() {
        for &(q, c) in &[(0i64, Colour::White), (-5, Colour::Black), (i64::MAX / 2, Colour::White)]
        {
            let op = token_operon(7, q, c);
            assert_eq!(op.action, ACT_TOKEN);
            assert_eq!(decode_token(&op), (q, c));
        }
    }

    #[test]
    fn accounting_tracks_flow() {
        let mut cells = [CellTd::start(); 4];
        cells[1].on_send();
        cells[1].on_send();
        cells[2].on_consume();
        assert_eq!(cells[1].mc, 2);
        assert_eq!(cells[2].mc, -1);
        assert!(cells[2].black);
        let total: i64 = cells.iter().map(|c| c.mc).sum();
        assert_eq!(total, 1, "one message still in flight");
    }

    #[test]
    fn rule2_requires_all_three_conditions() {
        let white_idle = CellTd { mc: 0, black: false };
        assert!(initiator_detects(0, Colour::White, white_idle));
        assert!(!initiator_detects(0, Colour::Black, white_idle));
        assert!(!initiator_detects(1, Colour::White, white_idle));
        assert!(!initiator_detects(0, Colour::White, CellTd { mc: 0, black: true }));
        // Balancing initiator deficit is accepted.
        assert!(initiator_detects(-3, Colour::White, CellTd { mc: 3, black: false }));
    }

    #[test]
    fn fresh_state_is_black_everywhere() {
        assert!(CellTd::start().black, "no spurious first-round detection");
        assert!(!SafraState::new().terminated);
    }
}
