//! A tiny deterministic PRNG (SplitMix64) used inside the simulator.
//!
//! The simulator must be bit-for-bit reproducible across runs for the paper's
//! experiments (same seed ⇒ identical cycle counts), so it carries its own
//! dependency-free generator rather than pulling `rand` into the hot path.
//! Workload *generation* (datasets crate) uses `rand` as usual.

/// SplitMix64: fast, small-state, passes BigCrush; ideal for simulation
/// decisions such as Random-Allocator target choice.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent stream for substream `i` (e.g. per compute cell).
    pub fn fork(&self, i: u64) -> Self {
        let mut base = SplitMix64::new(self.state ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1));
        base.next_u64();
        base
    }

    #[inline]
    /// Next u64.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    /// Next u32.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..n`. `n` must be non-zero.
    #[inline]
    pub fn gen_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift; bias is negligible for simulator purposes
        // (n is tiny compared to 2^64) and the method is branch-free.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_streams() {
        let root = SplitMix64::new(7);
        let mut f1 = root.fork(0);
        let mut f2 = root.fork(1);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.gen_range(17) < 17);
        }
    }

    #[test]
    fn gen_range_covers_values() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }
}
