//! Trace export: CSV series and ASCII renderings of chip activity.
//!
//! The paper plots "Percent of Cells Active" per cycle (Figures 6–7) and
//! links to animations generated from simulation traces. This module turns an
//! [`ActivitySeries`] into those artifacts: a CSV one can plot directly, an
//! ASCII sparkline for terminal output, and per-frame heat-map grids for the
//! animation example.

use std::fmt::Write as _;

use crate::geom::Dims;
use crate::stats::ActivitySeries;

/// Render the activity series as CSV with header `cycle,active,percent`.
pub fn activity_csv(series: &ActivitySeries, total_cells: u32) -> String {
    let mut out = String::with_capacity(series.counts.len() * 16 + 32);
    out.push_str("cycle,active,percent\n");
    for (i, &c) in series.counts.iter().enumerate() {
        let pct = c as f64 * 100.0 / total_cells as f64;
        writeln!(out, "{i},{c},{pct:.2}").unwrap();
    }
    out
}

/// A terminal sparkline of the activity series, down-sampled to `width`
/// columns with max-pooling (peaks preserved, like the paper's figures).
pub fn activity_sparkline(series: &ActivitySeries, total_cells: u32, width: usize) -> String {
    const BARS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    series
        .downsample_max(width)
        .into_iter()
        .map(|c| {
            let frac = c as f64 / total_cells as f64;
            let idx = (frac * 8.0).ceil().min(8.0) as usize;
            BARS[idx]
        })
        .collect()
}

/// Render one activity bitmap frame as an ASCII grid (`#` active, `.` idle).
pub fn frame_ascii(frame: &[u64], dims: Dims) -> String {
    let mut out = String::with_capacity((dims.x as usize + 1) * dims.y as usize);
    for y in 0..dims.y {
        for x in 0..dims.x {
            let i = dims.id_of(crate::geom::Coord::new(x, y)) as usize;
            let bit = frame[i / 64] >> (i % 64) & 1;
            out.push(if bit == 1 { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_header_and_rows() {
        let s = ActivitySeries { counts: vec![0, 512, 1024], ..Default::default() };
        let csv = activity_csv(&s, 1024);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cycle,active,percent");
        assert_eq!(lines[1], "0,0,0.00");
        assert_eq!(lines[2], "1,512,50.00");
        assert_eq!(lines[3], "2,1024,100.00");
    }

    #[test]
    fn sparkline_width_and_glyphs() {
        let s = ActivitySeries {
            counts: vec![0, 256, 512, 1024, 512, 0, 0, 128],
            ..Default::default()
        };
        let sp = activity_sparkline(&s, 1024, 4);
        assert_eq!(sp.chars().count(), 4);
        assert!(sp.contains('█'), "full activity renders a full bar: {sp}");
    }

    #[test]
    fn frame_ascii_grid() {
        let dims = Dims::new(8, 2);
        let mut frame = vec![0u64; 1];
        frame[0] |= 1 << 0; // (0,0)
        frame[0] |= 1 << 9; // (1,1)
        let art = frame_ascii(&frame, dims);
        let rows: Vec<&str> = art.lines().collect();
        assert_eq!(rows[0], "#.......");
        assert_eq!(rows[1], ".#......");
    }
}
