//! Energy model for the AM-CCA chip.
//!
//! The paper reuses the energy assumptions of its companion work (ref.\[4\],
//! arXiv:2402.06086), whose exact constants are not restated; Table 2 gives
//! whole-run totals for a 590 mm² 32 × 32 chip at 1 GHz. We therefore model
//! energy as a linear function of simulator event counts,
//!
//! `E = N_instr·e_instr + N_hop·e_hop + N_alloc·e_alloc + cycles·N_cc·e_leak`,
//!
//! with coefficients in picojoules, calibrated so the *ingestion-only* rows
//! of Table 2 land at the paper's scale (≈1.36 nJ per streamed edge at ~27
//! mesh hops per insert operon). Two structural facts of Table 2 pin the
//! calibration:
//!
//! * Edge and Snowball sampling consume near-identical ingestion energy
//!   (1355 vs 1357 µJ) despite a 14 % cycle-count difference — so static
//!   leakage must be a small term (sub-picojoule per cell per cycle).
//! * Energy scales almost exactly with edge count (50 K → 500 K is 13480 /
//!   1355 ≈ 9.95 ≈ 10.2/1.0 edges) — so per-event terms dominate.
//!
//! The Ingestion+BFS rows then follow from the simulated BFS action/hop
//! counts with no further tuning, which is exactly the structure of the
//! paper's model. See EXPERIMENTS.md for measured-vs-paper numbers.

use crate::stats::Counters;

/// Energy coefficients (picojoules per event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// pJ per retired instruction.
    pub e_instr_pj: f64,
    /// pJ per link traversal (one hop of one 256-bit flit).
    pub e_hop_pj: f64,
    /// pJ per object allocation (arena bookkeeping + initialization burst).
    pub e_alloc_pj: f64,
    /// pJ per compute cell per cycle of static/leakage power.
    pub e_leak_cc_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Calibrated against Table 2's ingestion-only rows (see module docs).
        EnergyModel { e_instr_pj: 20.0, e_hop_pj: 45.0, e_alloc_pj: 120.0, e_leak_cc_pj: 0.65 }
    }
}

impl EnergyModel {
    /// Total energy in microjoules for the given event counts.
    pub fn total_uj(&self, c: &Counters, cells: u64, cycles: u64) -> f64 {
        let dynamic_pj = c.instrs as f64 * self.e_instr_pj
            + c.hops as f64 * self.e_hop_pj
            + c.allocs as f64 * self.e_alloc_pj;
        let leak_pj = cycles as f64 * cells as f64 * self.e_leak_cc_pj;
        (dynamic_pj + leak_pj) / 1e6
    }
}

/// Convert cycles to microseconds at the paper's 1 GHz clock.
pub fn cycles_to_us(cycles: u64) -> f64 {
    cycles as f64 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_events_costs_only_leakage() {
        let m = EnergyModel::default();
        let c = Counters::default();
        let e = m.total_uj(&c, 1024, 1000);
        let expected = 1000.0 * 1024.0 * m.e_leak_cc_pj / 1e6;
        assert!((e - expected).abs() < 1e-9);
    }

    #[test]
    fn energy_is_linear_in_hops() {
        let m = EnergyModel::default();
        let mut c = Counters { hops: 10, ..Default::default() };
        let e10 = m.total_uj(&c, 0, 0);
        c.hops = 20;
        let e20 = m.total_uj(&c, 0, 0);
        assert!((e20 - 2.0 * e10).abs() < 1e-12);
    }

    #[test]
    fn calibration_scale_sanity() {
        // ~1 M inserted edges at ~27 hops each plus ~4 M instructions must
        // land within 2x of the paper's 1355 µJ (exact match is validated at
        // full scale in EXPERIMENTS.md).
        let m = EnergyModel::default();
        let c =
            Counters { instrs: 4_000_000, hops: 27_000_000, allocs: 30_000, ..Default::default() };
        let e = m.total_uj(&c, 1024, 22_000);
        assert!(e > 700.0 && e < 2700.0, "ingestion energy {e} µJ out of band");
    }

    #[test]
    fn cycles_to_us_at_1ghz() {
        assert_eq!(cycles_to_us(22_000), 22.0);
        assert_eq!(cycles_to_us(0), 0.0);
    }
}
