//! Operons: the active messages of the diffusive model.
//!
//! An *operon* couples an action (code to run) with its operands (data) and a
//! target memory locality, exactly as the paper's `propagate` construct does.
//! AM-CCA links are 256 bits wide and "can easily send the small messages of
//! our tested applications in a single flit cycle" (§4) — so an operon here is
//! a POD of at most 32 bytes and always moves one hop per cycle.

/// A global address in the PGAS formed by all compute-cell memories:
/// `(compute cell, slot within that cell's object arena)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Address {
    /// Compute-cell id (row-major).
    pub cc: u16,
    /// Slot index within the cell's object arena.
    pub slot: u32,
}

impl Address {
    /// Create an address from cell id and arena slot.
    pub const fn new(cc: u16, slot: u32) -> Self {
        Address { cc, slot }
    }

    /// Pack into a u64 so an address fits in one payload word.
    #[inline]
    pub fn pack(self) -> u64 {
        ((self.cc as u64) << 32) | self.slot as u64
    }

    #[inline]
    /// Inverse of [`Self::pack`].
    pub fn unpack(v: u64) -> Self {
        Address { cc: (v >> 32) as u16, slot: v as u32 }
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cc{}#{}", self.cc, self.slot)
    }
}

/// Identifier of a registered action (paper's `AMCCA_REGISTER_ACTION`).
pub type ActionId = u16;

/// An active message: "send work to data". `payload` carries the operands
/// (two 64-bit words — enough for an edge, a BFS level, or a continuation).
/// `origin` is the cell that staged the operon (used by termination detection
/// and statistics; a real flit would carry a source id too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operon {
    /// The memory locality this action is sent to.
    pub target: Address,
    /// Registered action to execute at the target.
    pub action: ActionId,
    /// Cell that staged the operon (set by `propagate`).
    pub origin: u16,
    /// Operand words (an edge, a level, a continuation...).
    pub payload: [u64; 2],
}

impl Operon {
    /// Build an operon with an unset origin (stamped on propagate).
    pub fn new(target: Address, action: ActionId, payload: [u64; 2]) -> Self {
        Operon { target, action, origin: u16::MAX, payload }
    }
}

// One operon must fit a single 256-bit flit (paper §4).
const _: () = assert!(std::mem::size_of::<Operon>() <= 32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_pack_roundtrip() {
        for &(cc, slot) in &[(0u16, 0u32), (1023, 42), (u16::MAX, u32::MAX), (7, 123_456)] {
            let a = Address::new(cc, slot);
            assert_eq!(Address::unpack(a.pack()), a);
        }
    }

    #[test]
    fn operon_is_single_flit() {
        assert!(std::mem::size_of::<Operon>() <= 32);
    }

    #[test]
    fn address_display() {
        assert_eq!(Address::new(3, 9).to_string(), "cc3#9");
    }
}
