//! Per-cell mesh router.
//!
//! Each compute cell has a router with six input FIFOs: one per mesh
//! direction (flits arriving from the four neighbours), one *local* port
//! (operons staged by this cell's `propagate`), and one *IO* port (operons
//! injected by an attached IO cell). Outputs are the four mesh links plus an
//! ejection port that delivers arrived operons into the cell's task queue.
//!
//! Flow control is conservative credit-based store-and-forward: a flit moves
//! one hop per cycle if the downstream FIFO had a free slot at the start of
//! the cycle; each output port forwards at most one flit per cycle; input
//! ports are served round-robin. Combined with YX dimension-ordered routing
//! (no X→Y turns) this is deadlock-free.

use std::collections::VecDeque;

use crate::operon::Operon;

/// Input-port indices. Ports 0–3 match [`crate::geom::Direction`] indices.
pub const PORT_NORTH: usize = 0;
/// `PORT_SOUTH` constant.
pub const PORT_SOUTH: usize = 1;
/// `PORT_EAST` constant.
pub const PORT_EAST: usize = 2;
/// `PORT_WEST` constant.
pub const PORT_WEST: usize = 3;
/// Injection port for operons staged by the local compute cell.
pub const PORT_LOCAL: usize = 4;
/// Injection port for the attached IO cell (border cells only).
pub const PORT_IO: usize = 5;
/// `NUM_PORTS` constant.
pub const NUM_PORTS: usize = 6;

/// Output-port indices: 0–3 mesh directions, 4 ejection to the local cell.
pub const OUT_EJECT: usize = 4;
/// `NUM_OUTPUTS` constant.
pub const NUM_OUTPUTS: usize = 5;

#[derive(Debug)]
/// Per-cell router state: six input FIFOs plus the cycle snapshot.
pub struct Router {
    bufs: [VecDeque<Operon>; NUM_PORTS],
    /// Occupancy snapshot taken at the start of the network phase; used for
    /// conservative acceptance so a slot freed this cycle is reusable only
    /// next cycle.
    start_len: [u16; NUM_PORTS],
    total: u32,
    capacity: usize,
}

impl Router {
    /// Create a router whose FIFOs hold `capacity` flits each.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "router FIFOs need at least one slot");
        Router { bufs: Default::default(), start_len: [0; NUM_PORTS], total: 0, capacity }
    }

    /// Total flits currently buffered in this router.
    #[inline]
    pub fn total(&self) -> u32 {
        self.total
    }

    /// FIFO capacity in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot FIFO occupancies for this cycle's acceptance decisions.
    #[inline]
    pub fn begin_cycle(&mut self) {
        for (s, b) in self.start_len.iter_mut().zip(&self.bufs) {
            *s = b.len() as u16;
        }
    }

    /// Would a flit pushed to `port` this cycle respect the snapshot credit?
    #[inline]
    pub fn accepts(&self, port: usize) -> bool {
        (self.start_len[port] as usize) < self.capacity
    }

    /// Can an injection port (local / IO) take a flit right now? Injections
    /// happen after the network phase, so they check live occupancy.
    #[inline]
    pub fn accepts_now(&self, port: usize) -> bool {
        self.bufs[port].len() < self.capacity
    }

    #[inline]
    /// Peek the head flit of `port`.
    pub fn front(&self, port: usize) -> Option<&Operon> {
        self.bufs[port].front()
    }

    #[inline]
    /// Append a flit to `port` (caller checked acceptance).
    pub fn push(&mut self, port: usize, op: Operon) {
        debug_assert!(self.bufs[port].len() < self.capacity, "router FIFO overflow");
        self.bufs[port].push_back(op);
        self.total += 1;
    }

    /// Remove and return the head flit of `port` (panics if empty).
    #[inline]
    pub fn pop(&mut self, port: usize) -> Operon {
        let op = self.bufs[port].pop_front().expect("pop from empty router FIFO");
        self.total -= 1;
        op
    }

    /// Current number of flits buffered at `port`.
    pub fn occupancy(&self, port: usize) -> usize {
        self.bufs[port].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operon::{Address, Operon};

    fn op(n: u32) -> Operon {
        Operon::new(Address::new(0, n), 1, [0, 0])
    }

    #[test]
    fn push_pop_total() {
        let mut r = Router::new(4);
        r.push(PORT_LOCAL, op(1));
        r.push(PORT_NORTH, op(2));
        assert_eq!(r.total(), 2);
        assert_eq!(r.pop(PORT_LOCAL).target.slot, 1);
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn snapshot_acceptance_is_conservative() {
        let mut r = Router::new(2);
        r.push(PORT_EAST, op(1));
        r.push(PORT_EAST, op(2));
        r.begin_cycle();
        assert!(!r.accepts(PORT_EAST), "full at snapshot");
        // Draining during the cycle does not open the credit until next cycle.
        r.pop(PORT_EAST);
        assert!(!r.accepts(PORT_EAST));
        r.begin_cycle();
        assert!(r.accepts(PORT_EAST), "credit visible after new snapshot");
    }

    #[test]
    fn live_acceptance_for_injection_ports() {
        let mut r = Router::new(1);
        assert!(r.accepts_now(PORT_LOCAL));
        r.push(PORT_LOCAL, op(1));
        assert!(!r.accepts_now(PORT_LOCAL));
        r.pop(PORT_LOCAL);
        assert!(r.accepts_now(PORT_LOCAL));
    }
}
