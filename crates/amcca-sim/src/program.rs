//! The program interface: how application code (the diffusive runtime) plugs
//! into the chip.
//!
//! A [`Program`] is the registered action set of the chip. When a compute
//! cell picks up a delivered operon, the chip calls `Program::execute` with an
//! [`ExecCtx`] scoped to *that cell's local memory only* — actions can never
//! touch remote state directly, they must `propagate` further operons. This
//! enforces the message-driven PGAS discipline of the paper at the type level.

use std::collections::VecDeque;

use crate::arena::{Arena, ArenaFull};
use crate::cost::CostModel;
use crate::error::SimError;
use crate::geom::Coord;
use crate::operon::{Address, Operon};
use crate::placement::PlacementTable;
use crate::rng::SplitMix64;
use crate::stats::Counters;

/// Execution context handed to an action body. Borrows exactly the state an
/// action is architecturally allowed to see: the executing cell's memory, its
/// staging outbox, and chip-wide cost/placement configuration.
pub struct ExecCtx<'a, T> {
    /// Id of the executing compute cell.
    pub cc: u16,
    /// Mesh coordinate of the executing cell.
    pub coord: Coord,
    memory: &'a mut Arena<T>,
    outbox: &'a mut VecDeque<Operon>,
    charge: &'a mut u32,
    counters: &'a mut Counters,
    cost: &'a CostModel,
    placement: &'a PlacementTable,
    rng: &'a mut SplitMix64,
    error: &'a mut Option<SimError>,
}

impl<'a, T> ExecCtx<'a, T> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cc: u16,
        coord: Coord,
        memory: &'a mut Arena<T>,
        outbox: &'a mut VecDeque<Operon>,
        charge: &'a mut u32,
        counters: &'a mut Counters,
        cost: &'a CostModel,
        placement: &'a PlacementTable,
        rng: &'a mut SplitMix64,
        error: &'a mut Option<SimError>,
    ) -> Self {
        ExecCtx { cc, coord, memory, outbox, charge, counters, cost, placement, rng, error }
    }

    /// Charge `n` compute instructions to this action (one cycle each).
    #[inline]
    pub fn charge(&mut self, n: u32) {
        *self.charge += n;
    }

    /// Stage an operon for sending (the paper's `propagate`). Staging itself
    /// costs one cycle per operon, charged by the chip's compute phase.
    #[inline]
    pub fn propagate(&mut self, mut op: Operon) {
        op.origin = self.cc;
        self.outbox.push_back(op);
    }

    /// The instruction-cost constants.
    #[inline]
    pub fn cost(&self) -> &CostModel {
        self.cost
    }

    /// Borrow a local object.
    #[inline]
    pub fn obj(&self, slot: u32) -> Option<&T> {
        self.memory.get(slot)
    }

    /// Mutably borrow a local object.
    #[inline]
    pub fn obj_mut(&mut self, slot: u32) -> Option<&mut T> {
        self.memory.get_mut(slot)
    }

    /// Allocate an object in *this cell's* memory (the `allocate` system
    /// action runs on the target cell and calls this).
    pub fn alloc(&mut self, value: T) -> Result<Address, ArenaFull> {
        let slot = self.memory.alloc(value)?;
        self.counters.allocs += 1;
        Ok(Address::new(self.cc, slot))
    }

    /// Free a local object.
    pub fn free(&mut self, slot: u32) -> Option<T> {
        self.memory.free(slot)
    }

    /// Remaining free object slots in this cell's memory.
    pub fn memory_available(&self) -> u32 {
        self.memory.available()
    }

    /// Pick a target cell for a remote allocation according to the chip's
    /// ghost-placement policy. `retry` > 0 selects fallback candidates.
    pub fn choose_alloc_target(&mut self, retry: u32) -> u16 {
        self.placement.choose(self.cc, retry, self.rng)
    }

    /// As [`Self::choose_alloc_target`], but anchored at `origin` instead of
    /// the executing cell. Retried allocations use the *requesting* vertex's
    /// cell as the anchor so the Vicinity policy's locality is preserved even
    /// when a neighbour was full.
    pub fn choose_alloc_target_from(&mut self, origin: u16, retry: u32) -> u16 {
        self.placement.choose(origin, retry, self.rng)
    }

    /// Record a failed allocation attempt that will be retried elsewhere.
    pub fn note_alloc_retry(&mut self) {
        self.counters.alloc_retries += 1;
    }

    /// Report a fatal simulation error (first error wins; the run stops at
    /// the end of the current cycle).
    pub fn fail(&mut self, e: SimError) {
        if self.error.is_none() {
            *self.error = Some(e);
        }
    }
}

/// The action set executed by the chip's compute cells.
///
/// # Sharded execution contract
///
/// When [`crate::ChipConfig::shards`] > 1, the chip partitions the mesh into
/// column bands and runs one *forked* program instance per band on its own
/// worker thread (hence the `Send` bounds). For the parallel engine to stay
/// bit-identical to the sequential one, any mutable state a program keeps
/// outside cell memory must be either call-local scratch, or *per-cell
/// partitioned / commutatively mergeable* (e.g. per-cell hit counters), so
/// that [`Program::merge`] can fold the shard instances back losslessly.
/// State that couples cells within a cycle is outside the architecture's
/// message-driven discipline and unsupported.
pub trait Program: Send {
    /// The object type living in compute-cell memory (e.g. a vertex object).
    type Object: Send;

    /// Execute one delivered operon on the cell it targeted. Mutations are
    /// applied immediately; timing is charged via `ctx.charge` and the
    /// staging of each `ctx.propagate`d operon (one cycle apiece).
    fn execute(&mut self, ctx: &mut ExecCtx<'_, Self::Object>, op: &Operon);

    /// Create an independent instance for one shard of a parallel run.
    /// Configuration is copied; accumulator state starts empty (it is folded
    /// back by [`Program::merge`] when the run completes).
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Fold a shard instance's accumulated state back into `self` after a
    /// parallel run. Shards are merged in shard-id order, so a commutative,
    /// associative merge reproduces the sequential totals exactly. The
    /// default drops the worker — correct only for programs whose forks
    /// accumulate nothing.
    fn merge(&mut self, worker: Self)
    where
        Self: Sized,
    {
        let _ = worker;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipConfig;
    use crate::placement::PlacementTable;

    #[test]
    fn ctx_charges_and_stages() {
        let cfg = ChipConfig::small_test();
        let mut mem: Arena<u32> = Arena::new(8);
        let mut outbox = VecDeque::new();
        let mut charge = 0u32;
        let mut counters = Counters::default();
        let cost = CostModel::default();
        let placement = PlacementTable::new(cfg.ghost_placement, cfg.dims);
        let mut rng = SplitMix64::new(1);
        let mut err = None;
        let mut ctx = ExecCtx::new(
            3,
            cfg.dims.coord_of(3),
            &mut mem,
            &mut outbox,
            &mut charge,
            &mut counters,
            &cost,
            &placement,
            &mut rng,
            &mut err,
        );
        ctx.charge(5);
        let a = ctx.alloc(42).unwrap();
        assert_eq!(a.cc, 3);
        assert_eq!(*ctx.obj(a.slot).unwrap(), 42);
        ctx.propagate(Operon::new(Address::new(0, 0), 9, [1, 2]));
        assert_eq!(charge, 5);
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].origin, 3, "propagate stamps the origin cell");
        assert_eq!(counters.allocs, 1);
    }

    #[test]
    fn ctx_first_error_wins() {
        let cfg = ChipConfig::small_test();
        let mut mem: Arena<u32> = Arena::new(1);
        let mut outbox = VecDeque::new();
        let (mut charge, mut counters) = (0u32, Counters::default());
        let cost = CostModel::default();
        let placement = PlacementTable::new(cfg.ghost_placement, cfg.dims);
        let mut rng = SplitMix64::new(1);
        let mut err = None;
        let mut ctx = ExecCtx::new(
            0,
            cfg.dims.coord_of(0),
            &mut mem,
            &mut outbox,
            &mut charge,
            &mut counters,
            &cost,
            &placement,
            &mut rng,
            &mut err,
        );
        ctx.fail(SimError::BadTargetCell { cc: 9 });
        ctx.fail(SimError::CycleLimitExceeded { limit: 1 });
        assert_eq!(err, Some(SimError::BadTargetCell { cc: 9 }));
    }
}
