//! Chip configuration. Defaults reproduce the paper's experimental platform:
//! a 32 × 32 mesh clocked at 1 GHz with IO channels on the north and south
//! borders, YX routing, the Vicinity ghost allocator, and the calibrated
//! energy model.

use crate::cost::CostModel;
use crate::energy::EnergyModel;
use crate::geom::Dims;
use crate::placement::{GhostPlacement, RootPlacement};
use crate::stats::ActivityRecording;

/// Which chip borders carry an IO channel (paper Fig. 2 shows two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoLayout {
    /// North.
    pub north: bool,
    /// South.
    pub south: bool,
}

impl Default for IoLayout {
    fn default() -> Self {
        IoLayout { north: true, south: true }
    }
}

impl IoLayout {
    /// Number of active IO channels (0–2).
    pub fn channels(&self) -> u32 {
        self.north as u32 + self.south as u32
    }
}

/// Full configuration of a simulated AM-CCA chip.
#[derive(Debug, Clone)]
pub struct ChipConfig {
    /// Mesh dimensions (paper: 32 × 32).
    pub dims: Dims,
    /// Capacity of each router input FIFO, in flits.
    pub link_buffer: usize,
    /// Capacity of each cell's delivered-task queue. Full queues exert
    /// backpressure on the network rather than dropping operons.
    pub task_queue_cap: usize,
    /// Objects each cell's arena can hold (models finite scratchpad memory).
    pub arena_capacity: u32,
    /// Which borders have IO channels; each channel has one IO cell per column.
    pub io_layout: IoLayout,
    /// Instruction-cost constants for action bodies.
    pub cost: CostModel,
    /// Energy coefficients.
    pub energy: EnergyModel,
    /// Ghost allocation policy (Vicinity vs Random, paper Fig. 5).
    pub ghost_placement: GhostPlacement,
    /// Root vertex placement at graph-construction time.
    pub root_placement: RootPlacement,
    /// Per-cycle activity recording mode.
    pub record_activity: ActivityRecording,
    /// Hard cycle budget for `run_until_quiescent`.
    pub max_cycles: u64,
    /// Allocation retries before declaring the chip out of memory.
    pub max_alloc_retries: u32,
    /// Master seed for all simulator randomness.
    pub seed: u64,
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig {
            dims: Dims::new(32, 32),
            link_buffer: 4,
            task_queue_cap: 1 << 16,
            arena_capacity: 1 << 14,
            io_layout: IoLayout::default(),
            cost: CostModel::default(),
            energy: EnergyModel::default(),
            ghost_placement: GhostPlacement::default(),
            root_placement: RootPlacement::default(),
            record_activity: ActivityRecording::Off,
            max_cycles: 200_000_000,
            max_alloc_retries: 4096,
            seed: 0xC0FFEE,
        }
    }
}

impl ChipConfig {
    /// A small chip for unit tests: 8 × 8, tighter queues.
    pub fn small_test() -> Self {
        ChipConfig {
            dims: Dims::new(8, 8),
            arena_capacity: 1 << 12,
            max_cycles: 20_000_000,
            ..Default::default()
        }
    }

    /// Number of compute cells.
    pub fn cell_count(&self) -> u32 {
        self.dims.cell_count()
    }

    /// Number of IO cells (one per column per active channel).
    pub fn io_cell_count(&self) -> u32 {
        self.io_layout.channels() * self.dims.x as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ChipConfig::default();
        assert_eq!(c.cell_count(), 1024);
        assert_eq!(c.io_cell_count(), 64);
        assert_eq!(c.ghost_placement, GhostPlacement::Vicinity { max_hops: 2 });
    }

    #[test]
    fn io_layout_channels() {
        assert_eq!(IoLayout { north: true, south: false }.channels(), 1);
        assert_eq!(IoLayout::default().channels(), 2);
    }
}
