//! Chip configuration. Defaults reproduce the paper's experimental platform:
//! a 32 × 32 mesh clocked at 1 GHz with IO channels on the north and south
//! borders, YX routing, the Vicinity ghost allocator, and the calibrated
//! energy model.

use crate::cost::CostModel;
use crate::energy::EnergyModel;
use crate::geom::Dims;
use crate::placement::{GhostPlacement, RhizomePlacement, RootPlacement};
use crate::stats::ActivityRecording;

/// Which chip borders carry an IO channel (paper Fig. 2 shows two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoLayout {
    /// North.
    pub north: bool,
    /// South.
    pub south: bool,
}

impl Default for IoLayout {
    fn default() -> Self {
        IoLayout { north: true, south: true }
    }
}

impl IoLayout {
    /// Number of active IO channels (0–2).
    pub fn channels(&self) -> u32 {
        self.north as u32 + self.south as u32
    }
}

/// Full configuration of a simulated AM-CCA chip.
#[derive(Debug, Clone)]
pub struct ChipConfig {
    /// Mesh dimensions (paper: 32 × 32).
    pub dims: Dims,
    /// Capacity of each router input FIFO, in flits.
    pub link_buffer: usize,
    /// Capacity of each cell's delivered-task queue. Full queues exert
    /// backpressure on the network rather than dropping operons.
    pub task_queue_cap: usize,
    /// Objects each cell's arena can hold (models finite scratchpad memory).
    pub arena_capacity: u32,
    /// Which borders have IO channels; each channel has one IO cell per column.
    pub io_layout: IoLayout,
    /// Instruction-cost constants for action bodies.
    pub cost: CostModel,
    /// Energy coefficients.
    pub energy: EnergyModel,
    /// Ghost allocation policy (Vicinity vs Random, paper Fig. 5).
    pub ghost_placement: GhostPlacement,
    /// Root vertex placement at graph-construction time.
    pub root_placement: RootPlacement,
    /// Placement of the extra co-equal roots when a hub vertex is promoted
    /// to a rhizome (see `RhizomePlacement`).
    pub rhizome_placement: RhizomePlacement,
    /// Per-cycle activity recording mode.
    pub record_activity: ActivityRecording,
    /// Hard cycle budget for `run_until_quiescent`.
    pub max_cycles: u64,
    /// Allocation retries before declaring the chip out of memory.
    pub max_alloc_retries: u32,
    /// Master seed for all simulator randomness.
    pub seed: u64,
    /// Number of column-band shards the execution engine runs in parallel
    /// during `run_until_quiescent` / `run_until_terminated`. `1` selects the
    /// sequential reference path; any other value partitions the mesh columns
    /// into contiguous bands, one worker thread per band, with results
    /// **bit-identical** to the sequential engine (clamped to the number of
    /// mesh columns). Defaults to `available_parallelism()`.
    pub shards: usize,
    /// With `shards > 1`, adaptively drop to the sequential engine while
    /// per-cycle activity is below [`ChipConfig::shard_break_even`] (e.g.
    /// between streaming increments, or in a diffusion's long tail) and
    /// re-engage the sharded engine when activity ramps back up. Both
    /// engines are bit-identical, so switching at a cycle boundary cannot
    /// change any result — it only avoids paying the spin-barrier cost for
    /// cycles with too little work to amortize it.
    pub adaptive_shards: bool,
    /// Active-cell count below which a simulated cycle does not amortize the
    /// sharded engine's barrier ("tens of active cells").
    pub shard_break_even: u32,
    /// Deterministic cycle-barrier work stealing on the sharded engine: at
    /// each cycle barrier the coordinator may reassign whole rows of the
    /// busiest band to less-loaded bands for the *next* cycle's compute
    /// phase (routing stays owner-band). The steal schedule is a pure
    /// function of the merged per-row active-cell counts and compute is
    /// cell-local, so results are **bit-identical** with the knob on or off,
    /// for any shard count — it only changes which worker burns the
    /// wall-clock. The knob exists for ablation (`paper balance`).
    pub work_stealing: bool,
}

/// Default shard count: one worker per available hardware thread.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig {
            dims: Dims::new(32, 32),
            link_buffer: 4,
            task_queue_cap: 1 << 16,
            arena_capacity: 1 << 14,
            io_layout: IoLayout::default(),
            cost: CostModel::default(),
            energy: EnergyModel::default(),
            ghost_placement: GhostPlacement::default(),
            root_placement: RootPlacement::default(),
            rhizome_placement: RhizomePlacement::default(),
            record_activity: ActivityRecording::Off,
            max_cycles: 200_000_000,
            max_alloc_retries: 4096,
            seed: 0xC0FFEE,
            shards: default_shards(),
            adaptive_shards: true,
            shard_break_even: 24,
            work_stealing: true,
        }
    }
}

impl ChipConfig {
    /// A small chip for unit tests: 8 × 8, tighter queues, sequential
    /// engine (unit tests pin the single-shard reference path; shard
    /// equivalence has its own dedicated tests).
    pub fn small_test() -> Self {
        ChipConfig {
            dims: Dims::new(8, 8),
            arena_capacity: 1 << 12,
            max_cycles: 20_000_000,
            shards: 1,
            ..Default::default()
        }
    }

    /// Builder-style override of the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Builder-style override of the work-stealing knob.
    pub fn with_work_stealing(mut self, on: bool) -> Self {
        self.work_stealing = on;
        self
    }

    /// Number of compute cells.
    pub fn cell_count(&self) -> u32 {
        self.dims.cell_count()
    }

    /// Number of IO cells (one per column per active channel).
    pub fn io_cell_count(&self) -> u32 {
        self.io_layout.channels() * self.dims.x as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ChipConfig::default();
        assert_eq!(c.cell_count(), 1024);
        assert_eq!(c.io_cell_count(), 64);
        assert_eq!(c.ghost_placement, GhostPlacement::Vicinity { max_hops: 2 });
    }

    #[test]
    fn shard_defaults() {
        assert_eq!(ChipConfig::default().shards, default_shards());
        assert!(default_shards() >= 1);
        assert_eq!(ChipConfig::small_test().shards, 1, "unit tests pin the reference engine");
        assert_eq!(ChipConfig::small_test().with_shards(0).shards, 1, "0 clamps to sequential");
        assert_eq!(ChipConfig::small_test().with_shards(4).shards, 4);
        assert!(ChipConfig::default().work_stealing, "stealing is on by default");
        assert!(!ChipConfig::default().with_work_stealing(false).work_stealing);
    }

    #[test]
    fn io_layout_channels() {
        assert_eq!(IoLayout { north: true, south: false }.channels(), 1);
        assert_eq!(IoLayout::default().channels(), 2);
    }
}
