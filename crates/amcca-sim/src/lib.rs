#![warn(missing_docs)]
//! # amcca-sim — cycle-level simulator for the AM-CCA architecture
//!
//! AM-CCA (Asynchronous-Messaging Continuum Computer Architecture) is a mesh
//! of homogeneous **Compute Cells**, each with its own scratchpad memory and
//! compute logic, programmed with asynchronous active messages ("operons")
//! that send *work to data*. This crate simulates such a chip at the level of
//! individual message movements, reproducing the experimental platform of
//!
//! > Chandio, Brodowicz, Sterling. *Structures and Techniques for Streaming
//! > Dynamic Graph Processing on Decentralized Message-Driven Systems.*
//! > ICPP 2024 (arXiv:2406.01201).
//!
//! Timing rules (paper §4): one message moves one hop per cycle over the
//! YX-routed mesh; one compute cell retires one instruction *or* stages one
//! outgoing message per cycle; border IO cells inject one operon per cycle.
//! The chip reports event counters, per-cycle activity (Figures 6–7), and
//! energy under a calibrated linear model (Table 2).
//!
//! The crate is application-agnostic: programs implement [`Program`] and are
//! plugged into [`Chip`]. The `diffusive` crate builds the paper's
//! programming model (actions, futures, continuations) on top of this.
//!
//! ## Parallel execution
//!
//! With [`ChipConfig::shards`] > 1 (the default is one shard per hardware
//! thread), whole-run entry points execute on a sharded engine: the mesh is
//! partitioned into contiguous column bands, one worker thread per band,
//! exchanging cross-band operons at a cycle barrier. Results are
//! **bit-identical to the sequential engine for any shard count**; `shards:
//! 1` keeps the original single-threaded path as the reference
//! implementation. See [`shard`] and the crate's `shard_equivalence` tests.

pub mod arena;
pub mod cell;
pub mod chip;
pub mod config;
pub mod cost;
pub mod energy;
pub mod error;
pub mod geom;
pub mod iocell;
pub mod operon;
pub(crate) mod parallel;
pub mod placement;
pub mod program;
pub mod rng;
pub mod router;
pub mod safra;
pub mod shard;
pub mod stats;
pub mod trace;

pub use arena::{Arena, ArenaFull};
pub use chip::Chip;
pub use config::{ChipConfig, IoLayout};
pub use cost::CostModel;
pub use energy::{cycles_to_us, EnergyModel};
pub use error::SimError;
pub use geom::{Coord, Dims, Direction};
pub use operon::{ActionId, Address, Operon};
pub use placement::{GhostPlacement, PlacementTable, RhizomePlacement, RootPlacement};
pub use program::{ExecCtx, Program};
pub use rng::SplitMix64;
pub use safra::{CellTd, SafraState, ACT_TOKEN};
pub use shard::{run_tasks, ShardPlan};
pub use stats::{
    gini, max_mean_ratio, top_k_share, ActivityRecording, ActivitySeries, CellLoad, Counters,
};
