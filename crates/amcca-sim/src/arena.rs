//! Per-compute-cell object memory: a bounded slab arena with a free list.
//!
//! Each CC owns a scratchpad memory holding vertex objects (roots and ghosts).
//! Slots are stable (an `Address` stays valid until freed), allocation and
//! deallocation are O(1), and capacity is bounded to model the finite local
//! memory of a compute cell. Allocation failure is a first-class outcome: the
//! diffusive runtime reacts to it by retrying the allocation on another cell
//! of the placement policy's candidate ring.

/// Error returned when a cell's memory is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaFull;

#[derive(Debug)]
enum Entry<T> {
    Occupied(T),
    /// Free slot; value is the next free slot index or `u32::MAX` for none.
    Free(u32),
}

/// A bounded slab. Slot indices are `u32` (combined with the cell id they form
/// a global [`crate::operon::Address`]).
#[derive(Debug)]
pub struct Arena<T> {
    entries: Vec<Entry<T>>,
    free_head: u32,
    len: u32,
    capacity: u32,
}

const NONE: u32 = u32::MAX;

impl<T> Arena<T> {
    /// Create an arena that will hold at most `capacity` objects.
    pub fn new(capacity: u32) -> Self {
        Arena { entries: Vec::new(), free_head: NONE, len: 0, capacity }
    }

    /// Number of live objects.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if no objects are live.
    /// True if no objects are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of objects this arena can hold.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Remaining allocatable slots.
    pub fn available(&self) -> u32 {
        self.capacity - self.len
    }

    /// Allocate a slot for `value`, returning its slot index.
    pub fn alloc(&mut self, value: T) -> Result<u32, ArenaFull> {
        if self.len >= self.capacity {
            return Err(ArenaFull);
        }
        self.len += 1;
        if self.free_head != NONE {
            let slot = self.free_head;
            match self.entries[slot as usize] {
                Entry::Free(next) => self.free_head = next,
                Entry::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            self.entries[slot as usize] = Entry::Occupied(value);
            Ok(slot)
        } else {
            let slot = self.entries.len() as u32;
            self.entries.push(Entry::Occupied(value));
            Ok(slot)
        }
    }

    /// Free `slot`, returning its value. `None` if the slot was not live.
    pub fn free(&mut self, slot: u32) -> Option<T> {
        let e = self.entries.get_mut(slot as usize)?;
        if matches!(e, Entry::Free(_)) {
            return None;
        }
        let old = std::mem::replace(e, Entry::Free(self.free_head));
        self.free_head = slot;
        self.len -= 1;
        match old {
            Entry::Occupied(v) => Some(v),
            Entry::Free(_) => unreachable!(),
        }
    }

    /// Borrow the object at `slot`, if live.
    pub fn get(&self, slot: u32) -> Option<&T> {
        match self.entries.get(slot as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Mutably borrow the object at `slot`, if live.
    pub fn get_mut(&mut self, slot: u32) -> Option<&mut T> {
        match self.entries.get_mut(slot as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Iterate over `(slot, &value)` pairs of live objects.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| match e {
            Entry::Occupied(v) => Some((i as u32, v)),
            Entry::Free(_) => None,
        })
    }

    /// Iterate mutably over `(slot, &mut value)` pairs of live objects.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u32, &mut T)> {
        self.entries.iter_mut().enumerate().filter_map(|(i, e)| match e {
            Entry::Occupied(v) => Some((i as u32, v)),
            Entry::Free(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_free() {
        let mut a: Arena<String> = Arena::new(4);
        let s0 = a.alloc("zero".into()).unwrap();
        let s1 = a.alloc("one".into()).unwrap();
        assert_eq!(a.get(s0).unwrap(), "zero");
        assert_eq!(a.get(s1).unwrap(), "one");
        assert_eq!(a.len(), 2);
        assert_eq!(a.free(s0).unwrap(), "zero");
        assert_eq!(a.get(s0), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut a: Arena<u32> = Arena::new(2);
        a.alloc(1).unwrap();
        a.alloc(2).unwrap();
        assert_eq!(a.alloc(3), Err(ArenaFull));
        assert_eq!(a.available(), 0);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut a: Arena<u32> = Arena::new(2);
        let s0 = a.alloc(10).unwrap();
        let _s1 = a.alloc(11).unwrap();
        a.free(s0);
        let s2 = a.alloc(12).unwrap();
        assert_eq!(s2, s0, "free list should hand back the freed slot");
        assert_eq!(*a.get(s2).unwrap(), 12);
    }

    #[test]
    fn double_free_is_rejected() {
        let mut a: Arena<u32> = Arena::new(2);
        let s = a.alloc(1).unwrap();
        assert!(a.free(s).is_some());
        assert!(a.free(s).is_none());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn iter_skips_freed() {
        let mut a: Arena<u32> = Arena::new(8);
        let slots: Vec<_> = (0..5).map(|i| a.alloc(i).unwrap()).collect();
        a.free(slots[1]);
        a.free(slots[3]);
        let live: Vec<u32> = a.iter().map(|(_, &v)| v).collect();
        assert_eq!(live, vec![0, 2, 4]);
    }

    #[test]
    fn stress_alloc_free_interleaved() {
        let mut a: Arena<u64> = Arena::new(64);
        let mut live = std::collections::HashMap::new();
        let mut rng = crate::rng::SplitMix64::new(99);
        for i in 0..10_000u64 {
            if rng.gen_range(2) == 0 && a.available() > 0 {
                let s = a.alloc(i).unwrap();
                live.insert(s, i);
            } else if let Some(&s) = live.keys().next() {
                let v = live.remove(&s).unwrap();
                assert_eq!(a.free(s), Some(v));
            }
            assert_eq!(a.len() as usize, live.len());
        }
        for (&s, &v) in &live {
            assert_eq!(a.get(s), Some(&v));
        }
    }
}
