//! IO channels and IO cells.
//!
//! The paper's chip has IO channels along the north and south borders, each
//! containing one IO cell per column. Edges stream in from the host: "every
//! cycle, each IO Cell reads an edge, creates the corresponding action
//! registered with INSERT_ACTION, and sends it to its connected CC" (§2, §4).
//! An IO cell injects at most one operon per cycle and is subject to
//! backpressure from its border cell's router.

use std::collections::VecDeque;

use crate::config::ChipConfig;
use crate::geom::Coord;
use crate::operon::Operon;

#[derive(Debug)]
/// IoCell.
pub struct IoCell {
    /// The border compute cell this IO cell feeds.
    pub cc: u16,
    /// Operons waiting to be injected, in stream order.
    pub queue: VecDeque<Operon>,
}

#[derive(Debug)]
/// IoSystem.
pub struct IoSystem {
    /// The IO cells, in channel order (north row first, then south).
    pub cells: Vec<IoCell>,
    /// Total operons not yet injected, across all IO cells.
    pub pending: u64,
    /// Cursor for round-robin distribution of newly loaded streams.
    next_rr: usize,
}

impl IoSystem {
    /// Lay out the IO cells on the configured border channels.
    pub fn new(cfg: &ChipConfig) -> Self {
        let mut cells = Vec::with_capacity(cfg.io_cell_count() as usize);
        if cfg.io_layout.north {
            for x in 0..cfg.dims.x {
                cells.push(IoCell { cc: cfg.dims.id_of(Coord::new(x, 0)), queue: VecDeque::new() });
            }
        }
        if cfg.io_layout.south {
            for x in 0..cfg.dims.x {
                cells.push(IoCell {
                    cc: cfg.dims.id_of(Coord::new(x, cfg.dims.y - 1)),
                    queue: VecDeque::new(),
                });
            }
        }
        assert!(!cells.is_empty(), "chip needs at least one IO channel");
        IoSystem { cells, pending: 0, next_rr: 0 }
    }

    /// Distribute a stream of operons among the IO cells round-robin,
    /// preserving per-cell stream order ("the IO channels ... distribute them
    /// among their respective IO Cells").
    pub fn load(&mut self, ops: impl IntoIterator<Item = Operon>) {
        let n = self.cells.len();
        for op in ops {
            self.cells[self.next_rr].queue.push_back(op);
            self.pending += 1;
            self.next_rr = (self.next_rr + 1) % n;
        }
    }

    /// Load a stream into one specific IO cell (tests and targeted queries).
    pub fn load_to(&mut self, io_index: usize, ops: impl IntoIterator<Item = Operon>) {
        for op in ops {
            self.cells[io_index].queue.push_back(op);
            self.pending += 1;
        }
    }

    /// True once every loaded operon has been injected.
    pub fn is_drained(&self) -> bool {
        self.pending == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operon::{Address, Operon};

    fn op(n: u32) -> Operon {
        Operon::new(Address::new(0, n), 1, [0, 0])
    }

    #[test]
    fn io_cells_sit_on_borders() {
        let cfg = ChipConfig::default(); // 32x32, north + south
        let io = IoSystem::new(&cfg);
        assert_eq!(io.cells.len(), 64);
        for (i, cell) in io.cells.iter().enumerate() {
            let c = cfg.dims.coord_of(cell.cc);
            if i < 32 {
                assert_eq!(c.y, 0, "first channel on north border");
            } else {
                assert_eq!(c.y, 31, "second channel on south border");
            }
        }
    }

    #[test]
    fn round_robin_load_balances() {
        let cfg = ChipConfig::small_test();
        let mut io = IoSystem::new(&cfg);
        io.load((0..33).map(op));
        assert_eq!(io.pending, 33);
        let lens: Vec<usize> = io.cells.iter().map(|c| c.queue.len()).collect();
        assert_eq!(lens.iter().sum::<usize>(), 33);
        assert!(lens.iter().all(|&l| l == 2 || l == 3), "|max-min| <= 1: {lens:?}");
    }

    #[test]
    fn per_cell_order_is_preserved() {
        let cfg = ChipConfig::small_test();
        let mut io = IoSystem::new(&cfg);
        let n = io.cells.len() as u32;
        io.load((0..4 * n).map(op));
        for (i, cell) in io.cells.iter().enumerate() {
            let slots: Vec<u32> = cell.queue.iter().map(|o| o.target.slot).collect();
            let expect: Vec<u32> = (0..4).map(|k| k * n + i as u32).collect();
            assert_eq!(slots, expect);
        }
    }
}
