//! Instruction-cost model for action bodies.
//!
//! The paper's simulator charges a compute cell one cycle per "computing
//! instruction, which is contained in the action" and one cycle per "creation
//! and staging of a new message when an instance of `propagate` is called"
//! (§4). Message staging is charged implicitly by the chip (one cycle per
//! outbox entry); the constants below are the instruction counts that action
//! handlers charge for their compute steps. All are configurable so ablations
//! can explore the sensitivity of results to the ISA-level assumptions.

/// Instruction counts for the primitive steps of the streaming-graph actions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Appending an edge to an object's local edge list (bounds check + write).
    pub insert_edge: u32,
    /// Comparing and updating a per-vertex application value (e.g. BFS level).
    pub state_update: u32,
    /// Inspecting or mutating a future LCO's state (pending / enqueue / set).
    pub future_op: u32,
    /// Allocating an object in the local arena (free-list pop + init), charged
    /// at the *allocating* cell when the `allocate` system action executes.
    pub alloc: u32,
    /// Scanning one edge of a local edge list (membership checks, diffusion
    /// set-up). Charged per edge examined.
    pub scan_per_edge: u32,
    /// Minimum instructions for any action dispatch (decode + operand fetch).
    pub dispatch: u32,
    /// Removing an edge from an object's local edge list after a successful
    /// retraction scan (shift + bookkeeping write).
    pub delete_edge: u32,
    /// Resetting a per-vertex application value during a deletion-repair
    /// invalidation (compare + write of the reset sentinel).
    pub invalidate: u32,
    /// Patching the weight of a stored edge copy in place after an
    /// `UpdateWeight` mutation located it (compare + write).
    pub update_weight: u32,
    /// Dispatching one reseed trigger during the repair phase (decode +
    /// announceability check before the per-edge scan).
    pub reseed: u32,
    /// Recording one vertex on the repair frontier during the invalidation
    /// cascade (the bookkeeping the targeted reseed is paid for with).
    pub frontier_mark: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            insert_edge: 2,
            state_update: 1,
            future_op: 1,
            alloc: 4,
            scan_per_edge: 1,
            dispatch: 1,
            delete_edge: 2,
            invalidate: 1,
            update_weight: 2,
            reseed: 1,
            frontier_mark: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_nonzero() {
        let c = CostModel::default();
        assert!(c.insert_edge > 0);
        assert!(c.state_update > 0);
        assert!(c.future_op > 0);
        assert!(c.alloc > 0);
        assert!(c.scan_per_edge > 0);
        assert!(c.dispatch > 0);
        assert!(c.delete_edge > 0);
        assert!(c.invalidate > 0);
        assert!(c.update_weight > 0);
        assert!(c.reseed > 0);
        assert!(c.frontier_mark > 0);
    }
}
