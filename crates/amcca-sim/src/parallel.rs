//! The sharded parallel execution engine.
//!
//! [`crate::ChipConfig::shards`] > 1 runs `run_until_quiescent` /
//! `run_until_terminated` on this engine: the mesh is split into contiguous
//! column bands ([`ShardPlan`]), each band's cells (and its slice of the
//! north/south IO cells) are owned by one worker on a `std::thread::scope`
//! thread, and workers advance in lock-step cycles. The contract is strict
//! **bit-identity with the sequential engine** for any shard count; the
//! determinism CI gate and `tests/shard_equivalence.rs` enforce it.
//!
//! # Why this is deterministic
//!
//! Each simulated cycle has two worker phases separated by a barrier:
//!
//! 1. **Route** — every worker decides its own cells' network moves against
//!    the *start-of-cycle* router snapshot (cross-band credits are read from
//!    frames published at the previous cycle's end), then applies them:
//!    intra-band hops move directly, cross-band hops are popped locally and
//!    posted to a per-pair outbox. Under YX routing only east/west boundary
//!    hops cross bands, and flow control admits at most one flit per input
//!    FIFO per cycle, so outbox drain order cannot affect any FIFO's final
//!    order.
//! 2. **Drain + compute + IO** — every worker drains its inboxes in shard-id
//!    order, runs the shared per-cell compute ([`crate::chip::compute_cell`])
//!    and IO steps over its own cells (all cell-local by the architecture's
//!    message-driven discipline), snapshots its routers for the next cycle,
//!    and publishes boundary credit frames plus a cycle report.
//!
//! The coordinator (the calling thread) then folds the per-shard reports —
//! active-cell counts, queue/occupancy deltas, Safra token events, and the
//! first error in (phase, cell-id) order — exactly as the sequential loop
//! would have, and decides whether another cycle runs. Event counters and
//! per-cell load stats accumulate in worker-local storage with **no locks or
//! atomics on the hot path** and merge once at run end; program state runs on
//! per-shard forks merged in shard order ([`crate::Program::fork`]).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cell::Cell;
use crate::chip::{
    apply_token_step, compute_cell, decide_cell_moves, io_cell_step, Chip, ComputeFx, Move,
    TokenStep,
};
use crate::config::ChipConfig;
use crate::error::SimError;
use crate::iocell::{IoCell, IoSystem};
use crate::operon::Operon;
use crate::placement::PlacementTable;
use crate::program::Program;
use crate::router::{PORT_EAST, PORT_WEST};
use crate::safra::ACT_TOKEN;
use crate::shard::{backoff, ShardPlan, SpinBarrier};
use crate::stats::{ActivityRecording, CellLoad, Counters};

/// What a sharded run waits for (mirrors the two sequential run loops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RunGoal {
    /// Stop at global quiescence (`Chip::is_quiescent`).
    Quiescence,
    /// Stop when the Safra detector declares termination.
    SafraTermination,
}

/// How a sharded segment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SegmentEnd {
    /// The run goal was reached (quiescence / Safra termination).
    Done,
    /// Activity stayed below the break-even for a full adaptive window; the
    /// caller should continue on the sequential engine.
    Yielded,
}

/// A shard worker's run-long accumulators, folded back into the chip once
/// the run stops (in shard-id order).
type ShardOutcome<P> = (usize, P, Counters, Vec<CellLoad>);

/// A cross-band hop in flight between two shards.
struct Mail {
    dst: u16,
    in_port: u8,
    op: Operon,
}

/// One shard's non-cell-local effects for one cycle, handed to the
/// coordinator at the cycle barrier.
#[derive(Default)]
struct CycleReport {
    active: u32,
    d_in_network: i64,
    d_queued: i64,
    d_busy: i64,
    io_injected: u64,
    token: Option<TokenStep>,
    token_hops: u64,
    /// First network-phase error, with the deciding cell id.
    net_err: Option<(u16, SimError)>,
    /// First compute-phase error, with the executing cell id.
    comp_err: Option<(u16, SimError)>,
    /// Activity bitmap words (whole-chip indexing); used only in Frames mode.
    frame: Vec<u64>,
}

/// Start-of-cycle acceptance of a band's boundary columns, published for the
/// neighbouring shards' route decisions.
struct CreditFrame {
    /// `west[y]`: does cell `(x0, y)` accept on its west port (an eastbound
    /// hop from the left neighbour)?
    west: Vec<bool>,
    /// `east[y]`: does cell `(x1-1, y)` accept on its east port (a westbound
    /// hop from the right neighbour)?
    east: Vec<bool>,
}

/// Coordinator ⇄ worker rendezvous: workers report arrival, the coordinator
/// merges reports and releases the next cycle by bumping the epoch.
struct Gate {
    epoch: AtomicUsize,
    arrived: AtomicUsize,
    stop: AtomicBool,
    poisoned: AtomicBool,
}

impl Gate {
    fn new() -> Self {
        Gate {
            epoch: AtomicUsize::new(0),
            arrived: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    fn arrive(&self) {
        self.arrived.fetch_add(1, Ordering::AcqRel);
    }

    fn wait_epoch(&self, target: usize) {
        let mut spins = 0u32;
        while self.epoch.load(Ordering::Acquire) < target {
            if self.poisoned.load(Ordering::Relaxed) {
                panic!("shard engine poisoned: a sibling worker panicked");
            }
            backoff(&mut spins);
        }
    }

    fn wait_arrivals(&self, n: usize) {
        let mut spins = 0u32;
        while self.arrived.load(Ordering::Acquire) < n {
            if self.poisoned.load(Ordering::Relaxed) {
                panic!("shard engine poisoned: a worker panicked");
            }
            backoff(&mut spins);
        }
        self.arrived.store(0, Ordering::Relaxed);
    }

    fn release(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

/// Everything shared (read-only or lock-protected) between the workers and
/// the coordinator for one run.
struct Shared<'a> {
    cfg: &'a ChipConfig,
    placement: &'a PlacementTable,
    plan: &'a ShardPlan,
    /// `mailboxes[src][dst]`: cross-band hops posted by `src` for `dst`.
    mailboxes: Vec<Vec<Mutex<Vec<Mail>>>>,
    credits: Vec<Mutex<CreditFrame>>,
    reports: Vec<Mutex<CycleReport>>,
    gate: Gate,
    mid: SpinBarrier,
    safra_on: bool,
    frames_on: bool,
    start_cycle: u64,
    n_cells: usize,
}

/// One shard worker: exclusive owner of a column band's cells, IO cells,
/// program fork, and statistics.
struct Worker<'a, P: Program> {
    sid: usize,
    x0: usize,
    width: usize,
    /// One row-segment per mesh row: `rows[y][x - x0]` is cell `(x, y)`.
    rows: Vec<&'a mut [Cell<P::Object>]>,
    /// This band's IO-cell segments (one per active channel).
    io_segs: Vec<&'a mut [IoCell]>,
    program: P,
    counters: Counters,
    loads: Vec<CellLoad>,
    moves: Vec<Move>,
    /// Pending cross-band mail per destination shard.
    outbufs: Vec<Vec<Mail>>,
    /// Copies of the neighbours' published credit frames.
    left_credit: Vec<bool>,
    right_credit: Vec<bool>,
    frame: Vec<u64>,
    rep: CycleReport,
}

impl<'a, P: Program> Worker<'a, P> {
    fn cell_mut(&mut self, id: u16, dims_x: u16) -> &mut Cell<P::Object> {
        let x = (id % dims_x) as usize;
        let y = (id / dims_x) as usize;
        &mut self.rows[y][x - self.x0]
    }

    fn run(&mut self, shared: &Shared<'_>) {
        let dims = shared.cfg.dims;
        // P0: snapshot routers and publish credits for the first cycle.
        self.begin_cycle_and_publish(shared);
        shared.gate.arrive();
        let mut cur = shared.start_cycle;
        let mut epoch = 0usize;
        loop {
            epoch += 1;
            shared.gate.wait_epoch(epoch);
            if shared.gate.stop.load(Ordering::Acquire) {
                break;
            }
            self.phase_route(shared, cur, dims);
            shared.mid.wait();
            self.phase_drain_compute_io(shared, cur, dims);
            self.begin_cycle_and_publish(shared);
            self.flush_report(shared);
            cur += 1;
            shared.gate.arrive();
        }
    }

    /// Decide this band's moves against the start-of-cycle snapshot, then
    /// apply them (cross-band hops go to the outboxes).
    fn phase_route(&mut self, shared: &Shared<'_>, cur: u64, dims: crate::geom::Dims) {
        let n_shards = shared.plan.shard_count();
        if self.sid > 0 {
            let c = shared.credits[self.sid - 1].lock().unwrap();
            self.left_credit.clone_from(&c.east);
        }
        if self.sid + 1 < n_shards {
            let c = shared.credits[self.sid + 1].lock().unwrap();
            self.right_credit.clone_from(&c.west);
        }
        let Worker { rows, left_credit, right_credit, moves, counters, x0, width, rep, .. } = self;
        let (x0, width) = (*x0, *width);
        moves.clear();
        let mut err: Option<SimError> = None;
        for (gy, row) in rows.iter().enumerate() {
            for (lx, cell) in row.iter().enumerate() {
                let src = (gy * dims.x as usize + x0 + lx) as u16;
                let mut accepts = |nb: u16, in_port: usize| -> bool {
                    let nx = (nb % dims.x) as usize;
                    let ny = (nb / dims.x) as usize;
                    if nx >= x0 && nx < x0 + width {
                        rows[ny][nx - x0].router.accepts(in_port)
                    } else if nx < x0 {
                        debug_assert_eq!(in_port, PORT_EAST, "westbound hop arrives east");
                        left_credit[ny]
                    } else {
                        debug_assert_eq!(in_port, PORT_WEST, "eastbound hop arrives west");
                        right_credit[ny]
                    }
                };
                let before = err.is_some();
                decide_cell_moves(
                    cell,
                    src,
                    cur,
                    dims,
                    shared.n_cells,
                    shared.cfg.task_queue_cap,
                    &mut accepts,
                    moves,
                    counters,
                    &mut err,
                );
                if !before {
                    if let Some(e) = err.clone() {
                        rep.net_err = Some((src, e));
                    }
                }
            }
        }
        // Apply: pops are always band-local; pushes may cross the boundary.
        for i in 0..self.moves.len() {
            let mv = self.moves[i];
            match mv {
                Move::Hop { src, port, dst, in_port } => {
                    let op = self.cell_mut(src, dims.x).router.pop(port as usize);
                    if op.action == ACT_TOKEN {
                        self.rep.token_hops += 1;
                    }
                    self.counters.hops += 1;
                    let dx = (dst % dims.x) as usize;
                    if dx >= self.x0 && dx < self.x0 + self.width {
                        self.cell_mut(dst, dims.x).router.push(in_port as usize, op);
                    } else {
                        let t = if dx < self.x0 { self.sid - 1 } else { self.sid + 1 };
                        self.outbufs[t].push(Mail { dst, in_port, op });
                    }
                }
                Move::Deliver { cell, port } => {
                    let c = self.cell_mut(cell, dims.x);
                    let op = c.router.pop(port as usize);
                    c.task_queue.push_back(op);
                    let queue_len = c.task_queue.len() as u32;
                    self.rep.d_in_network -= 1;
                    self.rep.d_queued += 1;
                    self.counters.msgs_delivered += 1;
                    let load = &mut self.loads[cell as usize];
                    load.delivered += 1;
                    load.peak_queue = load.peak_queue.max(queue_len);
                }
            }
        }
        for t in [self.sid.wrapping_sub(1), self.sid + 1] {
            if t < n_shards && !self.outbufs[t].is_empty() {
                shared.mailboxes[self.sid][t].lock().unwrap().append(&mut self.outbufs[t]);
            }
        }
    }

    /// Drain cross-band arrivals, then run compute and IO over the band.
    fn phase_drain_compute_io(&mut self, shared: &Shared<'_>, cur: u64, dims: crate::geom::Dims) {
        let _ = cur;
        let n_shards = shared.plan.shard_count();
        // Drain inboxes in shard-id order (deterministic; and each input
        // FIFO receives at most one flit per cycle regardless).
        for src in [self.sid.wrapping_sub(1), self.sid + 1] {
            if src >= n_shards {
                continue;
            }
            let mut mb = shared.mailboxes[src][self.sid].lock().unwrap();
            for m in mb.drain(..) {
                self.cell_mut(m.dst, dims.x).router.push(m.in_port as usize, m.op);
            }
        }
        // Compute phase over own cells, in cell-id order.
        if shared.frames_on {
            self.frame.fill(0);
        }
        let mut active = 0u32;
        let mut comp_err: Option<SimError> = None;
        let Worker { rows, program, counters, x0, rep, frame, .. } = self;
        let x0 = *x0;
        for (gy, row) in rows.iter_mut().enumerate() {
            for (lx, cell) in row.iter_mut().enumerate() {
                let i = gy * dims.x as usize + x0 + lx;
                let mut fx = ComputeFx::default();
                let before = comp_err.is_some();
                let did_work = compute_cell(
                    cell,
                    i,
                    shared.safra_on,
                    program,
                    counters,
                    shared.cfg,
                    shared.placement,
                    &mut comp_err,
                    &mut fx,
                );
                if !before {
                    if let Some(e) = comp_err.clone() {
                        rep.comp_err = Some((i as u16, e));
                    }
                }
                rep.d_queued += fx.d_queued;
                rep.d_busy += fx.d_busy;
                rep.d_in_network += fx.d_in_network;
                if fx.token.is_some() {
                    debug_assert!(rep.token.is_none(), "one token per chip");
                    rep.token = fx.token;
                }
                if did_work {
                    active += 1;
                    if shared.frames_on {
                        frame[i / 64] |= 1u64 << (i % 64);
                    }
                }
            }
        }
        self.rep.active = active;
        // IO phase over this band's IO cells.
        let Worker { rows, io_segs, counters, rep, .. } = self;
        for seg in io_segs.iter_mut() {
            for io_cell in seg.iter_mut() {
                let x = (io_cell.cc % dims.x) as usize;
                let y = (io_cell.cc / dims.x) as usize;
                let border = &mut rows[y][x - x0];
                if io_cell_step(io_cell, border, shared.safra_on, counters) {
                    rep.io_injected += 1;
                    rep.d_in_network += 1;
                }
            }
        }
    }

    /// Snapshot this band's routers for the next cycle's credits and publish
    /// the boundary acceptance frames.
    fn begin_cycle_and_publish(&mut self, shared: &Shared<'_>) {
        for row in self.rows.iter_mut() {
            for cell in row.iter_mut() {
                cell.router.begin_cycle();
            }
        }
        let mut cf = shared.credits[self.sid].lock().unwrap();
        for (y, row) in self.rows.iter().enumerate() {
            cf.west[y] = row[0].router.accepts(PORT_WEST);
            cf.east[y] = row[self.width - 1].router.accepts(PORT_EAST);
        }
    }

    /// Hand this cycle's report to the coordinator slot.
    fn flush_report(&mut self, shared: &Shared<'_>) {
        let mut slot = shared.reports[self.sid].lock().unwrap();
        if shared.frames_on {
            std::mem::swap(&mut slot.frame, &mut self.frame);
        }
        slot.active = self.rep.active;
        slot.d_in_network = self.rep.d_in_network;
        slot.d_queued = self.rep.d_queued;
        slot.d_busy = self.rep.d_busy;
        slot.io_injected = self.rep.io_injected;
        slot.token = self.rep.token.take();
        slot.token_hops = self.rep.token_hops;
        slot.net_err = self.rep.net_err.take();
        slot.comp_err = self.rep.comp_err.take();
        self.rep = CycleReport { frame: std::mem::take(&mut self.rep.frame), ..Default::default() };
    }
}

/// Split the row-major cell array into per-shard row segments.
fn split_cells<'a, T>(cells: &'a mut [Cell<T>], plan: &ShardPlan) -> Vec<Vec<&'a mut [Cell<T>]>> {
    let x = plan.dims().x as usize;
    let n = plan.shard_count();
    let mut out: Vec<Vec<&'a mut [Cell<T>]>> =
        (0..n).map(|_| Vec::with_capacity(plan.dims().y as usize)).collect();
    for row in cells.chunks_mut(x) {
        let mut rest = row;
        for (s, slot) in out.iter_mut().enumerate() {
            let (a, b) = plan.band(s);
            let (seg, r) = rest.split_at_mut((b - a) as usize);
            slot.push(seg);
            rest = r;
        }
    }
    out
}

/// Split the IO cells (one contiguous run of `dims.x` per channel) into
/// per-shard column segments.
fn split_io<'a>(io_cells: &'a mut [IoCell], plan: &ShardPlan) -> Vec<Vec<&'a mut [IoCell]>> {
    let x = plan.dims().x as usize;
    let n = plan.shard_count();
    debug_assert_eq!(io_cells.len() % x, 0, "one IO cell per column per channel");
    let mut out: Vec<Vec<&'a mut [IoCell]>> = (0..n).map(|_| Vec::new()).collect();
    for channel in io_cells.chunks_mut(x) {
        let mut rest = channel;
        for (s, slot) in out.iter_mut().enumerate() {
            let (a, b) = plan.band(s);
            let (seg, r) = rest.split_at_mut((b - a) as usize);
            slot.push(seg);
            rest = r;
        }
    }
    out
}

#[inline]
fn add_delta(v: u64, d: i64) -> u64 {
    (v as i64 + d) as u64
}

/// Run the chip to `goal` on the sharded engine. Semantics (including error
/// precedence and the cycle budget, measured from `run_start`) mirror the
/// sequential run loops exactly. With `yield_when_cold`, the segment stops
/// early — workers released, state at an ordinary cycle boundary — once the
/// measured active-cell count stays below `ChipConfig::shard_break_even` for
/// [`crate::chip::ADAPT_WINDOW`] consecutive cycles, so the caller can finish
/// the cold tail on the sequential engine.
pub(crate) fn run_sharded<P: Program>(
    chip: &mut Chip<P>,
    goal: RunGoal,
    run_start: u64,
    yield_when_cold: bool,
) -> Result<SegmentEnd, SimError> {
    let plan = ShardPlan::new(chip.cfg.dims, chip.cfg.shards);
    let n_shards = plan.shard_count();
    debug_assert!(n_shards >= 2, "caller dispatches single-shard runs sequentially");
    if goal == RunGoal::Quiescence && chip.is_quiescent() {
        // Nothing to run: mirror the sequential loop's exit (error wins).
        return match chip.error.take() {
            Some(e) => Err(e),
            None => Ok(SegmentEnd::Done),
        };
    }
    let seg_start = chip.cycle;
    let safra_on = chip.safra.is_some();
    let frames_on = matches!(chip.cfg.record_activity, ActivityRecording::Frames { .. });
    let dims = chip.cfg.dims;
    let n_cells = chip.cfg.cell_count() as usize;
    let words = n_cells.div_ceil(64);

    let Chip {
        cfg,
        placement,
        cells,
        io,
        program,
        cycle,
        counters,
        activity,
        in_network,
        queued_tasks,
        busy,
        error,
        frame_scratch,
        safra,
        token_alive,
        loads,
        last_active,
        sharded_cycles,
        ..
    } = chip;
    let IoSystem { cells: io_cells, pending: io_pending, .. } = io;

    let forks: Vec<P> = (0..n_shards).map(|_| program.fork()).collect();
    let cell_views = split_cells(cells, &plan);
    let io_views = split_io(io_cells, &plan);

    let shared = Shared {
        cfg,
        placement,
        plan: &plan,
        mailboxes: (0..n_shards)
            .map(|_| (0..n_shards).map(|_| Mutex::new(Vec::new())).collect())
            .collect(),
        credits: (0..n_shards)
            .map(|_| {
                Mutex::new(CreditFrame {
                    west: vec![false; dims.y as usize],
                    east: vec![false; dims.y as usize],
                })
            })
            .collect(),
        reports: (0..n_shards)
            .map(|_| {
                Mutex::new(CycleReport {
                    // Sized up front: `flush_report` ping-pongs this buffer
                    // with the worker's, so both must span the whole chip.
                    frame: vec![0u64; if frames_on { words } else { 0 }],
                    ..Default::default()
                })
            })
            .collect(),
        gate: Gate::new(),
        mid: SpinBarrier::new(n_shards),
        safra_on,
        frames_on,
        start_cycle: seg_start,
        n_cells,
    };
    let outcomes: Mutex<Vec<ShardOutcome<P>>> = Mutex::new(Vec::with_capacity(n_shards));

    let mut result: Result<SegmentEnd, SimError> = Ok(SegmentEnd::Done);
    let mut cold_streak = 0u32;

    std::thread::scope(|scope| {
        for (sid, ((rows, io_segs), prog)) in
            cell_views.into_iter().zip(io_views).zip(forks).enumerate()
        {
            let shared = &shared;
            let outcomes = &outcomes;
            let (x0, _) = plan.band(sid);
            scope.spawn(move || {
                let mut w = Worker {
                    sid,
                    x0: x0 as usize,
                    width: rows[0].len(),
                    rows,
                    io_segs,
                    program: prog,
                    counters: Counters::default(),
                    loads: vec![CellLoad::default(); n_cells],
                    moves: Vec::new(),
                    outbufs: (0..n_shards).map(|_| Vec::new()).collect(),
                    left_credit: vec![false; dims.y as usize],
                    right_credit: vec![false; dims.y as usize],
                    frame: vec![0u64; words],
                    rep: CycleReport::default(),
                };
                let run = catch_unwind(AssertUnwindSafe(|| w.run(shared)));
                if let Err(panic) = run {
                    shared.gate.poisoned.store(true, Ordering::Release);
                    shared.mid.poison();
                    resume_unwind(panic);
                }
                outcomes.lock().unwrap().push((w.sid, w.program, w.counters, w.loads));
            });
        }

        // Coordinator: merge cycle reports and drive the stop conditions.
        shared.gate.wait_arrivals(n_shards); // initial snapshots published
        loop {
            let stop = match goal {
                RunGoal::Quiescence
                    if *in_network == 0 && *queued_tasks == 0 && *busy == 0 && *io_pending == 0 =>
                {
                    Some(match error.take() {
                        Some(e) => Err(e),
                        None => Ok(SegmentEnd::Done),
                    })
                }
                RunGoal::SafraTermination if safra.as_ref().is_some_and(|s| s.terminated) => {
                    Some(Ok(SegmentEnd::Done))
                }
                _ => {
                    if let Some(e) = error.take() {
                        Some(Err(e))
                    } else if *cycle - run_start >= cfg.max_cycles {
                        Some(Err(SimError::CycleLimitExceeded { limit: cfg.max_cycles }))
                    } else if yield_when_cold && cold_streak >= crate::chip::ADAPT_WINDOW {
                        Some(Ok(SegmentEnd::Yielded))
                    } else {
                        None
                    }
                }
            };
            if let Some(res) = stop {
                result = res;
                shared.gate.stop.store(true, Ordering::Release);
                shared.gate.release();
                break;
            }
            shared.gate.release();
            shared.gate.wait_arrivals(n_shards);

            let mut active = 0u32;
            let mut net_err: Option<(u16, SimError)> = None;
            let mut comp_err: Option<(u16, SimError)> = None;
            if frames_on {
                frame_scratch.fill(0);
            }
            for slot in &shared.reports {
                let mut r = slot.lock().unwrap();
                active += r.active;
                *in_network = add_delta(*in_network, r.d_in_network);
                *queued_tasks = add_delta(*queued_tasks, r.d_queued);
                *busy = (*busy as i64 + r.d_busy) as u32;
                *io_pending -= r.io_injected;
                if let Some((cc, e)) = r.net_err.take() {
                    if net_err.as_ref().is_none_or(|(c0, _)| cc < *c0) {
                        net_err = Some((cc, e));
                    }
                }
                if let Some((cc, e)) = r.comp_err.take() {
                    if comp_err.as_ref().is_none_or(|(c0, _)| cc < *c0) {
                        comp_err = Some((cc, e));
                    }
                }
                if let Some(step) = r.token.take() {
                    apply_token_step(
                        step,
                        safra.as_mut().expect("token without detector"),
                        token_alive,
                        *cycle,
                    );
                }
                if r.token_hops > 0 {
                    if let Some(s) = safra.as_mut() {
                        s.token_hops += r.token_hops;
                    }
                }
                if frames_on {
                    for (acc, w) in frame_scratch.iter_mut().zip(&r.frame) {
                        *acc |= *w;
                    }
                }
            }
            // First error in (network, then compute) × cell-id order — the
            // same precedence the sequential phases produce.
            if error.is_none() {
                *error = net_err.map(|(_, e)| e).or(comp_err.map(|(_, e)| e));
            }
            match cfg.record_activity {
                ActivityRecording::Off => {}
                ActivityRecording::Counts => {
                    activity.counts.push(active.min(u16::MAX as u32) as u16);
                }
                ActivityRecording::Frames { stride } => {
                    activity.counts.push(active.min(u16::MAX as u32) as u16);
                    if stride > 0 && cycle.is_multiple_of(stride as u64) {
                        activity.frames.push(frame_scratch.clone());
                    }
                }
            }
            *last_active = active;
            *sharded_cycles += 1;
            if active < cfg.shard_break_even {
                cold_streak += 1;
            } else {
                cold_streak = 0;
            }
            *cycle += 1;
        }
    });

    // Fold the per-shard accumulators back, in shard-id order.
    let mut outs = outcomes.into_inner().unwrap();
    outs.sort_by_key(|(sid, ..)| *sid);
    for (_, fork, fork_counters, fork_loads) in outs {
        program.merge(fork);
        counters.merge(&fork_counters);
        for (total, shard) in loads.iter_mut().zip(&fork_loads) {
            total.delivered += shard.delivered;
            total.peak_queue = total.peak_queue.max(shard.peak_queue);
        }
    }
    result
}
