//! The sharded parallel execution engine.
//!
//! [`crate::ChipConfig::shards`] > 1 runs `run_until_quiescent` /
//! `run_until_terminated` on this engine: the mesh is split into contiguous
//! column bands ([`ShardPlan`]), each band's cells (and its slice of the
//! north/south IO cells) are owned by one worker on a `std::thread::scope`
//! thread, and workers advance in lock-step cycles. The contract is strict
//! **bit-identity with the sequential engine** for any shard count; the
//! determinism CI gate and `tests/shard_equivalence.rs` enforce it.
//!
//! # Why this is deterministic
//!
//! Each simulated cycle has two worker phases separated by a barrier:
//!
//! 1. **Route** — every worker decides its own cells' network moves against
//!    the *start-of-cycle* router snapshot (cross-band credits are read from
//!    frames published at the previous cycle's end), then applies them:
//!    intra-band hops move directly, cross-band hops are popped locally and
//!    posted to a per-pair outbox. Under YX routing only east/west boundary
//!    hops cross bands, and flow control admits at most one flit per input
//!    FIFO per cycle, so outbox drain order cannot affect any FIFO's final
//!    order.
//! 2. **Drain + compute + IO** — every worker drains its inboxes in shard-id
//!    order, runs the shared per-cell compute ([`crate::chip::compute_cell`])
//!    and IO steps over its cells (all cell-local by the architecture's
//!    message-driven discipline), snapshots its routers for the next cycle,
//!    and publishes boundary credit frames plus a cycle report.
//!
//! Per-cycle reports fold up a **binary merge tree**: each worker waits for
//! its children (`2s+1`, `2s+2`) to publish, merges their reports into its
//! own slot, and publishes in turn, so the coordinator (the calling thread)
//! reads a single pre-merged root report per cycle and the barrier cost
//! stays flat as the shard count grows. The folded quantities — active-cell
//! counts, queue/occupancy deltas, Safra token events, and the first error
//! in (phase, cell-id) order — are exactly what the sequential loop would
//! have produced, and the coordinator decides whether another cycle runs.
//! Event counters and per-cell load stats accumulate in worker-local storage
//! with **no locks or atomics on the hot path** and merge once at run end;
//! program state runs on per-shard forks merged in shard order
//! ([`crate::Program::fork`]).
//!
//! # Deterministic work stealing
//!
//! With [`crate::ChipConfig::work_stealing`] on, the coordinator also runs
//! [`steal_schedule`] over the root report's per-(band, row) active-cell
//! counts and publishes the result before releasing the next cycle: the
//! busiest band donates whole mesh rows to less-loaded bands **for the next
//! compute phase only** — routing, IO, and credit publication stay with the
//! owner. Donors post the row slices to a [`LoanBoard`] after draining their
//! inboxes, a barrier separates the handoff from the stolen compute, and a
//! second barrier returns the rows before the owner's IO phase and router
//! snapshot need them. Compute is cell-local (all effects flow through the
//! cell itself, the executor's program fork, order-independent counters, and
//! the summed report deltas), so *who* executes a row cannot change any
//! result — stealing is bit-identical on or off, for any shard count, and
//! only levels the per-worker wall-clock. The extra barriers are paid only
//! on cycles whose schedule is non-empty.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cell::Cell;
use crate::chip::{
    apply_token_step, compute_cell, decide_cell_moves, io_cell_step, Chip, ComputeFx, Move,
    TokenStep,
};
use crate::config::ChipConfig;
use crate::error::SimError;
use crate::iocell::{IoCell, IoSystem};
use crate::operon::Operon;
use crate::placement::PlacementTable;
use crate::program::Program;
use crate::router::{PORT_EAST, PORT_WEST};
use crate::safra::ACT_TOKEN;
use crate::shard::{backoff, steal_schedule, ShardPlan, SpinBarrier, StealAssign};
use crate::stats::{ActivityRecording, CellLoad, Counters};

/// What a sharded run waits for (mirrors the two sequential run loops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RunGoal {
    /// Stop at global quiescence (`Chip::is_quiescent`).
    Quiescence,
    /// Stop when the Safra detector declares termination.
    SafraTermination,
}

/// How a sharded segment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SegmentEnd {
    /// The run goal was reached (quiescence / Safra termination).
    Done,
    /// Activity stayed below the break-even for a full adaptive window; the
    /// caller should continue on the sequential engine.
    Yielded,
}

/// A shard worker's run-long accumulators, folded back into the chip once
/// the run stops (in shard-id order): program fork, event counters, per-cell
/// loads, per-band active-cell contributions (owner-attributed), and the
/// executed active-cell total (executor-attributed).
type ShardOutcome<P> = (usize, P, Counters, Vec<CellLoad>, Vec<u64>, u64);

/// A cross-band hop in flight between two shards.
struct Mail {
    dst: u16,
    in_port: u8,
    op: Operon,
}

/// One shard's non-cell-local effects for one cycle, handed up the merge
/// tree at the cycle barrier.
#[derive(Default)]
struct CycleReport {
    active: u32,
    d_in_network: i64,
    d_queued: i64,
    d_busy: i64,
    io_injected: u64,
    token: Option<TokenStep>,
    token_hops: u64,
    /// First network-phase error, with the deciding cell id.
    net_err: Option<(u16, SimError)>,
    /// First compute-phase error, with the executing cell id.
    comp_err: Option<(u16, SimError)>,
    /// Activity bitmap words (whole-chip indexing); used only in Frames mode.
    frame: Vec<u64>,
    /// Per-(owner band, mesh row) active-cell counts
    /// (`row_active[s * dims.y + y]`), the steal scheduler's input; sized
    /// only when work stealing is enabled.
    row_active: Vec<u32>,
}

impl CycleReport {
    /// Fold a child's flushed report into this one: sums for the scalar
    /// aggregates and per-row counts, min-cell-id for the per-phase first
    /// errors (each worker's first error is its minimum-id one, so the fold
    /// reproduces the sequential first-error order), OR for frames.
    fn merge(&mut self, other: &mut CycleReport) {
        self.active += other.active;
        self.d_in_network += other.d_in_network;
        self.d_queued += other.d_queued;
        self.d_busy += other.d_busy;
        self.io_injected += other.io_injected;
        if let Some(step) = other.token.take() {
            debug_assert!(self.token.is_none(), "one token per chip");
            self.token = Some(step);
        }
        self.token_hops += other.token_hops;
        if let Some((cc, e)) = other.net_err.take() {
            if self.net_err.as_ref().is_none_or(|(c0, _)| cc < *c0) {
                self.net_err = Some((cc, e));
            }
        }
        if let Some((cc, e)) = other.comp_err.take() {
            if self.comp_err.as_ref().is_none_or(|(c0, _)| cc < *c0) {
                self.comp_err = Some((cc, e));
            }
        }
        for (acc, w) in self.frame.iter_mut().zip(&other.frame) {
            *acc |= *w;
        }
        for (acc, c) in self.row_active.iter_mut().zip(&other.row_active) {
            *acc += *c;
        }
    }
}

/// Start-of-cycle acceptance of a band's boundary columns, published for the
/// neighbouring shards' route decisions.
struct CreditFrame {
    /// `west[y]`: does cell `(x0, y)` accept on its west port (an eastbound
    /// hop from the left neighbour)?
    west: Vec<bool>,
    /// `east[y]`: does cell `(x1-1, y)` accept on its east port (a westbound
    /// hop from the right neighbour)?
    east: Vec<bool>,
}

/// Coordinator ⇄ worker rendezvous: workers report arrival, the coordinator
/// merges reports and releases the next cycle by bumping the epoch.
struct Gate {
    epoch: AtomicUsize,
    arrived: AtomicUsize,
    stop: AtomicBool,
    poisoned: AtomicBool,
}

impl Gate {
    fn new() -> Self {
        Gate {
            epoch: AtomicUsize::new(0),
            arrived: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    fn arrive(&self) {
        self.arrived.fetch_add(1, Ordering::AcqRel);
    }

    fn wait_epoch(&self, target: usize) {
        let mut spins = 0u32;
        while self.epoch.load(Ordering::Acquire) < target {
            if self.poisoned.load(Ordering::Relaxed) {
                panic!("shard engine poisoned: a sibling worker panicked");
            }
            backoff(&mut spins);
        }
    }

    fn wait_arrivals(&self, n: usize) {
        let mut spins = 0u32;
        while self.arrived.load(Ordering::Acquire) < n {
            if self.poisoned.load(Ordering::Relaxed) {
                panic!("shard engine poisoned: a worker panicked");
            }
            backoff(&mut spins);
        }
        self.arrived.store(0, Ordering::Relaxed);
    }

    fn release(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

/// Everything shared (read-only or lock-protected) between the workers and
/// the coordinator for one run.
struct Shared<'a> {
    cfg: &'a ChipConfig,
    placement: &'a PlacementTable,
    plan: &'a ShardPlan,
    /// `mailboxes[src][dst]`: cross-band hops posted by `src` for `dst`.
    mailboxes: Vec<Vec<Mutex<Vec<Mail>>>>,
    credits: Vec<Mutex<CreditFrame>>,
    reports: Vec<Mutex<CycleReport>>,
    gate: Gate,
    mid: SpinBarrier,
    safra_on: bool,
    frames_on: bool,
    start_cycle: u64,
    n_cells: usize,
    /// Work stealing enabled for this run (`ChipConfig::work_stealing`).
    steal_on: bool,
    /// The published steal schedule; applies to the epoch in `steal_epoch`.
    steal: Mutex<Vec<StealAssign>>,
    /// Epoch the published schedule was computed for (0 = none yet);
    /// workers only honour a schedule stamped with their current epoch.
    steal_epoch: AtomicUsize,
    /// Extra barrier bracketing the compute phase on steal cycles only.
    steal_bar: SpinBarrier,
    /// Merge-tree publication: `ready[s]` is the last epoch whose merged
    /// subtree report worker `s` has published into `reports[s]`.
    ready: Vec<AtomicUsize>,
}

impl Shared<'_> {
    /// Spin until worker `sid` has published its merged report for `epoch`.
    fn wait_ready(&self, sid: usize, epoch: usize) {
        let mut spins = 0u32;
        while self.ready[sid].load(Ordering::Acquire) < epoch {
            if self.gate.poisoned.load(Ordering::Relaxed) {
                panic!("shard engine poisoned: a sibling worker panicked");
            }
            backoff(&mut spins);
        }
    }
}

/// A row segment on loan for one compute phase (work stealing): the owner
/// moves the `&mut` slice out of its `rows` table, the executor computes it,
/// and the slice travels back through the board before the owner's IO phase.
struct Loan<'a, T> {
    owner: usize,
    x0: usize,
    y: usize,
    row: &'a mut [Cell<T>],
}

/// Per-executor loan slots (`out`) and per-owner return slots (`back`).
/// Safe-Rust row handoff: exclusive access transfers with the `&mut` slice
/// itself, and the two steal barriers order the exchanges.
struct LoanBoard<'a, T> {
    out: Vec<Mutex<Vec<Loan<'a, T>>>>,
    back: Vec<Mutex<Vec<Loan<'a, T>>>>,
}

impl<'a, T> LoanBoard<'a, T> {
    fn new(n: usize) -> Self {
        LoanBoard {
            out: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            back: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }
}

/// One shard worker: exclusive owner of a column band's cells, IO cells,
/// program fork, and statistics.
struct Worker<'a, P: Program> {
    sid: usize,
    x0: usize,
    width: usize,
    /// One row-segment per mesh row: `rows[y][x - x0]` is cell `(x, y)`.
    /// A donated row is an empty slice until the loan returns.
    rows: Vec<&'a mut [Cell<P::Object>]>,
    /// This band's IO-cell segments (one per active channel).
    io_segs: Vec<&'a mut [IoCell]>,
    program: P,
    counters: Counters,
    loads: Vec<CellLoad>,
    moves: Vec<Move>,
    /// Pending cross-band mail per destination shard.
    outbufs: Vec<Vec<Mail>>,
    /// Copies of the neighbours' published credit frames.
    left_credit: Vec<bool>,
    right_credit: Vec<bool>,
    frame: Vec<u64>,
    rep: CycleReport,
    /// This cycle's steal schedule (whole chip), empty on ordinary cycles.
    steal_buf: Vec<StealAssign>,
    /// Run-long owner-attributed active-cell totals per band (the band a
    /// computed row belongs to, not the worker that computed it).
    band_contrib: Vec<u64>,
    /// Run-long executor-attributed active-cell total (what *this worker*
    /// computed, own rows plus stolen ones, minus donated ones).
    exec_active: u64,
}

/// Run the compute phase over one row segment (cells `x0 .. x0 + len` of
/// mesh row `gy`), crediting per-row activity to `owner`'s band. Shared by
/// the plain path and the stolen-row path: compute is cell-local, so which
/// worker executes a row cannot affect the results. Errors fold into the
/// report by minimum cell id — within a segment the first error already has
/// the lowest id (iteration is in id order), so the fold reproduces the
/// sequential first-error-wins semantics. Returns the segment's active
/// count.
#[allow(clippy::too_many_arguments)]
fn compute_row<P: Program>(
    row: &mut [Cell<P::Object>],
    gy: usize,
    x0: usize,
    owner: usize,
    shared: &Shared<'_>,
    program: &mut P,
    counters: &mut Counters,
    rep: &mut CycleReport,
    frame: &mut [u64],
) -> u32 {
    let dims = shared.cfg.dims;
    let mut active = 0u32;
    let mut err: Option<SimError> = None;
    for (lx, cell) in row.iter_mut().enumerate() {
        let i = gy * dims.x as usize + x0 + lx;
        let mut fx = ComputeFx::default();
        let before = err.is_some();
        let did_work = compute_cell(
            cell,
            i,
            shared.safra_on,
            program,
            counters,
            shared.cfg,
            shared.placement,
            &mut err,
            &mut fx,
        );
        if !before {
            if let Some(e) = err.clone() {
                if rep.comp_err.as_ref().is_none_or(|(c0, _)| (i as u16) < *c0) {
                    rep.comp_err = Some((i as u16, e));
                }
            }
        }
        rep.d_queued += fx.d_queued;
        rep.d_busy += fx.d_busy;
        rep.d_in_network += fx.d_in_network;
        if fx.token.is_some() {
            debug_assert!(rep.token.is_none(), "one token per chip");
            rep.token = fx.token;
        }
        if did_work {
            active += 1;
            if shared.frames_on {
                frame[i / 64] |= 1u64 << (i % 64);
            }
        }
    }
    if !rep.row_active.is_empty() {
        rep.row_active[owner * dims.y as usize + gy] += active;
    }
    active
}

impl<'a, P: Program> Worker<'a, P> {
    fn cell_mut(&mut self, id: u16, dims_x: u16) -> &mut Cell<P::Object> {
        let x = (id % dims_x) as usize;
        let y = (id / dims_x) as usize;
        &mut self.rows[y][x - self.x0]
    }

    fn run(&mut self, shared: &Shared<'_>, board: &LoanBoard<'a, P::Object>) {
        let dims = shared.cfg.dims;
        // P0: snapshot routers and publish credits for the first cycle.
        self.begin_cycle_and_publish(shared);
        shared.gate.arrive();
        let mut cur = shared.start_cycle;
        let mut epoch = 0usize;
        loop {
            epoch += 1;
            shared.gate.wait_epoch(epoch);
            if shared.gate.stop.load(Ordering::Acquire) {
                break;
            }
            // Copy this cycle's steal schedule (published, if any, before
            // the epoch was released). Every worker sees the same schedule,
            // so barrier participation stays consistent.
            self.steal_buf.clear();
            if shared.steal_on && shared.steal_epoch.load(Ordering::Acquire) == epoch {
                self.steal_buf.extend_from_slice(&shared.steal.lock().unwrap());
            }
            self.phase_route(shared, cur, dims);
            shared.mid.wait();
            self.phase_drain(shared, dims);
            if self.steal_buf.is_empty() {
                self.phase_compute(shared);
            } else {
                self.phase_compute_stealing(shared, board);
            }
            self.phase_io(shared, dims);
            self.begin_cycle_and_publish(shared);
            self.flush_report(shared);
            self.merge_children(shared, epoch);
            cur += 1;
            shared.gate.arrive();
        }
    }

    /// Decide this band's moves against the start-of-cycle snapshot, then
    /// apply them (cross-band hops go to the outboxes).
    fn phase_route(&mut self, shared: &Shared<'_>, cur: u64, dims: crate::geom::Dims) {
        let n_shards = shared.plan.shard_count();
        if self.sid > 0 {
            let c = shared.credits[self.sid - 1].lock().unwrap();
            self.left_credit.clone_from(&c.east);
        }
        if self.sid + 1 < n_shards {
            let c = shared.credits[self.sid + 1].lock().unwrap();
            self.right_credit.clone_from(&c.west);
        }
        let Worker { rows, left_credit, right_credit, moves, counters, x0, width, rep, .. } = self;
        let (x0, width) = (*x0, *width);
        moves.clear();
        let mut err: Option<SimError> = None;
        for (gy, row) in rows.iter().enumerate() {
            for (lx, cell) in row.iter().enumerate() {
                let src = (gy * dims.x as usize + x0 + lx) as u16;
                let mut accepts = |nb: u16, in_port: usize| -> bool {
                    let nx = (nb % dims.x) as usize;
                    let ny = (nb / dims.x) as usize;
                    if nx >= x0 && nx < x0 + width {
                        rows[ny][nx - x0].router.accepts(in_port)
                    } else if nx < x0 {
                        debug_assert_eq!(in_port, PORT_EAST, "westbound hop arrives east");
                        left_credit[ny]
                    } else {
                        debug_assert_eq!(in_port, PORT_WEST, "eastbound hop arrives west");
                        right_credit[ny]
                    }
                };
                let before = err.is_some();
                decide_cell_moves(
                    cell,
                    src,
                    cur,
                    dims,
                    shared.n_cells,
                    shared.cfg.task_queue_cap,
                    &mut accepts,
                    moves,
                    counters,
                    &mut err,
                );
                if !before {
                    if let Some(e) = err.clone() {
                        rep.net_err = Some((src, e));
                    }
                }
            }
        }
        // Apply: pops are always band-local; pushes may cross the boundary.
        for i in 0..self.moves.len() {
            let mv = self.moves[i];
            match mv {
                Move::Hop { src, port, dst, in_port } => {
                    let op = self.cell_mut(src, dims.x).router.pop(port as usize);
                    if op.action == ACT_TOKEN {
                        self.rep.token_hops += 1;
                    }
                    self.counters.hops += 1;
                    let dx = (dst % dims.x) as usize;
                    if dx >= self.x0 && dx < self.x0 + self.width {
                        self.cell_mut(dst, dims.x).router.push(in_port as usize, op);
                    } else {
                        let t = if dx < self.x0 { self.sid - 1 } else { self.sid + 1 };
                        self.outbufs[t].push(Mail { dst, in_port, op });
                    }
                }
                Move::Deliver { cell, port } => {
                    let c = self.cell_mut(cell, dims.x);
                    let op = c.router.pop(port as usize);
                    c.task_queue.push_back(op);
                    let queue_len = c.task_queue.len() as u32;
                    self.rep.d_in_network -= 1;
                    self.rep.d_queued += 1;
                    self.counters.msgs_delivered += 1;
                    let load = &mut self.loads[cell as usize];
                    load.delivered += 1;
                    load.peak_queue = load.peak_queue.max(queue_len);
                }
            }
        }
        for t in [self.sid.wrapping_sub(1), self.sid + 1] {
            if t < n_shards && !self.outbufs[t].is_empty() {
                shared.mailboxes[self.sid][t].lock().unwrap().append(&mut self.outbufs[t]);
            }
        }
    }

    /// Drain cross-band arrivals into this band's routers.
    fn phase_drain(&mut self, shared: &Shared<'_>, dims: crate::geom::Dims) {
        let n_shards = shared.plan.shard_count();
        // Drain inboxes in shard-id order (deterministic; and each input
        // FIFO receives at most one flit per cycle regardless).
        for src in [self.sid.wrapping_sub(1), self.sid + 1] {
            if src >= n_shards {
                continue;
            }
            let mut mb = shared.mailboxes[src][self.sid].lock().unwrap();
            for m in mb.drain(..) {
                self.cell_mut(m.dst, dims.x).router.push(m.in_port as usize, m.op);
            }
        }
    }

    /// Compute phase over own cells, in cell-id order (no stealing).
    fn phase_compute(&mut self, shared: &Shared<'_>) {
        if shared.frames_on {
            self.frame.fill(0);
        }
        let mut active = 0u32;
        let Worker { rows, program, counters, x0, sid, rep, frame, band_contrib, .. } = self;
        for (gy, row) in rows.iter_mut().enumerate() {
            let a = compute_row::<P>(row, gy, *x0, *sid, shared, program, counters, rep, frame);
            band_contrib[*sid] += a as u64;
            active += a;
        }
        self.rep.active = active;
        self.exec_active += active as u64;
    }

    /// Compute phase on a steal cycle: lend donated rows, compute own plus
    /// stolen rows, return loans, reclaim donations. Two barriers bracket
    /// the stolen compute so no row is ever touched by two workers at once
    /// and every row is home again before the IO phase and router snapshot.
    fn phase_compute_stealing(&mut self, shared: &Shared<'_>, board: &LoanBoard<'a, P::Object>) {
        if shared.frames_on {
            self.frame.fill(0);
        }
        let Worker { rows, steal_buf, sid, x0, .. } = self;
        let (sid, x0) = (*sid, *x0);
        for a in steal_buf.iter().filter(|a| a.owner as usize == sid) {
            let row = std::mem::take(&mut rows[a.y as usize]);
            let loan = Loan { owner: sid, x0, y: a.y as usize, row };
            board.out[a.executor as usize].lock().unwrap().push(loan);
        }
        // Every donor has drained and lent; stolen rows are safe to touch.
        shared.steal_bar.wait();
        let mut active = 0u32;
        let Worker { rows, program, counters, rep, frame, band_contrib, .. } = self;
        for (gy, row) in rows.iter_mut().enumerate() {
            // Donated rows are empty slices and fall through at no cost.
            let a = compute_row::<P>(row, gy, x0, sid, shared, program, counters, rep, frame);
            band_contrib[sid] += a as u64;
            active += a;
        }
        let mut loans: Vec<Loan<'a, P::Object>> =
            std::mem::take(&mut *board.out[sid].lock().unwrap());
        loans.sort_by_key(|l| (l.owner, l.y));
        for loan in &mut loans {
            let a = compute_row::<P>(
                loan.row, loan.y, loan.x0, loan.owner, shared, program, counters, rep, frame,
            );
            band_contrib[loan.owner] += a as u64;
            active += a;
        }
        for loan in loans {
            board.back[loan.owner].lock().unwrap().push(loan);
        }
        // Every stolen row is computed and posted back; owners may reclaim.
        shared.steal_bar.wait();
        for loan in board.back[sid].lock().unwrap().drain(..) {
            self.rows[loan.y] = loan.row;
        }
        debug_assert!(self.rows.iter().all(|r| !r.is_empty()), "all loans returned");
        self.rep.active = active;
        self.exec_active += active as u64;
    }

    /// IO phase over this band's IO cells.
    fn phase_io(&mut self, shared: &Shared<'_>, dims: crate::geom::Dims) {
        let Worker { rows, io_segs, counters, x0, rep, .. } = self;
        for seg in io_segs.iter_mut() {
            for io_cell in seg.iter_mut() {
                let x = (io_cell.cc % dims.x) as usize;
                let y = (io_cell.cc / dims.x) as usize;
                let border = &mut rows[y][x - *x0];
                if io_cell_step(io_cell, border, shared.safra_on, counters) {
                    rep.io_injected += 1;
                    rep.d_in_network += 1;
                }
            }
        }
    }

    /// Snapshot this band's routers for the next cycle's credits and publish
    /// the boundary acceptance frames.
    fn begin_cycle_and_publish(&mut self, shared: &Shared<'_>) {
        for row in self.rows.iter_mut() {
            for cell in row.iter_mut() {
                cell.router.begin_cycle();
            }
        }
        let mut cf = shared.credits[self.sid].lock().unwrap();
        for (y, row) in self.rows.iter().enumerate() {
            cf.west[y] = row[0].router.accepts(PORT_WEST);
            cf.east[y] = row[self.width - 1].router.accepts(PORT_EAST);
        }
    }

    /// Hand this cycle's report to this worker's merge-tree slot.
    fn flush_report(&mut self, shared: &Shared<'_>) {
        let mut slot = shared.reports[self.sid].lock().unwrap();
        if shared.frames_on {
            std::mem::swap(&mut slot.frame, &mut self.frame);
        }
        if shared.steal_on {
            std::mem::swap(&mut slot.row_active, &mut self.rep.row_active);
        }
        slot.active = self.rep.active;
        slot.d_in_network = self.rep.d_in_network;
        slot.d_queued = self.rep.d_queued;
        slot.d_busy = self.rep.d_busy;
        slot.io_injected = self.rep.io_injected;
        slot.token = self.rep.token.take();
        slot.token_hops = self.rep.token_hops;
        slot.net_err = self.rep.net_err.take();
        slot.comp_err = self.rep.comp_err.take();
        let frame = std::mem::take(&mut self.rep.frame);
        let mut row_active = std::mem::take(&mut self.rep.row_active);
        row_active.fill(0); // the swapped-in buffer carries stale counts
        self.rep = CycleReport { frame, row_active, ..Default::default() };
    }

    /// Binary merge tree: fold the children's published reports into this
    /// worker's slot, then publish it for the parent. The coordinator only
    /// reads the root slot, so the per-cycle merge cost is O(log shards) on
    /// the critical path instead of O(shards) on the coordinator.
    fn merge_children(&mut self, shared: &Shared<'_>, epoch: usize) {
        let n = shared.plan.shard_count();
        for child in [2 * self.sid + 1, 2 * self.sid + 2] {
            if child >= n {
                continue;
            }
            shared.wait_ready(child, epoch);
            let mut mine = shared.reports[self.sid].lock().unwrap();
            let mut theirs = shared.reports[child].lock().unwrap();
            mine.merge(&mut theirs);
        }
        shared.ready[self.sid].store(epoch, Ordering::Release);
    }
}

/// Split the row-major cell array into per-shard row segments.
fn split_cells<'a, T>(cells: &'a mut [Cell<T>], plan: &ShardPlan) -> Vec<Vec<&'a mut [Cell<T>]>> {
    let x = plan.dims().x as usize;
    let n = plan.shard_count();
    let mut out: Vec<Vec<&'a mut [Cell<T>]>> =
        (0..n).map(|_| Vec::with_capacity(plan.dims().y as usize)).collect();
    for row in cells.chunks_mut(x) {
        let mut rest = row;
        for (s, slot) in out.iter_mut().enumerate() {
            let (a, b) = plan.band(s);
            let (seg, r) = rest.split_at_mut((b - a) as usize);
            slot.push(seg);
            rest = r;
        }
    }
    out
}

/// Split the IO cells (one contiguous run of `dims.x` per channel) into
/// per-shard column segments.
fn split_io<'a>(io_cells: &'a mut [IoCell], plan: &ShardPlan) -> Vec<Vec<&'a mut [IoCell]>> {
    let x = plan.dims().x as usize;
    let n = plan.shard_count();
    debug_assert_eq!(io_cells.len() % x, 0, "one IO cell per column per channel");
    let mut out: Vec<Vec<&'a mut [IoCell]>> = (0..n).map(|_| Vec::new()).collect();
    for channel in io_cells.chunks_mut(x) {
        let mut rest = channel;
        for (s, slot) in out.iter_mut().enumerate() {
            let (a, b) = plan.band(s);
            let (seg, r) = rest.split_at_mut((b - a) as usize);
            slot.push(seg);
            rest = r;
        }
    }
    out
}

#[inline]
fn add_delta(v: u64, d: i64) -> u64 {
    (v as i64 + d) as u64
}

/// Run the chip to `goal` on the sharded engine. Semantics (including error
/// precedence and the cycle budget, measured from `run_start`) mirror the
/// sequential run loops exactly. With `yield_when_cold`, the segment stops
/// early — workers released, state at an ordinary cycle boundary — once the
/// measured active-cell count stays below `ChipConfig::shard_break_even` for
/// [`crate::chip::ADAPT_WINDOW`] consecutive cycles, so the caller can finish
/// the cold tail on the sequential engine.
pub(crate) fn run_sharded<P: Program>(
    chip: &mut Chip<P>,
    goal: RunGoal,
    run_start: u64,
    yield_when_cold: bool,
) -> Result<SegmentEnd, SimError> {
    let plan = ShardPlan::new(chip.cfg.dims, chip.cfg.shards);
    let n_shards = plan.shard_count();
    debug_assert!(n_shards >= 2, "caller dispatches single-shard runs sequentially");
    if goal == RunGoal::Quiescence && chip.is_quiescent() {
        // Nothing to run: mirror the sequential loop's exit (error wins).
        return match chip.error.take() {
            Some(e) => Err(e),
            None => Ok(SegmentEnd::Done),
        };
    }
    let seg_start = chip.cycle;
    let safra_on = chip.safra.is_some();
    let frames_on = matches!(chip.cfg.record_activity, ActivityRecording::Frames { .. });
    let steal_on = chip.cfg.work_stealing;
    let dims = chip.cfg.dims;
    let n_cells = chip.cfg.cell_count() as usize;
    let words = n_cells.div_ceil(64);
    let row_words = if steal_on { n_shards * dims.y as usize } else { 0 };

    let Chip {
        cfg,
        placement,
        cells,
        io,
        program,
        cycle,
        counters,
        activity,
        in_network,
        queued_tasks,
        busy,
        error,
        frame_scratch,
        safra,
        token_alive,
        loads,
        last_active,
        sharded_cycles,
        steal_rows,
        band_active,
        exec_active,
        ..
    } = chip;
    let IoSystem { cells: io_cells, pending: io_pending, .. } = io;
    if band_active.len() < n_shards {
        band_active.resize(n_shards, 0);
    }
    if exec_active.len() < n_shards {
        exec_active.resize(n_shards, 0);
    }

    let forks: Vec<P> = (0..n_shards).map(|_| program.fork()).collect();
    let cell_views = split_cells(cells, &plan);
    let io_views = split_io(io_cells, &plan);

    let shared = Shared {
        cfg,
        placement,
        plan: &plan,
        mailboxes: (0..n_shards)
            .map(|_| (0..n_shards).map(|_| Mutex::new(Vec::new())).collect())
            .collect(),
        credits: (0..n_shards)
            .map(|_| {
                Mutex::new(CreditFrame {
                    west: vec![false; dims.y as usize],
                    east: vec![false; dims.y as usize],
                })
            })
            .collect(),
        reports: (0..n_shards)
            .map(|_| {
                Mutex::new(CycleReport {
                    // Sized up front: `flush_report` ping-pongs these
                    // buffers with the worker's, so both must span the
                    // whole chip.
                    frame: vec![0u64; if frames_on { words } else { 0 }],
                    row_active: vec![0u32; row_words],
                    ..Default::default()
                })
            })
            .collect(),
        gate: Gate::new(),
        mid: SpinBarrier::new(n_shards),
        safra_on,
        frames_on,
        start_cycle: seg_start,
        n_cells,
        steal_on,
        steal: Mutex::new(Vec::new()),
        steal_epoch: AtomicUsize::new(0),
        steal_bar: SpinBarrier::new(n_shards),
        ready: (0..n_shards).map(|_| AtomicUsize::new(0)).collect(),
    };
    let board: LoanBoard<'_, P::Object> = LoanBoard::new(n_shards);
    let outcomes: Mutex<Vec<ShardOutcome<P>>> = Mutex::new(Vec::with_capacity(n_shards));

    let mut result: Result<SegmentEnd, SimError> = Ok(SegmentEnd::Done);
    let mut cold_streak = 0u32;

    std::thread::scope(|scope| {
        for (sid, ((rows, io_segs), prog)) in
            cell_views.into_iter().zip(io_views).zip(forks).enumerate()
        {
            let shared = &shared;
            let board = &board;
            let outcomes = &outcomes;
            let (x0, _) = plan.band(sid);
            scope.spawn(move || {
                let mut w = Worker {
                    sid,
                    x0: x0 as usize,
                    width: rows[0].len(),
                    rows,
                    io_segs,
                    program: prog,
                    counters: Counters::default(),
                    loads: vec![CellLoad::default(); n_cells],
                    moves: Vec::new(),
                    outbufs: (0..n_shards).map(|_| Vec::new()).collect(),
                    left_credit: vec![false; dims.y as usize],
                    right_credit: vec![false; dims.y as usize],
                    frame: vec![0u64; words],
                    rep: CycleReport { row_active: vec![0u32; row_words], ..Default::default() },
                    steal_buf: Vec::new(),
                    band_contrib: vec![0u64; n_shards],
                    exec_active: 0,
                };
                let run = catch_unwind(AssertUnwindSafe(|| w.run(shared, board)));
                if let Err(panic) = run {
                    shared.gate.poisoned.store(true, Ordering::Release);
                    shared.mid.poison();
                    shared.steal_bar.poison();
                    resume_unwind(panic);
                }
                outcomes.lock().unwrap().push((
                    w.sid,
                    w.program,
                    w.counters,
                    w.loads,
                    w.band_contrib,
                    w.exec_active,
                ));
            });
        }

        // Coordinator: read the merge tree's root report each cycle, fold it
        // into the chip scalars, publish the next steal schedule, and drive
        // the stop conditions.
        shared.gate.wait_arrivals(n_shards); // initial snapshots published
        let mut epoch = 0usize;
        loop {
            let stop = match goal {
                RunGoal::Quiescence
                    if *in_network == 0 && *queued_tasks == 0 && *busy == 0 && *io_pending == 0 =>
                {
                    Some(match error.take() {
                        Some(e) => Err(e),
                        None => Ok(SegmentEnd::Done),
                    })
                }
                RunGoal::SafraTermination if safra.as_ref().is_some_and(|s| s.terminated) => {
                    Some(Ok(SegmentEnd::Done))
                }
                _ => {
                    if let Some(e) = error.take() {
                        Some(Err(e))
                    } else if *cycle - run_start >= cfg.max_cycles {
                        Some(Err(SimError::CycleLimitExceeded { limit: cfg.max_cycles }))
                    } else if yield_when_cold && cold_streak >= crate::chip::ADAPT_WINDOW {
                        Some(Ok(SegmentEnd::Yielded))
                    } else {
                        None
                    }
                }
            };
            if let Some(res) = stop {
                result = res;
                shared.gate.stop.store(true, Ordering::Release);
                shared.gate.release();
                break;
            }
            shared.gate.release();
            epoch += 1;
            shared.gate.wait_arrivals(n_shards);

            let mut r = shared.reports[0].lock().unwrap();
            let active = r.active;
            *in_network = add_delta(*in_network, r.d_in_network);
            *queued_tasks = add_delta(*queued_tasks, r.d_queued);
            *busy = (*busy as i64 + r.d_busy) as u32;
            *io_pending -= r.io_injected;
            // First error in (network, then compute) × cell-id order — the
            // same precedence the sequential phases produce; the merge tree
            // has already folded each phase to its minimum cell id.
            let net_err = r.net_err.take();
            let comp_err = r.comp_err.take();
            if error.is_none() {
                *error = net_err.map(|(_, e)| e).or(comp_err.map(|(_, e)| e));
            }
            if let Some(step) = r.token.take() {
                apply_token_step(
                    step,
                    safra.as_mut().expect("token without detector"),
                    token_alive,
                    *cycle,
                );
            }
            if r.token_hops > 0 {
                if let Some(s) = safra.as_mut() {
                    s.token_hops += r.token_hops;
                }
            }
            if frames_on {
                frame_scratch.copy_from_slice(&r.frame);
            }
            if steal_on {
                // Next cycle's schedule: a pure function of this cycle's
                // merged per-(band, row) counts, published before release.
                let sched =
                    steal_schedule(&r.row_active, n_shards, dims.y as usize, cfg.shard_break_even);
                if !sched.is_empty() {
                    *steal_rows += sched.len() as u64;
                    *shared.steal.lock().unwrap() = sched;
                    shared.steal_epoch.store(epoch + 1, Ordering::Release);
                }
            }
            drop(r);
            match cfg.record_activity {
                ActivityRecording::Off => {}
                ActivityRecording::Counts => {
                    activity.counts.push(active.min(u16::MAX as u32) as u16);
                }
                ActivityRecording::Frames { stride } => {
                    activity.counts.push(active.min(u16::MAX as u32) as u16);
                    if stride > 0 && cycle.is_multiple_of(stride as u64) {
                        activity.frames.push(frame_scratch.clone());
                    }
                }
            }
            *last_active = active;
            *sharded_cycles += 1;
            if active < cfg.shard_break_even {
                cold_streak += 1;
            } else {
                cold_streak = 0;
            }
            *cycle += 1;
        }
    });

    // Fold the per-shard accumulators back, in shard-id order.
    let mut outs = outcomes.into_inner().unwrap();
    outs.sort_by_key(|(sid, ..)| *sid);
    for (sid, fork, fork_counters, fork_loads, contrib, executed) in outs {
        program.merge(fork);
        counters.merge(&fork_counters);
        for (total, shard) in loads.iter_mut().zip(&fork_loads) {
            total.delivered += shard.delivered;
            total.peak_queue = total.peak_queue.max(shard.peak_queue);
        }
        for (total, c) in band_active.iter_mut().zip(&contrib) {
            *total += *c;
        }
        exec_active[sid] += executed;
    }
    result
}
