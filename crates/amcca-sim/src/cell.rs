//! A Compute Cell (CC): local scratchpad memory, a task queue of delivered
//! operons, the execution state of the action currently running, and a mesh
//! router (paper Fig. 2: "Compute Cells containing local memory along with
//! computing logic are tessellated in a mesh network").

use std::collections::VecDeque;

use crate::arena::Arena;
use crate::geom::Coord;
use crate::operon::Operon;
use crate::rng::SplitMix64;
use crate::router::Router;
use crate::safra::CellTd;

#[derive(Debug)]
/// A compute cell; see the module docs for the execution model.
pub struct Cell<T> {
    /// Row-major cell id.
    pub id: u16,
    /// Mesh coordinate of this cell.
    pub coord: Coord,
    /// Local object memory (the CC's scratchpad).
    pub memory: Arena<T>,
    /// Operons delivered by the network, waiting to execute.
    pub task_queue: VecDeque<Operon>,
    /// True while an action occupies the cell. An action body executes
    /// against local memory when picked up; the cell then stays busy for the
    /// body's instruction count (`remaining`) and stages its `propagate`s one
    /// per cycle (the paper's two per-cycle operation classes, §4).
    pub busy: bool,
    /// Compute instructions the current action still has to retire.
    pub remaining: u32,
    /// Outgoing operons of the current action, staged one per cycle. The
    /// buffer is persistent and reused across actions to avoid allocation in
    /// the cycle loop.
    pub outbox: VecDeque<Operon>,
    /// The cell's mesh router.
    pub router: Router,
    /// Per-cell deterministic RNG stream (used by placement decisions).
    pub rng: SplitMix64,
    /// Safra termination-detection state (message count + colour). Kept
    /// cell-local so the detector shards with the cells; meaningful only
    /// while the chip's detector is enabled (reset at enable time).
    pub td: CellTd,
}

impl<T> Cell<T> {
    /// Create an idle cell with empty memory and queues.
    pub fn new(
        id: u16,
        coord: Coord,
        arena_capacity: u32,
        link_buffer: usize,
        rng: SplitMix64,
    ) -> Self {
        Cell {
            id,
            coord,
            memory: Arena::new(arena_capacity),
            task_queue: VecDeque::new(),
            busy: false,
            remaining: 0,
            outbox: VecDeque::new(),
            router: Router::new(link_buffer),
            rng,
            td: CellTd::start(),
        }
    }

    /// True if the cell has nothing to do: no running action, no queued tasks.
    pub fn is_idle(&self) -> bool {
        !self.busy && self.task_queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Coord;

    #[test]
    fn fresh_cell_is_idle() {
        let c: Cell<u32> = Cell::new(0, Coord::new(0, 0), 16, 4, SplitMix64::new(1));
        assert!(c.is_idle());
        assert_eq!(c.memory.len(), 0);
        assert_eq!(c.router.total(), 0);
    }
}
