//! Property tests for the histogram/snapshot core: merge associativity and
//! percentile extraction against a sorted-vector oracle.

use amcca_obs::{bucket_index, HistSnapshot, Histogram, MetricsSnapshot};
use proptest::prelude::*;

fn snap(values: &[u64]) -> HistSnapshot {
    let mut h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Mix of small exact-bucket values, mid-range, and huge samples: a
/// selector byte picks the regime, the raw `u64` supplies the value.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((any::<u8>(), any::<u64>()), 0..200).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(sel, raw)| match sel % 3 {
                0 => raw % 16,
                1 => 16 + raw % 100_000,
                _ => raw,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn merge_is_associative_and_commutative(
        a in arb_values(),
        b in arb_values(),
        c in arb_values(),
    ) {
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Merging equals recording everything into one histogram.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &snap(&all));
    }

    #[test]
    fn percentiles_match_a_sorted_vector_oracle(
        values in arb_values(),
        permilles in prop::collection::vec(0u32..=1000, 1..8),
    ) {
        let s = snap(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in permilles.into_iter().map(|p| p as f64 / 1000.0) {
            let got = s.percentile(q);
            if sorted.is_empty() {
                prop_assert_eq!(got, 0);
                continue;
            }
            // The oracle: rank-ceil(q*n) smallest sample (1-based, clamped).
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            // The histogram answers with a value in the oracle's bucket,
            // never below the oracle and never above the observed max.
            prop_assert_eq!(bucket_index(got), bucket_index(oracle),
                "q={} got={} oracle={}", q, got, oracle);
            prop_assert!(got >= oracle && got <= s.max,
                "q={} got={} oracle={} max={}", q, got, oracle, s.max);
        }
    }

    #[test]
    fn snapshot_codec_roundtrips_for_any_contents(
        a in arb_values(),
        b in arb_values(),
        counter in any::<u64>(),
        gauge in any::<i64>(),
    ) {
        let snapshot = MetricsSnapshot {
            counters: vec![("c.one".into(), counter)],
            gauges: vec![("g.depth".into(), gauge)],
            hists: vec![("h.a".into(), snap(&a)), ("h.b".into(), snap(&b))],
        };
        prop_assert_eq!(
            MetricsSnapshot::decode(&snapshot.encode()).unwrap(),
            snapshot
        );
    }
}
