//! # amcca-obs — std-only wall-clock observability
//!
//! The paper's evaluation is simulated-time (cycles, energy); this crate
//! adds the *wall-clock* side the serving stack needs: where a submission
//! actually spends its time between the TCP read and the `Submitted` ack.
//! Three pieces, no external dependencies:
//!
//! * [`registry::Registry`] — named monotonic counters, gauges, and
//!   fixed-bucket log-scale latency histograms ([`hist`]), snapshotted into
//!   a mergeable, wire-codable [`registry::MetricsSnapshot`] with
//!   p50/p90/p99/p999 extraction.
//! * [`trace::Obs`] — the handle the stack threads around: span tracing of
//!   the batch lifecycle (submit → admission → validate → WAL append+fsync
//!   → structural → repair → query repair → ack) as JSON-lines events,
//!   behind a cheap enabled-check so the disabled path is a no-op.
//! * [`json`] — a tiny JSON reader/writer used by the trace checker and
//!   tests.
//!
//! Instrumentation is *pure observation*: it reads clocks and bumps
//! counters but never feeds back into control flow, so enabling it cannot
//! perturb simulation results (pinned by the `obs_equivalence` proptest in
//! the umbrella crate).

#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod registry;
pub mod trace;

pub use hist::{bucket_bounds, bucket_index, HistSnapshot, Histogram};
pub use json::Json;
pub use registry::{MetricsSnapshot, Registry};
pub use trace::{Obs, Span};
