//! A deliberately tiny JSON reader/writer helper — just enough for the
//! observability layer to emit JSONL span events and for the trace checker
//! and tests to validate them, with no external dependencies.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escape a string for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse one JSON document. Errors carry a byte offset and a short reason.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser { b: src.as_bytes(), at: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.at != p.b.len() {
        return Err(format!("trailing content at byte {}", p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at byte {}", self.at))
    }

    fn ws(&mut self) {
        while matches!(self.b.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.at) == Some(&c) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            self.err("bad literal")
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.at) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.at += 1; // '{'
        let mut fields = Vec::new();
        self.ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            if !self.eat(b':') {
                return self.err("expected ':'");
            }
            self.ws();
            fields.push((key, self.value()?));
            self.ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            return self.err("expected ',' or '}'");
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.at += 1; // '['
        let mut items = Vec::new();
        self.ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            return self.err("expected ',' or ']'");
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if !self.eat(b'"') {
            return self.err("expected '\"'");
        }
        let mut out = String::new();
        loop {
            match self.b.get(self.at) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.b.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.at += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the source is &str, so byte
                    // boundaries are valid).
                    let rest = &self.b[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        let _ = self.eat(b'-');
        while matches!(self.b.get(self.at), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.eat(b'.') {
            while matches!(self.b.get(self.at), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.b.get(self.at), Some(b'e' | b'E')) {
            self.at += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while matches!(self.b.get(self.at), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        std::str::from_utf8(&self.b[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_span_line() {
        let line = r#"{"ts_us": 12, "span": "wal_append", "batch": 3, "muts": 7, "dur_us": 1.25}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("span").and_then(Json::as_str), Some("wal_append"));
        assert_eq!(v.get("muts").and_then(Json::as_num), Some(7.0));
        assert_eq!(v.get("dur_us").and_then(Json::as_num), Some(1.25));
    }

    #[test]
    fn parses_nesting_escapes_and_negatives() {
        let v = parse(r#"{"a": [1, -2.5e1, "x\n\"yA"], "b": {"c": null, "d": false}}"#).unwrap();
        let arr = match v.get("a").unwrap() {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[1].as_num(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("x\n\"yA"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "nul", "\"open", "{\"a\":1} extra"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        assert_eq!(parse(&doc).unwrap().get("k").and_then(Json::as_str), Some(nasty));
    }
}
