//! The `Obs` handle and batch-lifecycle span tracing.
//!
//! [`Obs`] is the single object the serving stack threads around: a cheap
//! clone (one `Option<Arc>`), disabled by default. When disabled, every
//! entry point is a branch on `None` and returns — no clock reads, no
//! locks, no allocation — so instrumentation can stay compiled into the
//! hot path unconditionally.
//!
//! When enabled, a span both records its duration into the registry
//! histogram `span.<name>_ns` and (if a JSONL sink is attached) appends one
//! trace event per completed span:
//!
//! ```json
//! {"ts_us": 1042, "span": "wal_append", "batch": 17, "muts": 128, "dur_us": 310.4}
//! ```
//!
//! `ts_us` is the span's start, in microseconds since the `Obs` handle was
//! created. Events from concurrent threads interleave whole-line atomically
//! (one buffered `write_all` per event under the sink mutex).

use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::registry::{MetricsSnapshot, Registry};

struct ObsInner {
    registry: Registry,
    epoch: Instant,
    sink: Option<Mutex<Box<dyn Write + Send>>>,
}

/// Shared observability handle (see module docs).
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.inner, self.inner.as_ref().map(|i| i.sink.is_some())) {
            (None, _) => write!(f, "Obs(disabled)"),
            (Some(_), Some(true)) => write!(f, "Obs(metrics+trace)"),
            _ => write!(f, "Obs(metrics)"),
        }
    }
}

impl Obs {
    /// The no-op handle: every operation is a branch and a return.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// Metrics only: counters, gauges, and span histograms accumulate in
    /// memory; no trace events are written anywhere.
    pub fn enabled() -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry: Registry::default(),
                epoch: Instant::now(),
                sink: None,
            })),
        }
    }

    /// Metrics plus a JSONL span trace appended to the writer `sink`.
    pub fn with_sink(sink: Box<dyn Write + Send>) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry: Registry::default(),
                epoch: Instant::now(),
                sink: Some(Mutex::new(sink)),
            })),
        }
    }

    /// Metrics plus a JSONL span trace written to the file at `path`
    /// (created or truncated).
    pub fn with_trace(path: &Path) -> io::Result<Obs> {
        let file = std::fs::File::create(path)?;
        Ok(Obs::with_sink(Box::new(BufWriter::new(file))))
    }

    /// Is any recording active? Callers can gate work that only exists to
    /// feed the registry (e.g. pre-computing a mutation count).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to counter `name`. No-op when disabled.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter_add(name, delta);
        }
    }

    /// Set gauge `name`. No-op when disabled.
    #[inline]
    pub fn gauge_set(&self, name: &str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_set(name, value);
        }
    }

    /// Record a raw sample into histogram `name` (for non-wall-clock units
    /// such as cycles or bytes). No-op when disabled.
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(name, value);
        }
    }

    /// Open a lifecycle span. The span measures wall-clock from this call
    /// until the guard drops, then records `span.<name>_ns` and appends a
    /// trace event. When disabled this reads no clock and the guard's drop
    /// is empty.
    #[inline]
    pub fn span(&self, name: &'static str, batch: u64, muts: u64) -> Span<'_> {
        Span {
            live: self.inner.as_deref().map(|inner| LiveSpan {
                inner,
                name,
                batch,
                muts,
                start: Instant::now(),
            }),
        }
    }

    /// Consistent snapshot of every metric. Empty when disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Flush the trace sink, if any.
    pub fn flush(&self) -> io::Result<()> {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.sink {
                sink.lock().unwrap().flush()?;
            }
        }
        Ok(())
    }
}

struct LiveSpan<'a> {
    inner: &'a ObsInner,
    name: &'static str,
    batch: u64,
    muts: u64,
    start: Instant,
}

/// RAII guard for one open span (see [`Obs::span`]).
pub struct Span<'a> {
    live: Option<LiveSpan<'a>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(s) = self.live.take() else { return };
        let dur = s.start.elapsed();
        let ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        s.inner.registry.observe(&format!("span.{}_ns", s.name), ns);
        if let Some(sink) = &s.inner.sink {
            let ts_us = s.start.duration_since(s.inner.epoch).as_micros();
            let line = format!(
                "{{\"ts_us\": {ts_us}, \"span\": \"{}\", \"batch\": {}, \"muts\": {}, \
                 \"dur_us\": {:.3}}}\n",
                s.name,
                s.batch,
                s.muts,
                ns as f64 / 1000.0
            );
            // A failed trace write must never take down the serving path;
            // the metrics side already recorded the span.
            let _ = sink.lock().unwrap().write_all(line.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use std::sync::mpsc;

    /// A Write that forwards each chunk over a channel.
    struct ChanSink(mpsc::Sender<Vec<u8>>);
    impl Write for ChanSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let _ = self.0.send(buf.to_vec());
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        obs.counter_add("x", 1);
        obs.gauge_set("g", 5);
        obs.observe("h", 9);
        drop(obs.span("nothing", 0, 0));
        assert!(!obs.is_enabled());
        assert_eq!(obs.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn spans_feed_both_histogram_and_trace() {
        let (tx, rx) = mpsc::channel();
        let obs = Obs::with_sink(Box::new(ChanSink(tx)));
        {
            let _s = obs.span("unit_test", 42, 7);
            std::hint::black_box(1 + 1);
        }
        let snap = obs.snapshot();
        let h = snap.hist("span.unit_test_ns").expect("span histogram");
        assert_eq!(h.count, 1);
        let line = String::from_utf8(rx.recv().unwrap()).unwrap();
        let v = parse(line.trim()).unwrap();
        assert_eq!(v.get("span").and_then(Json::as_str), Some("unit_test"));
        assert_eq!(v.get("batch").and_then(Json::as_num), Some(42.0));
        assert_eq!(v.get("muts").and_then(Json::as_num), Some(7.0));
        assert!(v.get("dur_us").and_then(Json::as_num).is_some());
        assert!(v.get("ts_us").and_then(Json::as_num).is_some());
    }

    #[test]
    fn clones_share_one_registry() {
        let obs = Obs::enabled();
        let other = obs.clone();
        obs.counter_add("shared", 1);
        other.counter_add("shared", 2);
        assert_eq!(other.snapshot().counter("shared"), 3);
    }
}
