//! Fixed-bucket log-scale histograms for latency-style `u64` samples.
//!
//! The bucket layout is log-linear: values below [`SUB`] get exact
//! single-value buckets; every power-of-two octave above that is split into
//! [`SUB`] linear sub-buckets. With `SUB = 8` (3 significant bits) any
//! recorded value lands in a bucket whose width is at most 1/8 of its lower
//! bound, so percentiles read back from bucket bounds carry at most ~12.5%
//! relative error — plenty for wall-clock latency distributions — while the
//! whole `u64` range fits in [`BUCKETS`] slots and recording is two shifts
//! and an increment.

/// Significant bits of linear resolution inside each octave.
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per octave (`2^SUB_BITS`).
pub const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = (SUB as usize) + (64 - SUB_BITS as usize) * SUB as usize;

/// Bucket index for a value. Total and monotone: `v <= w` implies
/// `bucket_index(v) <= bucket_index(w)`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // 2^e <= v < 2^(e+1), e >= SUB_BITS
        let sub = (v >> (e - SUB_BITS)) - SUB; // linear position inside the octave
        (SUB + (e as u64 - SUB_BITS as u64) * SUB + sub) as usize
    }
}

/// Inclusive `[lo, hi]` value range covered by bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUB {
        (idx, idx)
    } else {
        let k = idx - SUB;
        let e = SUB_BITS + (k / SUB) as u32;
        let sub = k % SUB;
        let width = 1u64 << (e - SUB_BITS);
        let lo = (1u64 << e) + sub * width;
        (lo, lo + (width - 1))
    }
}

/// A log-scale histogram: dense bucket counts plus exact count/sum/min/max.
///
/// `record` never allocates; the struct is `BUCKETS * 8` bytes of counts.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: Box::new([0; BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sparse `(bucket, count)` snapshot plus the exact aggregates.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u16, c))
            .collect();
        HistSnapshot { buckets, count: self.count, sum: self.sum, min: self.min, max: self.max }
    }
}

/// Immutable, mergeable snapshot of a [`Histogram`]: sparse non-zero
/// buckets in ascending index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Non-zero `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u16, u64)>,
    /// Total samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    /// The empty snapshot — the identity element for [`HistSnapshot::merge`]
    /// (`min` starts at `u64::MAX`, matching an empty [`Histogram`]).
    fn default() -> Self {
        HistSnapshot { buckets: Vec::new(), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl HistSnapshot {
    /// Merge another snapshot into this one (bucket-wise addition).
    /// Associative and commutative, so shard snapshots can be folded in
    /// any order.
    pub fn merge(&mut self, other: &HistSnapshot) {
        let mut out = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        out.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        out.push((ib, cb));
                        b.next();
                    } else {
                        out.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&e), None) => {
                    out.push(e);
                    a.next();
                }
                (None, Some(&&e)) => {
                    out.push(e);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = out;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the rank-`ceil(q * count)` sample, clamped to the observed
    /// max. Returns 0 for an empty snapshot.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_bounds(idx as usize).1.min(self.max);
            }
        }
        self.max
    }

    /// p50/p90/p99/p999 in one call.
    pub fn quantiles(&self) -> [u64; 4] {
        [
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.percentile(0.999),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_boundaries_are_exact_at_octave_edges() {
        // Every power of two starts a fresh octave; the value just below it
        // closes the previous one.
        for e in SUB_BITS..64 {
            let lo = 1u64 << e;
            let (blo, _) = bucket_bounds(bucket_index(lo));
            assert_eq!(blo, lo, "2^{e} must open its bucket");
            let below = lo - 1;
            let (_, bhi) = bucket_bounds(bucket_index(below));
            assert_eq!(bhi, below, "2^{e}-1 must close the previous bucket");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bounds_invert_the_index_everywhere_it_matters() {
        let probes = [0, 1, 7, 8, 9, 15, 16, 100, 1000, 4095, 4096, 1 << 20, u64::MAX / 3];
        for &v in &probes {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} [{lo},{hi}]");
            // Relative bucket width bound: width <= lo / SUB for log buckets.
            if v >= SUB {
                assert!(hi - lo <= lo / SUB, "bucket too wide at {v}");
            }
        }
    }

    #[test]
    fn percentile_of_point_mass_is_its_bucket() {
        let mut h = Histogram::default();
        for _ in 0..1000 {
            h.record(777);
        }
        let s = h.snapshot();
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(bucket_index(s.percentile(q)), bucket_index(777));
        }
        assert_eq!(s.min, 777);
        assert_eq!(s.max, 777);
    }

    #[test]
    fn empty_snapshot_is_identity_for_merge() {
        let mut h = Histogram::default();
        h.record(3);
        h.record(40_000);
        let mut s = h.snapshot();
        let before = s.clone();
        s.merge(&HistSnapshot::default());
        assert_eq!(s, before);
        let mut empty = HistSnapshot::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
