//! The metrics registry: named monotonic counters, gauges, and log-scale
//! histograms behind one mutex, snapshotted into a mergeable, wire-codable
//! [`MetricsSnapshot`].
//!
//! Names are dot-namespaced strings (`"wal.bytes"`, `"span.structural_ns"`).
//! The registry is write-mostly and coarse-grained on purpose: every update
//! site in the serving stack runs at batch granularity (milliseconds of
//! simulated work per lock), so one mutex is simpler and plenty fast.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::hist::{HistSnapshot, Histogram};
use crate::json::escape;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, Histogram>,
}

/// Thread-safe registry of counters, gauges, and histograms.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Add `delta` to the monotonic counter `name` (created at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut g = self.inner.lock().unwrap();
        match g.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                g.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        self.inner.lock().unwrap().gauges.insert(name.to_string(), value);
    }

    /// Record one sample into the histogram `name` (created empty).
    pub fn observe(&self, name: &str, value: u64) {
        let mut g = self.inner.lock().unwrap();
        match g.hists.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                g.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Snapshot every metric at once, consistently (one lock).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: g.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: g.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            hists: g.hists.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`]: sorted name→value vectors, so
/// two snapshots of identical state compare equal and encode identically.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots, ascending by name.
    pub hists: Vec<(String, HistSnapshot)>,
}

fn merge_sorted<V, F: Fn(&mut V, &V)>(dst: &mut Vec<(String, V)>, src: &[(String, V)], f: F)
where
    V: Clone,
{
    for (name, v) in src {
        match dst.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => f(&mut dst[i].1, v),
            Err(i) => dst.insert(i, (name.clone(), v.clone())),
        }
    }
}

impl MetricsSnapshot {
    /// Value of counter `name`, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram snapshot `name`, if present.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Merge another snapshot into this one: counters add, gauges take the
    /// other side (last write wins), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        merge_sorted(&mut self.counters, &other.counters, |a, b| *a += *b);
        merge_sorted(&mut self.gauges, &other.gauges, |a, b| *a = *b);
        merge_sorted(&mut self.hists, &other.hists, |a, b| a.merge(b));
    }

    /// Compact binary codec for the wire (the serve `ObsStats` frame).
    pub fn encode(&self) -> Vec<u8> {
        fn put_name(out: &mut Vec<u8>, name: &str) {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        let mut out = Vec::new();
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (n, v) in &self.counters {
            put_name(&mut out, n);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.gauges.len() as u32).to_le_bytes());
        for (n, v) in &self.gauges {
            put_name(&mut out, n);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.hists.len() as u32).to_le_bytes());
        for (n, h) in &self.hists {
            put_name(&mut out, n);
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.sum.to_le_bytes());
            out.extend_from_slice(&h.min.to_le_bytes());
            out.extend_from_slice(&h.max.to_le_bytes());
            out.extend_from_slice(&(h.buckets.len() as u32).to_le_bytes());
            for (idx, c) in &h.buckets {
                out.extend_from_slice(&idx.to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Decode [`MetricsSnapshot::encode`] bytes. Errors on truncation or
    /// non-UTF-8 names.
    pub fn decode(bytes: &[u8]) -> Result<MetricsSnapshot, String> {
        struct Cur<'a>(&'a [u8], usize);
        impl Cur<'_> {
            fn take(&mut self, n: usize) -> Result<&[u8], String> {
                let s = self.0.get(self.1..self.1 + n).ok_or("truncated snapshot")?;
                self.1 += n;
                Ok(s)
            }
            fn u16(&mut self) -> Result<u16, String> {
                Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
            }
            fn u32(&mut self) -> Result<u32, String> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
            }
            fn u64(&mut self) -> Result<u64, String> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
            }
            fn name(&mut self) -> Result<String, String> {
                let len = self.u16()? as usize;
                String::from_utf8(self.take(len)?.to_vec())
                    .map_err(|_| "metric name is not UTF-8".to_string())
            }
        }
        let mut c = Cur(bytes, 0);
        let mut snap = MetricsSnapshot::default();
        for _ in 0..c.u32()? {
            let n = c.name()?;
            snap.counters.push((n, c.u64()?));
        }
        for _ in 0..c.u32()? {
            let n = c.name()?;
            snap.gauges.push((n, c.u64()? as i64));
        }
        for _ in 0..c.u32()? {
            let n = c.name()?;
            let (count, sum, min, max) = (c.u64()?, c.u64()?, c.u64()?, c.u64()?);
            let nb = c.u32()? as usize;
            let mut buckets = Vec::with_capacity(nb);
            for _ in 0..nb {
                let idx = c.u16()?;
                buckets.push((idx, c.u64()?));
            }
            snap.hists.push((n, HistSnapshot { buckets, count, sum, min, max }));
        }
        if c.1 != bytes.len() {
            return Err("trailing bytes after snapshot".into());
        }
        Ok(snap)
    }

    /// Render as a JSON object: `counters` / `gauges` as flat maps,
    /// `histograms` as `{count, sum, min, max, p50, p90, p99, p999}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", escape(n)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", escape(n)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (n, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let [p50, p90, p99, p999] = h.quantiles();
            let min = if h.count == 0 { 0 } else { h.min };
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {min}, \"max\": {}, \
                 \"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \"p999\": {p999}}}",
                escape(n),
                h.count,
                h.sum,
                h.max
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let r = Registry::default();
        r.counter_add("a.count", 3);
        r.counter_add("a.count", 4);
        r.counter_add("b.bytes", 1024);
        r.gauge_set("q.depth", -2);
        r.observe("lat_ns", 5);
        r.observe("lat_ns", 900);
        r.observe("lat_ns", 1 << 30);
        r.snapshot()
    }

    #[test]
    fn snapshot_reads_back_what_was_written() {
        let s = sample();
        assert_eq!(s.counter("a.count"), 7);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauge("q.depth"), Some(-2));
        let h = s.hist("lat_ns").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 5);
        assert_eq!(h.max, 1 << 30);
    }

    #[test]
    fn encode_decode_roundtrips() {
        let s = sample();
        assert_eq!(MetricsSnapshot::decode(&s.encode()).unwrap(), s);
        let empty = MetricsSnapshot::default();
        assert_eq!(MetricsSnapshot::decode(&empty.encode()).unwrap(), empty);
        assert!(MetricsSnapshot::decode(&s.encode()[..5]).is_err());
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("a.count"), 14);
        assert_eq!(a.hist("lat_ns").unwrap().count, 6);
        assert_eq!(a.gauge("q.depth"), Some(-2));
    }

    #[test]
    fn json_render_mentions_every_metric() {
        let j = sample().to_json();
        for key in ["a.count", "b.bytes", "q.depth", "lat_ns", "p999"] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(crate::json::parse(&j).map(|_| ()), Ok(()));
    }
}
