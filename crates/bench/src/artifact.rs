//! Standardized machine-readable benchmark artifacts.
//!
//! Every `BENCH_*.json` the `paper` binary emits shares one envelope:
//!
//! ```json
//! {
//!   "scenario": "serve",
//!   "scale": "Small",
//!   "git_describe": "51d28e7",
//!   "metrics": { "mutations_submitted": 12345, "recovery_ms": 8.21 }
//! }
//! ```
//!
//! `metrics` is a *flat* map — no nesting — so downstream tooling (the CI
//! artifact diff, plotting scripts) can treat every artifact identically.
//! Scenarios that previously hand-rolled their JSON (`serve`, `queries`)
//! emit through [`BenchArtifact`], as does the `churn` scenario.
//!
//! Values written into an artifact that the shard-determinism gate diffs
//! (`churn`) must be simulation-derived (cycles, counts, simulated µs) —
//! never wall-clock — so `--jobs 1` and `--jobs 4` runs stay byte-identical.

use std::path::{Path, PathBuf};
use std::process::Command;

use crate::Scale;

/// One value in the flat `metrics` map of a [`BenchArtifact`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// An unsigned integer (counts, cycles, bytes).
    U64(u64),
    /// A float, serialized with three decimals (rates, percentages, ms).
    F64(f64),
    /// A string (labels, joined lists).
    Str(String),
    /// A flag (e.g. "oracle checked").
    Bool(bool),
}

impl From<u64> for MetricValue {
    fn from(v: u64) -> MetricValue {
        MetricValue::U64(v)
    }
}

impl From<usize> for MetricValue {
    fn from(v: usize) -> MetricValue {
        MetricValue::U64(v as u64)
    }
}

impl From<u32> for MetricValue {
    fn from(v: u32) -> MetricValue {
        MetricValue::U64(v as u64)
    }
}

impl From<f64> for MetricValue {
    fn from(v: f64) -> MetricValue {
        MetricValue::F64(v)
    }
}

impl From<&str> for MetricValue {
    fn from(v: &str) -> MetricValue {
        MetricValue::Str(v.to_string())
    }
}

impl From<String> for MetricValue {
    fn from(v: String) -> MetricValue {
        MetricValue::Str(v)
    }
}

impl From<bool> for MetricValue {
    fn from(v: bool) -> MetricValue {
        MetricValue::Bool(v)
    }
}

impl MetricValue {
    fn render(&self) -> String {
        match self {
            MetricValue::U64(v) => v.to_string(),
            MetricValue::F64(v) => format!("{v:.3}"),
            MetricValue::Str(s) => format!("\"{}\"", amcca_obs::json::escape(s)),
            MetricValue::Bool(b) => b.to_string(),
        }
    }
}

/// The version-control revision the artifact was produced from, via
/// `git describe --always --dirty`; `"unknown"` outside a git checkout
/// (e.g. a source tarball) or when `git` is not installed.
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One `BENCH_<scenario>.json` artifact under construction (module docs).
#[derive(Debug)]
pub struct BenchArtifact {
    scenario: String,
    scale: Scale,
    metrics: Vec<(String, MetricValue)>,
}

impl BenchArtifact {
    /// Start an artifact for `scenario` at `scale` with an empty metrics
    /// map.
    pub fn new(scenario: &str, scale: Scale) -> BenchArtifact {
        BenchArtifact { scenario: scenario.to_string(), scale, metrics: Vec::new() }
    }

    /// Append one metric (insertion order is preserved in the output).
    pub fn push(&mut self, name: &str, value: impl Into<MetricValue>) -> &mut BenchArtifact {
        self.metrics.push((name.to_string(), value.into()));
        self
    }

    /// Render the full envelope as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"scenario\": \"{}\",\n",
            amcca_obs::json::escape(&self.scenario)
        ));
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!(
            "  \"git_describe\": \"{}\",\n",
            amcca_obs::json::escape(&git_describe())
        ));
        out.push_str("  \"metrics\": {\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            out.push_str(&format!(
                "    \"{}\": {}{comma}\n",
                amcca_obs::json::escape(name),
                value.render()
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Write `BENCH_<scenario>.json` into `dir`; returns the path written.
    pub fn write(&self, dir: &Path) -> PathBuf {
        let path = dir.join(format!("BENCH_{}.json", self.scenario));
        std::fs::write(&path, self.to_json())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_valid_json_with_required_keys() {
        let mut a = BenchArtifact::new("unit", Scale::Small);
        a.push("count", 7u64).push("rate", 1.5f64).push("label", "x\"y").push("ok", true);
        let parsed = amcca_obs::json::parse(&a.to_json()).expect("artifact parses");
        assert_eq!(parsed.get("scenario").and_then(|j| j.as_str()), Some("unit"));
        assert_eq!(parsed.get("scale").and_then(|j| j.as_str()), Some("Small"));
        assert!(parsed.get("git_describe").is_some());
        let metrics = parsed.get("metrics").expect("metrics map");
        assert_eq!(metrics.get("count").and_then(|j| j.as_num()), Some(7.0));
        assert_eq!(metrics.get("rate").and_then(|j| j.as_num()), Some(1.5));
        assert_eq!(metrics.get("label").and_then(|j| j.as_str()), Some("x\"y"));
    }

    #[test]
    fn git_describe_never_panics_and_is_nonempty() {
        assert!(!git_describe().is_empty());
    }
}
