//! Benchmark harness library: experiment drivers, table formatting, and CSV
//! artifact output for regenerating every table and figure of the paper.
//!
//! The binary `paper` (see `src/bin/paper.rs`) is the entry point; this
//! library holds the reusable machinery so integration tests and Criterion
//! benches can share it.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

pub mod artifact;
pub use artifact::{git_describe, BenchArtifact, MetricValue};

use amcca_sim::{max_mean_ratio, ActivityRecording, ChipConfig, Counters, GhostPlacement};
use gc_datasets::{ChurnStream, GcPreset, StreamingDataset};
use sdgp_core::apps::BfsAlgo;
use sdgp_core::graph::{RepairMode, StreamingGraph};
use sdgp_core::rpvo::RpvoConfig;

/// Experiment scale: the paper's sizes or a proportional scale-down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper scale: 50 K / 500 K vertices, 1.0 M / 10.2 M edges.
    Full,
    /// 1/10 scale: 5 K / 50 K vertices.
    Mid,
    /// 1/50 scale: 1 K / 10 K vertices (default; seconds on a laptop).
    Small,
}

impl Scale {
    pub fn factor(self) -> u32 {
        match self {
            Scale::Full => 1,
            Scale::Mid => 10,
            Scale::Small => 50,
        }
    }

    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "full" => Some(Scale::Full),
            "mid" => Some(Scale::Mid),
            "small" => Some(Scale::Small),
            _ => None,
        }
    }

    pub fn apply(self, p: GcPreset) -> GcPreset {
        p.scaled_down(self.factor())
    }
}

/// One streaming-increment measurement (a point of Figures 8/9, a summand of
/// Table 2).
#[derive(Debug, Clone, Copy)]
pub struct IncrementRow {
    pub edges: usize,
    pub cycles: u64,
    pub energy_uj: f64,
    pub time_us: f64,
    pub counters: Counters,
    /// Cumulative rhizome stats at the end of this increment:
    /// `(vertices promoted, extra roots allocated)` — the promotion
    /// timeline, not just the end-of-stream total.
    pub rhizomes: (u64, u64),
}

/// A full streaming run over one dataset in one mode.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    pub label: String,
    pub with_algo: bool,
    pub rows: Vec<IncrementRow>,
    /// Concatenated per-cycle active-cell counts (when recorded).
    pub activity: Vec<u16>,
    pub cell_count: u32,
    /// Ghost statistics after the full stream: `(count, avg parent→ghost hops)`.
    pub ghosts: (u64, f64),
    /// Rhizome statistics after the full stream: `(vertices promoted to
    /// multi-root, extra co-equal roots allocated)`.
    pub rhizomes: (u64, u64),
}

impl ExperimentResult {
    pub fn total_cycles(&self) -> u64 {
        self.rows.iter().map(|r| r.cycles).sum()
    }

    pub fn total_energy_uj(&self) -> f64 {
        self.rows.iter().map(|r| r.energy_uj).sum()
    }

    pub fn total_time_us(&self) -> f64 {
        self.rows.iter().map(|r| r.time_us).sum()
    }

    pub fn total_edges(&self) -> usize {
        self.rows.iter().map(|r| r.edges).sum()
    }
}

/// Options for one streaming experiment.
#[derive(Debug, Clone)]
pub struct RunOpts {
    pub with_algo: bool,
    pub record_activity: bool,
    pub chip: ChipConfig,
    pub rcfg: RpvoConfig,
    pub termination: diffusive::TerminationMode,
    /// Reseed-wave scoping for delete-bearing batches (`Targeted` by
    /// default; `Full` is the O(n) ablation baseline).
    pub repair: RepairMode,
    /// Host-side hot-object migration between increments (off by default;
    /// the `balance` scenario's knob). Untimed, like construction.
    pub migrate: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            with_algo: true,
            record_activity: false,
            chip: ChipConfig::default(),
            rcfg: RpvoConfig::default(),
            termination: diffusive::TerminationMode::Quiescence,
            repair: RepairMode::default(),
            migrate: false,
        }
    }
}

/// Run the paper's streaming-BFS workflow over a dataset: allocate roots,
/// stream each increment to quiescence, record per-increment cycles/energy.
pub fn run_streaming_bfs(
    dataset: &StreamingDataset,
    opts: &RunOpts,
    label: &str,
) -> ExperimentResult {
    let mut chip = opts.chip.clone();
    if opts.record_activity {
        chip.record_activity = ActivityRecording::Counts;
    }
    let cell_count = chip.cell_count();
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(dataset.n_vertices)
        .chip(chip)
        .rpvo(opts.rcfg)
        .build()
        .expect("graph construction");
    g.set_algo_propagation(opts.with_algo);
    g.set_termination_mode(opts.termination);
    let mut rows = Vec::with_capacity(dataset.increments());
    let mut activity = Vec::new();
    for i in 0..dataset.increments() {
        let inc = dataset.increment(i);
        let report = g.stream_edges(inc).expect("increment run");
        rows.push(IncrementRow {
            edges: inc.len(),
            cycles: report.cycles,
            energy_uj: report.energy_uj,
            time_us: report.time_us,
            counters: report.counters,
            rhizomes: g.rhizome_stats(),
        });
        activity.extend_from_slice(&report.activity.counts);
    }
    // Single source of truth: the summary equals the last increment's
    // cumulative snapshot.
    let rhizomes = rows.last().map(|r| r.rhizomes).unwrap_or_default();
    ExperimentResult {
        label: label.to_string(),
        with_algo: opts.with_algo,
        rows,
        activity,
        cell_count,
        ghosts: g.ghost_distance_stats(),
        rhizomes,
    }
}

/// Build the default chip with a specific ghost-placement policy.
pub fn chip_with_placement(placement: GhostPlacement) -> ChipConfig {
    ChipConfig { ghost_placement: placement, ..ChipConfig::default() }
}

/// One churn-batch measurement (a row of the `paper churn` CSV).
#[derive(Debug, Clone, Copy)]
pub struct ChurnRow {
    /// Edges inserted by this batch.
    pub adds: usize,
    /// Edges deleted by this batch.
    pub dels: usize,
    /// Weight updates applied by this batch.
    pub updates: usize,
    /// Live edges after the batch (window accounting).
    pub live: usize,
    /// Cycles consumed by the batch (all phases: structural, repair, merge).
    pub cycles: u64,
    /// Cycles of the batch's reseed (repair) phase alone.
    pub repair_cycles: u64,
    /// Instructions retired by the reseed phase (its work, as opposed to
    /// its depth).
    pub repair_instrs: u64,
    /// Reseed triggers the repair phase injected (`n` under full repair, the
    /// frontier size under targeted; `0` when the batch needed no repair).
    pub reseed_triggers: u64,
    /// Energy consumed, microjoules.
    pub energy_uj: f64,
    /// Wall-clock time at 1 GHz, microseconds.
    pub time_us: f64,
    /// Cumulative rhizome promotions as of this batch.
    pub promoted: u64,
    /// Extra co-equal roots currently allocated.
    pub extra_roots: u64,
    /// Cumulative rhizome demotions as of this batch.
    pub demoted: u64,
    /// Hot objects the host-side rebalancer moved after this batch.
    pub migrations: u64,
}

/// A full sliding-window churn run (see [`run_streaming_churn`]).
#[derive(Debug, Clone)]
pub struct ChurnExperiment {
    /// Workload label.
    pub label: String,
    /// Per-batch measurements.
    pub rows: Vec<ChurnRow>,
    /// Busy-cycle imbalance (max/mean of per-band active-cell work,
    /// attributed to the *owning* band) across the run's sharded cycles.
    /// `0.0` when the sharded engine never ran.
    pub band_imbalance: f64,
    /// Same ratio over work attributed to the band that *executed* it —
    /// equals [`ChurnExperiment::band_imbalance`] when stealing is off;
    /// lower when the steal scheduler leveled the load.
    pub exec_imbalance: f64,
    /// Rows executed by a non-owner band over the whole run.
    pub steal_rows: u64,
}

impl ChurnExperiment {
    /// Total cycles across all batches.
    pub fn total_cycles(&self) -> u64 {
        self.rows.iter().map(|r| r.cycles).sum()
    }

    /// Total hot-object migrations across all batches.
    pub fn total_migrations(&self) -> u64 {
        self.rows.iter().map(|r| r.migrations).sum()
    }
}

/// Run streaming BFS over a sliding-window churn schedule: each batch
/// applies its deletions, insertions, and weight updates as one mutation
/// increment (deletes first — they retract edges settled in earlier batches
/// — then inserts, then updates, the generator's canonical order). When the
/// algorithm propagates (`opts.with_algo`), every batch's converged states
/// are checked against a from-scratch BFS over exactly the surviving edge
/// set, plus edge conservation and mirror consistency — the decremental
/// analogue of `paper verify`.
pub fn run_streaming_churn(churn: &ChurnStream, opts: &RunOpts, label: &str) -> ChurnExperiment {
    use refgraph::{bfs_levels, DiGraph};

    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(churn.n_vertices)
        .chip(opts.chip.clone())
        .rpvo(opts.rcfg)
        .repair(opts.repair)
        .migrate_hot(opts.migrate)
        .build()
        .expect("graph construction");
    g.set_algo_propagation(opts.with_algo);
    g.set_termination_mode(opts.termination);
    let mut rows = Vec::with_capacity(churn.len());
    for i in 0..churn.len() {
        let b = churn.batch(i);
        let muts = b.to_mutations();
        let report = g.stream_increment(&muts).expect("churn batch run");
        let live = churn.live_after(i);
        assert_eq!(
            g.total_edges_stored(),
            live.len() as u64,
            "batch {i}: stored edges must equal the surviving window"
        );
        if opts.with_algo {
            let reference =
                bfs_levels(&DiGraph::from_edges(churn.n_vertices, live.iter().copied()), 0);
            assert_eq!(g.states(), reference, "batch {i}: BFS mismatch vs rebuild oracle");
        }
        let (promoted, extra_roots) = g.rhizome_stats();
        rows.push(ChurnRow {
            adds: b.adds.len(),
            dels: b.dels.len(),
            updates: b.updates.len(),
            live: live.len(),
            cycles: report.cycles,
            repair_cycles: report.repair_cycles,
            repair_instrs: report.repair_instrs,
            reseed_triggers: report.reseed_triggers,
            energy_uj: report.energy_uj,
            time_us: report.time_us,
            promoted,
            extra_roots,
            demoted: g.demotion_count(),
            migrations: report.migrations,
        });
    }
    if opts.with_algo {
        // Ingestion-only runs never sync mirrors (propagation is off), so
        // the invariant only holds when the algorithm actually diffuses.
        g.check_mirror_consistency().expect("mirrors consistent after churn");
    }
    let chip = g.device().chip();
    ChurnExperiment {
        label: label.to_string(),
        rows,
        band_imbalance: max_mean_ratio(chip.band_active()),
        exec_imbalance: max_mean_ratio(chip.exec_active()),
        steal_rows: chip.steal_rows(),
    }
}

// ---------------------------------------------------------------------
// Formatting helpers.
// ---------------------------------------------------------------------

/// Render a table with aligned columns.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(out, "{:>width$}  ", c, width = widths[i]);
        }
        out.push('\n');
    };
    line(&mut out, &header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// `12345678` → `12.3M`, `4321` → `4K` (Table 1 style).
pub fn human_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 1000 {
        format!("{}K", n / 1000)
    } else {
        n.to_string()
    }
}

/// A unicode sparkline for a series scaled to `max`.
pub fn sparkline(series: &[u16], max: u32, width: usize) -> String {
    const BARS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let chunk = series.len().div_ceil(width.max(1));
    series
        .chunks(chunk)
        .map(|c| {
            let peak = *c.iter().max().unwrap() as f64 / max.max(1) as f64;
            BARS[(peak * 8.0).ceil().min(8.0) as usize]
        })
        .collect()
}

// ---------------------------------------------------------------------
// CSV artifacts.
// ---------------------------------------------------------------------

/// Output directory for CSV artifacts (created on demand).
pub fn out_dir(base: &str) -> PathBuf {
    let p = PathBuf::from(base);
    std::fs::create_dir_all(&p).expect("create output dir");
    p
}

pub fn write_csv(path: &Path, header: &str, rows: impl IntoIterator<Item = String>) {
    let mut s = String::from(header);
    s.push('\n');
    for r in rows {
        s.push_str(&r);
        s.push('\n');
    }
    std::fs::write(path, s).expect("write csv");
}

/// Write an activity series (down-sampled by max-pooling to at most
/// `max_points`) as `cycle,active,percent`.
pub fn write_activity_csv(path: &Path, activity: &[u16], cells: u32, max_points: usize) {
    let chunk = activity.len().div_ceil(max_points.max(1)).max(1);
    let rows = activity.chunks(chunk).enumerate().map(|(i, c)| {
        let peak = *c.iter().max().unwrap();
        format!("{},{},{:.2}", i * chunk, peak, peak as f64 * 100.0 / cells as f64)
    });
    write_csv(path, "cycle,active,percent", rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_datasets::Sampling;

    #[test]
    fn scale_parse_and_factor() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("small").unwrap().factor(), 50);
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn experiment_runs_and_accumulates() {
        let d = Scale::Small.apply(GcPreset::v50k(Sampling::Edge)).build();
        let opts = RunOpts { record_activity: true, ..Default::default() };
        let r = run_streaming_bfs(&d, &opts, "test");
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.total_edges(), d.total_edges());
        assert!(r.total_cycles() > 0);
        assert_eq!(r.activity.len() as u64, r.total_cycles(), "activity spans all increments");
        assert!(r.total_energy_uj() > 0.0);
    }

    #[test]
    fn churn_runs_verified_and_drains() {
        let churn = gc_datasets::ChurnPreset::v50k().scaled_down(100).build();
        let opts = RunOpts::default();
        let r = run_streaming_churn(&churn, &opts, "churn-test");
        assert_eq!(r.rows.len(), churn.len());
        let last = r.rows.last().unwrap();
        assert_eq!(last.live, 0, "drain tail empties the window");
        assert!(r.rows.iter().all(|row| row.cycles > 0));
        assert_eq!(
            r.rows.iter().map(|row| row.adds).sum::<usize>(),
            r.rows.iter().map(|row| row.dels).sum::<usize>(),
        );
    }

    #[test]
    fn ingestion_only_is_cheaper_than_with_bfs() {
        let d = Scale::Small.apply(GcPreset::v50k(Sampling::Edge)).build();
        let with = run_streaming_bfs(&d, &RunOpts::default(), "bfs");
        let without =
            run_streaming_bfs(&d, &RunOpts { with_algo: false, ..Default::default() }, "ingest");
        assert!(with.total_cycles() > without.total_cycles());
        assert!(with.total_energy_uj() > without.total_energy_uj());
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4, "header, separator, two rows");
        assert!(lines[0].contains("bb"));
        assert!(lines[2].contains('1') && lines[2].contains('2'));
        assert!(lines[3].contains("333"));
    }

    #[test]
    fn human_counts() {
        assert_eq!(human_count(102_000), "102K");
        assert_eq!(human_count(1_000_000), "1.00M");
        assert_eq!(human_count(10_200_000), "10.2M");
        assert_eq!(human_count(37), "37");
    }

    #[test]
    fn sparkline_has_requested_width() {
        let s: Vec<u16> = (0..1000).map(|i| (i % 100) as u16).collect();
        let sp = sparkline(&s, 100, 40);
        assert!(sp.chars().count() <= 40);
        assert!(sp.chars().count() >= 38);
    }
}
