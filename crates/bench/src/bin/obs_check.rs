//! `obs_check` — validate observability artifacts from `paper serve --obs`.
//!
//! ```text
//! obs_check <trace.jsonl> [snapshot.metrics.json]
//! obs_check --bench <BENCH_*.json>...
//! ```
//!
//! Every line of the JSONL trace must parse as a JSON object carrying the
//! span schema (see `docs/OBSERVABILITY.md`): `ts_us`, `batch`, `muts`,
//! `dur_us` as numbers and `span` as a non-empty string. The metrics
//! snapshot, when given, must parse and carry the `counters`, `gauges`,
//! and `histograms` maps. With `--bench`, each file is instead checked
//! against the `BENCH_*.json` envelope (see `amcca_bench::BenchArtifact`):
//! non-empty `scenario`, `scale`, and `git_describe` strings plus a
//! non-empty flat `metrics` map. The first violation exits non-zero with
//! the offending line — CI runs this over the uploaded artifacts so a
//! schema regression fails the build, not someone's plotting script.

use amcca_obs::json::{parse, Json};

fn die(msg: &str) -> ! {
    eprintln!("obs_check: {msg}");
    std::process::exit(1);
}

fn check_trace_line(lineno: usize, line: &str) {
    let v = parse(line)
        .unwrap_or_else(|e| die(&format!("trace line {lineno} does not parse: {e}\n  {line}")));
    for field in ["ts_us", "batch", "muts", "dur_us"] {
        if v.get(field).and_then(Json::as_num).is_none() {
            die(&format!("trace line {lineno} is missing numeric \"{field}\":\n  {line}"));
        }
    }
    match v.get("span").and_then(Json::as_str) {
        Some(name) if !name.is_empty() => {}
        _ => die(&format!("trace line {lineno} is missing the \"span\" name:\n  {line}")),
    }
}

/// Validate one `BENCH_*.json` artifact against the shared envelope.
fn check_bench_artifact(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let v = parse(&text).unwrap_or_else(|e| die(&format!("{path} does not parse: {e}")));
    for field in ["scenario", "scale", "git_describe"] {
        match v.get(field).and_then(Json::as_str) {
            Some(s) if !s.is_empty() => {}
            _ => die(&format!("{path} is missing the \"{field}\" string")),
        }
    }
    let Some(Json::Obj(metrics)) = v.get("metrics") else {
        die(&format!("{path} is missing the \"metrics\" map"));
    };
    if metrics.is_empty() {
        die(&format!("{path} has an empty \"metrics\" map"));
    }
    println!(
        "obs_check: {path}: scenario \"{}\" carries {} metrics",
        v.get("scenario").and_then(Json::as_str).unwrap_or_default(),
        metrics.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--bench") {
        if args.len() < 2 {
            die("usage: obs_check --bench <BENCH_*.json>...");
        }
        for path in &args[1..] {
            check_bench_artifact(path);
        }
        return;
    }
    let Some(trace_path) = args.first() else {
        die("usage: obs_check <trace.jsonl> [snapshot.metrics.json] | obs_check --bench <BENCH_*.json>...");
    };
    let trace = std::fs::read_to_string(trace_path)
        .unwrap_or_else(|e| die(&format!("read {trace_path}: {e}")));
    let mut spans = 0usize;
    for (i, line) in trace.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        check_trace_line(i + 1, line);
        spans += 1;
    }
    if spans == 0 {
        die(&format!("{trace_path} contains no span records"));
    }
    println!("obs_check: {trace_path}: {spans} spans, all lines carry the span schema");

    if let Some(snap_path) = args.get(1) {
        let text = std::fs::read_to_string(snap_path)
            .unwrap_or_else(|e| die(&format!("read {snap_path}: {e}")));
        let snap =
            parse(&text).unwrap_or_else(|e| die(&format!("{snap_path} does not parse: {e}")));
        for section in ["counters", "gauges", "histograms"] {
            if snap.get(section).is_none() {
                die(&format!("{snap_path} is missing the \"{section}\" map"));
            }
        }
        println!("obs_check: {snap_path}: counters/gauges/histograms present");
    }
}
