//! `amcca-run` — run a streaming graph workload on a simulated AM-CCA chip.
//!
//! The general-purpose CLI for users with their own edge lists (including
//! real GraphChallenge part files):
//!
//! ```text
//! amcca-run --edges graph.tsv [--edges part2.tsv ...] [options]
//!
//!   --edges FILE       edge file (src dst [w]); repeat for increments
//!   --algo bfs|sssp|cc janitor algorithm to run while streaming (default bfs)
//!   --root N           BFS/SSSP source vertex (default 0)
//!   --zero-indexed     ids start at 0 (default: 1-indexed, GraphChallenge)
//!   --symmetrize       insert both directions of every edge (needed for cc)
//!   --chip WxH         mesh size (default 32x32)
//!   --shards N         parallel execution shards (default: one per hardware
//!                      thread; results are identical for any N)
//!   --edge-cap N       RPVO inline edge capacity (default 16)
//!   --ghosts N         RPVO ghost fanout (default 2)
//!   --random-alloc     Random ghost placement instead of Vicinity
//!   --ingest-only      disable algorithm propagation
//!   --verify           check final result against the sequential oracle
//!   --states FILE      write final per-vertex states as CSV
//! ```

use std::path::PathBuf;

use amcca_sim::{ChipConfig, Dims, GhostPlacement};
use gc_datasets::{load_streaming_parts, Sampling};
use sdgp_core::apps::{BfsAlgo, CcAlgo, SsspAlgo, VertexAlgo};
use sdgp_core::graph::{symmetrize, StreamEdge, StreamingGraph};
use sdgp_core::rpvo::RpvoConfig;

#[derive(Debug)]
struct Args {
    edges: Vec<PathBuf>,
    algo: String,
    root: u32,
    one_indexed: bool,
    symmetrize: bool,
    dims: Dims,
    shards: usize,
    edge_cap: usize,
    ghosts: usize,
    random_alloc: bool,
    ingest_only: bool,
    verify: bool,
    states_out: Option<PathBuf>,
}

fn die(msg: &str) -> ! {
    eprintln!("amcca-run: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut a = Args {
        edges: Vec::new(),
        algo: "bfs".into(),
        root: 0,
        one_indexed: true,
        symmetrize: false,
        dims: Dims::new(32, 32),
        shards: amcca_sim::config::default_shards(),
        edge_cap: 16,
        ghosts: 2,
        random_alloc: false,
        ingest_only: false,
        verify: false,
        states_out: None,
    };
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| die(&format!("missing value for {flag}")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--edges" => a.edges.push(PathBuf::from(value(&argv, &mut i, "--edges"))),
            "--algo" => a.algo = value(&argv, &mut i, "--algo"),
            "--root" => {
                a.root =
                    value(&argv, &mut i, "--root").parse().unwrap_or_else(|_| die("bad --root"))
            }
            "--zero-indexed" => a.one_indexed = false,
            "--symmetrize" => a.symmetrize = true,
            "--chip" => {
                let v = value(&argv, &mut i, "--chip");
                let (w, h) = v.split_once('x').unwrap_or_else(|| die("--chip expects WxH"));
                a.dims = Dims::new(
                    w.parse().unwrap_or_else(|_| die("bad chip width")),
                    h.parse().unwrap_or_else(|_| die("bad chip height")),
                );
            }
            "--shards" => {
                a.shards =
                    value(&argv, &mut i, "--shards").parse().unwrap_or_else(|_| die("bad --shards"))
            }
            "--edge-cap" => {
                a.edge_cap = value(&argv, &mut i, "--edge-cap")
                    .parse()
                    .unwrap_or_else(|_| die("bad --edge-cap"))
            }
            "--ghosts" => {
                a.ghosts =
                    value(&argv, &mut i, "--ghosts").parse().unwrap_or_else(|_| die("bad --ghosts"))
            }
            "--random-alloc" => a.random_alloc = true,
            "--ingest-only" => a.ingest_only = true,
            "--verify" => a.verify = true,
            "--states" => a.states_out = Some(PathBuf::from(value(&argv, &mut i, "--states"))),
            other => die(&format!("unknown argument {other} (see module docs)")),
        }
        i += 1;
    }
    if a.edges.is_empty() {
        die("at least one --edges FILE is required");
    }
    Args { ..a }
}

fn main() {
    let args = parse_args();
    let dataset = load_streaming_parts(&args.edges, Sampling::Edge, args.one_indexed, None)
        .unwrap_or_else(|e| die(&format!("loading edges: {e}")));
    eprintln!(
        "loaded {} edges over {} increment(s), {} vertices",
        dataset.total_edges(),
        dataset.increments(),
        dataset.n_vertices
    );
    let chip = ChipConfig {
        dims: args.dims,
        shards: args.shards.max(1),
        ghost_placement: if args.random_alloc {
            GhostPlacement::Random
        } else {
            GhostPlacement::default()
        },
        ..ChipConfig::default()
    };
    let rcfg = RpvoConfig::basic(args.edge_cap, args.ghosts);
    match args.algo.as_str() {
        "bfs" => run_algo(&args, &dataset, chip, rcfg, BfsAlgo::new(args.root)),
        "sssp" => run_algo(&args, &dataset, chip, rcfg, SsspAlgo::new(args.root)),
        "cc" => run_algo(&args, &dataset, chip, rcfg, CcAlgo),
        other => die(&format!("unknown --algo {other} (bfs|sssp|cc)")),
    }
}

fn run_algo<G: VertexAlgo<State = u64>>(
    args: &Args,
    dataset: &gc_datasets::StreamingDataset,
    chip: ChipConfig,
    rcfg: RpvoConfig,
    algo: G,
) {
    let cells = chip.cell_count();
    let mut g = StreamingGraph::builder(algo)
        .vertices(dataset.n_vertices)
        .chip(chip)
        .rpvo(rcfg)
        .build()
        .unwrap_or_else(|e| die(&format!("constructing graph: {e}")));
    g.set_algo_propagation(!args.ingest_only);
    let mut total_cycles = 0u64;
    let mut total_energy = 0.0f64;
    for i in 0..dataset.increments() {
        let mut inc: Vec<StreamEdge> = dataset.increment(i).to_vec();
        if args.symmetrize {
            inc = symmetrize(&inc);
        }
        let r = g.stream_edges(&inc).unwrap_or_else(|e| die(&format!("increment {i}: {e}")));
        total_cycles += r.cycles;
        total_energy += r.energy_uj;
        println!(
            "increment {:>3}: {:>8} edges  {:>9} cycles  {:>10.1} µJ",
            i + 1,
            inc.len(),
            r.cycles,
            r.energy_uj
        );
    }
    println!(
        "total: {} cycles ({:.1} µs @ 1 GHz), {:.1} µJ on {} cells; {} edges stored, {} ghosts",
        total_cycles,
        total_cycles as f64 / 1000.0,
        total_energy,
        cells,
        g.total_edges_stored(),
        g.ghost_distance_stats().0,
    );

    if args.verify && !args.ingest_only {
        verify(args, dataset, &g);
    }
    if let Some(path) = &args.states_out {
        let mut csv = String::from("vertex,state\n");
        for (v, s) in g.states().into_iter().enumerate() {
            csv.push_str(&format!("{v},{s}\n"));
        }
        std::fs::write(path, csv).unwrap_or_else(|e| die(&format!("writing states: {e}")));
        println!("states written to {}", path.display());
    }
}

fn verify<G: VertexAlgo<State = u64>>(
    args: &Args,
    dataset: &gc_datasets::StreamingDataset,
    g: &StreamingGraph<G>,
) {
    use refgraph::{bfs_levels, dijkstra, min_labels, DiGraph};
    let mut edges: Vec<StreamEdge> = dataset.all_edges().to_vec();
    if args.symmetrize {
        edges = symmetrize(&edges);
    }
    let reference = DiGraph::from_edges(dataset.n_vertices, edges.iter().copied());
    let want = match args.algo.as_str() {
        "bfs" => bfs_levels(&reference, args.root),
        "sssp" => dijkstra(&reference, args.root),
        "cc" => min_labels(&reference),
        _ => unreachable!(),
    };
    let got = g.states();
    let mismatches = got.iter().zip(&want).filter(|(a, b)| a != b).count();
    if mismatches == 0 {
        println!("verify: OK — all {} vertices match the sequential oracle", want.len());
    } else {
        die(&format!("verify FAILED: {mismatches} vertices differ from the oracle"));
    }
}
