//! `paper` — regenerate every table and figure of the paper.
//!
//! ```text
//! paper <command> [--scale small|mid|full] [--out bench_out] [--jobs N]
//!
//! commands:
//!   table1           Edges per streaming increment (Table 1)
//!   table2           Energy and time, ingestion vs ingestion+BFS (Table 2)
//!   fig6             Ingestion-only activity per cycle, 500K graph (Figure 6)
//!   fig7             Ingestion+BFS activity per cycle, 500K graph (Figure 7)
//!   fig8             Cycles per increment, 50K graph (Figure 8)
//!   fig9             Cycles per increment, 500K graph (Figure 9)
//!   ablate-alloc     Vicinity vs Random ghost allocator (Figure 5, quantified)
//!   ablate-edgecap   RPVO inline edge-capacity sweep
//!   ablate-ghosts    RPVO ghost-fanout sweep
//!   ablate-terminator  Quiescence vs Safra-token termination detection
//!   ablate-rhizomes  Rhizome root-count sweep (K ∈ 1,2,4,8) on the RMAT graph
//!   loadmap          Per-cell load skew, Edge vs Snowball (§5 congestion)
//!   skew             Power-law (RMAT) streaming with rhizome promotion
//!   churn            Sliding-window mutation stream: deletions, repair
//!                    diffusions, rhizome demotion (oracle-checked per
//!                    batch), plus the full-vs-targeted repair ablation
//!   serve            Always-on ingestion server: concurrent clients over
//!                    loopback TCP, admission control, checkpoint + WAL,
//!                    then kill/recover with a bit-identical fixpoint check
//!                    (emits BENCH_serve.json)
//!   queries          Standing label-constrained path queries maintained
//!                    through labelled churn, oracle-checked per batch,
//!                    with the cycle overhead vs a query-free twin
//!                    (emits BENCH_queries.json)
//!   subscriptions    Push-based query subscriptions over labelled churn:
//!                    per-batch result deltas pinned to the polled result
//!                    sets, with maintenance + fan-out cost ablated over
//!                    registered-query and subscriber counts
//!                    (emits BENCH_subscriptions.json)
//!   balance          Hot-column churn with load balancing (cycle-barrier
//!                    work stealing + hot-object migration) on vs off, at
//!                    shard counts 1/2/4/8, with the cross-shard cycle
//!                    identity asserted (emits BENCH_balance.json)
//!   verify           Check streamed BFS against the reference oracle (§4)
//!   all              Everything above, in order
//! ```
//!
//! `churn` takes `--repair {full,targeted}` (default `targeted`) selecting
//! the reseed scoping of the headline run; the ablation CSV
//! (`churn_repair.csv`) always measures both.
//!
//! `serve` takes `--obs TRACE.jsonl` to turn on the observability layer:
//! batch-lifecycle spans stream to the JSONL trace and the final metrics
//! snapshot (counters, gauges, latency histograms with p50/p90/p99/p999)
//! lands next to it as `TRACE.metrics.json`. See `docs/OBSERVABILITY.md`.
//!
//! Default scale is `small` (1/50 of the paper, seconds). `--scale full`
//! reproduces the paper's sizes (50K/1.0M and 500K/10.2M edges); expect
//! minutes and a few GB of RAM for the 500K runs. CSV artifacts land in
//! `--out` (default `bench_out/`).

use amcca_bench::{
    chip_with_placement, format_table, human_count, out_dir, run_streaming_bfs,
    run_streaming_churn, sparkline, write_activity_csv, write_csv, BenchArtifact, ExperimentResult,
    RunOpts, Scale,
};
use amcca_sim::{run_tasks, ChipConfig, GhostPlacement};
use gc_datasets::{ChurnPreset, GcPreset, Sampling, SkewPreset, StreamingDataset};
use sdgp_core::graph::RepairMode;
use sdgp_core::rpvo::RpvoConfig;

struct Args {
    command: String,
    scale: Scale,
    out: String,
    /// `--obs PATH` (serve only): record the observability layer — a
    /// JSONL span trace streamed to PATH, plus the final metrics snapshot
    /// (counters/gauges/latency histograms) at `PATH` with the extension
    /// replaced by `metrics.json`. Instrumentation is pure observation:
    /// results are bit-identical with and without it.
    obs: Option<String>,
    /// Parallelism budget: every simulated chip runs with this many shards
    /// (chip-running scenarios then fan out one at a time, see
    /// [`CHIP_SCENARIO_WORKERS`]); dataset-only fan-outs use it as a plain
    /// worker cap. Simulation results are shard-count-independent (the CI
    /// determinism gate diffs the CSVs), so `--jobs` only changes
    /// wall-clock time and peak memory.
    jobs: usize,
    /// Reseed scoping of the headline `churn` run (the repair ablation
    /// always measures both modes).
    repair: RepairMode,
    /// `--balance on|off` (default on): cycle-barrier work stealing in the
    /// sharded engine. Stealing only changes which host worker executes a
    /// row, never the simulation results, so this knob is safe to flip
    /// under the determinism gate. The `balance` scenario sweeps both
    /// settings regardless.
    balance: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::new();
    let mut scale = Scale::Small;
    let mut out = "bench_out".to_string();
    let mut obs = None;
    let mut jobs = 0usize;
    let mut repair = RepairMode::Targeted;
    let mut balance = true;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(argv.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|| die("invalid --scale (small|mid|full)"));
            }
            "--out" => {
                i += 1;
                out = argv.get(i).cloned().unwrap_or_else(|| die("missing --out value"));
            }
            "--obs" => {
                i += 1;
                obs = Some(argv.get(i).cloned().unwrap_or_else(|| die("missing --obs value")));
            }
            "--jobs" => {
                i += 1;
                jobs = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("invalid --jobs"));
            }
            "--repair" => {
                i += 1;
                repair = match argv.get(i).map(String::as_str) {
                    Some("full") => RepairMode::Full,
                    Some("targeted") => RepairMode::Targeted,
                    _ => die("invalid --repair (full|targeted)"),
                };
            }
            "--balance" => {
                i += 1;
                balance = match argv.get(i).map(String::as_str) {
                    Some("on") => true,
                    Some("off") => false,
                    _ => die("invalid --balance (on|off)"),
                };
            }
            c if command.is_empty() && !c.starts_with('-') => command = c.to_string(),
            other => die(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    if command.is_empty() {
        die("usage: paper <table1|table2|fig6|fig7|fig8|fig9|ablate-alloc|ablate-edgecap|ablate-ghosts|ablate-terminator|ablate-rhizomes|loadmap|skew|churn|serve|queries|subscriptions|balance|verify|all> [--scale small|mid|full] [--out DIR] [--obs TRACE.jsonl] [--jobs N] [--repair full|targeted] [--balance on|off]");
    }
    if jobs == 0 {
        jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    }
    Args { command, scale, out, obs, jobs, repair, balance }
}

fn die(msg: &str) -> ! {
    eprintln!("paper: {msg}");
    std::process::exit(2);
}

fn presets(scale: Scale) -> Vec<GcPreset> {
    GcPreset::table1().into_iter().map(|p| scale.apply(p)).collect()
}

/// The chip every experiment runs on: paper platform, sharded per `--jobs`,
/// work stealing per `--balance`.
fn chip_for(args: &Args) -> ChipConfig {
    ChipConfig::default().with_shards(args.jobs).with_work_stealing(args.balance)
}

/// Worker cap for fanning out *chip-running* scenarios. Each chip already
/// consumes the whole `--jobs` budget as shards, so scenarios run one at a
/// time: `workers × shards` never exceeds the budget (no oversubscribed
/// spin barriers), and at `--scale full` at most one multi-GB dataset+chip
/// is resident at a time. Dataset-only fan-outs (table1) have no chip and
/// use the full budget as plain workers instead.
const CHIP_SCENARIO_WORKERS: usize = 1;

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "table1" => table1(&args),
        "table2" => table2(&args),
        "fig6" => fig67(&args, false),
        "fig7" => fig67(&args, true),
        "fig8" => fig89(&args, false),
        "fig9" => fig89(&args, true),
        "ablate-alloc" => ablate_alloc(&args),
        "ablate-edgecap" => ablate_edgecap(&args),
        "ablate-ghosts" => ablate_ghosts(&args),
        "ablate-terminator" => ablate_terminator(&args),
        "ablate-rhizomes" => ablate_rhizomes(&args),
        "loadmap" => loadmap(&args),
        "skew" => skew(&args),
        "churn" => churn(&args),
        "serve" => serve(&args),
        "queries" => queries(&args),
        "subscriptions" => subscriptions(&args),
        "balance" => balance(&args),
        "verify" => verify(&args),
        "all" => {
            table1(&args);
            table2(&args);
            fig6_to_9_all(&args);
            ablate_alloc(&args);
            ablate_edgecap(&args);
            ablate_ghosts(&args);
            ablate_terminator(&args);
            ablate_rhizomes(&args);
            loadmap(&args);
            skew(&args);
            churn(&args);
            serve(&args);
            queries(&args);
            subscriptions(&args);
            balance(&args);
            verify(&args);
        }
        other => die(&format!("unknown command {other}")),
    }
}

// ---------------------------------------------------------------------
// Table 1 — dataset increments.
// ---------------------------------------------------------------------

fn table1(args: &Args) {
    eprintln!("[table1] building datasets at scale {:?}...", args.scale);
    let datasets: Vec<(GcPreset, StreamingDataset)> = run_tasks(
        presets(args.scale).into_iter().map(|p| move || (p, p.build())).collect(),
        args.jobs,
    );
    println!("\nTable 1: edges per streaming increment (scale {:?})", args.scale);
    let mut header = vec!["Vertices".to_string(), "Sampling".to_string()];
    header.extend((1..=10).map(|i| i.to_string()));
    header.push("Final".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (p, d) in &datasets {
        let mut row = vec![human_count(p.n_vertices as u64), p.sampling.to_string()];
        row.extend(d.increment_sizes().iter().map(|&s| human_count(s as u64)));
        row.push(human_count(d.total_edges() as u64));
        csv_rows.push(format!(
            "{},{},{}",
            p.label(),
            d.increment_sizes().iter().map(|s| s.to_string()).collect::<Vec<_>>().join(","),
            d.total_edges()
        ));
        rows.push(row);
    }
    println!("{}", format_table(&header_refs, &rows));
    let dir = out_dir(&args.out);
    write_csv(&dir.join("table1.csv"), "dataset,i1,i2,i3,i4,i5,i6,i7,i8,i9,i10,final", csv_rows);
    println!("(csv: {}/table1.csv)", args.out);
}

// ---------------------------------------------------------------------
// Table 2 — energy and time.
// ---------------------------------------------------------------------

/// The paper's Table 2 values (full scale), for side-by-side comparison:
/// (label, ingest_energy_uj, ingest_time_us, bfs_energy_uj, bfs_time_us).
const PAPER_TABLE2: [(&str, f64, f64, f64, f64); 4] = [
    ("50K/Edge", 1355.0, 22.0, 4669.0, 68.0),
    ("50K/Snowball", 1357.0, 25.0, 2929.0, 43.0),
    ("500K/Edge", 13480.0, 206.0, 50274.0, 694.0),
    ("500K/Snowball", 13498.0, 232.0, 32895.0, 448.0),
];

fn table2(args: &Args) {
    eprintln!("[table2] running 4 datasets x 2 modes at scale {:?}...", args.scale);
    let ps = presets(args.scale);
    let results: Vec<ExperimentResult> = run_tasks(
        ps.iter()
            .flat_map(|p| [(*p, false), (*p, true)])
            .map(|(p, with_algo)| {
                let chip = chip_for(args);
                move || {
                    let d = p.build();
                    let opts = RunOpts { with_algo, chip, ..Default::default() };
                    run_streaming_bfs(&d, &opts, &p.label())
                }
            })
            .collect(),
        CHIP_SCENARIO_WORKERS,
    );
    println!("\nTable 2: energy (µJ) and time (µs), 32x32 chip @ 1 GHz (scale {:?})", args.scale);
    let header = [
        "Dataset",
        "Ingest µJ",
        "Ingest µs",
        "Ing+BFS µJ",
        "Ing+BFS µs",
        "paper µJ/µs (ing)",
        "paper µJ/µs (+bfs)",
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (i, p) in ps.iter().enumerate() {
        let ing = &results[2 * i];
        let bfs = &results[2 * i + 1];
        assert!(!ing.with_algo && bfs.with_algo);
        let paper = PAPER_TABLE2[i];
        rows.push(vec![
            p.label(),
            format!("{:.0}", ing.total_energy_uj()),
            format!("{:.0}", ing.total_time_us()),
            format!("{:.0}", bfs.total_energy_uj()),
            format!("{:.0}", bfs.total_time_us()),
            format!("{:.0}/{:.0}", paper.1, paper.2),
            format!("{:.0}/{:.0}", paper.3, paper.4),
        ]);
        csv.push(format!(
            "{},{:.1},{:.1},{:.1},{:.1}",
            p.label(),
            ing.total_energy_uj(),
            ing.total_time_us(),
            bfs.total_energy_uj(),
            bfs.total_time_us()
        ));
    }
    println!("{}", format_table(&header, &rows));
    if args.scale != Scale::Full {
        println!(
            "note: paper columns are FULL scale; measured columns are 1/{} scale",
            args.scale.factor()
        );
    }
    let dir = out_dir(&args.out);
    write_csv(&dir.join("table2.csv"), "dataset,ingest_uj,ingest_us,bfs_uj,bfs_us", csv);
    println!("(csv: {}/table2.csv)", args.out);
}

// ---------------------------------------------------------------------
// Figures 6 & 7 — activity per cycle (500K graph).
// ---------------------------------------------------------------------

fn fig67(args: &Args, with_bfs: bool) {
    let (figno, mode) = if with_bfs { (7, "ingestion with BFS") } else { (6, "ingestion only") };
    eprintln!("[fig{figno}] {mode}, 500K graph, both samplings, scale {:?}...", args.scale);
    let ps: Vec<GcPreset> = [Sampling::Edge, Sampling::Snowball]
        .into_iter()
        .map(|s| args.scale.apply(GcPreset::v500k(s)))
        .collect();
    let results: Vec<ExperimentResult> = run_tasks(
        ps.iter()
            .map(|p| {
                let p = *p;
                let chip = chip_for(args);
                move || {
                    let d = p.build();
                    let opts = RunOpts {
                        with_algo: with_bfs,
                        record_activity: true,
                        chip,
                        ..Default::default()
                    };
                    run_streaming_bfs(&d, &opts, &p.label())
                }
            })
            .collect(),
        CHIP_SCENARIO_WORKERS,
    );
    println!(
        "\nFigure {figno}: percent of cells active per cycle — {mode} (scale {:?})",
        args.scale
    );
    let dir = out_dir(&args.out);
    for (p, r) in ps.iter().zip(&results) {
        let peak = r.activity.iter().copied().max().unwrap_or(0);
        let mean =
            r.activity.iter().map(|&a| a as f64).sum::<f64>() / r.activity.len().max(1) as f64;
        println!(
            "  ({}) {:10}  cycles={:8}  peak={:5.1}%  mean={:5.1}%",
            if p.sampling == Sampling::Edge { "a" } else { "b" },
            p.sampling.to_string(),
            r.total_cycles(),
            peak as f64 * 100.0 / r.cell_count as f64,
            mean * 100.0 / r.cell_count as f64,
        );
        println!("      |{}|", sparkline(&r.activity, r.cell_count, 72));
        let name = format!(
            "fig{figno}_{}.csv",
            if p.sampling == Sampling::Edge { "edge" } else { "snowball" }
        );
        write_activity_csv(&dir.join(&name), &r.activity, r.cell_count, 4096);
        println!("      (csv: {}/{name})", args.out);
    }
}

// ---------------------------------------------------------------------
// Figures 8 & 9 — cycles per increment.
// ---------------------------------------------------------------------

fn fig89(args: &Args, big: bool) {
    let figno = if big { 9 } else { 8 };
    let base = if big { GcPreset::v500k } else { GcPreset::v50k };
    let size = if big { "500K" } else { "50K" };
    eprintln!("[fig{figno}] cycles per increment, {size} graph, scale {:?}...", args.scale);
    let tasks: Vec<(GcPreset, bool)> = [Sampling::Edge, Sampling::Snowball]
        .into_iter()
        .flat_map(|s| {
            let p = args.scale.apply(base(s));
            [(p, false), (p, true)]
        })
        .collect();
    let results: Vec<ExperimentResult> = run_tasks(
        tasks
            .iter()
            .map(|&(p, with_algo)| {
                let chip = chip_for(args);
                move || {
                    let d = p.build();
                    let opts = RunOpts { with_algo, chip, ..Default::default() };
                    run_streaming_bfs(&d, &opts, &p.label())
                }
            })
            .collect(),
        CHIP_SCENARIO_WORKERS,
    );
    println!("\nFigure {figno}: cycles per increment, {size} graph (scale {:?})", args.scale);
    let dir = out_dir(&args.out);
    for (si, sampling) in [Sampling::Edge, Sampling::Snowball].into_iter().enumerate() {
        let ing = &results[2 * si];
        let bfs = &results[2 * si + 1];
        println!("  ({}) {} sampling:", if si == 0 { "a" } else { "b" }, sampling);
        let header = ["Increment", "Streaming Edges", "Streaming Edges with BFS", "ratio"];
        let rows: Vec<Vec<String>> = (0..ing.rows.len())
            .map(|i| {
                vec![
                    (i + 1).to_string(),
                    ing.rows[i].cycles.to_string(),
                    bfs.rows[i].cycles.to_string(),
                    format!("{:.2}", bfs.rows[i].cycles as f64 / ing.rows[i].cycles.max(1) as f64),
                ]
            })
            .collect();
        println!("{}", indent(&format_table(&header, &rows), 4));
        println!(
            "    totals: ingestion {} cycles, with BFS {} cycles ({:.2}x)",
            ing.total_cycles(),
            bfs.total_cycles(),
            bfs.total_cycles() as f64 / ing.total_cycles().max(1) as f64
        );
        let name = format!(
            "fig{figno}_{}.csv",
            if sampling == Sampling::Edge { "edge" } else { "snowball" }
        );
        write_csv(
            &dir.join(&name),
            "increment,edges,ingest_cycles,bfs_cycles",
            (0..ing.rows.len()).map(|i| {
                format!(
                    "{},{},{},{}",
                    i + 1,
                    ing.rows[i].edges,
                    ing.rows[i].cycles,
                    bfs.rows[i].cycles
                )
            }),
        );
        println!("    (csv: {}/{name})", args.out);
    }
}

fn fig6_to_9_all(args: &Args) {
    fig67(args, false);
    fig67(args, true);
    fig89(args, false);
    fig89(args, true);
}

fn indent(s: &str, n: usize) -> String {
    let pad = " ".repeat(n);
    s.lines().map(|l| format!("{pad}{l}")).collect::<Vec<_>>().join("\n")
}

// ---------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------

fn ablate_alloc(args: &Args) {
    eprintln!("[ablate-alloc] vicinity vs random ghost placement, scale {:?}...", args.scale);
    let p = args.scale.apply(GcPreset::v50k(Sampling::Edge));
    let policies = [
        ("vicinity-1", GhostPlacement::Vicinity { max_hops: 1 }),
        ("vicinity-2", GhostPlacement::Vicinity { max_hops: 2 }),
        ("vicinity-4", GhostPlacement::Vicinity { max_hops: 4 }),
        ("random", GhostPlacement::Random),
    ];
    let results: Vec<ExperimentResult> = run_tasks(
        policies
            .iter()
            .map(|&(name, pol)| {
                let p: GcPreset = p;
                let shards = args.jobs;
                move || {
                    let d = p.build();
                    let opts = RunOpts {
                        chip: chip_with_placement(pol).with_shards(shards),
                        rcfg: RpvoConfig::basic(8, 2),
                        ..Default::default()
                    };
                    run_streaming_bfs(&d, &opts, name)
                }
            })
            .collect(),
        CHIP_SCENARIO_WORKERS,
    );
    println!("\nAblation: ghost allocation policy (Fig. 5), {} + BFS", p.label());
    let header = ["Policy", "Cycles", "Energy µJ", "Hops", "Ghosts", "Avg ghost hops"];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let hops: u64 = r.rows.iter().map(|x| x.counters.hops).sum();
            vec![
                r.label.clone(),
                r.total_cycles().to_string(),
                format!("{:.0}", r.total_energy_uj()),
                hops.to_string(),
                r.ghosts.0.to_string(),
                format!("{:.2}", r.ghosts.1),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    let dir = out_dir(&args.out);
    write_csv(
        &dir.join("ablate_alloc.csv"),
        "policy,cycles,energy_uj,hops,ghosts,avg_ghost_hops",
        rows.iter().map(|r| r.join(",")),
    );
}

fn ablate_edgecap(args: &Args) {
    eprintln!("[ablate-edgecap] RPVO edge-capacity sweep, scale {:?}...", args.scale);
    let p = args.scale.apply(GcPreset::v50k(Sampling::Edge));
    let caps = [2usize, 4, 8, 16, 32];
    let results: Vec<ExperimentResult> = run_tasks(
        caps.iter()
            .map(|&cap| {
                let p: GcPreset = p;
                let chip = chip_for(args);
                move || {
                    let d = p.build();
                    let opts =
                        RunOpts { rcfg: RpvoConfig::basic(cap, 2), chip, ..Default::default() };
                    run_streaming_bfs(&d, &opts, &format!("cap={cap}"))
                }
            })
            .collect(),
        CHIP_SCENARIO_WORKERS,
    );
    println!("\nAblation: RPVO inline edge capacity, {} + BFS", p.label());
    let header = ["edge_cap", "Cycles", "Energy µJ", "Ghosts", "Msgs staged"];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let staged: u64 = r.rows.iter().map(|x| x.counters.msgs_staged).sum();
            vec![
                r.label.clone(),
                r.total_cycles().to_string(),
                format!("{:.0}", r.total_energy_uj()),
                r.ghosts.0.to_string(),
                staged.to_string(),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    let dir = out_dir(&args.out);
    write_csv(
        &dir.join("ablate_edgecap.csv"),
        "edge_cap,cycles,energy_uj,ghosts,msgs_staged",
        rows.iter().map(|r| r.join(",")),
    );
}

fn ablate_ghosts(args: &Args) {
    eprintln!("[ablate-ghosts] RPVO ghost-fanout sweep, scale {:?}...", args.scale);
    let p = args.scale.apply(GcPreset::v50k(Sampling::Edge));
    let fanouts = [1usize, 2, 4, 8];
    let results: Vec<ExperimentResult> = run_tasks(
        fanouts
            .iter()
            .map(|&f| {
                let p: GcPreset = p;
                let chip = chip_for(args);
                move || {
                    let d = p.build();
                    let opts =
                        RunOpts { rcfg: RpvoConfig::basic(4, f), chip, ..Default::default() };
                    run_streaming_bfs(&d, &opts, &format!("fanout={f}"))
                }
            })
            .collect(),
        CHIP_SCENARIO_WORKERS,
    );
    println!("\nAblation: RPVO ghost fanout (spill-tree arity), {} + BFS", p.label());
    let header = ["ghost_fanout", "Cycles", "Energy µJ", "Ghosts", "Avg ghost hops"];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.total_cycles().to_string(),
                format!("{:.0}", r.total_energy_uj()),
                r.ghosts.0.to_string(),
                format!("{:.2}", r.ghosts.1),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    let dir = out_dir(&args.out);
    write_csv(
        &dir.join("ablate_ghosts.csv"),
        "ghost_fanout,cycles,energy_uj,ghosts,avg_ghost_hops",
        rows.iter().map(|r| r.join(",")),
    );
}

fn ablate_terminator(args: &Args) {
    eprintln!("[ablate-terminator] quiescence vs Safra token, scale {:?}...", args.scale);
    let p = args.scale.apply(GcPreset::v50k(Sampling::Edge));
    let modes = [
        ("quiescence", diffusive::TerminationMode::Quiescence),
        ("safra-token", diffusive::TerminationMode::SafraToken),
    ];
    let results: Vec<ExperimentResult> = run_tasks(
        modes
            .iter()
            .map(|&(name, mode)| {
                let p: GcPreset = p;
                let chip = chip_for(args);
                move || {
                    let d = p.build();
                    let opts = RunOpts { termination: mode, chip, ..Default::default() };
                    run_streaming_bfs(&d, &opts, name)
                }
            })
            .collect(),
        CHIP_SCENARIO_WORKERS,
    );
    println!("\nAblation: termination detection, {} + BFS (10 increments)", p.label());
    let header = ["Detector", "Cycles", "Energy µJ", "Hops", "Detection overhead"];
    let base_cycles = results[0].total_cycles();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let hops: u64 = r.rows.iter().map(|x| x.counters.hops).sum();
            let overhead = r.total_cycles() as f64 / base_cycles as f64 - 1.0;
            vec![
                r.label.clone(),
                r.total_cycles().to_string(),
                format!("{:.0}", r.total_energy_uj()),
                hops.to_string(),
                format!("{:+.1}%", overhead * 100.0),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    println!(
        "(quiescence is the simulator-level detector the paper uses; Safra's token\n\
         pays real mesh hops and polling cycles to detect the same terminations)"
    );
    let dir = out_dir(&args.out);
    write_csv(
        &dir.join("ablate_terminator.csv"),
        "detector,cycles,energy_uj,hops,overhead",
        rows.iter().map(|r| r.join(",")),
    );
}

fn loadmap(args: &Args) {
    use amcca_sim::{gini, max_mean_ratio, top_k_share};
    use sdgp_core::apps::BfsAlgo;
    use sdgp_core::graph::StreamingGraph;

    eprintln!("[loadmap] per-cell load, Edge vs Snowball, scale {:?}...", args.scale);
    println!("\nLoad distribution across compute cells (ingestion-only, §5's congestion claim):");
    let dir = out_dir(&args.out);
    let mut summary = Vec::new();
    for sampling in [Sampling::Edge, Sampling::Snowball] {
        let p = args.scale.apply(GcPreset::v50k(sampling));
        let d = p.build();
        let mut g = StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(d.n_vertices)
            .chip(chip_for(args))
            .rpvo(RpvoConfig::default())
            .build()
            .unwrap();
        g.set_algo_propagation(false);
        // Stream only the LAST increment after building the prefix, so the
        // measured loads reflect one increment's frontier behaviour.
        for i in 0..d.increments() - 1 {
            g.stream_edges(d.increment(i)).unwrap();
        }
        g.device_mut().chip_mut().reset_cell_loads();
        g.stream_edges(d.increment(d.increments() - 1)).unwrap();
        let loads: Vec<u64> = g.device().chip().cell_loads().iter().map(|l| l.delivered).collect();
        let peaks: Vec<u32> = g.device().chip().cell_loads().iter().map(|l| l.peak_queue).collect();
        // Per-cell storage skew: how many vertex objects and stored edges
        // each cell ended up hosting (degree concentration made visible).
        let mut objects = vec![0u32; loads.len()];
        let mut edges_stored = vec![0u64; loads.len()];
        g.device().chip().for_each_object(|a, o| {
            objects[a.cc as usize] += 1;
            edges_stored[a.cc as usize] += o.edges.len() as u64;
        });
        let peak_queue = *peaks.iter().max().unwrap();
        println!(
            "  {:9}: max/mean {:5.2}  gini {:5.3}  top-1% share {:5.1}%  peak queue {}  \
             max edges/cell {}",
            sampling.to_string(),
            max_mean_ratio(&loads),
            gini(&loads),
            top_k_share(&loads, loads.len().div_ceil(100)) * 100.0,
            peak_queue,
            edges_stored.iter().max().unwrap(),
        );
        summary.push(format!(
            "{},{:.4},{:.4},{:.4},{},{},{}",
            sampling,
            max_mean_ratio(&loads),
            gini(&loads),
            top_k_share(&loads, loads.len().div_ceil(100)),
            peak_queue,
            objects.iter().max().unwrap(),
            edges_stored.iter().max().unwrap(),
        ));
        let name =
            format!("loadmap_{}.csv", if sampling == Sampling::Edge { "edge" } else { "snowball" });
        write_csv(
            &dir.join(&name),
            "cell,delivered,peak_queue,objects,edges_stored",
            loads
                .iter()
                .zip(&peaks)
                .zip(objects.iter().zip(&edges_stored))
                .enumerate()
                .map(|(i, ((d, p), (o, e)))| format!("{i},{d},{p},{o},{e}")),
        );
        println!("    (csv: {}/{name})", args.out);
    }
    write_csv(
        &dir.join("loadmap.csv"),
        "sampling,max_mean,gini,top1_share,peak_queue,max_objects,max_edges_stored",
        summary,
    );
    println!("  (summary csv: {}/loadmap.csv)", args.out);
    println!(
        "  (Snowball's final increment concentrates inserts on frontier vertices,\n\
         raising skew vs the uniformly spread Edge sampling)"
    );
}

// ---------------------------------------------------------------------
// Skewed-graph scenario + rhizome ablation (arXiv:2402.06086).
// ---------------------------------------------------------------------

/// Promotion threshold for the skew workloads: a hub is any vertex whose
/// streamed degree (both endpoints counted) exceeds four mean degrees.
/// Derived from the dataset itself so every `--scale` promotes the same
/// *fraction* of the graph.
fn skew_threshold(stats: &gc_datasets::DegreeStats) -> usize {
    ((stats.mean * 4.0).ceil() as usize).max(16)
}

fn skew_preset(args: &Args) -> SkewPreset {
    SkewPreset::v50k().scaled_down(args.scale.factor())
}

fn skew(args: &Args) {
    eprintln!("[skew] RMAT power-law streaming + rhizome promotion, scale {:?}...", args.scale);
    let p = skew_preset(args);
    // Generate once; the schedule is a permutation of the edge list, so the
    // degree stats can be read off the built dataset directly.
    let d = p.build();
    let stats = gc_datasets::degree_stats(d.n_vertices, d.all_edges());
    let threshold = skew_threshold(&stats);
    let rcfg = RpvoConfig::default().with_rhizomes(threshold, 4);
    let results: Vec<ExperimentResult> = run_tasks(
        [false, true]
            .iter()
            .map(|&with_algo| {
                let chip = chip_for(args);
                let d = &d;
                let label = p.label();
                move || {
                    let opts = RunOpts { with_algo, rcfg, chip, ..Default::default() };
                    run_streaming_bfs(d, &opts, &label)
                }
            })
            .collect(),
        CHIP_SCENARIO_WORKERS,
    );
    let (ing, bfs) = (&results[0], &results[1]);
    println!(
        "\nSkewed-graph streaming: {} (degree max {}, mean {:.1}, gini {:.3}, top-1% {:.1}%)",
        p.label(),
        stats.max,
        stats.mean,
        stats.gini,
        stats.top1_share * 100.0
    );
    println!(
        "  rhizomes: threshold {} touches, K=4 → {} vertices promoted, {} extra roots",
        threshold, ing.rhizomes.0, ing.rhizomes.1
    );
    let header = ["Increment", "Edges", "Ingest cycles", "Ingest+BFS cycles", "ratio"];
    let rows: Vec<Vec<String>> = (0..ing.rows.len())
        .map(|i| {
            vec![
                (i + 1).to_string(),
                ing.rows[i].edges.to_string(),
                ing.rows[i].cycles.to_string(),
                bfs.rows[i].cycles.to_string(),
                format!("{:.2}", bfs.rows[i].cycles as f64 / ing.rows[i].cycles.max(1) as f64),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    println!(
        "  totals: ingestion {} cycles, with BFS {} cycles",
        ing.total_cycles(),
        bfs.total_cycles()
    );
    let dir = out_dir(&args.out);
    write_csv(
        &dir.join("skew.csv"),
        "increment,edges,ingest_cycles,bfs_cycles,promoted,extra_roots",
        (0..ing.rows.len()).map(|i| {
            // promoted/extra_roots are cumulative as of this increment —
            // the promotion timeline across the stream.
            format!(
                "{},{},{},{},{},{}",
                i + 1,
                ing.rows[i].edges,
                ing.rows[i].cycles,
                bfs.rows[i].cycles,
                ing.rows[i].rhizomes.0,
                ing.rows[i].rhizomes.1
            )
        }),
    );
    println!("  (csv: {}/skew.csv)", args.out);
}

fn ablate_rhizomes(args: &Args) {
    eprintln!("[ablate-rhizomes] rhizome root-count sweep, scale {:?}...", args.scale);
    let p = skew_preset(args);
    let d = p.build();
    let stats = gc_datasets::degree_stats(d.n_vertices, d.all_edges());
    let threshold = skew_threshold(&stats);
    let ks = [1usize, 2, 4, 8];
    let results: Vec<ExperimentResult> = run_tasks(
        ks.iter()
            .flat_map(|&k| [(k, false), (k, true)])
            .map(|(k, with_algo)| {
                let chip = chip_for(args);
                let d = &d;
                move || {
                    // K = 1 is the single-root reference (promotion off).
                    let rcfg = if k == 1 {
                        RpvoConfig::default()
                    } else {
                        RpvoConfig::default().with_rhizomes(threshold, k)
                    };
                    let opts = RunOpts { with_algo, rcfg, chip, ..Default::default() };
                    run_streaming_bfs(d, &opts, &format!("K={k}"))
                }
            })
            .collect(),
        CHIP_SCENARIO_WORKERS,
    );
    println!(
        "\nAblation: rhizome roots per hub (threshold {} touches), {} streaming",
        threshold,
        p.label()
    );
    let header =
        ["K", "Promoted", "Extra roots", "Ingest cycles", "Ingest µJ", "+BFS cycles", "+BFS µJ"];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (i, &k) in ks.iter().enumerate() {
        let ing = &results[2 * i];
        let bfs = &results[2 * i + 1];
        assert!(!ing.with_algo && bfs.with_algo);
        rows.push(vec![
            k.to_string(),
            ing.rhizomes.0.to_string(),
            ing.rhizomes.1.to_string(),
            ing.total_cycles().to_string(),
            format!("{:.0}", ing.total_energy_uj()),
            bfs.total_cycles().to_string(),
            format!("{:.0}", bfs.total_energy_uj()),
        ]);
        csv.push(format!(
            "{},{},{},{},{:.1},{},{:.1}",
            k,
            ing.rhizomes.0,
            ing.rhizomes.1,
            ing.total_cycles(),
            ing.total_energy_uj(),
            bfs.total_cycles(),
            bfs.total_energy_uj()
        ));
    }
    println!("{}", format_table(&header, &rows));
    let k1 = results[0].total_cycles();
    let k4 = results[4].total_cycles();
    println!(
        "  ingestion cycles K=4 vs K=1: {k4} vs {k1} ({:+.1}%)",
        (k4 as f64 / k1.max(1) as f64 - 1.0) * 100.0
    );
    let dir = out_dir(&args.out);
    write_csv(
        &dir.join("ablate_rhizomes.csv"),
        "k,promoted,extra_roots,ingest_cycles,ingest_uj,bfs_cycles,bfs_uj",
        csv,
    );
    println!("  (csv: {}/ablate_rhizomes.csv)", args.out);
}

// ---------------------------------------------------------------------
// Sliding-window churn: deletions, repair diffusions, rhizome demotion.
// ---------------------------------------------------------------------

fn churn(args: &Args) {
    let mode_name = |m: RepairMode| match m {
        RepairMode::Full => "full",
        RepairMode::Targeted => "targeted",
    };
    eprintln!(
        "[churn] sliding-window mutation stream ({} repair), scale {:?}...",
        mode_name(args.repair),
        args.scale
    );
    let p = ChurnPreset::v50k().scaled_down(args.scale.factor());
    let c = p.build();
    // Thresholds are derived from the *peak window* (the live graph at its
    // largest), so hubs promote while the window is full and demote as the
    // drain cools them below the threshold.
    let peak = c.live_after(p.batches - 1);
    let stats = gc_datasets::degree_stats(c.n_vertices, &peak);
    let threshold = skew_threshold(&stats);
    let rcfg = RpvoConfig::default().with_rhizomes(threshold, 4);
    let results: Vec<amcca_bench::ChurnExperiment> = run_tasks(
        [false, true]
            .iter()
            .map(|&with_algo| {
                let chip = chip_for(args);
                let c = &c;
                let label = p.label();
                let repair = args.repair;
                move || {
                    let opts = RunOpts { with_algo, rcfg, chip, repair, ..Default::default() };
                    // The BFS run is oracle-checked against a from-scratch
                    // rebuild over the surviving edge set after EVERY batch.
                    run_streaming_churn(c, &opts, &label)
                }
            })
            .collect(),
        CHIP_SCENARIO_WORKERS,
    );
    let (ing, bfs) = (&results[0], &results[1]);
    println!(
        "\nSliding-window churn: {} ({} insert batches of {}, window {}, drained; \
         peak-window degree max {}, mean {:.1}; {} repair)",
        ing.label,
        p.batches,
        human_count(p.adds_per_batch as u64),
        p.window,
        stats.max,
        stats.mean,
        mode_name(args.repair)
    );
    println!(
        "  rhizomes: threshold {} touches, K=4; BFS states re-verified against a \
         from-scratch rebuild after every batch",
        threshold
    );
    let header = [
        "Batch",
        "Adds",
        "Dels",
        "Live",
        "Ingest cycles",
        "Ingest+BFS cycles",
        "Reseed trig",
        "Roots+",
        "Demoted",
    ];
    let rows: Vec<Vec<String>> = (0..ing.rows.len())
        .map(|i| {
            vec![
                (i + 1).to_string(),
                ing.rows[i].adds.to_string(),
                ing.rows[i].dels.to_string(),
                ing.rows[i].live.to_string(),
                ing.rows[i].cycles.to_string(),
                bfs.rows[i].cycles.to_string(),
                bfs.rows[i].reseed_triggers.to_string(),
                ing.rows[i].extra_roots.to_string(),
                ing.rows[i].demoted.to_string(),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));
    let last = ing.rows.last().unwrap();
    println!(
        "  end of stream: {} live edges, {} promotions, {} demotions, {} extra roots left",
        last.live, last.promoted, last.demoted, last.extra_roots
    );
    let dir = out_dir(&args.out);
    write_csv(
        &dir.join("churn.csv"),
        "batch,adds,dels,live,ingest_cycles,ingest_uj,bfs_cycles,bfs_uj,bfs_us,repair_cycles,reseed_triggers,promoted,extra_roots,demoted",
        (0..ing.rows.len()).map(|i| {
            format!(
                "{},{},{},{},{},{:.1},{},{:.1},{:.1},{},{},{},{},{}",
                i + 1,
                ing.rows[i].adds,
                ing.rows[i].dels,
                ing.rows[i].live,
                ing.rows[i].cycles,
                ing.rows[i].energy_uj,
                bfs.rows[i].cycles,
                bfs.rows[i].energy_uj,
                bfs.rows[i].time_us,
                bfs.rows[i].repair_cycles,
                bfs.rows[i].reseed_triggers,
                ing.rows[i].promoted,
                ing.rows[i].extra_roots,
                ing.rows[i].demoted
            )
        }),
    );
    println!("  (csv: {}/churn.csv)", args.out);
    // Every value below is simulation-derived (the determinism gate diffs
    // this file across `--jobs` settings).
    let mut art = BenchArtifact::new("churn", args.scale);
    art.push("repair_mode", mode_name(args.repair))
        .push("batches", ing.rows.len())
        .push("window", p.window)
        .push("adds_total", ing.rows.iter().map(|r| r.adds as u64).sum::<u64>())
        .push("dels_total", ing.rows.iter().map(|r| r.dels as u64).sum::<u64>())
        .push("live_edges_final", last.live)
        .push("ingest_cycles_total", ing.rows.iter().map(|r| r.cycles).sum::<u64>())
        .push("ingest_bfs_cycles_total", bfs.rows.iter().map(|r| r.cycles).sum::<u64>())
        .push("repair_cycles_total", bfs.rows.iter().map(|r| r.repair_cycles).sum::<u64>())
        .push("reseed_triggers_total", bfs.rows.iter().map(|r| r.reseed_triggers).sum::<u64>())
        .push("promoted_final", last.promoted)
        .push("demoted_final", last.demoted)
        .push("extra_roots_final", last.extra_roots)
        .push("oracle_checked_every_batch", true);
    art.write(&dir);
    println!("  (json: {}/BENCH_churn.json)", args.out);
    // The headline BFS run already measured (window, args.repair) under the
    // ablation's exact options — reuse it instead of re-simulating.
    ablate_repair(args, &rcfg, &c, bfs);
}

/// Full-vs-targeted repair ablation: run the same churn schedule under both
/// reseed scopings (bit-identical fixpoints — `run_streaming_churn`
/// oracle-checks every batch), then a small-batch/large-graph schedule where
/// the invalidated region is tiny relative to the graph. Shows targeted
/// reseed trigger counts (and repair-phase work) tracking the batch size
/// while the full wave pays O(n) per delete-bearing batch. `headline` is
/// the window schedule's already-measured run under `args.repair` and the
/// same options; only the three missing experiments are simulated.
fn ablate_repair(
    args: &Args,
    rcfg: &RpvoConfig,
    window: &gc_datasets::ChurnStream,
    headline: &amcca_bench::ChurnExperiment,
) {
    eprintln!("[churn] full-vs-targeted repair ablation, scale {:?}...", args.scale);
    // Small batches on the same graph size: 1/32 of the preset's batch
    // volume, single-batch window, no drain — every batch deletes a sliver
    // of a graph that stays large.
    let p = ChurnPreset::v50k().scaled_down(args.scale.factor());
    let small = gc_datasets::generate_churn(&gc_datasets::ChurnParams {
        n_vertices: p.n_vertices,
        batches: 6,
        adds_per_batch: (p.adds_per_batch / 32).max(8),
        window: 1,
        drain: false,
        updates_per_batch: 0,
        order: Sampling::Edge,
        labels: 0,
        seed: p.seed,
    });
    let other_mode = match args.repair {
        RepairMode::Full => RepairMode::Targeted,
        RepairMode::Targeted => RepairMode::Full,
    };
    let jobs: Vec<(&str, &gc_datasets::ChurnStream, RepairMode)> = vec![
        ("window", window, other_mode),
        ("smallbatch", &small, RepairMode::Full),
        ("smallbatch", &small, RepairMode::Targeted),
    ];
    let runs: Vec<amcca_bench::ChurnExperiment> = run_tasks(
        jobs.into_iter()
            .map(|(name, c, repair)| {
                let chip = chip_for(args);
                let rcfg = *rcfg;
                move || {
                    let opts = RunOpts { rcfg, chip, repair, ..Default::default() };
                    run_streaming_churn(c, &opts, name)
                }
            })
            .collect(),
        CHIP_SCENARIO_WORKERS,
    );
    let (window_full, window_targeted) = match args.repair {
        RepairMode::Full => (headline, &runs[0]),
        RepairMode::Targeted => (&runs[0], headline),
    };
    let schedules: [(&str, &gc_datasets::ChurnStream); 2] =
        [("window", window), ("smallbatch", &small)];
    let pairs: [(&amcca_bench::ChurnExperiment, &amcca_bench::ChurnExperiment); 2] =
        [(window_full, window_targeted), (&runs[1], &runs[2])];
    println!(
        "\nAblation: repair scoping (reseed triggers / repair work, summed over batches;\n\
         instrs measure the wave's work — cycles only its depth)"
    );
    let header = [
        "Schedule",
        "n",
        "Full trig",
        "Targeted trig",
        "Full repair instrs",
        "Targeted repair instrs",
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (si, &(name, c)) in schedules.iter().enumerate() {
        let (full, targeted) = pairs[si];
        let sum = |e: &amcca_bench::ChurnExperiment, f: fn(&amcca_bench::ChurnRow) -> u64| {
            e.rows.iter().map(f).sum::<u64>()
        };
        rows.push(vec![
            name.to_string(),
            c.n_vertices.to_string(),
            sum(full, |r| r.reseed_triggers).to_string(),
            sum(targeted, |r| r.reseed_triggers).to_string(),
            sum(full, |r| r.repair_instrs).to_string(),
            sum(targeted, |r| r.repair_instrs).to_string(),
        ]);
        for i in 0..full.rows.len() {
            csv.push(format!(
                "{},{},{},{},{},{},{},{},{},{},{},{}",
                name,
                i + 1,
                c.n_vertices,
                full.rows[i].dels,
                full.rows[i].live,
                full.rows[i].reseed_triggers,
                targeted.rows[i].reseed_triggers,
                full.rows[i].repair_instrs,
                targeted.rows[i].repair_instrs,
                full.rows[i].repair_cycles,
                targeted.rows[i].repair_cycles,
                targeted.rows[i].cycles,
            ));
        }
    }
    println!("{}", format_table(&header, &rows));
    println!(
        "  (both modes rebuild bit-identical fixpoints — every batch above was\n\
         oracle-checked; targeted triggers track the invalidated region, full pays n)"
    );
    let dir = out_dir(&args.out);
    write_csv(
        &dir.join("churn_repair.csv"),
        "schedule,batch,n,dels,live,full_triggers,targeted_triggers,full_repair_instrs,targeted_repair_instrs,full_repair_cycles,targeted_repair_cycles,targeted_total_cycles",
        csv,
    );
    println!("  (csv: {}/churn_repair.csv)", args.out);
}

// ---------------------------------------------------------------------
// Serving mode: always-on ingestion, admission control, crash recovery.
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Load balancing: hot-column churn, stealing + migration on vs off.
// ---------------------------------------------------------------------

/// One `paper balance` measurement: the hot-column schedule streamed once
/// at one shard count, with both balancing mechanisms on or off together.
struct BalanceRun {
    k: usize,
    balanced: bool,
    /// Per-batch simulated cycles. For a fixed balancing setting these are
    /// identical at every shard count (asserted by the scenario).
    cycles: Vec<u64>,
    /// max/mean of per-band busy work attributed to the *executing* band;
    /// equals the owner-band ratio when stealing is off.
    exec_imb: f64,
    /// Rows executed by a non-owner band.
    steal_rows: u64,
    /// Hot objects the host-side rebalancer moved between increments.
    migrations: u64,
    /// Host wall-clock (printed, never written to the artifact).
    wall_ms: f64,
}

/// Hot-column churn for `paper balance`: every batch fans edges out of hub
/// vertices that all sit in mesh column 0 under round-robin placement
/// (vids ≡ 0 mod the mesh width), with a two-batch sliding window of
/// deletes, so one band owns far more active rows than the rest of the
/// chip unless balancing spreads the load.
fn balance_schedule(n: u32, x: u32, batches: u32) -> Vec<Vec<sdgp_core::graph::GraphMutation>> {
    use sdgp_core::graph::GraphMutation::{AddEdge, DelEdge};
    const HUBS: u32 = 8;
    const FAN: u32 = 48;
    let hub_slots = n / x;
    let mut added: Vec<Vec<(u32, u32, u32)>> = Vec::with_capacity(batches as usize);
    let mut out = Vec::with_capacity(batches as usize);
    for b in 0..batches {
        let mut muts = Vec::new();
        let mut batch_edges = Vec::new();
        for h in 0..HUBS {
            let hub = ((b * HUBS + h) % hub_slots) * x;
            for j in 0..FAN {
                let t = (hub + 1 + (j * 97 + b * 131 + h * 17) % (n - 1)) % n;
                if t == hub {
                    continue;
                }
                let e = (hub, t, 1 + j % 7);
                batch_edges.push(e);
                muts.push(AddEdge(e));
            }
        }
        if b >= 2 {
            muts.extend(added[b as usize - 2].iter().map(|&e| DelEdge(e)));
        }
        added.push(batch_edges);
        out.push(muts);
    }
    out
}

/// Stream the schedule once. `balanced` turns on both mechanisms: the
/// cycle-barrier steal scheduler inside the sharded engine and host-side
/// hot-object migration between increments. Adaptive engine selection is
/// off so every cycle runs sharded and the diagnostics cover the full run.
fn balance_run(
    n: u32,
    sched: &[Vec<sdgp_core::graph::GraphMutation>],
    k: usize,
    balanced: bool,
) -> BalanceRun {
    use sdgp_core::apps::BfsAlgo;
    use sdgp_core::graph::StreamingGraph;

    let chip = ChipConfig { adaptive_shards: false, ..ChipConfig::default() }
        .with_shards(k)
        .with_work_stealing(balanced);
    let start = std::time::Instant::now();
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(n)
        .chip(chip)
        .rpvo(RpvoConfig::default())
        .migrate_hot(balanced)
        .build()
        .expect("graph construction");
    let mut cycles = Vec::with_capacity(sched.len());
    let mut migrations = 0;
    for b in sched {
        let r = g.stream_increment(b).expect("balance batch");
        cycles.push(r.cycles);
        migrations += r.migrations;
    }
    g.check_mirror_consistency().expect("mirrors agree after the schedule");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let chip = g.device().chip();
    BalanceRun {
        k,
        balanced,
        cycles,
        exec_imb: amcca_sim::max_mean_ratio(chip.exec_active()),
        steal_rows: chip.steal_rows(),
        migrations,
        wall_ms,
    }
}

/// The `paper balance` scenario: the hot-column schedule at shard counts
/// 1/2/4/8 with balancing on vs off, asserting that per-batch cycle counts
/// are shard-count-independent under both settings, then reporting the
/// busy-cycle imbalance drop. Emits `BENCH_balance.json` (simulation-only
/// values — the determinism gate diffs it across `--jobs`).
fn balance(args: &Args) {
    const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
    const BATCHES: u32 = 8;

    eprintln!(
        "[balance] hot-column churn, balancing on vs off, shards 1/2/4/8, scale {:?}...",
        args.scale
    );
    let chip = ChipConfig::default();
    let n = (50_000 / args.scale.factor()).max(chip.dims.x as u32 * 8);
    let sched = balance_schedule(n, chip.dims.x as u32, BATCHES);
    let runs: Vec<BalanceRun> = run_tasks(
        [false, true]
            .iter()
            .flat_map(|&bal| SHARD_COUNTS.iter().map(move |&k| (bal, k)))
            .map(|(bal, k)| {
                let sched = &sched;
                move || balance_run(n, sched, k, bal)
            })
            .collect(),
        CHIP_SCENARIO_WORKERS,
    );
    // The load balancers must be simulation-invisible: same per-batch
    // cycles and the same migration decisions at every shard count.
    for group in runs.chunks(SHARD_COUNTS.len()) {
        for r in &group[1..] {
            assert_eq!(r.cycles, group[0].cycles, "cycles diverged at {} shards", r.k);
            assert_eq!(r.migrations, group[0].migrations, "migrations diverged at {} shards", r.k);
        }
    }

    println!(
        "\nLoad balancing: {n} vertices, {BATCHES} hot-column batches, \
         work stealing + hot-object migration vs neither"
    );
    let header = [
        "Shards",
        "Balancing",
        "Cycles",
        "Busy imbalance",
        "Stolen rows",
        "Migrations",
        "Wall (ms)",
    ];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                if r.balanced { "on" } else { "off" }.to_string(),
                r.cycles.iter().sum::<u64>().to_string(),
                format!("{:.3}", r.exec_imb),
                r.steal_rows.to_string(),
                r.migrations.to_string(),
                format!("{:.1}", r.wall_ms),
            ]
        })
        .collect();
    println!("{}", format_table(&header, &rows));

    let at = |bal: bool, k: usize| {
        runs.iter().find(|r| r.balanced == bal && r.k == k).expect("run present")
    };
    let (off4, on4) = (at(false, 4), at(true, 4));
    let drop_pct = 100.0 * (off4.exec_imb - on4.exec_imb) / off4.exec_imb;
    println!(
        "  at 4 shards: busy-cycle imbalance {:.3} -> {:.3} ({:.1}% lower) with balancing on",
        off4.exec_imb, on4.exec_imb, drop_pct
    );

    let dir = out_dir(&args.out);
    let mut art = BenchArtifact::new("balance", args.scale);
    art.push("n_vertices", n)
        .push("batches", BATCHES)
        .push("shard_counts", "1,2,4,8")
        .push("cycles_total_off", at(false, 1).cycles.iter().sum::<u64>())
        .push("cycles_total_on", at(true, 1).cycles.iter().sum::<u64>())
        .push("migrations_off", at(false, 1).migrations)
        .push("migrations_on", at(true, 1).migrations)
        .push("cycles_identical_across_shards", true);
    for &k in &SHARD_COUNTS {
        art.push(&format!("imbalance_off_k{k}"), at(false, k).exec_imb)
            .push(&format!("imbalance_on_k{k}"), at(true, k).exec_imb)
            .push(&format!("steal_rows_on_k{k}"), at(true, k).steal_rows);
    }
    art.push("imbalance_drop_pct_k4", drop_pct);
    art.write(&dir);
    println!("  (json: {}/BENCH_balance.json)", args.out);
}

/// The `paper serve` scenario: boot the ingestion server fresh, drive it
/// with concurrent churn clients over disjoint vertex slices (disjoint
/// pairs keep concurrent submissions commutative), checkpoint, push a
/// short write-ahead tail, kill the server mid-flight, and time the
/// recovery. Self-checking: the recovered fixpoint must be bit-identical
/// to the pre-crash query answer *and* to an offline single-writer replay
/// of the surviving edges, and recovery must replay only the WAL tail.
/// Emits `BENCH_serve.json`.
fn serve(args: &Args) {
    use std::time::Instant;

    use amcca_serve::server::{IngestCore, ServeConfig, Server};
    use amcca_serve::{Client, Submission};
    use gc_datasets::{generate_churn, ChurnParams};
    use sdgp_core::apps::BfsAlgo;
    use sdgp_core::graph::{StreamEdge, StreamingGraph};

    const CLIENTS: u32 = 4;
    const CHECKPOINT_EVERY: u64 = 5;
    const TAIL_BATCHES: usize = 3;

    eprintln!("[serve] {CLIENTS} churn clients over loopback TCP, scale {:?}...", args.scale);
    let base = ChurnPreset::v50k().scaled_down(args.scale.factor());
    let span = base.n_vertices;
    // Reserve a small id range past the client slices for the post-
    // checkpoint tail traffic.
    let n_total = span * CLIENTS + 16;
    let adds_per_batch = (base.adds_per_batch / CLIENTS as usize).max(64);
    let schedules: Vec<gc_datasets::ChurnStream> = (0..CLIENTS)
        .map(|c| {
            generate_churn(&ChurnParams {
                n_vertices: span,
                batches: base.batches,
                adds_per_batch,
                window: base.window,
                drain: false,
                updates_per_batch: (adds_per_batch / 8).max(4),
                order: Sampling::Edge,
                labels: 0,
                seed: base.seed + c as u64,
            })
        })
        .collect();

    // `--obs` turns on the observability layer: one handle is shared by the
    // graph, the server, and the recovery boot, so the JSONL trace and the
    // final snapshot cover the whole lifecycle (ingest, checkpoint, crash,
    // replay). Without the flag the handle is inert (no clock reads).
    let obs = match &args.obs {
        Some(p) => {
            let path = std::path::Path::new(p);
            if let Some(parent) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).expect("create --obs parent dir");
            }
            amcca_obs::Obs::with_trace(path).expect("open --obs trace")
        }
        None => amcca_obs::Obs::disabled(),
    };
    let builder = || {
        StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(n_total)
            .chip(chip_for(args))
            .rpvo(RpvoConfig::default())
            .repair(args.repair)
            .obs(obs.clone())
    };
    let dir = out_dir(&args.out);
    let store = dir.join("serve_store");
    let _ = std::fs::remove_dir_all(&store);
    let (core, boot) =
        IngestCore::boot(builder(), &store, CHECKPOINT_EVERY).expect("fresh server boot");
    assert!(!boot.recovered, "store directory was just wiped");
    let server = Server::start_loopback(core, ServeConfig::default()).expect("server start");
    let addr = server.addr();

    // Ingestion phase: each client streams its slice-shifted churn
    // schedule, one blocking submission per batch, measuring the full
    // round trip (admission + coalescing + the increment converging).
    let ingest_start = Instant::now();
    let per_client: Vec<(Vec<f64>, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|cid| {
                let schedule = &schedules[cid as usize];
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("client connect");
                    let mut latencies_ms = Vec::new();
                    let (mut muts, mut retries) = (0u64, 0u64);
                    for i in 0..schedule.len() {
                        let batch = schedule.batch(i).shifted(cid * span).to_mutations();
                        loop {
                            let t = Instant::now();
                            match c.submit(&batch).expect("submit") {
                                Submission::Applied => {
                                    latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                                    muts += batch.len() as u64;
                                    break;
                                }
                                Submission::RetryAfter(backoff) => {
                                    retries += 1;
                                    std::thread::sleep(backoff);
                                }
                            }
                        }
                    }
                    (latencies_ms, muts, retries)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let ingest_secs = ingest_start.elapsed().as_secs_f64();
    let submitted_muts: u64 = per_client.iter().map(|r| r.1).sum();
    let admission_retries: u64 = per_client.iter().map(|r| r.2).sum();
    let mut latencies: Vec<f64> = per_client.into_iter().flat_map(|r| r.0).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q).round() as usize];

    // Checkpoint, then a short tail so the crash has something to replay.
    let mut ctl = Client::connect(addr).expect("control client");
    ctl.checkpoint().expect("checkpoint request");
    let tail_base = span * CLIENTS;
    for i in 0..TAIL_BATCHES as u32 {
        ctl.submit_retrying(
            &[sdgp_core::graph::GraphMutation::AddEdge((tail_base + i, tail_base + i + 1, 1))],
            100,
        )
        .expect("tail submit");
    }
    let states_before = ctl.query().expect("pre-crash query");
    let stats_before = ctl.stats().expect("pre-crash stats");
    // Exercise the live observability frame over TCP: the server answers
    // with the same registry the final in-process snapshot is taken from.
    let live_snap = ctl.obs_stats().expect("obs stats frame");
    if args.obs.is_some() {
        assert!(live_snap.counter("wal.appends") > 0, "live snapshot saw WAL appends");
        assert!(
            live_snap.hist("span.wal_append_ns").is_some_and(|h| h.count > 0),
            "live snapshot carries the WAL-fsync latency histogram"
        );
    }
    ctl.kill().expect("kill");
    let report = server.join();
    assert!(report.crashed, "kill must end the run as a crash");

    // Timed recovery: checkpoint restore + tail-only WAL replay.
    let recover_start = Instant::now();
    let (recovered, reboot) =
        IngestCore::boot(builder(), &store, CHECKPOINT_EVERY).expect("recovery boot");
    let recovery_ms = recover_start.elapsed().as_secs_f64() * 1e3;
    assert!(reboot.recovered, "checkpoint found");
    assert_eq!(reboot.tail_batches, TAIL_BATCHES, "replay exactly the post-checkpoint tail");
    assert!(
        (reboot.tail_batches as u64) < stats_before.batches,
        "tail-only replay, not the whole history"
    );
    let states_after = recovered.sync_values();
    assert_eq!(states_after, states_before, "recovered fixpoint is bit-identical");

    // Offline oracle: a single-writer replay of every surviving edge must
    // reach the same fixpoint (the live multiset determines it).
    let mut surviving: Vec<StreamEdge> = Vec::new();
    for (cid, schedule) in schedules.iter().enumerate() {
        let b = cid as u32 * span;
        surviving.extend(
            schedule.live_after(schedule.len() - 1).iter().map(|&(u, v, w)| (u + b, v + b, w)),
        );
    }
    surviving.extend((0..TAIL_BATCHES as u32).map(|i| (tail_base + i, tail_base + i + 1, 1)));
    let mut offline = builder().build().expect("oracle graph");
    offline.stream_edges(&surviving).expect("oracle replay");
    assert_eq!(offline.sync_values(), states_before, "offline single-writer oracle agrees");

    let total_batches: usize =
        schedules.iter().map(gc_datasets::ChurnStream::len).sum::<usize>() + TAIL_BATCHES;
    println!(
        "\nServing mode: {CLIENTS} clients x {} batches + {TAIL_BATCHES} tail \
         (slices of {span} vertices, {} live edges at kill)",
        base.batches, stats_before.live_edges
    );
    let header = ["Metric", "Value"];
    let rows = vec![
        vec!["mutations submitted".into(), submitted_muts.to_string()],
        vec!["mutations/sec".into(), format!("{:.0}", submitted_muts as f64 / ingest_secs)],
        vec!["submit p50 (ms)".into(), format!("{:.2}", pct(0.50))],
        vec!["submit p99 (ms)".into(), format!("{:.2}", pct(0.99))],
        vec!["increments applied".into(), stats_before.batches.to_string()],
        vec!["admission retries".into(), admission_retries.to_string()],
        vec!["checkpoints".into(), stats_before.checkpoints.to_string()],
        vec!["checkpoint bytes".into(), stats_before.last_checkpoint_bytes.to_string()],
        vec!["WAL tail replayed".into(), reboot.tail_batches.to_string()],
        vec!["recovery (ms)".into(), format!("{recovery_ms:.1}")],
    ];
    println!("{}", format_table(&header, &rows));
    println!(
        "  recovered fixpoint bit-identical to pre-crash query and offline oracle \
         ({} of {} batches replayed)",
        reboot.tail_batches, total_batches
    );

    let mut art = BenchArtifact::new("serve", args.scale);
    art.push("clients", CLIENTS)
        .push("batches_submitted", total_batches)
        .push("mutations_submitted", submitted_muts)
        .push("mutations_per_sec", submitted_muts as f64 / ingest_secs)
        .push("submit_p50_ms", pct(0.50))
        .push("submit_p99_ms", pct(0.99))
        .push("increments_applied", stats_before.batches)
        .push("admission_retries", admission_retries)
        .push("admission_rejected", report.stats.rejected)
        .push("checkpoints", stats_before.checkpoints)
        .push("checkpoint_bytes", stats_before.last_checkpoint_bytes)
        .push("wal_tail_batches_replayed", reboot.tail_batches)
        .push("recovery_ms", recovery_ms)
        .push("recovered_fixpoint_bit_identical", true);
    art.write(&dir);
    println!("  (json: {}/BENCH_serve.json)", args.out);

    if let Some(trace_path) = &args.obs {
        obs.flush().expect("flush obs trace");
        let snap = obs.snapshot();
        // The run must have fed the two headline histograms: WAL fsync
        // latency and the structural increment phase.
        for h in ["span.wal_append_ns", "span.structural_ns"] {
            assert!(
                snap.hist(h).is_some_and(|s| s.count > 0),
                "obs snapshot is missing samples in {h}"
            );
        }
        let snap_path = std::path::Path::new(trace_path).with_extension("metrics.json");
        std::fs::write(&snap_path, snap.to_json()).expect("write obs metrics snapshot");
        println!("  (obs: trace {trace_path}, snapshot {})", snap_path.display());
    }

    // The store is scratch state for the crash/recover exercise; leaving
    // its checkpoint + WAL under `--out` would dirty the determinism
    // gate's `diff -r` across runs. Kept on failure (every check above
    // panics before this line) for post-mortems.
    std::fs::remove_dir_all(&store).expect("remove serve_store");
}

// ---------------------------------------------------------------------
// Standing queries: label-constrained path queries over the churn stream.
// ---------------------------------------------------------------------

/// The `paper queries` scenario: standing label-constrained path queries
/// maintained through labelled sliding-window churn. A panel of patterns is
/// registered up front, the schedule streams batch by batch, and after
/// EVERY batch each query's maintained result set is checked against a
/// from-scratch product-automaton recompute over the surviving labelled
/// edge set. A query-free twin of the same schedule measures the
/// maintenance overhead. Emits `queries.csv` and `BENCH_queries.json`.
fn queries(args: &Args) {
    use gc_datasets::{generate_churn, ChurnParams};
    use sdgp_core::apps::BfsAlgo;
    use sdgp_core::graph::StreamingGraph;
    use sdgp_core::oracle_results_multi;

    /// The standing panel: closures over the 3-letter alphabet the schedule
    /// labels its inserts from.
    const PANEL: [(&str, u32); 3] = [("a.b*.c", 0), ("c+", 0), ("a?.b.c*", 1)];
    const LABELS: u8 = 3;

    eprintln!("[queries] standing path queries over labelled churn, scale {:?}...", args.scale);
    let p = ChurnPreset::v50k().scaled_down(args.scale.factor());
    let churn = generate_churn(&ChurnParams {
        n_vertices: p.n_vertices,
        batches: p.batches,
        adds_per_batch: p.adds_per_batch,
        window: p.window,
        drain: true,
        updates_per_batch: (p.adds_per_batch / 8).max(4),
        order: Sampling::Edge,
        labels: LABELS,
        seed: p.seed,
    });
    let build = || {
        StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(churn.n_vertices)
            .chip(chip_for(args))
            .rpvo(RpvoConfig::default())
            .repair(args.repair)
            .build()
            .expect("graph construction")
    };
    let mut with_queries = build();
    for (pattern, source) in PANEL {
        with_queries.register_query(pattern, source).expect("panel pattern compiles");
    }
    let mut baseline = build();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let (mut q_cycles, mut b_cycles) = (0u64, 0u64);
    for i in 0..churn.len() {
        let b = churn.batch(i);
        let muts = b.to_mutations();
        let rq = with_queries.stream_increment(&muts).expect("queried batch run");
        let rb = baseline.stream_increment(&muts).expect("baseline batch run");
        q_cycles += rq.cycles;
        b_cycles += rb.cycles;
        // Per-batch oracle check: the maintained result sets equal a
        // from-scratch recompute over the surviving labelled window.
        let live: Vec<(u32, u32, u8)> =
            churn.live_labeled_after(i).iter().map(|&((u, v, _), label)| (u, v, label)).collect();
        let mut matches = Vec::with_capacity(PANEL.len());
        for (qid, q) in with_queries.registered_queries().iter().enumerate() {
            let want = oracle_results_multi(churn.n_vertices, &live, &q.dfa, &q.sources);
            let got = with_queries.query_results(qid as u32);
            assert_eq!(got, want, "batch {i}: query {qid} ({:?}) vs recompute", q.pattern);
            matches.push(got.len());
        }
        rows.push((b.adds.len(), b.dels.len(), live.len(), rq.cycles, rb.cycles, matches));
        csv.push(format!(
            "{},{},{},{},{},{},{}",
            i + 1,
            rows[i].0,
            rows[i].1,
            rows[i].2,
            rq.cycles,
            rb.cycles,
            rows[i].5.iter().map(usize::to_string).collect::<Vec<_>>().join(",")
        ));
    }

    let overhead = (q_cycles as f64 / b_cycles as f64 - 1.0) * 100.0;
    println!(
        "\nStanding queries: {} patterns over {} labelled batches ({} vertices, window {})",
        PANEL.len(),
        churn.len(),
        churn.n_vertices,
        p.window
    );
    let header = ["Batch", "Adds", "Dels", "Live", "Cycles", "Baseline", "Matches"];
    println!(
        "{}",
        format_table(
            &header,
            &rows
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    vec![
                        (i + 1).to_string(),
                        r.0.to_string(),
                        r.1.to_string(),
                        r.2.to_string(),
                        r.3.to_string(),
                        r.4.to_string(),
                        r.5.iter().map(usize::to_string).collect::<Vec<_>>().join("/"),
                    ]
                })
                .collect::<Vec<_>>()
        )
    );
    println!(
        "  every batch oracle-checked: maintained results == from-scratch recompute\n  \
         query maintenance overhead: {overhead:+.1}% cycles vs the query-free twin"
    );

    let dir = out_dir(&args.out);
    write_csv(
        &dir.join("queries.csv"),
        "batch,adds,dels,live,cycles,baseline_cycles,matches_q0,matches_q1,matches_q2",
        csv,
    );
    println!("  (csv: {}/queries.csv)", args.out);
    let final_matches: Vec<String> =
        rows.last().map(|r| r.5.iter().map(usize::to_string).collect()).unwrap_or_default();
    let mut art = BenchArtifact::new("queries", args.scale);
    art.push("patterns", PANEL.iter().map(|(s, _)| *s).collect::<Vec<_>>().join(","))
        .push("labels", LABELS as u64)
        .push("batches", churn.len())
        .push("cycles_with_queries", q_cycles)
        .push("cycles_baseline", b_cycles)
        .push("maintenance_overhead_pct", overhead)
        .push("final_matches", final_matches.join(","))
        .push("oracle_checked_every_batch", true);
    art.write(&dir);
    println!("  (json: {}/BENCH_queries.json)", args.out);
}

// ---------------------------------------------------------------------
// Subscriptions: push-based result deltas over the churn stream.
// ---------------------------------------------------------------------

/// The `paper subscriptions` scenario: the push half of standing queries.
/// The same labelled churn schedule as `queries` streams against graphs
/// with 1, 2, and 4 registered queries (the 4-query panel includes one
/// multi-source registration); after every batch the incremental result
/// deltas are drained, applied to running sets, and pinned against the
/// polled result sets — the exact invariant subscribers depend on. Fan-out
/// cost is then ablated over subscriber counts by encoding the same
/// `QueryDelta` wire frames the server pushes, once per subscriber (the
/// server's per-subscriber encode). Frame and byte counts are
/// simulation-derived and deterministic; the encode wall time is printed
/// but kept out of the CSV and JSON so the shard-determinism gate can diff
/// them. Emits `subscriptions.csv` and `BENCH_subscriptions.json`.
fn subscriptions(args: &Args) {
    use amcca_serve::proto::Response;
    use gc_datasets::{generate_churn, ChurnParams};
    use sdgp_core::apps::BfsAlgo;
    use sdgp_core::graph::StreamingGraph;
    use std::time::Instant;

    /// The registration panel, in registration order; sweeps take prefixes.
    /// The last entry anchors one query at three sources to exercise the
    /// shared-DFA multi-source path.
    const PANEL: [(&str, &[u32]); 4] =
        [("a.b*.c", &[0]), ("c+", &[0]), ("a?.b.c*", &[1]), ("b+", &[0, 1, 2])];
    const QUERY_COUNTS: [usize; 3] = [1, 2, 4];
    const SUB_COUNTS: [usize; 3] = [1, 4, 16];
    const LABELS: u8 = 3;

    eprintln!("[subscriptions] push deltas over labelled churn, scale {:?}...", args.scale);
    let p = ChurnPreset::v50k().scaled_down(args.scale.factor());
    let churn = generate_churn(&ChurnParams {
        n_vertices: p.n_vertices,
        batches: p.batches,
        adds_per_batch: p.adds_per_batch,
        window: p.window,
        drain: true,
        updates_per_batch: (p.adds_per_batch / 8).max(4),
        order: Sampling::Edge,
        labels: LABELS,
        seed: p.seed,
    });
    let build = || {
        StreamingGraph::builder(BfsAlgo::new(0))
            .vertices(churn.n_vertices)
            .chip(chip_for(args))
            .rpvo(RpvoConfig::default())
            .repair(args.repair)
            .build()
            .expect("graph construction")
    };

    // The query-free twin every maintenance overhead is measured against.
    let mut baseline = build();
    let mut b_cycles = 0u64;
    for i in 0..churn.len() {
        b_cycles += baseline
            .stream_increment(&churn.batch(i).to_mutations())
            .expect("baseline batch")
            .cycles;
    }

    // (n_queries, n_subscribers, frames, bytes, cycles, fanout_us)
    let mut rows: Vec<(usize, usize, u64, u64, u64, u128)> = Vec::new();
    let mut csv = Vec::new();
    for &nq in &QUERY_COUNTS {
        let mut g = build();
        for &(pattern, sources) in &PANEL[..nq] {
            g.register_query_multi(pattern, sources).expect("panel pattern compiles");
        }
        // One canonical running set per query: every subscriber receives
        // the same deltas, so the delta==polled-diff pin is checked once
        // and only the per-subscriber encode is repeated.
        let mut running: Vec<Vec<u32>> = (0..nq).map(|q| g.query_results(q as u32)).collect();
        let mut cycles = 0u64;
        let mut frames = vec![0u64; SUB_COUNTS.len()];
        let mut bytes = vec![0u64; SUB_COUNTS.len()];
        let mut fanout_us = vec![0u128; SUB_COUNTS.len()];
        for i in 0..churn.len() {
            let muts = churn.batch(i).to_mutations();
            cycles += g.stream_increment(&muts).expect("queried batch run").cycles;
            let deltas = g.take_query_deltas();
            assert_eq!(deltas.len(), nq, "one delta record per registered query");
            for d in &deltas {
                let set = &mut running[d.qid as usize];
                set.retain(|v| !d.removed.contains(v));
                set.extend(&d.added);
                set.sort_unstable();
                assert_eq!(
                    *set,
                    g.query_results(d.qid),
                    "batch {i}: delta-maintained set diverged from polled results (query {})",
                    d.qid
                );
            }
            // Fan-out: the server encodes one frame per changed query per
            // subscriber; replay that work for each subscriber count.
            for (si, &ns) in SUB_COUNTS.iter().enumerate() {
                let t = Instant::now();
                for _ in 0..ns {
                    for d in deltas.iter().filter(|d| !d.is_empty()) {
                        let frame = Response::QueryDelta {
                            qid: d.qid,
                            batch_seq: (i + 1) as u64,
                            added: d.added.clone(),
                            removed: d.removed.clone(),
                        }
                        .encode();
                        frames[si] += 1;
                        bytes[si] += frame.len() as u64;
                    }
                }
                fanout_us[si] += t.elapsed().as_micros();
            }
        }
        for (si, &ns) in SUB_COUNTS.iter().enumerate() {
            rows.push((nq, ns, frames[si], bytes[si], cycles, fanout_us[si]));
            csv.push(format!(
                "{nq},{ns},{},{},{},{cycles},{b_cycles}",
                churn.len(),
                frames[si],
                bytes[si]
            ));
        }
    }

    println!(
        "\nSubscriptions: result-delta fan-out over {} labelled batches ({} vertices, window {})",
        churn.len(),
        churn.n_vertices,
        p.window
    );
    let header = ["Queries", "Subs", "Frames", "Bytes", "Cycles", "Overhead", "Fanout ms"];
    println!(
        "{}",
        format_table(
            &header,
            &rows
                .iter()
                .map(|&(nq, ns, frames, bytes, cycles, us)| {
                    vec![
                        nq.to_string(),
                        ns.to_string(),
                        frames.to_string(),
                        bytes.to_string(),
                        cycles.to_string(),
                        format!("{:+.1}%", (cycles as f64 / b_cycles as f64 - 1.0) * 100.0),
                        format!("{:.2}", us as f64 / 1000.0),
                    ]
                })
                .collect::<Vec<_>>()
        )
    );
    println!(
        "  every batch pinned: applying each pushed delta to the running set \
         reproduces the polled result set bit-identically"
    );

    let dir = out_dir(&args.out);
    write_csv(
        &dir.join("subscriptions.csv"),
        "n_queries,n_subscribers,batches,delta_frames,delta_bytes,cycles,baseline_cycles",
        csv,
    );
    println!("  (csv: {}/subscriptions.csv)", args.out);
    let mut art = BenchArtifact::new("subscriptions", args.scale);
    art.push("query_counts", QUERY_COUNTS.map(|q| q.to_string()).join(","))
        .push("subscriber_counts", SUB_COUNTS.map(|s| s.to_string()).join(","))
        .push("batches", churn.len())
        .push("cycles_baseline", b_cycles);
    for &(nq, ns, frames, bytes, cycles, _) in &rows {
        if ns == SUB_COUNTS[SUB_COUNTS.len() - 1] {
            art.push(&format!("cycles_q{nq}"), cycles)
                .push(
                    &format!("maintenance_overhead_pct_q{nq}"),
                    (cycles as f64 / b_cycles as f64 - 1.0) * 100.0,
                )
                .push(&format!("delta_frames_q{nq}_s{ns}"), frames)
                .push(&format!("delta_bytes_q{nq}_s{ns}"), bytes);
        }
    }
    art.push("deltas_pinned_to_polled_results", true);
    art.write(&dir);
    println!("  (json: {}/BENCH_subscriptions.json)", args.out);
}

// ---------------------------------------------------------------------
// Verification (paper §4: results checked against NetworkX).
// ---------------------------------------------------------------------

fn verify(args: &Args) {
    use refgraph::{bfs_levels, DiGraph};
    use sdgp_core::apps::BfsAlgo;
    use sdgp_core::graph::{StreamEdge, StreamingGraph};

    eprintln!("[verify] streamed BFS vs reference oracle...");
    let p = args.scale.apply(GcPreset::v50k(Sampling::Edge)).scaled_down(4);
    let d = p.build();
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(d.n_vertices)
        .chip(chip_for(args))
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    let mut acc: Vec<StreamEdge> = Vec::new();
    for i in 0..d.increments() {
        g.stream_edges(d.increment(i)).unwrap();
        acc.extend_from_slice(d.increment(i));
        let reference = bfs_levels(&DiGraph::from_edges(d.n_vertices, acc.iter().copied()), 0);
        assert_eq!(g.states(), reference, "mismatch after increment {i}");
        println!("  increment {:2}: {:7} edges accumulated, levels verified OK", i + 1, acc.len());
    }
    g.check_mirror_consistency().unwrap();
    println!("verify: all increments match the reference oracle; mirrors consistent");
}
