//! Slab arena micro-benchmarks: the per-CC memory allocator on the
//! ghost-allocation hot path.

use amcca_sim::Arena;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_arena(c: &mut Criterion) {
    c.bench_function("arena/alloc_free_churn", |b| {
        let mut a: Arena<u64> = Arena::new(1024);
        let mut slots = Vec::with_capacity(512);
        b.iter(|| {
            for i in 0..256u64 {
                slots.push(a.alloc(i).unwrap());
            }
            for s in slots.drain(..) {
                black_box(a.free(s));
            }
        })
    });

    c.bench_function("arena/get_hot", |b| {
        let mut a: Arena<u64> = Arena::new(1024);
        let slots: Vec<u32> = (0..1024).map(|i| a.alloc(i).unwrap()).collect();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 257) % slots.len();
            black_box(a.get(slots[i]))
        })
    });

    c.bench_function("arena/iter_live", |b| {
        let mut a: Arena<u64> = Arena::new(4096);
        for i in 0..4096 {
            a.alloc(i).unwrap();
        }
        // Punch holes to exercise the skip path.
        for s in (0..4096).step_by(3) {
            a.free(s);
        }
        b.iter(|| black_box(a.iter().map(|(_, &v)| v).sum::<u64>()))
    });
}

criterion_group!(benches, bench_arena);
criterion_main!(benches);
