//! Micro-benchmarks of the future LCO lifecycle (paper Fig. 4): the cost of
//! the pending transition, waiter enqueue, and fulfillment drain.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use diffusive::{FutureLco, PendingOperon};

fn bench_lifecycle(c: &mut Criterion) {
    c.bench_function("future/null_to_pending_to_ready", |b| {
        b.iter(|| {
            let mut f: FutureLco<u64> = FutureLco::Null;
            f.make_pending().unwrap();
            let drained = f.fulfill(black_box(42)).unwrap();
            black_box(drained.len())
        })
    });

    let mut g = c.benchmark_group("future/enqueue_and_drain");
    for &waiters in &[1usize, 8, 64, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(waiters), &waiters, |b, &n| {
            b.iter(|| {
                let mut f: FutureLco<u64> = FutureLco::Null;
                f.make_pending().unwrap();
                for i in 0..n {
                    f.enqueue(PendingOperon { action: 8, payload: [i as u64, 0] }).unwrap();
                }
                black_box(f.fulfill(7).unwrap().len())
            })
        });
    }
    g.finish();

    c.bench_function("future/is_ready_check", |b| {
        let f: FutureLco<u64> = FutureLco::Ready(9);
        b.iter(|| black_box(f.is_ready()))
    });
}

criterion_group!(benches, bench_lifecycle);
criterion_main!(benches);
