//! Reference-oracle benchmarks: the sequential algorithms used for
//! verification must stay cheap relative to the simulations they check.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_datasets::{generate_sbm, SbmParams};
use refgraph::{bfs_levels, count_triangles, dijkstra, min_labels, DiGraph};

fn bench_refgraph(c: &mut Criterion) {
    let mut grp = c.benchmark_group("refgraph");
    grp.sample_size(20);
    for &(n, m) in &[(10_000u32, 100_000usize), (50_000, 1_000_000)] {
        let edges = generate_sbm(&SbmParams::scaled(n, m, 3));
        let g = DiGraph::from_edges(n, edges.iter().copied());
        grp.bench_with_input(BenchmarkId::new("bfs", m), &g, |b, g| {
            b.iter(|| black_box(bfs_levels(g, 0)))
        });
        grp.bench_with_input(BenchmarkId::new("dijkstra", m), &g, |b, g| {
            b.iter(|| black_box(dijkstra(g, 0)))
        });
        grp.bench_with_input(BenchmarkId::new("components", m), &g, |b, g| {
            b.iter(|| black_box(min_labels(g)))
        });
        grp.bench_with_input(BenchmarkId::new("triangles", m), &edges, |b, e| {
            b.iter(|| black_box(count_triangles(n, e.iter().map(|&(u, v, _)| (u, v)))))
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_refgraph);
criterion_main!(benches);
