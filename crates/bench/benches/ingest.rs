//! End-to-end ingestion benchmarks: simulated-cycles and wall-time of
//! streaming edges into RPVO storage, with and without BFS propagation —
//! the simulator-throughput numbers behind Table 2's runtime.

use amcca_sim::ChipConfig;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_datasets::{generate_sbm, SbmParams};
use sdgp_core::apps::BfsAlgo;
use sdgp_core::graph::{StreamEdge, StreamingGraph};
use sdgp_core::rpvo::RpvoConfig;

fn workload(n: u32, m: usize) -> Vec<StreamEdge> {
    generate_sbm(&SbmParams::scaled(n, m, 7))
}

fn run(edges: &[StreamEdge], n: u32, with_bfs: bool) -> u64 {
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(n)
        .chip(ChipConfig::default())
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    g.set_algo_propagation(with_bfs);
    let r = g.stream_edges(edges).unwrap();
    r.cycles
}

fn bench_ingest(c: &mut Criterion) {
    let mut grp = c.benchmark_group("ingest/stream_to_quiescence");
    grp.sample_size(10);
    for &(n, m) in &[(1_000u32, 10_000usize), (5_000, 50_000)] {
        let edges = workload(n, m);
        grp.bench_with_input(BenchmarkId::new("ingest_only", m), &edges, |b, e| {
            b.iter(|| black_box(run(e, n, false)))
        });
        grp.bench_with_input(BenchmarkId::new("with_bfs", m), &edges, |b, e| {
            b.iter(|| black_box(run(e, n, true)))
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
