//! Sharded-engine scaling benchmark: wall-clock time of an ingestion+BFS
//! streaming workload on the paper's 32×32 chip at shard counts 1/2/4.
//!
//! Shard 1 is the sequential reference engine; higher counts run the
//! column-band parallel engine, which produces bit-identical simulation
//! results (asserted below), so any delta is pure wall-clock speedup.

use amcca_sim::ChipConfig;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_datasets::{generate_sbm, SbmParams};
use sdgp_core::apps::BfsAlgo;
use sdgp_core::graph::{StreamEdge, StreamingGraph};
use sdgp_core::rpvo::RpvoConfig;

fn run(edges: &[StreamEdge], n: u32, shards: usize) -> u64 {
    // Adaptive switching off: this bench isolates the sharded engine itself,
    // so shards > 1 must run every cycle on the parallel path (the adaptive
    // default would hand warm-up and cold tails to the sequential engine).
    let cfg = ChipConfig { adaptive_shards: false, ..ChipConfig::default().with_shards(shards) };
    let mut g = StreamingGraph::builder(BfsAlgo::new(0))
        .vertices(n)
        .chip(cfg)
        .rpvo(RpvoConfig::default())
        .build()
        .unwrap();
    g.stream_edges(edges).unwrap().cycles
}

fn bench_shards(c: &mut Criterion) {
    let mut grp = c.benchmark_group("shards/ingest_bfs_32x32");
    grp.sample_size(10);
    let (n, m) = (4_000u32, 40_000usize);
    let edges = generate_sbm(&SbmParams::scaled(n, m, 7));
    let reference = run(&edges, n, 1);
    for &shards in &[1usize, 2, 4] {
        // Determinism: the simulated cycle count must not depend on shards.
        assert_eq!(run(&edges, n, shards), reference, "shards={shards} diverged");
        grp.bench_with_input(BenchmarkId::new("shards", shards), &edges, |b, e| {
            b.iter(|| black_box(run(e, n, shards)))
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_shards);
criterion_main!(benches);
