//! Workload-generation benchmarks: SBM synthesis and the two sampling
//! schedules at GraphChallenge-like densities.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_datasets::{edge_sampling, generate_sbm, snowball_sampling, SbmParams};

fn bench_datasets(c: &mut Criterion) {
    let mut g = c.benchmark_group("datasets");
    g.sample_size(10);
    for &(n, m) in &[(10_000u32, 200_000usize), (50_000, 1_000_000)] {
        g.bench_with_input(BenchmarkId::new("sbm_generate", m), &(n, m), |b, &(n, m)| {
            b.iter(|| black_box(generate_sbm(&SbmParams::scaled(n, m, 1))))
        });
        let edges = generate_sbm(&SbmParams::scaled(n, m, 1));
        g.bench_with_input(BenchmarkId::new("edge_sampling", m), &edges, |b, e| {
            b.iter(|| black_box(edge_sampling(n, e.clone(), 10, 2)))
        });
        g.bench_with_input(BenchmarkId::new("snowball_sampling", m), &edges, |b, e| {
            b.iter(|| black_box(snowball_sampling(n, e.clone(), 10, 0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_datasets);
criterion_main!(benches);
