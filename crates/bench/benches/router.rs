//! NoC throughput micro-benchmarks: cycles-per-second of the chip loop under
//! synthetic all-to-all operon traffic (no application work), isolating the
//! YX router and flow control.

use amcca_sim::{Address, Chip, ChipConfig, Dims, ExecCtx, Operon, Program};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// Sink program: one instruction per delivered operon, no propagation.
struct Sink;

impl Program for Sink {
    type Object = u32;
    fn fork(&self) -> Self {
        Sink
    }
    fn execute(&mut self, ctx: &mut ExecCtx<'_, u32>, _op: &Operon) {
        ctx.charge(1);
    }
}

fn traffic(dims: Dims, n_msgs: u32, seed: u64) -> Vec<Operon> {
    let mut rng = amcca_sim::SplitMix64::new(seed);
    (0..n_msgs)
        .map(|_| {
            let cc = rng.gen_range(dims.cell_count() as u64) as u16;
            Operon::new(Address::new(cc, 0), 8, [0, 0])
        })
        .collect()
}

fn bench_router(c: &mut Criterion) {
    let mut g = c.benchmark_group("router/drain_random_traffic");
    g.sample_size(20);
    for &msgs in &[1_000u32, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(msgs), &msgs, |b, &m| {
            b.iter(|| {
                let cfg = ChipConfig::default(); // 32x32
                let mut chip = Chip::new(cfg, Sink);
                for cc in chip.cfg().dims.iter_ids() {
                    chip.host_alloc(cc, 0).unwrap();
                }
                chip.io_load(traffic(chip.cfg().dims, m, 42));
                chip.run_until_quiescent().unwrap();
                black_box(chip.counters().hops)
            })
        });
    }
    g.finish();

    // Single-message end-to-end latency, corner to corner.
    c.bench_function("router/corner_to_corner_latency", |b| {
        b.iter(|| {
            let cfg = ChipConfig::default();
            let far = cfg.dims.id_of(amcca_sim::Coord::new(31, 31));
            let mut chip = Chip::new(cfg, Sink);
            let a = chip.host_alloc(far, 0).unwrap();
            chip.io_load([Operon::new(a, 8, [0, 0])]);
            chip.run_until_quiescent().unwrap();
            black_box(chip.cycle())
        })
    });
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
