//! Action registration: the paper's `AMCCA_REGISTER_ACTION` (Listing 1).
//!
//! Actions are identified by small integer ids carried in operons. Ids 0–7
//! are reserved for the runtime's system actions (`allocate`, `set-future`,
//! …); user actions are handed out from [`FIRST_USER_ACTION`] upward.

use amcca_sim::ActionId;

/// The `allocate` system action: allocate an object on the executing cell and
/// return its address through the registered continuation (paper §3.1).
pub const ACT_ALLOCATE: ActionId = 0;
/// The continuation's return trigger: set a future LCO to a produced address
/// and schedule the tasks that were waiting on it (paper Fig. 3 step 3).
pub const ACT_SET_FUTURE: ActionId = 1;
/// Cross-rhizome sync: one co-equal root of a multi-root (rhizome) vertex
/// announces an improved application value to a peer root, so min-distance /
/// component-label state converges across all roots (see
/// [`crate::rhizome`]).
pub const ACT_RHIZOME_SYNC: ActionId = 2;
/// Deletion-repair invalidation: a value that previously flowed along a
/// now-retracted edge (or out of a now-invalidated vertex) is recalled. The
/// receiver checks whether its state was derived through that value and, if
/// so, resets it and cascades the recall further (see [`crate::retract`]).
pub const ACT_RETRACT: ActionId = 3;
/// Standing-query state diffusion: a set of automaton states (a small
/// bitset) flows along an edge to extend — or, flagged as a reseed, to
/// re-announce — the product-state frontier of a registered standing query
/// (see [`crate::query`]).
pub const ACT_QUERY: ActionId = 4;
/// First id available to applications.
pub const FIRST_USER_ACTION: ActionId = 8;

/// Name ⇄ id table of registered actions.
#[derive(Debug)]
pub struct ActionRegistry {
    names: Vec<(ActionId, String)>,
    next: ActionId,
}

impl Default for ActionRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ActionRegistry {
    /// Fresh registry with the system actions pre-registered.
    pub fn new() -> Self {
        ActionRegistry {
            names: vec![
                (ACT_ALLOCATE, "allocate".to_string()),
                (ACT_SET_FUTURE, "set-future".to_string()),
                (ACT_RHIZOME_SYNC, "rhizome-sync".to_string()),
                (ACT_RETRACT, "retract".to_string()),
                (ACT_QUERY, "query".to_string()),
            ],
            next: FIRST_USER_ACTION,
        }
    }

    /// Register a new action under `name`, returning its id. Registering the
    /// same name twice returns the existing id.
    pub fn register(&mut self, name: &str) -> ActionId {
        if let Some(id) = self.lookup(name) {
            return id;
        }
        let id = self.next;
        self.next = self.next.checked_add(1).expect("action id space exhausted");
        self.names.push((id, name.to_string()));
        id
    }

    /// Register `name` at a fixed id (used by apps with compiled-in ids).
    /// Panics if the id is already taken by a different name.
    pub fn register_at(&mut self, id: ActionId, name: &str) -> ActionId {
        if let Some(existing) = self.name_of(id) {
            assert_eq!(existing, name, "action id {id} already registered as {existing}");
            return id;
        }
        assert!(self.lookup(name).is_none(), "action name {name} already has another id");
        self.names.push((id, name.to_string()));
        self.next = self.next.max(id + 1);
        id
    }

    /// Id registered under `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<ActionId> {
        self.names.iter().find(|(_, n)| n == name).map(|&(id, _)| id)
    }

    /// Name registered for `id`, if any.
    pub fn name_of(&self, id: ActionId) -> Option<&str> {
        self.names.iter().find(|&&(i, _)| i == id).map(|(_, n)| n.as_str())
    }

    /// Number of registered actions (including system actions).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing is registered (never: system actions exist).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_actions_preregistered() {
        let r = ActionRegistry::new();
        assert_eq!(r.lookup("allocate"), Some(ACT_ALLOCATE));
        assert_eq!(r.lookup("set-future"), Some(ACT_SET_FUTURE));
        assert_eq!(r.lookup("rhizome-sync"), Some(ACT_RHIZOME_SYNC));
        assert_eq!(r.lookup("retract"), Some(ACT_RETRACT));
        assert_eq!(r.lookup("query"), Some(ACT_QUERY));
    }

    #[test]
    fn user_ids_start_after_reserved_range() {
        let mut r = ActionRegistry::new();
        let id = r.register("insert-edge-action");
        assert!(id >= FIRST_USER_ACTION);
        assert_eq!(r.name_of(id), Some("insert-edge-action"));
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let mut r = ActionRegistry::new();
        let a = r.register("bfs-action");
        let b = r.register("bfs-action");
        assert_eq!(a, b);
        assert_eq!(r.len(), 6, "five system actions plus the one registered");
    }

    #[test]
    fn register_at_fixed_id() {
        let mut r = ActionRegistry::new();
        let id = r.register_at(42, "custom");
        assert_eq!(id, 42);
        assert_eq!(r.name_of(42), Some("custom"));
        // Next dynamic registration skips past it.
        assert!(r.register("another") > 42);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn register_at_conflict_panics() {
        let mut r = ActionRegistry::new();
        r.register_at(9, "one");
        r.register_at(9, "two");
    }
}
