//! The **future LCO** (Local Control Object), after ParalleX/HPX.
//!
//! A future synchronizes data-dependent actions without blocking a compute
//! cell. Its lifecycle (paper Fig. 4) is:
//!
//! ```text
//! ⓪ Null            — value = null, queue = {}
//! ① Pending         — first user puts it in pending while allocation runs
//! ② Pending + queue — dependent tasks enqueue themselves as closures
//! ③ value set       — a continuation returns with the value
//! ④ Ready           — dependent tasks are scheduled, queue emptied
//! ```
//!
//! Waiting tasks are stored as [`PendingOperon`]s: operons missing only their
//! target address. When the future is fulfilled with an address, each waiter
//! is completed with that address and re-propagated — exactly the λ-closure
//! the paper's Listing 6 enqueues (`enqueue-future!`).

use amcca_sim::{ActionId, Operon};

/// A deferred operon: everything but the target address, which the future's
/// value will supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingOperon {
    /// Registered action to execute at the target.
    pub action: ActionId,
    /// Operand words (an edge, a level, a continuation...).
    pub payload: [u64; 2],
}

impl PendingOperon {
    /// Complete the deferred operon with the future's value.
    pub fn into_operon(self, target: amcca_sim::Address) -> Operon {
        Operon::new(target, self.action, self.payload)
    }
}

/// State of a future LCO holding a value of type `T`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FutureLco<T> {
    /// Untouched: no allocation has been requested.
    #[default]
    Null,
    /// An allocation (continuation) is in flight; tasks queue here.
    Pending(Vec<PendingOperon>),
    /// The value has been produced.
    Ready(T),
}

/// Error returned by transitions that violate the LCO protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FutureError {
    /// `make_pending` on a future that is not Null.
    AlreadyInitiated,
    /// `enqueue` on a future that is not Pending.
    NotPending,
    /// `fulfill` on a future that is already Ready.
    AlreadyReady,
}

impl<T> FutureLco<T> {
    /// State ⓪: untouched.
    pub fn is_null(&self) -> bool {
        matches!(self, FutureLco::Null)
    }

    /// States ①/②: a continuation is in flight.
    pub fn is_pending(&self) -> bool {
        matches!(self, FutureLco::Pending(_))
    }

    /// State ④: the value is available.
    pub fn is_ready(&self) -> bool {
        matches!(self, FutureLco::Ready(_))
    }

    /// The value, if Ready.
    pub fn value(&self) -> Option<&T> {
        match self {
            FutureLco::Ready(v) => Some(v),
            _ => None,
        }
    }

    /// Number of queued waiters (0 unless Pending).
    pub fn waiter_count(&self) -> usize {
        match self {
            FutureLco::Pending(q) => q.len(),
            _ => 0,
        }
    }

    /// ⓪ → ①: the paper's `future-pending!`. Only legal from Null.
    pub fn make_pending(&mut self) -> Result<(), FutureError> {
        match self {
            FutureLco::Null => {
                *self = FutureLco::Pending(Vec::new());
                Ok(())
            }
            _ => Err(FutureError::AlreadyInitiated),
        }
    }

    /// ① → ②: the paper's `enqueue-future!`. Only legal while Pending.
    pub fn enqueue(&mut self, waiter: PendingOperon) -> Result<(), FutureError> {
        match self {
            FutureLco::Pending(q) => {
                q.push(waiter);
                Ok(())
            }
            _ => Err(FutureError::NotPending),
        }
    }

    /// ② → ③ → ④: the paper's `set-future!` arriving from the continuation.
    /// Returns the waiters to schedule; the queue is emptied. Fulfilling a
    /// Null future is allowed (a continuation may return before any waiter
    /// showed up); fulfilling twice is a protocol error.
    pub fn fulfill(&mut self, value: T) -> Result<Vec<PendingOperon>, FutureError> {
        match std::mem::replace(self, FutureLco::Null) {
            FutureLco::Null => {
                *self = FutureLco::Ready(value);
                Ok(Vec::new())
            }
            FutureLco::Pending(q) => {
                *self = FutureLco::Ready(value);
                Ok(q)
            }
            ready @ FutureLco::Ready(_) => {
                *self = ready;
                Err(FutureError::AlreadyReady)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcca_sim::Address;

    fn waiter(n: u16) -> PendingOperon {
        PendingOperon { action: n, payload: [n as u64, 0] }
    }

    /// Walks the exact ⓪→①→②→③→④ sequence of the paper's Figure 4.
    #[test]
    fn figure4_lifecycle() {
        let mut f: FutureLco<Address> = FutureLco::Null;
        // ⓪ null state.
        assert!(f.is_null());
        assert_eq!(f.waiter_count(), 0);
        // ① the first insert-edge-action puts it in pending.
        f.make_pending().unwrap();
        assert!(f.is_pending());
        // ② dependent tasks enqueue as closures (λ1, λ2, λ3).
        f.enqueue(waiter(1)).unwrap();
        f.enqueue(waiter(2)).unwrap();
        f.enqueue(waiter(3)).unwrap();
        assert_eq!(f.waiter_count(), 3);
        // ③ a continuation returns the address of newly allocated memory.
        let addr = Address::new(7, 99);
        let drained = f.fulfill(addr).unwrap();
        // ④ dependent tasks are scheduled, the queue is emptied.
        assert!(f.is_ready());
        assert_eq!(f.value(), Some(&addr));
        assert_eq!(f.waiter_count(), 0);
        assert_eq!(drained.len(), 3);
        let ops: Vec<_> = drained.into_iter().map(|w| w.into_operon(addr)).collect();
        assert!(ops.iter().all(|o| o.target == addr), "waiters target the new address");
        assert_eq!(ops[0].action, 1);
        assert_eq!(ops[2].payload[0], 3);
    }

    #[test]
    fn make_pending_twice_is_an_error() {
        let mut f: FutureLco<u32> = FutureLco::Null;
        f.make_pending().unwrap();
        assert_eq!(f.make_pending(), Err(FutureError::AlreadyInitiated));
    }

    #[test]
    fn enqueue_requires_pending() {
        let mut f: FutureLco<u32> = FutureLco::Null;
        assert_eq!(f.enqueue(waiter(1)), Err(FutureError::NotPending));
        f.make_pending().unwrap();
        f.fulfill(5).unwrap();
        assert_eq!(f.enqueue(waiter(1)), Err(FutureError::NotPending));
    }

    #[test]
    fn fulfill_null_is_allowed_and_empty() {
        let mut f: FutureLco<u32> = FutureLco::Null;
        let drained = f.fulfill(9).unwrap();
        assert!(drained.is_empty());
        assert_eq!(f.value(), Some(&9));
    }

    #[test]
    fn double_fulfill_is_an_error_and_preserves_value() {
        let mut f: FutureLco<u32> = FutureLco::Null;
        f.fulfill(1).unwrap();
        assert_eq!(f.fulfill(2), Err(FutureError::AlreadyReady));
        assert_eq!(f.value(), Some(&1));
    }

    #[test]
    fn default_is_null() {
        let f: FutureLco<u64> = FutureLco::default();
        assert!(f.is_null());
    }
}
