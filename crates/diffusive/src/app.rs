//! The diffusive application interface and the runtime that dispatches
//! system actions.
//!
//! An [`App`] supplies the object type living in compute-cell memory and the
//! handlers for its registered actions. The [`Runtime`] wraps an app into an
//! [`amcca_sim::Program`], intercepting the two system actions that implement
//! continuations (paper §3.1):
//!
//! * **allocate** — runs on the chosen remote cell, constructs the object
//!   there, and propagates the return trigger. If the cell's memory is full,
//!   the request re-propagates to the next placement candidate (the paper's
//!   Vicinity Allocator keeps these within 2 hops of the requester).
//! * **set-future** — the anonymous return-trigger action: resumes the
//!   waiting state by fulfilling the future slot on the requesting object.

use amcca_sim::{Address, SimError};
use amcca_sim::{ExecCtx, Operon, Program};

use crate::action::{ACT_ALLOCATE, ACT_QUERY, ACT_RETRACT, ACT_RHIZOME_SYNC, ACT_SET_FUTURE};
use crate::continuation::{
    allocate_operon, decode_allocate, decode_set_future, set_future_operon, MAX_ENCODABLE_RETRY,
};
use crate::query::decode_query;
use crate::retract::decode_retract;
use crate::rhizome::decode_sync;

/// A diffusive application: object layout plus action handlers.
///
/// Apps are `Send` (with `Send` objects) so a chip configured with
/// `ChipConfig::shards > 1` can run one forked app instance per mesh shard;
/// see [`amcca_sim::Program`] for the sharded-state contract ([`App::fork`] /
/// [`App::merge`] mirror it one level up).
pub trait App: Send {
    /// The object type stored in compute-cell memory (e.g. a vertex object).
    type Object: Send;

    /// Construct a fresh object for an `allocate` request (e.g. a ghost
    /// vertex for logical vertex `req.tag`).
    fn construct(&mut self, req: &crate::continuation::AllocRequest) -> Self::Object;

    /// A continuation returned: set future `slot` of the object at `target`
    /// (which lives on the executing cell) to `value`, and re-propagate any
    /// waiters. Implementations use [`crate::future::FutureLco::fulfill`].
    fn fulfill(
        &mut self,
        ctx: &mut ExecCtx<'_, Self::Object>,
        target: Address,
        slot: u8,
        value: Address,
    );

    /// Dispatch an application action.
    fn on_action(&mut self, ctx: &mut ExecCtx<'_, Self::Object>, op: &Operon);

    /// A peer root of a rhizome (multi-root vertex) announced `value` to the
    /// object at `target` (which lives on the executing cell); fold it into
    /// the local root's state and re-diffuse if it improved (see
    /// [`crate::rhizome`]). The default rejects the message — only apps that
    /// build rhizomes receive it.
    fn rhizome_sync(&mut self, ctx: &mut ExecCtx<'_, Self::Object>, target: Address, value: u64) {
        let _ = (ctx, value);
        panic!("app received rhizome-sync for {target} but does not support rhizomes");
    }

    /// A deletion-repair recall reached the object at `target` (which lives
    /// on the executing cell): `suspect` is a value that previously flowed to
    /// it and is no longer supported by the surviving edge set. If the local
    /// state was derived through it, reset the state and cascade the recall
    /// (see [`crate::retract`]). The default rejects the message — only apps
    /// that support edge deletion receive it.
    fn retract(&mut self, ctx: &mut ExecCtx<'_, Self::Object>, target: Address, suspect: u64) {
        let _ = (ctx, suspect);
        panic!("app received retract for {target} but does not support deletions");
    }

    /// Standing-query state reached the object at `target` (which lives on
    /// the executing cell): fold the automaton-state bitset `bits` of query
    /// `qid` into the local object and diffuse genuinely new states along the
    /// stored edges; a `reseed` (with `fanned` marking an already peer-fanned
    /// copy) instead re-announces current states during deletion repair (see
    /// [`crate::query`]). The default rejects the message — only apps that
    /// register standing queries receive it.
    fn query(
        &mut self,
        ctx: &mut ExecCtx<'_, Self::Object>,
        target: Address,
        qid: u32,
        bits: u32,
        reseed: bool,
        fanned: bool,
    ) {
        let _ = (ctx, qid, bits, reseed, fanned);
        panic!("app received query-state for {target} but does not support standing queries");
    }

    /// Create an independent instance for one shard of a parallel run
    /// (configuration copied, accumulators empty).
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Fold a shard instance's accumulated state back after a parallel run.
    /// The default drops the worker — correct only for apps whose forks
    /// accumulate nothing.
    fn merge(&mut self, worker: Self)
    where
        Self: Sized,
    {
        let _ = worker;
    }
}

/// Adapter that runs an [`App`] on an [`amcca_sim::Chip`].
pub struct Runtime<A: App> {
    /// The wrapped application.
    pub app: A,
    max_alloc_retries: u32,
}

impl<A: App> Runtime<A> {
    /// Wrap an app; `max_alloc_retries` bounds allocation fallback.
    pub fn new(app: A, max_alloc_retries: u32) -> Self {
        let max_alloc_retries = max_alloc_retries.min(MAX_ENCODABLE_RETRY);
        Runtime { app, max_alloc_retries }
    }
}

impl<A: App> Program for Runtime<A> {
    type Object = A::Object;

    fn fork(&self) -> Self {
        Runtime { app: self.app.fork(), max_alloc_retries: self.max_alloc_retries }
    }

    fn merge(&mut self, worker: Self) {
        self.app.merge(worker.app);
    }

    fn execute(&mut self, ctx: &mut ExecCtx<'_, A::Object>, op: &Operon) {
        match op.action {
            ACT_ALLOCATE => {
                let req = decode_allocate(op);
                ctx.charge(ctx.cost().alloc);
                let obj = self.app.construct(&req);
                match ctx.alloc(obj) {
                    Ok(addr) => {
                        // Fig. 3 step 2: send the address back as the trigger.
                        ctx.propagate(set_future_operon(req.cont, addr));
                    }
                    Err(_) => {
                        if req.retry >= self.max_alloc_retries {
                            ctx.fail(SimError::OutOfMemory {
                                origin_cc: req.cont.return_to.cc,
                                retries: req.retry,
                            });
                        } else {
                            // This cell is full: bounce the request to the
                            // next candidate, anchored at the requester so
                            // vicinity locality is preserved.
                            ctx.note_alloc_retry();
                            let retry = req.retry + 1;
                            let next = ctx.choose_alloc_target_from(req.cont.return_to.cc, retry);
                            ctx.propagate(allocate_operon(next, req.cont, retry, req.tag));
                        }
                    }
                }
            }
            ACT_SET_FUTURE => {
                // Fig. 3 step 3: set the future LCO; the runtime resumes the
                // prior action state (the app re-propagates the waiters).
                ctx.charge(ctx.cost().future_op);
                let (slot, value) = decode_set_future(op);
                self.app.fulfill(ctx, op.target, slot, value);
            }
            ACT_RHIZOME_SYNC => {
                // Peer-root announcement of a rhizome vertex: fold the value
                // into the local root (the app charges its own update cost).
                self.app.rhizome_sync(ctx, op.target, decode_sync(op));
            }
            ACT_RETRACT => {
                // Deletion-repair recall: invalidate derived state and
                // cascade (the app charges its own invalidation cost).
                self.app.retract(ctx, op.target, decode_retract(op));
            }
            ACT_QUERY => {
                // Standing-query state diffusion: monotone extension or
                // repair reseed (the app charges its own stepping cost).
                let (qid, bits, reseed, fanned) = decode_query(op);
                self.app.query(ctx, op.target, qid, bits, reseed, fanned);
            }
            _ => self.app.on_action(ctx, op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuation::Continuation;
    use crate::future::{FutureLco, PendingOperon};
    use amcca_sim::{Chip, ChipConfig, Operon};

    /// A miniature RPVO-like app used to exercise the continuation + future
    /// machinery end to end: each object stores up to 2 values and chains to
    /// an overflow node through a `FutureLco<Address>`.
    struct ChainNode {
        values: Vec<u64>,
        next: FutureLco<Address>,
    }

    struct ChainApp;

    const ACT_APPEND: u16 = 8;
    const NODE_CAP: usize = 2;

    impl App for ChainApp {
        type Object = ChainNode;

        fn fork(&self) -> Self {
            ChainApp
        }

        fn construct(&mut self, _req: &crate::continuation::AllocRequest) -> ChainNode {
            ChainNode { values: Vec::with_capacity(NODE_CAP), next: FutureLco::Null }
        }

        fn fulfill(
            &mut self,
            ctx: &mut ExecCtx<'_, ChainNode>,
            target: Address,
            slot: u8,
            value: Address,
        ) {
            assert_eq!(slot, 0);
            let waiters = {
                let node = ctx.obj_mut(target.slot).expect("live target");
                node.next.fulfill(value).expect("single fulfill")
            };
            for w in waiters {
                ctx.propagate(w.into_operon(value));
            }
        }

        fn on_action(&mut self, ctx: &mut ExecCtx<'_, ChainNode>, op: &Operon) {
            assert_eq!(op.action, ACT_APPEND);
            ctx.charge(ctx.cost().insert_edge);
            let target = op.target;
            enum Next {
                Stored,
                Defer,
                DeferAndAllocate,
                Forward(Address),
            }
            let what = {
                let node = ctx.obj_mut(target.slot).expect("live node");
                if node.values.len() < NODE_CAP {
                    node.values.push(op.payload[0]);
                    Next::Stored
                } else {
                    match &node.next {
                        FutureLco::Null => {
                            node.next.make_pending().unwrap();
                            Next::DeferAndAllocate
                        }
                        FutureLco::Pending(_) => Next::Defer,
                        FutureLco::Ready(a) => Next::Forward(*a),
                    }
                }
            };
            match what {
                Next::Stored => {}
                Next::Forward(a) => {
                    ctx.propagate(Operon::new(a, ACT_APPEND, op.payload));
                }
                Next::Defer | Next::DeferAndAllocate => {
                    let waiter = PendingOperon { action: ACT_APPEND, payload: op.payload };
                    if matches!(what, Next::DeferAndAllocate) {
                        ctx.charge(ctx.cost().future_op);
                        let tcc = ctx.choose_alloc_target(0);
                        let cont = Continuation { return_to: target, slot: 0 };
                        ctx.propagate(allocate_operon(tcc, cont, 0, 0));
                    }
                    let node = ctx.obj_mut(target.slot).unwrap();
                    node.next.enqueue(waiter).unwrap();
                }
            }
        }
    }

    fn collect_chain(chip: &Chip<Runtime<ChainApp>>, root: Address) -> (Vec<u64>, usize) {
        let mut values = Vec::new();
        let mut nodes = 0;
        let mut at = Some(root);
        while let Some(a) = at {
            let node = chip.object(a).expect("chain node");
            values.extend_from_slice(&node.values);
            nodes += 1;
            at = node.next.value().copied();
            assert!(nodes < 1000, "chain must be finite");
        }
        (values, nodes)
    }

    #[test]
    fn continuation_grows_a_chain_across_cells() {
        let mut chip = Chip::new(ChipConfig::small_test(), Runtime::new(ChainApp, 64));
        let root =
            chip.host_alloc(27, ChainNode { values: Vec::new(), next: FutureLco::Null }).unwrap();
        let n = 20u64;
        chip.io_load((0..n).map(|i| Operon::new(root, ACT_APPEND, [i, 0])));
        chip.run_until_quiescent().unwrap();
        let (mut values, nodes) = collect_chain(&chip, root);
        values.sort_unstable();
        assert_eq!(values, (0..n).collect::<Vec<_>>(), "no value lost or duplicated");
        assert_eq!(nodes, (n as usize).div_ceil(NODE_CAP));
        assert!(chip.counters().allocs >= nodes as u64 - 1);
    }

    #[test]
    fn ghost_nodes_allocated_within_vicinity() {
        let mut chip = Chip::new(ChipConfig::small_test(), Runtime::new(ChainApp, 64));
        let root_cc = 27u16;
        let root = chip
            .host_alloc(root_cc, ChainNode { values: Vec::new(), next: FutureLco::Null })
            .unwrap();
        chip.io_load((0..6u64).map(|i| Operon::new(root, ACT_APPEND, [i, 0])));
        chip.run_until_quiescent().unwrap();
        // Walk the chain: every overflow node must be ≤ 2 hops from ITS
        // requester (the previous node), per the Vicinity Allocator.
        let dims = chip.cfg().dims;
        let mut at = root;
        while let Some(&next) = chip.object(at).unwrap().next.value() {
            assert!(dims.distance(at.cc, next.cc) <= 2, "vicinity violated: {at} -> {next}");
            at = next;
        }
    }

    #[test]
    fn allocation_retries_when_cells_are_full() {
        // Capacity 1 per cell, root occupies cc 27; its whole 2-hop vicinity
        // is pre-filled so the first allocate attempts must bounce.
        let mut cfg = ChipConfig::small_test();
        cfg.arena_capacity = 1;
        cfg.max_alloc_retries = 64;
        let mut chip = Chip::new(cfg, Runtime::new(ChainApp, 64));
        let root =
            chip.host_alloc(27, ChainNode { values: Vec::new(), next: FutureLco::Null }).unwrap();
        let dims = chip.cfg().dims;
        for cc in dims.vicinity(27, 2) {
            chip.host_alloc(cc, ChainNode { values: Vec::new(), next: FutureLco::Null }).unwrap();
        }
        chip.io_load((0..4u64).map(|i| Operon::new(root, ACT_APPEND, [i, 0])));
        chip.run_until_quiescent().unwrap();
        let (mut values, _) = collect_chain(&chip, root);
        values.sort_unstable();
        assert_eq!(values, vec![0, 1, 2, 3]);
        assert!(chip.counters().alloc_retries > 0, "retries must have happened");
    }

    #[test]
    fn exhausted_memory_surfaces_out_of_memory() {
        let mut cfg = ChipConfig::small_test();
        cfg.arena_capacity = 1;
        cfg.max_alloc_retries = 8;
        let mut chip = Chip::new(cfg, Runtime::new(ChainApp, 8));
        // Fill every cell so no allocation can ever succeed.
        let dims = chip.cfg().dims;
        let mut root = None;
        for cc in dims.iter_ids() {
            let a = chip
                .host_alloc(cc, ChainNode { values: Vec::new(), next: FutureLco::Null })
                .unwrap();
            if cc == 0 {
                root = Some(a);
            }
        }
        chip.io_load((0..4u64).map(|i| Operon::new(root.unwrap(), ACT_APPEND, [i, 0])));
        let err = chip.run_until_quiescent().unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }), "got {err:?}");
    }
}
