//! Termination detection for diffusions (the paper's `AMCCA_Terminator`,
//! Listing 1: "Create a terminator object that handles termination detection
//! for the diffusion ... Diffuse and wait on the terminator").
//!
//! Two detectors are provided:
//!
//! * [`TerminationMode::Quiescence`] — the chip-global check the paper's
//!   CCASimulator uses: the diffusion has terminated when no operon is in
//!   flight, no task is queued, no cell is busy, and the IO streams are
//!   drained. Free of message overhead; this is what all paper experiments
//!   run with.
//! * [`TerminationMode::SafraToken`] — Safra's distributed token algorithm
//!   (Dijkstra EWD 998): message counters and colours per cell, a token
//!   circulating a serpentine ring over the mesh, detection at the
//!   initiator after a clean white round. It detects the same terminations
//!   but pays real token hops and polling cycles — the bookkeeping a real
//!   decentralized system cannot avoid. `paper ablate-terminator`
//!   quantifies the overhead. See [`amcca_sim::safra`].

use amcca_sim::{ActivitySeries, Counters, EnergyModel};

/// How `Device::run` decides the diffusion has finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TerminationMode {
    /// Global quiescence detection (zero overhead; the paper's setup).
    #[default]
    Quiescence,
    /// Safra's distributed token-ring detection with real message overhead.
    SafraToken,
}

/// Report of one `Device::run` segment (e.g. one streaming increment).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Simulation cycles consumed by this segment.
    pub cycles: u64,
    /// Event-counter deltas for this segment.
    pub counters: Counters,
    /// Energy consumed by this segment, microjoules.
    pub energy_uj: f64,
    /// Wall-clock time of this segment at 1 GHz, microseconds.
    pub time_us: f64,
    /// Per-cycle activity recorded during this segment (if enabled).
    pub activity: ActivitySeries,
    /// Number of reseed triggers the host injected for this report's repair
    /// phase(s) — `n` for a full-wave reseed, the repair-frontier size for a
    /// targeted one, `0` when no repair ran. Set by the application layer
    /// (the chip does not know the trigger policy); accumulated by
    /// [`RunReport::absorb`].
    pub reseed_triggers: u64,
    /// Cycles spent in the repair (phase-B reseed) segment(s) of this
    /// report, out of [`RunReport::cycles`]. Set by the application layer;
    /// accumulated by [`RunReport::absorb`].
    pub repair_cycles: u64,
    /// Instructions retired during the repair segment(s) — the *work* of the
    /// reseed wave (cycles measure its depth; a wide wave hides its cost in
    /// parallelism). Set by the application layer; accumulated by
    /// [`RunReport::absorb`].
    pub repair_instrs: u64,
    /// Hot objects the host-side rebalancer migrated to underloaded column
    /// bands after this segment (untimed, like construction; placement only
    /// affects later increments' cycle counts). Set by the application
    /// layer; accumulated by [`RunReport::absorb`].
    pub migrations: u64,
}

impl RunReport {
    /// Build a report from a segment's cycle count and counter deltas.
    pub fn from_delta(
        cycles: u64,
        counters: Counters,
        energy: &EnergyModel,
        cells: u64,
        activity: ActivitySeries,
    ) -> Self {
        let energy_uj = energy.total_uj(&counters, cells, cycles);
        let time_us = amcca_sim::cycles_to_us(cycles);
        RunReport {
            cycles,
            counters,
            energy_uj,
            time_us,
            activity,
            reseed_triggers: 0,
            repair_cycles: 0,
            repair_instrs: 0,
            migrations: 0,
        }
    }

    /// Fold a follow-up segment into this report. Used when one logical
    /// streaming increment runs as several device segments (a deletion
    /// batch's structural phase, its repair re-relaxation, a rhizome
    /// demotion merge): cycles, counters, energy, and time accumulate and
    /// the activity series are concatenated in run order.
    /// The exhaustive destructuring is deliberate: adding a report field
    /// without absorbing it here becomes a compile error, not a silent
    /// drop in multi-segment increments.
    pub fn absorb(&mut self, other: RunReport) {
        let RunReport {
            cycles,
            counters,
            energy_uj,
            time_us,
            activity,
            reseed_triggers,
            repair_cycles,
            repair_instrs,
            migrations,
        } = other;
        self.cycles += cycles;
        self.counters.merge(&counters);
        self.energy_uj += energy_uj;
        self.time_us += time_us;
        self.activity.counts.extend_from_slice(&activity.counts);
        self.activity.frames.extend(activity.frames);
        if self.activity.frame_stride == 0 {
            self.activity.frame_stride = activity.frame_stride;
        }
        self.reseed_triggers += reseed_triggers;
        self.repair_cycles += repair_cycles;
        self.repair_instrs += repair_instrs;
        self.migrations += migrations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_converts_cycles_to_time() {
        let r = RunReport::from_delta(
            22_000,
            Counters::default(),
            &EnergyModel::default(),
            1024,
            ActivitySeries::default(),
        );
        assert_eq!(r.time_us, 22.0);
        assert!(r.energy_uj > 0.0, "leakage energy is nonzero");
    }

    #[test]
    fn default_mode_is_quiescence() {
        assert_eq!(TerminationMode::default(), TerminationMode::Quiescence);
    }

    #[test]
    fn absorb_accumulates_segments() {
        let mk = |cycles: u64, counts: Vec<u16>| {
            let mut r = RunReport::from_delta(
                cycles,
                Counters { msgs_delivered: cycles, ..Default::default() },
                &EnergyModel::default(),
                16,
                ActivitySeries::default(),
            );
            r.activity.counts = counts;
            r
        };
        let mut a = mk(100, vec![1, 2]);
        let mut b = mk(40, vec![3]);
        b.reseed_triggers = 7;
        b.repair_cycles = 40;
        b.migrations = 2;
        let (ea, eb) = (a.energy_uj, b.energy_uj);
        a.absorb(b);
        assert_eq!(a.cycles, 140);
        assert_eq!(a.counters.msgs_delivered, 140);
        assert_eq!(a.time_us, 0.14);
        assert!((a.energy_uj - (ea + eb)).abs() < 1e-12);
        assert_eq!(a.activity.counts, vec![1, 2, 3]);
        assert_eq!(a.reseed_triggers, 7, "repair stats accumulate");
        assert_eq!(a.repair_cycles, 40);
        assert_eq!(a.migrations, 2, "migration counts accumulate");
    }
}
