//! Deletion-repair invalidation diffusion.
//!
//! Streamed edge *deletions* break the monotone-relaxation contract the
//! paper's dynamic algorithms rely on: a BFS level, SSSP distance, or
//! component label can only ever improve, so retracting the edge that
//! carried an improvement leaves stale, too-good state behind. The repair
//! follows the classic decremental recipe — *invalidate, then re-relax*:
//!
//! 1. When an edge `u → v` is removed, the holding object recalls the value
//!    it last announced along that edge with the
//!    [`crate::action::ACT_RETRACT`] system action defined here.
//! 2. The receiver folds the recall in through [`crate::App::retract`]: if
//!    its state could only have been derived through the recalled value
//!    (conservatively, if they are equal), it resets to its initial state
//!    and cascades recalls along its own edges, mirrors, and rhizome peers —
//!    over-invalidation is safe, under-invalidation is not.
//! 3. Once the invalidation quiesces, surviving valid states re-announce
//!    along their edges (the application layer's reseed wave) and ordinary
//!    monotone relaxation rebuilds the exact fixpoint over the surviving
//!    edge set.
//!
//! Termination mirrors the relax argument in reverse: an object resets at
//! most once per repair round (reset state never matches a recalled value
//! again), so the cascade is bounded by the invalidated region.

use amcca_sim::{Address, Operon};

use crate::action::ACT_RETRACT;

/// Build an invalidation operon recalling `suspect` — the value that
/// previously flowed to the object at `target` and is no longer supported.
pub fn retract_operon(target: Address, suspect: u64) -> Operon {
    Operon::new(target, ACT_RETRACT, [suspect, 0])
}

/// Decode an invalidation operon back into the recalled value.
pub fn decode_retract(op: &Operon) -> u64 {
    debug_assert_eq!(op.action, ACT_RETRACT);
    op.payload[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retract_roundtrip() {
        let t = Address::new(12, 7);
        let op = retract_operon(t, 99);
        assert_eq!(op.target, t);
        assert_eq!(op.action, ACT_RETRACT);
        assert_eq!(decode_retract(&op), 99);
    }
}
