//! Cross-rhizome synchronization.
//!
//! A *rhizome* (Chandio et al., "Rhizomes and Diffusions for Processing
//! Highly Skewed Graphs on Fine-Grain Message-Driven Systems",
//! arXiv:2402.06086) generalizes the single-root vertex object: a hub vertex
//! is represented by K co-equal root objects, cross-linked so that any root
//! can answer or forward actions for the logical vertex. Each root owns a
//! disjoint slice of the edge list and its own ghost subtree, which breaks
//! the serialization of all of a hub's traffic at one compute cell.
//!
//! Co-equality requires the roots' application state to converge: when one
//! root improves its value (a BFS level, an SSSP distance, a component
//! label), it announces the improvement to its peers with the
//! [`crate::action::ACT_RHIZOME_SYNC`] system action defined here. The
//! receiving root folds the value in through [`crate::App::rhizome_sync`] —
//! monotone applications re-announce only on improvement, so the peer
//! exchange terminates after at most K·(value-chain length) messages.

use amcca_sim::{Address, Operon};

use crate::action::ACT_RHIZOME_SYNC;

/// Build a cross-rhizome sync operon carrying `value` to the peer root at
/// `peer`.
pub fn sync_operon(peer: Address, value: u64) -> Operon {
    Operon::new(peer, ACT_RHIZOME_SYNC, [value, 0])
}

/// Decode a cross-rhizome sync operon back into its announced value.
pub fn decode_sync(op: &Operon) -> u64 {
    debug_assert_eq!(op.action, ACT_RHIZOME_SYNC);
    op.payload[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_roundtrip() {
        let peer = Address::new(77, 3);
        let op = sync_operon(peer, 42);
        assert_eq!(op.target, peer);
        assert_eq!(op.action, ACT_RHIZOME_SYNC);
        assert_eq!(decode_sync(&op), 42);
    }
}
