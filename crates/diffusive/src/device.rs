//! The host-side device façade, mirroring the paper's Listing 1:
//!
//! ```text
//! AMCCA_Device dev = /* Initialize the device. */
//! AMCCA_REGISTER_ACTION(dev, INSERT_ACTION, "insert-edge-action");
//! dev.register_data_transfer(vertices, edges, INSERT_ACTION);
//! AMCCA_Terminator terminator = AMCCA_Terminator();
//! dev.run(terminator);
//! ```
//!
//! A [`Device`] owns a simulated chip running a diffusive [`App`], provides
//! action registration, host-side object allocation (graph construction),
//! IO-stream loading, and segment-wise runs that wait on the terminator.

use amcca_sim::{ActionId, ActivityRecording, Address, Chip, ChipConfig, Operon, SimError};

use crate::action::ActionRegistry;
use crate::app::{App, Runtime};
use crate::terminator::{RunReport, TerminationMode};

/// The host-side handle to a simulated AM-CCA device running app `A`.
pub struct Device<A: App> {
    chip: Chip<Runtime<A>>,
    registry: ActionRegistry,
    mode: TerminationMode,
}

impl<A: App> Device<A> {
    /// Initialize the device (Listing 1 line 2).
    pub fn new(cfg: ChipConfig, app: A) -> Self {
        let retries = cfg.max_alloc_retries;
        Device {
            chip: Chip::new(cfg, Runtime::new(app, retries)),
            registry: ActionRegistry::new(),
            mode: TerminationMode::Quiescence,
        }
    }

    /// Register an action by name (the paper's `AMCCA_REGISTER_ACTION`).
    pub fn register_action(&mut self, name: &str) -> ActionId {
        self.registry.register(name)
    }

    /// Register an action at a compile-time id the app's handlers expect.
    pub fn register_action_at(&mut self, id: ActionId, name: &str) -> ActionId {
        self.registry.register_at(id, name)
    }

    /// The action name ⇄ id registry.
    pub fn registry(&self) -> &ActionRegistry {
        &self.registry
    }

    /// Select the termination detector used by [`Self::run`].
    pub fn set_termination_mode(&mut self, mode: TerminationMode) {
        self.mode = mode;
    }

    /// The currently selected termination detector.
    pub fn termination_mode(&self) -> TerminationMode {
        self.mode
    }

    /// Number of execution shards the underlying chip runs with (from
    /// `ChipConfig::shards`; results are shard-count-independent).
    pub fn shards(&self) -> usize {
        self.chip.cfg().shards
    }

    /// Host-side object allocation for graph construction (untimed; the
    /// paper allocates root RPVOs before streaming starts).
    pub fn host_alloc(&mut self, cc: u16, obj: A::Object) -> Result<Address, SimError> {
        self.chip.host_alloc(cc, obj)
    }

    /// Host-side object deallocation (untimed), returning the freed object.
    /// Used when host restructuring collapses objects between runs, e.g.
    /// merging a demoted rhizome's extra roots back into the primary.
    pub fn host_free(&mut self, addr: Address) -> Option<A::Object> {
        self.chip.host_free(addr)
    }

    /// Queue a stream of operons on the IO channels (the paper's
    /// `register_data_transfer`; operand resolution to addresses is done by
    /// the caller, as `main()` does with its `vertices` map).
    pub fn register_data_transfer(&mut self, ops: impl IntoIterator<Item = Operon>) {
        self.chip.io_load(ops);
    }

    /// Diffuse and wait on the terminator (Listing 1 line 25). Runs until the
    /// termination detector fires; returns the segment report.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        // Discard any activity recorded before this segment.
        let _ = self.chip.take_activity();
        let (cy0, ct0) = self.chip.snapshot();
        match self.mode {
            TerminationMode::Quiescence => {
                self.chip.run_until_quiescent()?;
            }
            TerminationMode::SafraToken => {
                if !self.chip.safra_enabled() {
                    self.chip.enable_safra_termination();
                }
                self.chip.begin_safra_probe();
                self.chip.run_until_terminated()?;
            }
        }
        let (cy1, ct1) = self.chip.snapshot();
        let activity = self.chip.take_activity();
        Ok(RunReport::from_delta(
            cy1 - cy0,
            ct1.delta(&ct0),
            &self.chip.cfg().energy,
            self.chip.cfg().cell_count() as u64,
            activity,
        ))
    }

    /// Enable/disable per-cycle activity recording for subsequent runs.
    pub fn set_activity_recording(&mut self, mode: ActivityRecording) {
        self.chip.set_activity_recording(mode);
    }

    /// The underlying simulated chip (read access).
    pub fn chip(&self) -> &Chip<Runtime<A>> {
        &self.chip
    }

    /// The underlying simulated chip (mutable access).
    pub fn chip_mut(&mut self) -> &mut Chip<Runtime<A>> {
        &mut self.chip
    }

    /// The application running on the device.
    pub fn app(&self) -> &A {
        &self.chip.program().app
    }

    /// Mutable access to the application (e.g. to toggle modes).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.chip.program_mut().app
    }

    /// Host-side read of an object (verification).
    pub fn object(&self, addr: Address) -> Option<&A::Object> {
        self.chip.object(addr)
    }

    /// Host-side write access to an object (seeding initial state).
    pub fn object_mut(&mut self, addr: Address) -> Option<&mut A::Object> {
        self.chip.object_mut(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuation::AllocRequest;
    use amcca_sim::ExecCtx;

    /// Trivial app: objects are `u64`, action 8 adds payload[0] to the target.
    struct AddApp;

    impl App for AddApp {
        type Object = u64;

        fn fork(&self) -> Self {
            AddApp
        }

        fn construct(&mut self, _req: &AllocRequest) -> u64 {
            0
        }

        fn fulfill(&mut self, _ctx: &mut ExecCtx<'_, u64>, _t: Address, _s: u8, _v: Address) {
            unreachable!("AddApp never allocates")
        }

        fn on_action(&mut self, ctx: &mut ExecCtx<'_, u64>, op: &Operon) {
            ctx.charge(1);
            *ctx.obj_mut(op.target.slot).unwrap() += op.payload[0];
        }
    }

    #[test]
    fn device_run_reports_segment_deltas() {
        let mut dev = Device::new(ChipConfig::small_test(), AddApp);
        let act = dev.register_action("add");
        let a = dev.host_alloc(10, 0).unwrap();
        dev.register_data_transfer((0..5).map(|_| Operon::new(a, act, [2, 0])));
        let r1 = dev.run().unwrap();
        assert_eq!(*dev.object(a).unwrap(), 10);
        assert!(r1.cycles > 0);
        assert_eq!(r1.counters.msgs_delivered, 5);
        assert_eq!(r1.time_us, r1.cycles as f64 / 1000.0);

        // Second segment: deltas, not totals.
        dev.register_data_transfer([Operon::new(a, act, [1, 0])]);
        let r2 = dev.run().unwrap();
        assert_eq!(*dev.object(a).unwrap(), 11);
        assert_eq!(r2.counters.msgs_delivered, 1);
        assert!(r2.cycles < r1.cycles);
    }

    #[test]
    fn run_on_idle_device_is_zero_cycles() {
        let mut dev = Device::new(ChipConfig::small_test(), AddApp);
        let r = dev.run().unwrap();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.energy_uj, 0.0);
    }

    #[test]
    fn action_names_resolve() {
        let mut dev = Device::new(ChipConfig::small_test(), AddApp);
        let id = dev.register_action("insert-edge-action");
        assert_eq!(dev.registry().lookup("insert-edge-action"), Some(id));
        assert_eq!(dev.registry().lookup("allocate"), Some(crate::action::ACT_ALLOCATE));
    }

    #[test]
    fn safra_mode_runs_segments_and_matches_quiescence_results() {
        let run = |mode: TerminationMode| -> (u64, u64) {
            let mut dev = Device::new(ChipConfig::small_test(), AddApp);
            dev.set_termination_mode(mode);
            let act = dev.register_action("add");
            let a = dev.host_alloc(40, 0).unwrap();
            let mut cycles = 0;
            for _ in 0..3 {
                dev.register_data_transfer((0..8).map(|_| Operon::new(a, act, [1, 0])));
                cycles += dev.run().unwrap().cycles;
            }
            (*dev.object(a).unwrap(), cycles)
        };
        let (vq, cq) = run(TerminationMode::Quiescence);
        let (vs, cs) = run(TerminationMode::SafraToken);
        assert_eq!(vq, vs, "same results under both terminators");
        assert!(cs > cq, "token detection must cost extra cycles: {cs} vs {cq}");
    }

    #[test]
    fn sharded_device_matches_sequential() {
        let run = |shards: usize| {
            let mut dev = Device::new(ChipConfig::small_test().with_shards(shards), AddApp);
            assert_eq!(dev.shards(), shards);
            let act = dev.register_action("add");
            let a = dev.host_alloc(10, 0).unwrap();
            dev.register_data_transfer((0..16).map(|i| Operon::new(a, act, [i, 0])));
            let r = dev.run().unwrap();
            (*dev.object(a).unwrap(), r.cycles, r.counters, r.energy_uj)
        };
        let sequential = run(1);
        assert_eq!(sequential, run(4), "device runs are shard-count-independent");
    }

    #[test]
    fn activity_recording_scoped_to_segment() {
        let mut dev = Device::new(ChipConfig::small_test(), AddApp);
        let act = dev.register_action("add");
        let a = dev.host_alloc(20, 0).unwrap();
        dev.set_activity_recording(ActivityRecording::Counts);
        dev.register_data_transfer([Operon::new(a, act, [1, 0])]);
        let r1 = dev.run().unwrap();
        assert_eq!(r1.activity.counts.len() as u64, r1.cycles);
        dev.register_data_transfer([Operon::new(a, act, [1, 0])]);
        let r2 = dev.run().unwrap();
        assert_eq!(r2.activity.counts.len() as u64, r2.cycles, "fresh series per segment");
    }
}
