//! Standing-query state diffusion.
//!
//! A standing label-constrained path query is compiled (by the application
//! layer) to a small deterministic automaton; each vertex object then keeps,
//! per registered query, a bitset of the automaton states reachable at that
//! vertex along some labelled path from the query's source. Maintaining
//! those bitsets under edge insertions is a *monotone* diffusion carried by
//! the [`crate::action::ACT_QUERY`] system action defined here:
//!
//! 1. When new states `bits` arrive for query `qid`, the receiver keeps only
//!    the genuinely new ones (`bits & !current`); if none are new the wave
//!    dies — monotonicity is the termination argument, exactly as for the
//!    relax diffusions.
//! 2. New states are folded in and stepped through the automaton's
//!    transition function along every stored out-edge's label, producing
//!    follow-on `ACT_QUERY` operons; mirrors (ghosts, rhizome peers) receive
//!    the new states unstepped so every copy of the vertex can announce.
//!
//! Deletion repair inverts the flow: the host clears the affected region's
//! bitsets and injects **reseed**-flagged query operons at the repair
//! frontier. A reseed does not carry states — it instructs the receiver to
//! re-announce its *current* bitsets along its stored edges (fanning once
//! across rhizome peers via [`QUERY_RESEED_FANNED`]), after which plain
//! monotone propagation rebuilds the exact product-state fixpoint over the
//! surviving labelled edge set.

use amcca_sim::{Address, Operon};

use crate::action::ACT_QUERY;

/// Sentinel query id addressing *all* registered queries at once (used by
/// reseed waves so one operon per frontier vertex suffices).
pub const QUERY_ALL: u32 = u32::MAX;

/// Flag bit in `payload[0]`: this operon is a repair-phase reseed trigger
/// (re-announce current states) rather than a monotone state delivery.
pub const QUERY_RESEED: u64 = 1 << 32;

/// Flag bit in `payload[0]`: this reseed was already fanned across the
/// receiving vertex's rhizome peers — do not fan it again.
pub const QUERY_RESEED_FANNED: u64 = 1 << 33;

/// Build a monotone query-state delivery: automaton states `bits` of query
/// `qid` flow to the vertex object at `target`.
pub fn query_operon(target: Address, qid: u32, bits: u32) -> Operon {
    Operon::new(target, ACT_QUERY, [qid as u64, bits as u64])
}

/// Build a repair-phase reseed trigger for the vertex object at `target`:
/// re-announce current states of `qid` (or of every query, with
/// [`QUERY_ALL`]) along all stored edges.
pub fn query_reseed_operon(target: Address, qid: u32) -> Operon {
    Operon::new(target, ACT_QUERY, [qid as u64 | QUERY_RESEED, 0])
}

/// Decode a query operon into `(qid, bits, reseed, fanned)`.
pub fn decode_query(op: &Operon) -> (u32, u32, bool, bool) {
    debug_assert_eq!(op.action, ACT_QUERY);
    (
        op.payload[0] as u32,
        op.payload[1] as u32,
        op.payload[0] & QUERY_RESEED != 0,
        op.payload[0] & QUERY_RESEED_FANNED != 0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let t = Address::new(3, 1);
        let op = query_operon(t, 7, 0b1010);
        assert_eq!(op.target, t);
        assert_eq!(op.action, ACT_QUERY);
        assert_eq!(decode_query(&op), (7, 0b1010, false, false));
    }

    #[test]
    fn reseed_roundtrip() {
        let t = Address::new(0, 0);
        let op = query_reseed_operon(t, QUERY_ALL);
        assert_eq!(decode_query(&op), (QUERY_ALL, 0, true, false));
        let mut fanned = op;
        fanned.payload[0] |= QUERY_RESEED_FANNED;
        assert_eq!(decode_query(&fanned), (QUERY_ALL, 0, true, true));
    }
}
